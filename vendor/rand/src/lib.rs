//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of the `rand 0.10` API the workspace
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] sampling helpers. The generator is a fixed splitmix64-seeded
//! xoshiro256++, so simulations remain deterministic per seed — the only
//! property the simulator relies on. It makes no cryptographic claims.

#![warn(missing_docs)]

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random number generators: sources of uniform 64-bit values.
pub trait RngCore {
    /// The next raw 64-bit value of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Sampling helpers layered over any [`RngCore`] (the `rand 0.10` names).
pub trait RngExt: RngCore {
    /// A uniform value in `range` (half-open `a..b`; `b > a` required).
    fn random_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self.next_u64(), range.start, range.end)
    }

    /// A Bernoulli trial: `true` with probability `p` (clamped to `[0,1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 bits of the stream give a uniform f64 in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Integer types uniformly sampleable from a 64-bit source.
pub trait SampleRange: Copy {
    /// Maps a raw 64-bit value into `[lo, hi)`.
    fn sample(raw: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(raw: u64, lo: Self, hi: Self) -> Self {
                assert!(hi > lo, "empty sample range");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (raw as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000u32), b.random_range(0..1000u32));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u32> = (0..16).map(|_| a.random_range(0..u32::MAX)).collect();
        let bv: Vec<u32> = (0..16).map(|_| b.random_range(0..u32::MAX)).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(5..17usize);
            assert!((5..17).contains(&v));
            let w = r.random_range(-3i64..4);
            assert!((-3..4).contains(&w));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.random_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "hits {hits}");
    }
}
