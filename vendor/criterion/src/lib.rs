//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of the criterion 0.8 API the workspace's benches
//! use — `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — as a plain wall-clock
//! harness. Results print as `<group>/<name>  mean <t> (<samples> samples)`
//! lines; there is no statistical analysis, HTML report, or comparison
//! baseline, but relative numbers between engines remain meaningful.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (a trimmed criterion `Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// A group of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement time.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks a closure under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.0, &mut f);
        self
    }

    /// Benchmarks a closure that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.0, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(&mut self) {}

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Warm-up: run until the warm-up budget elapses.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
        }

        // Measurement: spread the budget across the configured samples.
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let per_sample = self.measurement_time / self.sample_size as u32;
        for _ in 0..self.sample_size {
            let mut iters = 0u64;
            let mut elapsed = Duration::ZERO;
            let sample_start = Instant::now();
            loop {
                let mut b = Bencher {
                    iters: 1,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                iters += b.iters;
                elapsed += b.elapsed;
                if sample_start.elapsed() >= per_sample {
                    break;
                }
            }
            if iters > 0 {
                samples.push(elapsed.as_secs_f64() / iters as f64);
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let mean = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        println!(
            "{}/{}  mean {}  median {}  ({} samples)",
            self.name,
            id,
            format_time(mean),
            format_time(median),
            samples.len()
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Measures one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `f`, preventing the result from being
    /// optimized away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed = start.elapsed();
        self.iters = 1;
    }
}

/// A benchmark identifier: a function name, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`, criterion's display convention.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// An id from just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with", 3), &3, |b, &x| b.iter(|| x * 2));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        trivial(&mut c);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("and", 12).0, "and/12");
        assert_eq!(BenchmarkId::from_parameter(5).0, "5");
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(2.0), "2.000 s");
        assert_eq!(format_time(0.002), "2.000 ms");
        assert_eq!(format_time(2e-6), "2.000 µs");
        assert_eq!(format_time(2e-9), "2.0 ns");
    }
}
