//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of the proptest 1.x API the workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map`,
//! `prop_flat_map`, `prop_recursive`, and `boxed`; tuple, range, `Just`,
//! `any`, union, collection, and regex-lite string strategies; and the
//! `proptest!`, `prop_oneof!`, `prop_assert!`, and `prop_assert_eq!`
//! macros. Sampling is deterministic — each test derives its RNG seed from
//! its own name — so failures reproduce exactly across runs. There is no
//! shrinking: a failing case panics with the generated value's `Debug`
//! output instead of a minimized counterexample.

#![warn(missing_docs)]

/// Deterministic random source behind every strategy.
pub mod test_runner {
    use crate::config::ProptestConfig;

    /// A splitmix64 generator: small, fast, and uniform enough for test
    /// data.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator with an explicit seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// Drives one `proptest!` test: holds the configured case count and the
    /// per-test deterministic generator.
    #[derive(Debug)]
    pub struct TestRunner {
        cases: u32,
        rng: TestRng,
    }

    impl TestRunner {
        /// A runner for the named test. The seed is an FNV-1a hash of the
        /// test name, so every test gets its own reproducible stream.
        pub fn new(config: ProptestConfig, test_name: &str) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner {
                cases: config.cases,
                rng: TestRng::new(seed),
            }
        }

        /// How many cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The runner's generator.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

/// Test-run configuration.
pub mod config {
    /// The subset of proptest's configuration the workspace uses.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// The `Strategy` trait and its combinators.
pub mod strategy {
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// Unlike real proptest there is no value tree or shrinking —
    /// `generate` directly produces a sample.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy producing `f` applied to this strategy's values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// A strategy that draws a value, builds a second strategy from it,
        /// and draws from that.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// A recursive strategy: `self` is the leaf case and `recurse`
        /// wraps an inner strategy into a deeper construct. Depth is
        /// bounded by `depth`; `desired_size` and `expected_branch_size`
        /// are accepted for API compatibility but unused.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            // Level 0 is the leaf; level k draws either from level k-1 or
            // from one application of `recurse` over level k-1, so nesting
            // never exceeds `depth`.
            let mut level = self.boxed();
            for _ in 0..depth {
                level = Union::new(vec![level.clone(), recurse(level).boxed()]).boxed();
            }
            level
        }

        /// Type-erases the strategy behind a cheap `Clone`.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// The [`Strategy::prop_flat_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between alternative strategies ([`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    #[derive(Debug, Clone)]
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.end > self.start, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(hi >= lo, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + offset) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// The `any::<T>()` entry point for type-default strategies.
pub mod arbitrary {
    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait ArbitraryValue: Sized {
        /// Draws an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// A strategy over all values of `T`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.end > self.size.start, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` with a length drawn from
    /// `size` (half-open, like proptest's `SizeRange` from a `Range`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Regex-lite string strategies: `&str` patterns generate matching strings.
pub mod string {
    use std::iter::Peekable;
    use std::str::Chars;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// One parsed pattern atom with its repetition bounds.
    #[derive(Debug, Clone)]
    struct Atom {
        node: Node,
        min: usize,
        max: usize,
    }

    #[derive(Debug, Clone)]
    enum Node {
        Lit(char),
        Class(Vec<(char, char)>),
        Group(Vec<Atom>),
    }

    /// A compiled regex-lite pattern. Supports literals, escapes (`\n`,
    /// `\t`, `\\` and friends), character classes of ranges and single
    /// characters (`[ -~]`, `[a-z0-9_]`), groups, and the repetition
    /// operators `{m,n}`, `{n}`, `*`, `+`, `?` (unbounded forms capped at
    /// eight repeats). This covers the patterns used in the workspace's
    /// panic-freedom tests; anything fancier is rejected at parse time.
    #[derive(Debug, Clone)]
    pub struct RegexLite {
        atoms: Vec<Atom>,
    }

    impl RegexLite {
        /// Compiles `pattern`, panicking on unsupported syntax (a test
        /// authoring error, not a runtime condition).
        pub fn compile(pattern: &str) -> Self {
            let mut chars = pattern.chars().peekable();
            let atoms = parse_seq(&mut chars, pattern);
            assert!(
                chars.next().is_none(),
                "unbalanced ')' in pattern {pattern:?}"
            );
            RegexLite { atoms }
        }
    }

    fn parse_seq(chars: &mut Peekable<Chars>, pattern: &str) -> Vec<Atom> {
        let mut out = Vec::new();
        while let Some(&c) = chars.peek() {
            if c == ')' {
                break;
            }
            chars.next();
            let node = match c {
                '(' => {
                    let inner = parse_seq(chars, pattern);
                    assert_eq!(
                        chars.next(),
                        Some(')'),
                        "unclosed group in pattern {pattern:?}"
                    );
                    Node::Group(inner)
                }
                '[' => Node::Class(parse_class(chars, pattern)),
                '\\' => {
                    Node::Lit(unescape(chars.next().unwrap_or_else(|| {
                        panic!("dangling escape in pattern {pattern:?}")
                    })))
                }
                '|' | '*' | '+' | '?' | '{' => {
                    panic!("unsupported regex syntax {c:?} in pattern {pattern:?}")
                }
                _ => Node::Lit(c),
            };
            let (min, max) = parse_repeat(chars, pattern);
            out.push(Atom { node, min, max });
        }
        out
    }

    fn parse_class(chars: &mut Peekable<Chars>, pattern: &str) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        loop {
            let lo =
                match chars.next() {
                    Some(']') if !ranges.is_empty() => return ranges,
                    Some('\\') => unescape(chars.next().unwrap_or_else(|| {
                        panic!("dangling escape in class of pattern {pattern:?}")
                    })),
                    Some(c) => c,
                    None => panic!("unclosed class in pattern {pattern:?}"),
                };
            // `a-b` is a range unless the '-' is the closing position.
            if chars.peek() == Some(&'-') {
                let mut ahead = chars.clone();
                ahead.next();
                if ahead.peek() != Some(&']') {
                    chars.next();
                    let hi = match chars.next() {
                        Some('\\') => unescape(chars.next().unwrap_or_else(|| {
                            panic!("dangling escape in class of pattern {pattern:?}")
                        })),
                        Some(c) => c,
                        None => panic!("unclosed class in pattern {pattern:?}"),
                    };
                    assert!(hi >= lo, "inverted class range in pattern {pattern:?}");
                    ranges.push((lo, hi));
                    continue;
                }
            }
            ranges.push((lo, lo));
        }
    }

    fn parse_repeat(chars: &mut Peekable<Chars>, pattern: &str) -> (usize, usize) {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        let (min, max) = match spec.split_once(',') {
                            Some((a, b)) => (
                                a.parse().unwrap_or_else(|_| {
                                    panic!("bad repeat {spec:?} in pattern {pattern:?}")
                                }),
                                b.parse().unwrap_or_else(|_| {
                                    panic!("bad repeat {spec:?} in pattern {pattern:?}")
                                }),
                            ),
                            None => {
                                let n = spec.parse().unwrap_or_else(|_| {
                                    panic!("bad repeat {spec:?} in pattern {pattern:?}")
                                });
                                (n, n)
                            }
                        };
                        assert!(max >= min, "inverted repeat in pattern {pattern:?}");
                        return (min, max);
                    }
                    spec.push(c);
                }
                panic!("unclosed repeat in pattern {pattern:?}")
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        }
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn gen_atoms(atoms: &[Atom], rng: &mut TestRng, out: &mut String) {
        for atom in atoms {
            let span = (atom.max - atom.min) as u64 + 1;
            let reps = atom.min + rng.below(span) as usize;
            for _ in 0..reps {
                match &atom.node {
                    Node::Lit(c) => out.push(*c),
                    Node::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|&(lo, hi)| u64::from(hi) - u64::from(lo) + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        for &(lo, hi) in ranges {
                            let size = u64::from(hi) - u64::from(lo) + 1;
                            if pick < size {
                                out.push(
                                    char::from_u32(lo as u32 + pick as u32)
                                        .expect("class stays in scalar range"),
                                );
                                break;
                            }
                            pick -= size;
                        }
                    }
                    Node::Group(inner) => gen_atoms(inner, rng, out),
                }
            }
        }
    }

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            // Compilation per draw keeps the impl simple; patterns are a
            // few dozen characters, so this is noise next to the test body.
            let compiled = RegexLite::compile(self);
            let mut out = String::new();
            gen_atoms(&compiled.atoms, rng, &mut out);
            out
        }
    }
}

/// Everything a property test needs, glob-imported.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: an optional `#![proptest_config(..)]` header
/// followed by `#[test]` functions whose arguments are drawn from
/// strategies with `pattern in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::config::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner =
                    $crate::test_runner::TestRunner::new($cfg, stringify!($name));
                let strategy = ($($strat,)+);
                for _ in 0..runner.cases() {
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&strategy, runner.rng());
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a property test, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!("proptest case failed: {}", format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property test, reporting both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left != *right {
                    panic!(
                        "proptest case failed: {:?} != {:?}",
                        left, right
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left != *right {
                    panic!(
                        "proptest case failed: {:?} != {:?}: {}",
                        left, right, format!($($fmt)+)
                    );
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        let strat = (0usize..5, 2u32..=4, -3i64..=3, any::<bool>());
        for _ in 0..500 {
            let (a, b, c, _) = strat.generate(&mut rng);
            assert!(a < 5);
            assert!((2..=4).contains(&b));
            assert!((-3..=3).contains(&c));
        }
    }

    #[test]
    fn maps_and_flat_maps_compose() {
        let mut rng = TestRng::new(2);
        let strat = (1usize..4)
            .prop_flat_map(|n| (Just(n), prop::collection::vec(0u8..10, 0..5)))
            .prop_map(|(n, v)| (n * 2, v));
        for _ in 0..200 {
            let (n, v) = strat.generate(&mut rng);
            assert!(n % 2 == 0 && (2..8).contains(&n));
            assert!(v.len() < 5);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_draws_every_arm() {
        let mut rng = TestRng::new(3);
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = (-3i64..=3)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            });
        let mut rng = TestRng::new(4);
        let mut max_depth = 0;
        for _ in 0..300 {
            max_depth = max_depth.max(depth(&strat.generate(&mut rng)));
        }
        assert!(max_depth > 0, "recursion never fired");
        assert!(max_depth <= 3, "depth bound exceeded: {max_depth}");
    }

    #[test]
    fn string_patterns_match_their_shape() {
        let mut rng = TestRng::new(5);
        for _ in 0..200 {
            let s = "[ -~]{0,40}".generate(&mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));

            let t = "([ -~]{0,30}\n){0,6}".generate(&mut rng);
            assert!(t.lines().count() <= 6);
            assert!(t.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn seeds_derive_from_test_names() {
        use crate::config::ProptestConfig;
        use crate::test_runner::TestRunner;
        let mut a = TestRunner::new(ProptestConfig::with_cases(8), "alpha");
        let mut b = TestRunner::new(ProptestConfig::with_cases(8), "alpha");
        let mut c = TestRunner::new(ProptestConfig::with_cases(8), "beta");
        let (x, y, z) = (a.rng().next_u64(), b.rng().next_u64(), c.rng().next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro front-end itself: tuple patterns, multiple args.
        #[test]
        fn macro_front_end_works((n, v) in (1usize..4).prop_flat_map(|n| (Just(n), prop::collection::vec(0u8..10, 0..5))), flag in any::<bool>()) {
            prop_assert!(n < 4, "n was {}", n);
            prop_assert_eq!(v.iter().filter(|&&x| x >= 10).count(), 0);
            let _ = flag;
        }
    }
}
