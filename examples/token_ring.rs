//! The introduction's "no process has the token" predicate on a token
//! ring, including the incremental (online) slicer from the paper's
//! future-work section.
//!
//! ```text
//! cargo run --example token_ring
//! ```

use computation_slicing::computation::lattice::count_cuts;
use computation_slicing::sim::token_ring::{no_token_spec, TokenRing};
use computation_slicing::sim::{run, SimConfig};
use computation_slicing::{detect_with_slicing, Limits, OnlineSlicer, SliceStats, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Offline: simulate, slice, detect.
    let cfg = SimConfig {
        seed: 5,
        max_events_per_process: 15,
        ..SimConfig::default()
    };
    let comp = run(&mut TokenRing::new(4), &cfg)?;
    println!(
        "token ring run: {} events, {} messages, {} cuts",
        comp.num_events(),
        comp.messages().len(),
        count_cuts(&comp, Some(2_000_000)).value()
    );

    let spec = no_token_spec(&comp);
    let slice = spec.slice(&comp);
    println!(
        "slice for \"no process has the token\": {}",
        SliceStats::gather(&comp, &slice, Some(2_000_000))
    );
    let outcome = detect_with_slicing(&comp, &spec, &Limits::none());
    match &outcome.search.found {
        Some(cut) => println!("token in transit at cut {cut}"),
        None => println!("the token never left a process"),
    }

    // Online: observe events one at a time and keep the slice current.
    println!("\nonline monitoring of a 2-process hand-off:");
    let mut online = OnlineSlicer::new(2);
    let t0 = online.declare_var(0, "has_token", Value::Bool(true))?;
    let t1 = online.declare_var(1, "has_token", Value::Bool(false))?;
    online.watch_bool(t0, "!has_token_0", |v| !v)?;
    online.watch_bool(t1, "!has_token_1", |v| !v)?;

    let send = online.observe(0, &[(t0, Value::Bool(false))])?;
    let snapshot = online.snapshot_computation()?;
    println!(
        "  after the send: slice has {} cut(s)",
        online.slice_of(&snapshot).count_cuts(None).value()
    );

    let recv = online.observe(1, &[(t1, Value::Bool(true))])?;
    online.message(send, recv)?;
    let snapshot = online.snapshot_computation()?;
    let slice = online.slice_of(&snapshot);
    println!(
        "  after the receive: slice has {} cut(s)",
        slice.count_cuts(None).value()
    );
    if let Some(bottom) = slice.bottom_cut() {
        println!("  earliest token-in-transit cut: {bottom}");
    }
    Ok(())
}
