//! Monitoring the primary–secondary protocol for global faults — the
//! paper's first experiment in miniature.
//!
//! Simulates fault-free and faulty runs, then compares the two detection
//! approaches the paper evaluates: computation slicing versus
//! partial-order methods (persistent + sleep sets).
//!
//! ```text
//! cargo run --release --example primary_secondary_monitor [-- <procs> <events>]
//! ```

use computation_slicing::sim::fault::inject_primary_secondary_fault;
use computation_slicing::sim::primary_secondary::{self, PrimarySecondary};
use computation_slicing::sim::{run, SimConfig};
use computation_slicing::{detect_pom, detect_with_slicing, Limits};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let procs: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(5);
    let events: u32 = args.next().map(|a| a.parse()).transpose()?.unwrap_or(20);

    let cfg = SimConfig {
        seed: 2026,
        max_events_per_process: events,
        ..SimConfig::default()
    };
    let comp = run(&mut PrimarySecondary::new(procs), &cfg)?;
    println!(
        "fault-free run: {} processes, {} events, {} messages",
        comp.num_processes(),
        comp.num_events(),
        comp.messages().len()
    );

    let spec = primary_secondary::violation_spec(&comp);
    let limits = Limits::none();

    println!("\n== fault-free scenario ==");
    let sliced = detect_with_slicing(&comp, &spec, &limits);
    println!(
        "slicing: detected={} cuts={} time={:?} bytes={}",
        sliced.detected(),
        sliced.search.cuts_explored,
        sliced.total_elapsed(),
        sliced.total_peak_bytes()
    );
    let inv = primary_secondary::invariant(&comp);
    let not_inv = negate(&inv, comp.num_processes());
    let pom = detect_pom(&comp, &not_inv, &limits);
    println!(
        "partial-order methods: detected={} cuts={} time={:?} bytes={}",
        pom.detected(),
        pom.cuts_explored,
        pom.elapsed,
        pom.peak_bytes
    );

    println!("\n== faulty scenario (one injected fault) ==");
    let (faulty, fault) =
        inject_primary_secondary_fault(&comp, 7).expect("run has secondary events");
    println!(
        "injected: {} at {}:{} := {}",
        fault.var_name, fault.process, fault.position, fault.value
    );
    let fspec = primary_secondary::violation_spec(&faulty);
    let sliced = detect_with_slicing(&faulty, &fspec, &limits);
    println!(
        "slicing: detected={} cuts={} time={:?} bytes={}",
        sliced.detected(),
        sliced.search.cuts_explored,
        sliced.total_elapsed(),
        sliced.total_peak_bytes()
    );
    if let Some(cut) = &sliced.search.found {
        println!("  faulty consistent cut: {cut}");
    }
    let finv = primary_secondary::invariant(&faulty);
    let fnot = negate(&finv, faulty.num_processes());
    let pom = detect_pom(&faulty, &fnot, &limits);
    println!(
        "partial-order methods: detected={} cuts={} time={:?} bytes={}",
        pom.detected(),
        pom.cuts_explored,
        pom.elapsed,
        pom.peak_bytes
    );
    Ok(())
}

/// ¬I as a plain predicate for the baseline searcher.
fn negate(inv: &computation_slicing::FnPredicate, n: usize) -> computation_slicing::FnPredicate {
    use computation_slicing::{FnPredicate, Predicate, ProcSet};
    let inv = inv.clone();
    FnPredicate::new(ProcSet::all(n), "¬I_ps", move |st| !inv.eval(st))
}
