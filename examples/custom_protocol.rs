//! Writing your own protocol against the simulator's `Protocol` trait and
//! monitoring it with slicing: a request–reply client/server pair whose
//! safety property is "the client never has two requests outstanding".
//!
//! ```text
//! cargo run --example custom_protocol
//! ```

use computation_slicing::sim::{run, Actions, MsgPayload, Protocol, SimConfig};
use computation_slicing::{
    detect_with_slicing, ComputationBuilder, Limits, PendingAtMost, PredicateSpec, Value, VarRef,
};
use rand::rngs::StdRng;
use rand::RngExt;

const MSG_REQUEST: u32 = 0;
const MSG_REPLY: u32 = 1;

/// Process 0 is a client firing requests at process 1 whenever it believes
/// none is outstanding; the server replies. The `outstanding` counter is
/// the client's *belief* — the network can still hold a request and a
/// reply at once only if the protocol is buggy.
struct RequestReply {
    outstanding: i64,
    out_var: Option<VarRef>,
    served_var: Option<VarRef>,
    served: i64,
    /// Injected bug: fire even when a request is outstanding.
    buggy: bool,
}

impl RequestReply {
    fn new(buggy: bool) -> Self {
        RequestReply {
            outstanding: 0,
            out_var: None,
            served_var: None,
            served: 0,
            buggy,
        }
    }
}

impl Protocol for RequestReply {
    fn num_processes(&self) -> usize {
        2
    }

    fn declare_vars(&mut self, p: usize, b: &mut ComputationBuilder) {
        let pid = b.process(p);
        if p == 0 {
            self.out_var = Some(b.declare_var(pid, "outstanding", Value::Int(0)));
        } else {
            self.served_var = Some(b.declare_var(pid, "served", Value::Int(0)));
        }
    }

    fn step(&mut self, p: usize, rng: &mut StdRng, out: &mut Actions) {
        if p != 0 {
            return; // the server only reacts
        }
        let may_fire = self.outstanding == 0 || (self.buggy && rng.random_bool(0.3));
        if may_fire && rng.random_bool(0.6) {
            self.outstanding += 1;
            out.set(self.out_var.unwrap(), self.outstanding);
            out.send(1, (MSG_REQUEST, self.outstanding));
        }
    }

    fn on_message(&mut self, p: usize, _from: usize, payload: MsgPayload, out: &mut Actions) {
        match (p, payload.0) {
            (1, MSG_REQUEST) => {
                self.served += 1;
                out.set(self.served_var.unwrap(), self.served);
                out.send(0, (MSG_REPLY, 0));
            }
            (0, MSG_REPLY) => {
                self.outstanding -= 1;
                out.set(self.out_var.unwrap(), self.outstanding);
            }
            other => panic!("unexpected message {other:?}"),
        }
    }
}

fn monitor(label: &str, buggy: bool) {
    let cfg = SimConfig {
        seed: 77,
        max_events_per_process: 20,
        ..SimConfig::default()
    };
    let comp = run(&mut RequestReply::new(buggy), &cfg).expect("protocol run builds");

    // The fault: more than one message outstanding anywhere toward the
    // server — PendingAtMost is the paper's linear (non-regular) channel
    // predicate, so its slice is computed with the Section 4.3 algorithm.
    let fault = PredicateSpec::linear(Negated(PendingAtMost::new(comp.process(1), 1, 2)));
    let outcome = detect_with_slicing(&comp, &fault, &Limits::none());
    println!(
        "{label}: {} events, fault {} (examined {} cuts in {:?})",
        comp.num_events(),
        if outcome.detected() {
            "DETECTED"
        } else {
            "absent"
        },
        outcome.search.cuts_explored,
        outcome.total_elapsed(),
    );
    if let Some(cut) = &outcome.search.found {
        println!("  two requests in flight at cut {cut}");
    }
}

/// `¬(pending ≤ 1)` = "at least two requests in transit". With a single
/// sender this is linear: when too few messages are in flight, only new
/// sends by the client can raise the count, so the client is the
/// forbidden process.
#[derive(Debug)]
struct Negated(PendingAtMost);

impl computation_slicing::Predicate for Negated {
    fn support(&self) -> computation_slicing::ProcSet {
        computation_slicing::Predicate::support(&self.0)
    }
    fn eval(&self, st: &computation_slicing::GlobalState<'_>) -> bool {
        !computation_slicing::Predicate::eval(&self.0, st)
    }
}

impl computation_slicing::LinearPredicate for Negated {
    fn forbidden_process(
        &self,
        _st: &computation_slicing::GlobalState<'_>,
    ) -> computation_slicing::ProcessId {
        // Too few in transit: only new sends from the client can raise it.
        computation_slicing::ProcessId::new(0)
    }
}

fn main() {
    monitor("correct protocol", false);
    monitor("buggy protocol  ", true);
}
