//! Monitoring the database-partitioning protocol — the paper's second
//! experiment in miniature, where partial-order methods beat slicing on
//! average because the slice computation itself dominates.
//!
//! ```text
//! cargo run --release --example database_partitioning [-- <procs> <events>]
//! ```

use computation_slicing::sim::database::{self, DatabasePartitioning};
use computation_slicing::sim::fault::inject_database_fault;
use computation_slicing::sim::{run, SimConfig};
use computation_slicing::{
    detect_pom, detect_with_slicing, FnPredicate, Limits, Predicate, ProcSet,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let procs: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(5);
    let events: u32 = args.next().map(|a| a.parse()).transpose()?.unwrap_or(18);

    let cfg = SimConfig {
        seed: 99,
        max_events_per_process: events,
        ..SimConfig::default()
    };
    let comp = run(&mut DatabasePartitioning::new(procs), &cfg)?;
    println!(
        "fault-free run: {} processes, {} events, {} messages",
        comp.num_processes(),
        comp.num_events(),
        comp.messages().len()
    );

    for (label, maybe_faulty) in [
        ("fault-free", None),
        ("one injected fault", inject_database_fault(&comp, 3)),
    ] {
        let owned;
        let target = match &maybe_faulty {
            Some((faulty, fault)) => {
                println!(
                    "\n== {label}: {} at {}:{} := {} ==",
                    fault.var_name, fault.process, fault.position, fault.value
                );
                owned = faulty.clone();
                &owned
            }
            None => {
                println!("\n== {label} ==");
                &comp
            }
        };

        let spec = database::violation_spec(target);
        let sliced = detect_with_slicing(target, &spec, &Limits::none());
        println!(
            "slicing: detected={} cuts={} time={:?} bytes={}",
            sliced.detected(),
            sliced.search.cuts_explored,
            sliced.total_elapsed(),
            sliced.total_peak_bytes()
        );
        if let Some(cut) = &sliced.search.found {
            println!("  faulty consistent cut: {cut}");
        }

        let inv = database::invariant(target);
        let n = target.num_processes();
        let not_inv = FnPredicate::new(ProcSet::all(n), "¬I_db", move |st| !inv.eval(st));
        let pom = detect_pom(target, &not_inv, &Limits::none());
        println!(
            "partial-order methods: detected={} cuts={} time={:?} bytes={}",
            pom.detected(),
            pom.cuts_explored,
            pom.elapsed,
            pom.peak_bytes
        );
    }
    Ok(())
}
