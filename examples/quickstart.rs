//! Quickstart: the paper's Figure 1 worked example, end to end.
//!
//! Builds the three-process computation, slices it with respect to the
//! regular predicate `(x1 > 1) ∧ (x3 ≤ 3)`, and detects the full
//! introduction predicate `(x1·x2 + x3 < 5) ∧ (x1 > 1) ∧ (x3 ≤ 3)` by
//! searching the slice's six cuts instead of the computation's
//! twenty-eight.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use computation_slicing::computation::lattice::count_cuts;
use computation_slicing::computation::test_fixtures::figure1;
use computation_slicing::predicates::expr::parse_predicate;
use computation_slicing::{detect_bfs, slice_conjunctive, GlobalState, Limits, SliceStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let comp = figure1();
    println!(
        "computation: {} processes, {} events, {} messages",
        comp.num_processes(),
        comp.num_events(),
        comp.messages().len()
    );
    println!("consistent cuts: {}", count_cuts(&comp, None).value());

    // The sliceable (regular) part of the predicate.
    let weak = parse_predicate(&comp, "x1@0 > 1 && x3@2 <= 3")?;
    let conj = weak
        .to_conjunctive()
        .expect("conjunction of single-process clauses");
    let slice = slice_conjunctive(&comp, &conj);

    let stats = SliceStats::gather(&comp, &slice, None);
    println!("slice: {stats}");
    println!("meta-events:");
    for (i, meta) in slice.meta_events().iter().enumerate() {
        let names: Vec<String> = meta.iter().map(|&e| comp.describe_event(e)).collect();
        println!("  M{i}: {{{}}}", names.join(", "));
    }

    // The full predicate, including the non-regular arithmetic conjunct.
    let full = parse_predicate(&comp, "x1@0 * x2@1 + x3@2 < 5 && x1@0 > 1 && x3@2 <= 3")?;
    let outcome = detect_bfs(&slice, &comp, &full, &Limits::none());
    println!("slice search: {outcome}");

    match &outcome.found {
        Some(cut) => {
            let st = GlobalState::new(&comp, cut);
            println!(
                "witness cut {cut}: x1 = {}, x2 = {}, x3 = {}",
                st.get_named(comp.process(0), "x1").unwrap(),
                st.get_named(comp.process(1), "x2").unwrap(),
                st.get_named(comp.process(2), "x3").unwrap(),
            );
        }
        None => println!("predicate does not hold anywhere"),
    }

    // Contrast: searching the raw computation examines more cuts.
    let direct = detect_bfs(&comp, &comp, &full, &Limits::none());
    println!("direct search: {direct}");
    Ok(())
}
