//! Conditional breakpoints for distributed debugging — the paper's other
//! motivating application: find the earliest global state at which a
//! textual condition holds, and show the per-process frontier to stop at.
//!
//! ```text
//! cargo run --example conditional_breakpoint [-- "<expr>"]
//! ```
//!
//! The expression language writes `var@process`, e.g.
//! `"c@0 - c@2 >= 2 && c@1 < 3"`.

use computation_slicing::computation::test_fixtures::XorShift64;
use computation_slicing::predicates::expr::parse_predicate;
use computation_slicing::{
    detect_bfs, slice_klocal, ComputationBuilder, GlobalState, Limits, Value,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deterministic pseudo-random run of three counting processes with a
    // few synchronizing messages.
    let mut rng = XorShift64::new(12);
    let mut b = ComputationBuilder::new(3);
    let counters: Vec<_> = (0..3)
        .map(|i| b.declare_var(b.process(i), "c", Value::Int(0)))
        .collect();
    let mut values = [0i64; 3];
    let mut pending: Option<(computation_slicing::EventId, usize)> = None;
    for _ in 0..18 {
        let i = rng.index(3);
        values[i] += 1;
        let e = b.step(b.process(i), &[(counters[i], Value::Int(values[i]))]);
        match pending {
            Some((send, from)) if from != i && rng.chance(40, 100) => {
                b.message(send, e)?;
                pending = None;
            }
            None if rng.chance(30, 100) => pending = Some((e, i)),
            _ => {}
        }
    }
    let comp = b.build()?;

    let source = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "c@0 - c@2 >= 2 && c@1 < 3".to_owned());
    println!("breakpoint condition: {source}");

    let pred = parse_predicate(&comp, &source)?;
    // Slice with respect to the condition as a k-local predicate, then
    // search the slice — BFS returns the *earliest* matching global state.
    let Some(klocal) = pred.to_klocal() else {
        return Err("condition reads no variables".into());
    };
    let slice = slice_klocal(&comp, &klocal);
    let outcome = detect_bfs(&slice, &comp, &pred, &Limits::none());

    match &outcome.found {
        Some(cut) => {
            println!(
                "hit after examining {} global state(s)",
                outcome.cuts_explored
            );
            println!("stop each process at:");
            let st = GlobalState::new(&comp, cut);
            for p in comp.processes() {
                println!(
                    "  {p}: event {} (c = {})",
                    comp.describe_event(st.frontier(p)),
                    st.get_named(p, "c").unwrap()
                );
            }
        }
        None => println!("condition never holds in this execution"),
    }
    Ok(())
}
