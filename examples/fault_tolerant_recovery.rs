//! Software fault tolerance end to end: monitor a protocol with slicing,
//! and on detecting a global fault compute a *recovery line* — the latest
//! consistent cut at or below the faulty one at which the invariant still
//! held — i.e. the checkpoint the system should roll back to before taking
//! corrective action.
//!
//! ```text
//! cargo run --release --example fault_tolerant_recovery
//! ```

use computation_slicing::sim::fault::inject_primary_secondary_fault;
use computation_slicing::sim::primary_secondary::{self, PrimarySecondary};
use computation_slicing::sim::{run, SimConfig};
use computation_slicing::{detect_with_slicing, Computation, Cut, GlobalState, Limits, Predicate};

/// The greatest consistent cut ≤ `cut` satisfying `good`, found by a
/// backwards breadth-first search (largest cuts first). Returns `None` if
/// even the initial cut violates the invariant.
fn recovery_line(comp: &Computation, cut: &Cut, good: &dyn Predicate) -> Option<Cut> {
    use std::collections::{HashSet, VecDeque};
    let mut queue: VecDeque<Cut> = VecDeque::new();
    let mut seen: HashSet<Cut> = HashSet::new();
    queue.push_back(cut.clone());
    seen.insert(cut.clone());
    let mut best: Option<Cut> = None;
    while let Some(c) = queue.pop_front() {
        if good.eval(&GlobalState::new(comp, &c)) {
            match &best {
                Some(b) if b.size() >= c.size() => {}
                _ => best = Some(c.clone()),
            }
            continue; // anything below is smaller
        }
        // Retreat one process at a time, keeping consistency.
        for p in comp.processes() {
            if c.count(p) <= 1 {
                continue;
            }
            let mut d = c.clone();
            d.set_count(p, c.count(p) - 1);
            if comp.is_consistent(&d) && seen.insert(d.clone()) {
                queue.push_back(d);
            }
        }
    }
    best
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Record a fault-free run and corrupt it, as the paper's faulty
    //    scenario does.
    let cfg = SimConfig {
        seed: 404,
        max_events_per_process: 14,
        ..SimConfig::default()
    };
    let healthy = run(&mut PrimarySecondary::new(4), &cfg)?;
    let Some((faulty, fault)) = inject_primary_secondary_fault(&healthy, 9) else {
        return Err("no injectable position in this run".into());
    };
    println!(
        "injected fault: {} at {}:{} := {}",
        fault.var_name, fault.process, fault.position, fault.value
    );

    // 2. Monitor: slice for ¬I_ps and search the residue.
    let spec = primary_secondary::violation_spec(&faulty);
    let outcome = detect_with_slicing(&faulty, &spec, &Limits::none());
    let Some(bad_cut) = outcome.search.found.clone() else {
        println!("this fault is masked: no consistent cut violates the invariant");
        return Ok(());
    };
    println!(
        "fault detected at cut {bad_cut} after examining {} of the slice's cuts",
        outcome.search.cuts_explored
    );

    // 3. Corrective action: find the recovery line and report what each
    //    process must roll back.
    let invariant = primary_secondary::invariant(&faulty);
    match recovery_line(&faulty, &bad_cut, &invariant) {
        Some(line) => {
            println!("recovery line: {line}");
            for p in faulty.processes() {
                let undo = bad_cut.count(p) - line.count(p);
                println!(
                    "  {p}: roll back {undo} event(s) to {}",
                    faulty.describe_event(faulty.frontier(&line, p))
                );
            }
            let st = GlobalState::new(&faulty, &line);
            assert!(invariant.eval(&st), "recovery line satisfies the invariant");
        }
        None => println!("no safe state below the fault — full restart required"),
    }
    Ok(())
}
