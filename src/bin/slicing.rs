//! `slicing` — command-line predicate detection over recorded traces.
//!
//! ```text
//! slicing fixture figure1 > run.trace
//! slicing stats   run.trace "x1@0 > 1 && x3@2 <= 3"
//! slicing detect  run.trace "x1@0 > 1 && x3@2 <= 3" --engine slice
//! slicing modality run.trace "x1@0 > 1" --mode definitely
//! slicing cuts    run.trace --limit 40
//! slicing dot     run.trace "x1@0 > 1 && x3@2 <= 3" | dot -Tsvg > slice.svg
//! ```
//!
//! Traces use the line format of `slicing_computation::trace`; predicates
//! use the `var@process` expression language.

use std::process::ExitCode;

use computation_slicing::computation::lattice::{count_cuts, for_each_cut};
use computation_slicing::computation::test_fixtures;
use computation_slicing::computation::trace::from_text;
use computation_slicing::predicates::expr::parse_predicate;
use computation_slicing::recovery::RecoveryOutcome;
use computation_slicing::sim::{self, Protocol};
use computation_slicing::slicer::dot::{computation_to_dot, slice_to_dot};
use computation_slicing::slicer::{compile_predicate, SliceStats};
use computation_slicing::{
    definitely, detect, detect_bfs, detect_dfs, detect_pom, detect_reverse_search,
    detect_with_slicing, recover, Computation, GlobalState, Limits, PredicateSpec, RecoverConfig,
    RecoveryVerdict, ResilientConfig,
};

fn usage() -> &'static str {
    "usage:
  slicing [--log off|error|warn|info|debug|trace] [--report <path>] <command> ...

  slicing stats   <trace> <predicate>
  slicing detect  <trace> <predicate>
                  [--engine slice|bfs|dfs|pom|reverse|parallel|hybrid|lean|lean-parallel]
                  [--max-cuts N] [--max-live-cuts N] [--cap-kb N] [--threads N] [--timeout-ms N]
  slicing modality <trace> <predicate> --mode possibly|definitely|invariant|controllable
  slicing monitor <trace> <predicate> [--check-every N]
                  [--metrics <path>] [--metrics-every N]
                  [--gc-lag N] [--gc-every N]
                  [--checkpoint <path>] [--checkpoint-every N]
                  [--resume <path>]
  slicing profile <trace> <predicate>
                  [--engine slice|bfs|dfs|pom|reverse|parallel|hybrid|lean|lean-parallel]
                  [--threads N] [--folded] [--out <path>]
  slicing bench-diff <baseline.json> <current.json> [--threshold T]
  slicing validate <file>...
  slicing recover --protocol ps|db [--procs N] [--events N] [--seed S]
                  [--fault corrupt|drop-message|duplicate-message|delay-delivery|crash-stop|burst|none]
                  [--attempts N] [--reinject N] [--no-backoff] [--timeout-ms N]
  slicing show    <trace> [<cut as comma list, e.g. 2,2,1>]
  slicing cuts    <trace> [--limit N]
  slicing dot     <trace> [<predicate>]
  slicing fixture figure1|grid40

--log mirrors the SLICING_LOG environment variable (the flag wins) and
prints leveled span/counter traces to stderr. --report writes the detect
outcome as one `slicing.run-report/v1` JSON object to <path> (`-` for
stdout); on `recover` it writes the `slicing.recovery-report/v1` outcome,
on `monitor` the `slicing.monitor-report/v1` stream summary, and on
`bench-diff` the `slicing.bench-diff/v1` verdict document.
`recover` simulates a protocol run, injects the chosen fault, and drives
the full detect → recovery line → rollback → replay loop. `monitor`
replays the trace through the incremental online monitor (amortized O(1)
per check), reporting every distinct alarm cut as it appears; the
predicate must be a conjunction of local clauses. `--metrics` streams
`slicing.metrics/v1` delta snapshots (one JSONL line every N observed
events, default 100) to <path> while the monitor runs. `--gc-lag` /
`--gc-every` enable causal-stability garbage collection (compact
history more than N events behind the stable frontier, attempted every
N observations; defaults 128/1024 when either flag is given).
`--checkpoint` writes a versioned `slicing.checkpoint/v1` snapshot of
the monitor to <path> — atomically, every `--checkpoint-every` N events
and once at end of stream. `--resume` restores a monitor from such a
snapshot and skips the prefix of the trace it already consumed; the
GC configuration travels inside the checkpoint. All `--*-every` counts
must be positive.
`profile` runs a detection with the span profiler installed and emits
one `slicing.profile/v1` document: the merged span tree with wall time
and per-span counter attribution (per-span counters sum to the flat
totals). `--folded` prints folded-stack text for flamegraph tooling
instead; `--out` writes the JSON document to a file in either mode.
`bench-diff` compares two bench JSON documents of the same schema
(deterministic counters only — wall-clock fields are never gated) and
exits nonzero when any gated counter drifts more than T (default 0.25)
or any exact field changes. `validate` parses each file (JSON or JSONL)
and checks every document against the known `slicing.*/v1` schemas.

<trace> is a file path or `-` for stdin; predicates use the expression
language, e.g. \"x1@0 > 1 && x3@2 <= 3\"."
}

/// Parses a strictly positive integer flag value; zero and garbage both
/// produce a typed usage error naming the flag.
fn parse_positive(flag: &str, value: &str) -> Result<u64, String> {
    let n: u64 = value
        .parse()
        .map_err(|e| format!("{flag}: {e}\n\n{}", usage()))?;
    if n == 0 {
        return Err(format!("{flag} must be positive (got 0)\n\n{}", usage()));
    }
    Ok(n)
}

fn load_trace(path: &str) -> Result<Computation, String> {
    let text = if path == "-" {
        use std::io::Read;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
    };
    from_text(&text).map_err(|e| e.to_string())
}

/// Strips the global `--log`/`--report` flags (valid before or after the
/// subcommand), installs the stderr logger, and returns the remaining args
/// plus the report path.
fn global_flags(raw: Vec<String>) -> Result<(Vec<String>, Option<String>), String> {
    let mut args = Vec::with_capacity(raw.len());
    let mut log_level = None;
    let mut report = None;
    let mut it = raw.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--log" => {
                let value = it.next().ok_or("--log needs a level")?;
                log_level =
                    Some(slicing_observe::Level::parse(&value).ok_or_else(|| {
                        format!("unknown log level {value:?} (try debug or trace)")
                    })?);
            }
            "--report" => report = Some(it.next().ok_or("--report needs a path")?),
            _ => args.push(arg),
        }
    }
    match log_level {
        Some(level) => slicing_observe::install(std::sync::Arc::new(
            slicing_observe::StderrLogger::new(level),
        )),
        None => {
            if let Some(logger) = slicing_observe::StderrLogger::from_env() {
                slicing_observe::install(std::sync::Arc::new(logger));
            }
        }
    }
    Ok((args, report))
}

fn run() -> Result<(), String> {
    let (args, report) = global_flags(std::env::args().skip(1).collect())?;
    let Some(command) = args.first() else {
        return Err(usage().to_owned());
    };
    if report.is_some()
        && !matches!(
            command.as_str(),
            "detect" | "recover" | "monitor" | "bench-diff"
        )
    {
        eprintln!(
            "note: --report only applies to `slicing detect`, `slicing recover`, \
             `slicing monitor`, and `slicing bench-diff`; ignoring"
        );
    }

    match command.as_str() {
        "fixture" => match args.get(1).map(String::as_str) {
            Some("figure1") => {
                print!(
                    "{}",
                    computation_slicing::computation::trace::to_text(&test_fixtures::figure1())
                );
                Ok(())
            }
            Some("grid40") => {
                print!(
                    "{}",
                    computation_slicing::computation::trace::to_text(&grid40_fixture())
                );
                Ok(())
            }
            other => Err(format!(
                "unknown fixture {other:?}; available: figure1, grid40"
            )),
        },
        "stats" => {
            let (trace, pred_src) = two_args(&args)?;
            let comp = load_trace(trace)?;
            let pred = parse_predicate(&comp, pred_src).map_err(|e| e.to_string())?;
            let spec = compile_predicate(&comp, &pred);
            let slice = spec.slice(&comp);
            let stats = SliceStats::gather(&comp, &slice, Some(5_000_000));
            println!("{stats}");
            println!("meta-events:");
            for (i, meta) in slice.meta_events().iter().enumerate() {
                let names: Vec<String> = meta.iter().map(|&e| comp.describe_event(e)).collect();
                println!("  M{i}: {{{}}}", names.join(", "));
            }
            Ok(())
        }
        "detect" => {
            let (trace, pred_src) = two_args(&args)?;
            let mut engine = "slice".to_owned();
            let mut limits = Limits::none();
            let mut threads = 4usize;
            let mut it = args[3..].iter();
            while let Some(flag) = it.next() {
                let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
                match flag.as_str() {
                    "--engine" => engine = value.clone(),
                    "--max-cuts" => {
                        limits.max_cuts = Some(value.parse().map_err(|e| format!("{e}"))?)
                    }
                    "--max-live-cuts" => {
                        let n: u64 = value.parse().map_err(|e| format!("{e}"))?;
                        limits = limits.with_live_cuts(n);
                    }
                    "--cap-kb" => {
                        let kb: u64 = value.parse().map_err(|e| format!("{e}"))?;
                        limits.max_bytes = Some(kb * 1024);
                    }
                    "--threads" => threads = value.parse().map_err(|e| format!("{e}"))?,
                    "--timeout-ms" => {
                        let ms: u64 = value.parse().map_err(|e| format!("{e}"))?;
                        limits.max_elapsed = Some(std::time::Duration::from_millis(ms));
                    }
                    other => return Err(format!("unknown flag {other}\n\n{}", usage())),
                }
            }
            let comp = load_trace(trace)?;
            let pred = parse_predicate(&comp, pred_src).map_err(|e| e.to_string())?;

            let outcome = match engine.as_str() {
                "slice" => {
                    let spec = compile_predicate(&comp, &pred);
                    let r = detect_with_slicing(&comp, &spec, &limits);
                    println!(
                        "slicing: {} (slice {} bytes, computed in {:?})",
                        r.search, r.slice_bytes, r.slicing_elapsed
                    );
                    r.search
                }
                "bfs" => detect_bfs(&comp, &comp, &pred, &limits),
                "dfs" => detect_dfs(&comp, &comp, &pred, &limits),
                "pom" => detect_pom(&comp, &pred, &limits),
                "reverse" => detect_reverse_search(&comp, &pred, &limits),
                "parallel" => detect::detect_bfs_parallel(&comp, &comp, &pred, &limits, threads),
                "lean" => detect::detect_lean(&comp, &comp, &pred, &limits),
                "lean-parallel" => {
                    detect::detect_lean_parallel(&comp, &comp, &pred, &limits, threads)
                }
                "hybrid" => {
                    let spec = compile_predicate(&comp, &pred);
                    let budget = detect::suggested_pom_budget(&comp, 4);
                    let h = detect::detect_hybrid(&comp, &spec, budget, &limits);
                    println!(
                        "hybrid: answered by {:?} (POM budget {budget} bytes)",
                        h.phase
                    );
                    match (h.phase, h.slicing) {
                        (detect::HybridPhase::Slicing, Some(s)) => s.search,
                        _ => h.pom,
                    }
                }
                other => return Err(format!("unknown engine {other}\n\n{}", usage())),
            };
            if engine != "slice" {
                println!("{engine}: {outcome}");
            }
            if let Some(path) = &report {
                // A real slicing.run-report/v1 document (the same shape
                // the bench binaries emit), so `slicing validate` and
                // bench tooling can consume it.
                let mut run =
                    slicing_observe::RunReport::new(workload_name(trace), engine.as_str());
                run.procs = Some(comp.num_processes() as u64);
                run.events = Some(comp.num_events() as u64);
                run.detected = Some(outcome.detected());
                run.witness = outcome.found.as_ref().map(|cut| {
                    (0..cut.num_processes())
                        .map(|p| u64::from(cut.count(computation_slicing::ProcessId::new(p))))
                        .collect()
                });
                run.aborted = outcome.aborted.map(|r| r.code().to_owned());
                run.cuts_explored = Some(outcome.cuts_explored);
                run.max_stored_cuts = Some(outcome.max_stored_cuts);
                run.peak_bytes = Some(outcome.peak_bytes);
                run.elapsed_secs = Some(outcome.elapsed.as_secs_f64());
                for (name, d) in &outcome.phases {
                    run = run.phase(name.as_str(), d.as_secs_f64());
                }
                let json = run.to_json();
                if path == "-" {
                    println!("{json}");
                } else {
                    std::fs::write(path, format!("{json}\n"))
                        .map_err(|e| format!("writing {path}: {e}"))?;
                }
            }
            match &outcome.found {
                Some(cut) => {
                    println!("witness cut: {cut}");
                    let st = GlobalState::new(&comp, cut);
                    for p in comp.processes() {
                        let vals: Vec<String> = comp
                            .var_names(p)
                            .map(|n| format!("{n}={}", st.get_named(p, n).expect("listed")))
                            .collect();
                        println!(
                            "  {p} @ {}: {}",
                            comp.describe_event(st.frontier(p)),
                            vals.join(", ")
                        );
                    }
                }
                None if outcome.completed() => println!("predicate does not hold anywhere"),
                None => println!("undecided: search hit a resource limit"),
            }
            Ok(())
        }
        "recover" => {
            let mut protocol = None;
            let mut procs = 4usize;
            let mut events = 12u32;
            let mut seed = 1u64;
            let mut fault = "corrupt".to_owned();
            let mut attempts = 3u32;
            let mut reinject = 0u32;
            let mut backoff = true;
            let mut timeout_ms = None;
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                if flag == "--no-backoff" {
                    backoff = false;
                    continue;
                }
                let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
                match flag.as_str() {
                    "--protocol" => protocol = Some(value.clone()),
                    "--procs" => procs = value.parse().map_err(|e| format!("{e}"))?,
                    "--events" => events = value.parse().map_err(|e| format!("{e}"))?,
                    "--seed" => seed = value.parse().map_err(|e| format!("{e}"))?,
                    "--fault" => fault = value.clone(),
                    "--attempts" => attempts = value.parse().map_err(|e| format!("{e}"))?,
                    "--reinject" => reinject = value.parse().map_err(|e| format!("{e}"))?,
                    "--timeout-ms" => timeout_ms = Some(value.parse().map_err(|e| format!("{e}"))?),
                    other => return Err(format!("unknown flag {other}\n\n{}", usage())),
                }
            }
            let protocol =
                protocol.ok_or_else(|| format!("recover needs --protocol\n\n{}", usage()))?;

            let mut cfg = RecoverConfig {
                sim: sim::SimConfig {
                    seed,
                    max_events_per_process: events,
                    ..sim::SimConfig::default()
                },
                ..RecoverConfig::default()
            };
            cfg.retry.max_attempts = attempts;
            cfg.retry.backoff = backoff;
            cfg.retry.reinject_attempts = reinject;
            if let Some(ms) = timeout_ms {
                cfg.detect = ResilientConfig::default()
                    .with_total_deadline(std::time::Duration::from_millis(ms));
            }

            let outcome = match protocol.as_str() {
                "ps" => recover_protocol(
                    || sim::primary_secondary::PrimarySecondary::new(procs),
                    sim::primary_secondary::violation_spec,
                    &fault,
                    &mut cfg,
                )?,
                "db" => recover_protocol(
                    || sim::database::DatabasePartitioning::new(procs),
                    sim::database::violation_spec,
                    &fault,
                    &mut cfg,
                )?,
                other => return Err(format!("unknown protocol {other:?} (try ps or db)")),
            };

            println!("verdict: {}", outcome.verdict);
            if let Some(engine) = outcome.engine {
                println!(
                    "detected by: {engine} ({} engine fallback(s))",
                    outcome.engine_fallbacks
                );
            }
            if let Some(witness) = &outcome.witness {
                println!("witness cut: {witness}");
            }
            if let Some(line) = &outcome.line {
                let method = outcome.line_method.map_or("?", |m| m.name());
                println!("recovery line: {line} (method {method})");
            }
            for (i, a) in outcome.attempts.iter().enumerate() {
                println!(
                    "attempt {}: seed {} deliver-weight {}{}{}",
                    i + 1,
                    a.seed,
                    a.deliver_weight,
                    if a.reinjected { " reinjected" } else { "" },
                    if a.violation_found {
                        " -> violation recurred"
                    } else {
                        " -> clean"
                    },
                );
            }
            if let Some(path) = &report {
                let json = outcome.to_json();
                if path == "-" {
                    println!("{json}");
                } else {
                    std::fs::write(path, format!("{json}\n"))
                        .map_err(|e| format!("writing {path}: {e}"))?;
                }
            }
            match outcome.verdict {
                RecoveryVerdict::CleanAlready | RecoveryVerdict::Recovered => Ok(()),
                other => Err(format!("recovery failed: {other}")),
            }
        }
        "monitor" => {
            let (trace, pred_src) = two_args(&args)?;
            let mut check_every: u64 = 1;
            let mut metrics_path: Option<String> = None;
            let mut metrics_every: u64 = 100;
            let mut checkpoint_path: Option<String> = None;
            let mut checkpoint_every: Option<u64> = None;
            let mut resume_path: Option<String> = None;
            let mut gc_every: Option<u64> = None;
            let mut gc_lag: Option<u32> = None;
            let mut it = args[3..].iter();
            while let Some(flag) = it.next() {
                let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
                match flag.as_str() {
                    "--check-every" => check_every = parse_positive(flag, value)?,
                    "--metrics" => metrics_path = Some(value.clone()),
                    "--metrics-every" => metrics_every = parse_positive(flag, value)?,
                    "--checkpoint" => checkpoint_path = Some(value.clone()),
                    "--checkpoint-every" => checkpoint_every = Some(parse_positive(flag, value)?),
                    "--resume" => resume_path = Some(value.clone()),
                    "--gc-every" => gc_every = Some(parse_positive(flag, value)?),
                    "--gc-lag" => {
                        gc_lag = Some(
                            u32::try_from(parse_positive(flag, value)?)
                                .map_err(|_| format!("{flag}: value exceeds u32 range"))?,
                        )
                    }
                    other => return Err(format!("unknown flag {other}\n\n{}", usage())),
                }
            }
            if checkpoint_every.is_some() && checkpoint_path.is_none() {
                return Err(format!(
                    "--checkpoint-every needs --checkpoint <path>\n\n{}",
                    usage()
                ));
            }
            if resume_path.is_some() && (gc_every.is_some() || gc_lag.is_some()) {
                return Err("GC configuration travels inside the checkpoint; drop \
                     --gc-every/--gc-lag when using --resume"
                    .to_owned());
            }

            // Live telemetry: a scoped snapshotter sees every counter,
            // gauge, and sample the monitor emits on this thread and
            // turns them into periodic `slicing.metrics/v1` delta lines.
            // Checkpointing needs the snapshotter even without --metrics
            // so the stream cursor can be persisted.
            let snapshotter = (metrics_path.is_some() || checkpoint_path.is_some())
                .then(|| std::sync::Arc::new(slicing_observe::MetricsSnapshotter::new()));
            let mut metrics_out = match &metrics_path {
                Some(path) => Some(std::io::BufWriter::new(
                    std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?,
                )),
                None => None,
            };
            let _metrics_guard = snapshotter
                .as_ref()
                .map(|s| slicing_observe::scoped(s.clone()));
            let comp = load_trace(trace)?;
            let pred = parse_predicate(&comp, pred_src).map_err(|e| e.to_string())?;
            let conj = pred.to_conjunctive().ok_or_else(|| {
                "monitor needs a conjunctive predicate (local clauses joined by &&)".to_owned()
            })?;

            // Fresh start, or restore a checkpointed monitor and skip the
            // prefix of the trace it already consumed.
            let (mut m, skip) = match &resume_path {
                Some(path) => {
                    let (state, seq) =
                        computation_slicing::recovery::load_checkpoint(std::path::Path::new(path))
                            .map_err(|e| e.to_string())?;
                    if state.slicer.num_processes != comp.num_processes() {
                        return Err(format!(
                            "{path}: checkpoint has {} processes but the trace has {} — \
                             wrong trace?",
                            state.slicer.num_processes,
                            comp.num_processes()
                        ));
                    }
                    if let Some(s) = &snapshotter {
                        s.resume_from(seq);
                    }
                    let m = computation_slicing::recovery::resume_monitor(
                        &state,
                        conj.clauses().to_vec(),
                    )
                    .map_err(|e| format!("{path}: {e}"))?;
                    println!(
                        "resumed from {path}: {} events already consumed",
                        state.stats.events
                    );
                    (m, state.stats.events)
                }
                None => {
                    let mut m =
                        computation_slicing::detect::OnlineMonitor::new(comp.num_processes());
                    if gc_every.is_some() || gc_lag.is_some() {
                        m = m.with_gc(computation_slicing::detect::GcConfig {
                            lag: gc_lag.unwrap_or(128),
                            every: gc_every.unwrap_or(1024),
                        });
                    }
                    (m, 0)
                }
            };

            // Mirror the trace's variables process by process, in
            // declaration order, so the recorded `VarRef`s line up with
            // the monitor's own builder. On resume the declarations come
            // from the checkpoint and are looked up instead.
            let mut mon_vars: Vec<Vec<computation_slicing::VarRef>> = Vec::new();
            for i in 0..comp.num_processes() {
                let p = comp.process(i);
                let names: Vec<String> = comp.var_names(p).map(str::to_owned).collect();
                let mut row = Vec::with_capacity(names.len());
                for name in &names {
                    let orig = comp.var(p, name).expect("listed variable");
                    let mv = if resume_path.is_some() {
                        m.var(i, name).ok_or_else(|| {
                            format!("checkpoint does not declare {name}@{i} — wrong trace?")
                        })?
                    } else {
                        m.declare_var(i, name, comp.value_at(orig, 0))
                            .map_err(|e| e.to_string())?
                    };
                    row.push(mv);
                }
                mon_vars.push(row);
            }
            if resume_path.is_none() {
                for clause in conj.clauses() {
                    m.watch_clause(clause.clone()).map_err(|e| e.to_string())?;
                }
            }

            let write_ckpt =
                |m: &computation_slicing::detect::OnlineMonitor,
                 snapshotter: &Option<std::sync::Arc<slicing_observe::MetricsSnapshotter>>|
                 -> Result<(), String> {
                    if let Some(path) = &checkpoint_path {
                        let seq = snapshotter.as_ref().map_or(0, |s| s.seq());
                        computation_slicing::recovery::write_checkpoint(
                            std::path::Path::new(path),
                            m,
                            seq,
                        )
                        .map_err(|e| format!("writing {path}: {e}"))?;
                    }
                    Ok(())
                };

            // Stream the recorded events in order; a message is declared
            // as soon as both endpoints have been replayed. A mapped
            // `None` means the event was compacted away by stability GC
            // before being needed — possible only for a stale endpoint,
            // reported exactly like a rejected late message.
            let mut mapped: std::collections::HashMap<
                computation_slicing::EventId,
                Option<computation_slicing::EventId>,
            > = std::collections::HashMap::new();
            let mut pending: Vec<computation_slicing::computation::Message> = Vec::new();
            let mut observed = 0u64;
            let mut alarms: Vec<computation_slicing::Cut> = Vec::new();
            let check = |m: &mut computation_slicing::detect::OnlineMonitor,
                         alarms: &mut Vec<computation_slicing::Cut>,
                         observed: u64|
             -> Result<(), String> {
                if let Some(cut) = m.check().map_err(|e| e.to_string())? {
                    println!("alarm after {observed} events: fault possible at cut {cut}");
                    alarms.push(cut);
                }
                Ok(())
            };
            for e in comp.events() {
                if comp.is_initial(e) {
                    continue;
                }
                let p = comp.process_of(e);
                let pos = comp.position_of(e);
                observed += 1;
                if observed <= skip {
                    // Consumed before the checkpoint: translate the trace
                    // event to its live handle for late-message delivery.
                    // Messages among skipped events are already part of
                    // the checkpointed state and are not redelivered.
                    mapped.insert(e, m.event_at(p.as_usize(), pos));
                    continue;
                }
                let writes: Vec<_> = mon_vars[p.as_usize()]
                    .iter()
                    .enumerate()
                    .map(|(idx, &mv)| {
                        let name = comp.var_names(p).nth(idx).expect("listed variable");
                        let orig = comp.var(p, name).expect("listed variable");
                        (mv, comp.value_at(orig, pos))
                    })
                    .collect();
                let ne = m
                    .observe(p.as_usize(), &writes)
                    .map_err(|e| e.to_string())?;
                mapped.insert(e, Some(ne));
                pending.extend(comp.messages_into(e));
                pending.retain(|msg| match (mapped.get(&msg.send), mapped.get(&msg.recv)) {
                    (Some(&s), Some(&r)) => {
                        match (s, r) {
                            (Some(s), Some(r)) => {
                                if let Err(err) = m.message(s, r) {
                                    eprintln!("warning: skipped message {s} -> {r}: {err}");
                                }
                            }
                            _ => eprintln!("warning: skipped message into history compacted by GC"),
                        }
                        false
                    }
                    _ => true,
                });
                if observed.is_multiple_of(check_every) {
                    check(&mut m, &mut alarms, observed)?;
                }
                if observed.is_multiple_of(metrics_every) {
                    if let (Some(s), Some(out)) = (&snapshotter, metrics_out.as_mut()) {
                        s.write_snapshot(out, observed)
                            .map_err(|e| format!("writing metrics: {e}"))?;
                    }
                }
                if let Some(every) = checkpoint_every {
                    if observed.is_multiple_of(every) {
                        write_ckpt(&m, &snapshotter)?;
                    }
                }
            }
            if !observed.is_multiple_of(check_every) {
                check(&mut m, &mut alarms, observed)?;
            }
            // A final checkpoint so the artifact always reflects the full
            // stream, whatever the cadence.
            write_ckpt(&m, &snapshotter)?;
            if let (Some(s), Some(out)) = (&snapshotter, metrics_out.as_mut()) {
                // Final snapshot so the stream always covers the tail.
                if !observed.is_multiple_of(metrics_every) || observed == 0 {
                    s.write_snapshot(out, observed)
                        .map_err(|e| format!("writing metrics: {e}"))?;
                }
                use std::io::Write;
                out.flush().map_err(|e| format!("writing metrics: {e}"))?;
            }

            let stats = m.stats();
            println!(
                "monitored {} events, {} messages: {} distinct alarm cut(s)",
                stats.events, stats.messages, stats.alarms
            );
            println!(
                "check work: {} probes over {} checks ({} milliprobe/event), peak {} queued candidates",
                stats.check_cost,
                stats.checks,
                stats.check_cost * 1000 / stats.events.max(1),
                stats.peak_candidates
            );
            if let Some(path) = &report {
                let json = slicing_observe::json::JsonObject::new()
                    .str("schema", slicing_observe::schema::MONITOR_REPORT)
                    .u64("events", stats.events)
                    .u64("messages", stats.messages)
                    .u64("checks", stats.checks)
                    .u64("alarms", stats.alarms)
                    .u64("check_cost", stats.check_cost)
                    .u64("delta_cuts", stats.delta_cuts)
                    .u64("peak_candidates", stats.peak_candidates)
                    .raw(
                        "alarm_cuts",
                        &alarms
                            .iter()
                            .fold(slicing_observe::json::JsonArray::new(), |arr, c| {
                                arr.push_str(&c.to_string())
                            })
                            .finish(),
                    )
                    .finish();
                if path == "-" {
                    println!("{json}");
                } else {
                    std::fs::write(path, format!("{json}\n"))
                        .map_err(|e| format!("writing {path}: {e}"))?;
                }
            }
            Ok(())
        }
        "profile" => {
            let (trace, pred_src) = two_args(&args)?;
            let mut engine = "slice".to_owned();
            let mut threads = 4usize;
            let mut folded = false;
            let mut out = None;
            let mut it = args[3..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--folded" => folded = true,
                    "--engine" => {
                        engine = it.next().ok_or("--engine needs a value")?.clone();
                    }
                    "--threads" => {
                        threads = it
                            .next()
                            .ok_or("--threads needs a value")?
                            .parse()
                            .map_err(|e| format!("{e}"))?;
                    }
                    "--out" => out = Some(it.next().ok_or("--out needs a path")?.clone()),
                    other => return Err(format!("unknown flag {other}\n\n{}", usage())),
                }
            }
            let comp = load_trace(trace)?;
            let pred = parse_predicate(&comp, pred_src).map_err(|e| e.to_string())?;

            // The profiler is the process-wide recorder for the run, so
            // worker threads of the parallel engines report too. It
            // replaces any --log stderr logger for the profiled region.
            let profiler = std::sync::Arc::new(slicing_observe::Profiler::new());
            slicing_observe::install(profiler.clone());
            let outcome = run_engine(&comp, &pred, &engine, &Limits::none(), threads);
            slicing_observe::uninstall();
            let outcome = outcome?;

            let mut profile = profiler.report();
            profile.workload = workload_name(trace);
            profile.predicate = pred_src.to_owned();
            profile.engine = engine;
            let json = profile.to_json();
            if let Some(path) = &out {
                std::fs::write(path, format!("{json}\n"))
                    .map_err(|e| format!("writing {path}: {e}"))?;
            }
            if folded {
                print!("{}", profile.to_folded());
            } else if out.is_none() {
                println!("{json}");
            }
            eprintln!("profiled: {outcome}");
            Ok(())
        }
        "bench-diff" => {
            let (base_path, cur_path) = two_args(&args)?;
            let mut threshold = slicing_observe::diff::DEFAULT_THRESHOLD;
            let mut it = args[3..].iter();
            while let Some(flag) = it.next() {
                let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
                match flag.as_str() {
                    "--threshold" => threshold = value.parse().map_err(|e| format!("{e}"))?,
                    other => return Err(format!("unknown flag {other}\n\n{}", usage())),
                }
            }
            let baseline = load_json_doc(base_path)?;
            let current = load_json_doc(cur_path)?;
            let verdict = slicing_observe::diff::diff(&baseline, &current, threshold)?;
            print!("{}", verdict.render_text());
            if let Some(path) = &report {
                let json = verdict.to_json();
                if path == "-" {
                    println!("{json}");
                } else {
                    std::fs::write(path, format!("{json}\n"))
                        .map_err(|e| format!("writing {path}: {e}"))?;
                }
            }
            if verdict.pass() {
                Ok(())
            } else {
                Err(format!(
                    "bench drift: {} check(s) over threshold {threshold}",
                    verdict.failures().len()
                ))
            }
        }
        "validate" => {
            let paths = &args[1..];
            if paths.is_empty() {
                return Err(format!("validate needs at least one file\n\n{}", usage()));
            }
            let mut problems = 0u64;
            for path in paths {
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
                let mut schemas: Vec<&'static str> = Vec::new();
                // A file is either one JSON document (possibly pretty,
                // spanning lines) or JSONL; try whole-file first.
                let docs: Vec<(usize, String)> = match slicing_observe::json::parse(&text) {
                    Ok(_) => vec![(1, text.clone())],
                    Err(_) => text
                        .lines()
                        .enumerate()
                        .filter(|(_, l)| !l.trim().is_empty())
                        .map(|(i, l)| (i + 1, l.to_owned()))
                        .collect(),
                };
                if docs.is_empty() {
                    eprintln!("{path}: empty file");
                    problems += 1;
                    continue;
                }
                let mut file_problems = 0u64;
                for (line, doc_text) in &docs {
                    match slicing_observe::json::parse(doc_text) {
                        Ok(doc) => match slicing_observe::schema::validate(&doc) {
                            Ok(name) => schemas.push(name),
                            Err(e) => {
                                eprintln!("{path}:{line}: {e}");
                                file_problems += 1;
                            }
                        },
                        Err(e) => {
                            eprintln!("{path}:{line}: {e}");
                            file_problems += 1;
                        }
                    }
                }
                problems += file_problems;
                if file_problems == 0 {
                    schemas.sort_unstable();
                    schemas.dedup();
                    println!(
                        "{path}: {} document(s) ok ({})",
                        docs.len(),
                        schemas.join(", ")
                    );
                }
            }
            if problems == 0 {
                Ok(())
            } else {
                Err(format!("validation failed: {problems} problem(s)"))
            }
        }
        "modality" => {
            let (trace, pred_src) = two_args(&args)?;
            let mode = match (args.get(3).map(String::as_str), args.get(4)) {
                (Some("--mode"), Some(m)) => m.clone(),
                _ => return Err(format!("modality needs --mode\n\n{}", usage())),
            };
            let comp = load_trace(trace)?;
            let pred = parse_predicate(&comp, pred_src).map_err(|e| e.to_string())?;
            let limits = Limits::none();
            let verdict = match mode.as_str() {
                "possibly" => detect_bfs(&comp, &comp, &pred, &limits).detected(),
                "definitely" => definitely(&comp, &pred, &limits),
                "invariant" => detect::invariant(&comp, &pred, &limits),
                "controllable" => detect::controllable(&comp, &pred, &limits),
                other => return Err(format!("unknown mode {other}\n\n{}", usage())),
            };
            println!("{mode}: {verdict}");
            Ok(())
        }
        "show" => {
            let trace = args.get(1).ok_or_else(|| usage().to_owned())?;
            let comp = load_trace(trace)?;
            let cut = match args.get(2) {
                Some(spec) => {
                    let counts: Result<Vec<u32>, _> =
                        spec.split(',').map(|t| t.trim().parse()).collect();
                    let cut = computation_slicing::Cut::from(
                        counts.map_err(|e| format!("invalid cut: {e}"))?,
                    );
                    if !comp.is_consistent(&cut) {
                        return Err(format!("{cut} is not a consistent cut of this trace"));
                    }
                    Some(cut)
                }
                None => None,
            };
            print!(
                "{}",
                computation_slicing::computation::render::render_space_time(&comp, cut.as_ref())
            );
            Ok(())
        }
        "cuts" => {
            let trace = args.get(1).ok_or_else(|| usage().to_owned())?;
            let mut limit = 100u64;
            if let (Some(flag), Some(value)) = (args.get(2), args.get(3)) {
                if flag == "--limit" {
                    limit = value.parse().map_err(|e| format!("{e}"))?;
                }
            }
            let comp = load_trace(trace)?;
            let mut shown = 0u64;
            for_each_cut(&comp, |cut| {
                println!("{cut}");
                shown += 1;
                shown < limit
            });
            let total = count_cuts(&comp, Some(5_000_000));
            println!(
                "# shown {shown} of {}{}",
                total.value(),
                if total.is_exact() { "" } else { "+" }
            );
            Ok(())
        }
        "dot" => {
            let trace = args.get(1).ok_or_else(|| usage().to_owned())?;
            let comp = load_trace(trace)?;
            match args.get(2) {
                Some(pred_src) => {
                    let pred = parse_predicate(&comp, pred_src).map_err(|e| e.to_string())?;
                    let spec = compile_predicate(&comp, &pred);
                    let slice = spec.slice(&comp);
                    print!("{}", slice_to_dot(&slice));
                }
                None => print!("{}", computation_to_dot(&comp)),
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    }
}

/// Runs the protocol clean, injects the requested fault kind (scanning a
/// few seeds for an injectable site), and drives the recovery loop.
fn recover_protocol<P: Protocol>(
    mut make: impl FnMut() -> P,
    spec_of: fn(&Computation) -> PredicateSpec,
    fault: &str,
    cfg: &mut RecoverConfig,
) -> Result<RecoveryOutcome, String> {
    let clean = sim::run(&mut make(), &cfg.sim).map_err(|e| e.to_string())?;
    let subject = if fault == "none" {
        clean
    } else {
        let plan = (0..16)
            .find_map(|offset| sim::sample_fault_plan(&clean, fault, cfg.sim.seed + offset))
            .ok_or_else(|| {
                format!("no injectable {fault:?} fault in this run (try another --seed)")
            })?;
        let faulty = sim::inject_plan(&clean, &plan).map_err(String::from)?;
        if cfg.retry.reinject_attempts > 0 {
            cfg.reinject = Some(plan);
        }
        faulty
    };
    Ok(recover(make, spec_of, &subject, cfg))
}

/// Runs one detection engine by name, silently (no per-engine printing);
/// shared by `slicing profile`.
fn run_engine(
    comp: &Computation,
    pred: &computation_slicing::predicates::expr::ExprPredicate,
    engine: &str,
    limits: &Limits,
    threads: usize,
) -> Result<computation_slicing::Detection, String> {
    Ok(match engine {
        "slice" => {
            let spec = compile_predicate(comp, pred);
            detect_with_slicing(comp, &spec, limits).search
        }
        "bfs" => detect_bfs(comp, comp, pred, limits),
        "dfs" => detect_dfs(comp, comp, pred, limits),
        "pom" => detect_pom(comp, pred, limits),
        "reverse" => detect_reverse_search(comp, pred, limits),
        "parallel" => detect::detect_bfs_parallel(comp, comp, pred, limits, threads),
        "lean" => detect::detect_lean(comp, comp, pred, limits),
        "lean-parallel" => detect::detect_lean_parallel(comp, comp, pred, limits, threads),
        "hybrid" => {
            let spec = compile_predicate(comp, pred);
            let budget = detect::suggested_pom_budget(comp, 4);
            let h = detect::detect_hybrid(comp, &spec, budget, limits);
            match (h.phase, h.slicing) {
                (detect::HybridPhase::Slicing, Some(s)) => s.search,
                _ => h.pom,
            }
        }
        other => return Err(format!("unknown engine {other}\n\n{}", usage())),
    })
}

/// The fixed profiling workload: a 40×40 grid (two processes, forty
/// events each, no messages — a 41² = 1681-cut lattice) with a counter
/// variable `x` per process so expression predicates parse. `x@0 > 999`
/// never holds, making an exhaustive deterministic sweep.
fn grid40_fixture() -> Computation {
    let mut b = computation_slicing::ComputationBuilder::new(2);
    let vars = [
        b.declare_var(b.process(0), "x", computation_slicing::Value::Int(0)),
        b.declare_var(b.process(1), "x", computation_slicing::Value::Int(0)),
    ];
    for (p, &var) in vars.iter().enumerate() {
        for i in 1..=40i64 {
            b.step(b.process(p), &[(var, computation_slicing::Value::Int(i))]);
        }
    }
    b.build().expect("grid40 is acyclic")
}

/// Reads and parses one JSON document from a file (or stdin via `-`).
fn load_json_doc(path: &str) -> Result<slicing_observe::json::JsonValue, String> {
    let text = if path == "-" {
        use std::io::Read;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
    };
    slicing_observe::json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Workload label for profile reports: the trace file's stem.
fn workload_name(trace: &str) -> String {
    if trace == "-" {
        return "stdin".to_owned();
    }
    std::path::Path::new(trace)
        .file_stem()
        .map_or_else(|| trace.to_owned(), |s| s.to_string_lossy().into_owned())
}

fn two_args(args: &[String]) -> Result<(&str, &str), String> {
    match (args.get(1), args.get(2)) {
        (Some(a), Some(b)) => Ok((a, b)),
        _ => Err(usage().to_owned()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
