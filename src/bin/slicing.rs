//! `slicing` — command-line predicate detection over recorded traces.
//!
//! ```text
//! slicing fixture figure1 > run.trace
//! slicing stats   run.trace "x1@0 > 1 && x3@2 <= 3"
//! slicing detect  run.trace "x1@0 > 1 && x3@2 <= 3" --engine slice
//! slicing modality run.trace "x1@0 > 1" --mode definitely
//! slicing cuts    run.trace --limit 40
//! slicing dot     run.trace "x1@0 > 1 && x3@2 <= 3" | dot -Tsvg > slice.svg
//! ```
//!
//! Traces use the line format of `slicing_computation::trace`; predicates
//! use the `var@process` expression language.

use std::process::ExitCode;

use computation_slicing::computation::lattice::{count_cuts, for_each_cut};
use computation_slicing::computation::test_fixtures;
use computation_slicing::computation::trace::from_text;
use computation_slicing::predicates::expr::parse_predicate;
use computation_slicing::recovery::RecoveryOutcome;
use computation_slicing::sim::{self, Protocol};
use computation_slicing::slicer::dot::{computation_to_dot, slice_to_dot};
use computation_slicing::slicer::{compile_predicate, SliceStats};
use computation_slicing::{
    definitely, detect, detect_bfs, detect_dfs, detect_pom, detect_reverse_search,
    detect_with_slicing, recover, Computation, GlobalState, Limits, PredicateSpec, RecoverConfig,
    RecoveryVerdict, ResilientConfig,
};

fn usage() -> &'static str {
    "usage:
  slicing [--log off|error|warn|info|debug|trace] [--report <path>] <command> ...

  slicing stats   <trace> <predicate>
  slicing detect  <trace> <predicate>
                  [--engine slice|bfs|dfs|pom|reverse|parallel|hybrid|lean|lean-parallel]
                  [--max-cuts N] [--max-live-cuts N] [--cap-kb N] [--threads N] [--timeout-ms N]
  slicing modality <trace> <predicate> --mode possibly|definitely|invariant|controllable
  slicing monitor <trace> <predicate> [--check-every N]
                  [--metrics <path>] [--metrics-every N]
                  [--gc-lag N] [--gc-every N]
                  [--checkpoint <path>] [--checkpoint-every N] [--checkpoint-keep K]
                  [--resume <path>]
  slicing serve   [<stream>] [--tenant id=EXPR]... [--listen <addr>]
                  [--check-every N] [--metrics <path>] [--metrics-every N]
                  [--gc-lag N] [--gc-every N]
                  [--checkpoint <path>] [--checkpoint-every N] [--checkpoint-keep K]
                  [--resume <path>]
  slicing profile <trace> <predicate>
                  [--engine slice|bfs|dfs|pom|reverse|parallel|hybrid|lean|lean-parallel]
                  [--threads N] [--folded] [--out <path>]
  slicing bench-diff <baseline.json> <current.json> [--threshold T]
  slicing validate <file>...
  slicing recover --protocol ps|db [--procs N] [--events N] [--seed S]
                  [--fault corrupt|drop-message|duplicate-message|delay-delivery|crash-stop|burst|none]
                  [--attempts N] [--reinject N] [--no-backoff] [--timeout-ms N]
  slicing show    <trace> [<cut as comma list, e.g. 2,2,1>]
  slicing cuts    <trace> [--limit N]
  slicing dot     <trace> [<predicate>]
  slicing fixture figure1|grid40

--log mirrors the SLICING_LOG environment variable (the flag wins) and
prints leveled span/counter traces to stderr. --report writes the detect
outcome as one `slicing.run-report/v1` JSON object to <path> (`-` for
stdout); on `recover` it writes the `slicing.recovery-report/v1` outcome,
on `monitor` the `slicing.monitor-report/v1` stream summary, and on
`bench-diff` the `slicing.bench-diff/v1` verdict document.
`recover` simulates a protocol run, injects the chosen fault, and drives
the full detect → recovery line → rollback → replay loop. `monitor`
replays the trace through the incremental online monitor (amortized O(1)
per check), reporting every distinct alarm cut as it appears; the
predicate must be a conjunction of local clauses. `--metrics` streams
`slicing.metrics/v1` delta snapshots (one JSONL line every N observed
events, default 100) to <path> while the monitor runs. `--gc-lag` /
`--gc-every` enable causal-stability garbage collection (compact
history more than N events behind the stable frontier, attempted every
N observations; defaults 128/1024 when either flag is given).
`--checkpoint` writes a versioned `slicing.checkpoint/v1` snapshot of
the monitor to <path> — atomically, every `--checkpoint-every` N events
and once at end of stream; `--checkpoint-keep K` retains the last K
snapshot generations (<path>, <path>.1, …) and deletes older ones, so a
long-running monitor uses bounded disk. `--resume` restores a monitor
from such a snapshot and skips the prefix of the trace it already
consumed; the GC configuration travels inside the checkpoint. All
`--*-every` counts must be positive. Both `monitor` and `serve` ingest
the trace incrementally — events stream straight into the online engine
and are never materialized as a whole computation first.
`serve` multiplexes many tenant predicates over one live trace stream
(a file, `-` for stdin, or one TCP connection via `--listen`): repeat
`--tenant id=EXPR` for the initial tenants, and add or remove tenants
mid-stream with `tenant <id> <expr>` / `untenant <id>` directive lines
in the stream itself. Tenants watching overlapping conjunctions share
candidate queues through the graft cache, so the per-event cost grows
sublinearly with the tenant count. Alarms print per tenant as
`alarm tenant=<id> after N events: ...`; checkpoints use the
`slicing.serve-checkpoint/v1` schema and `--resume` picks a killed
service back up mid-stream (feed the same stream again; the consumed
prefix is skipped). With `--report` it writes a
`slicing.serve-report/v1` summary.
`profile` runs a detection with the span profiler installed and emits
one `slicing.profile/v1` document: the merged span tree with wall time
and per-span counter attribution (per-span counters sum to the flat
totals). `--folded` prints folded-stack text for flamegraph tooling
instead; `--out` writes the JSON document to a file in either mode.
`bench-diff` compares two bench JSON documents of the same schema
(deterministic counters only — wall-clock fields are never gated) and
exits nonzero when any gated counter drifts more than T (default 0.25)
or any exact field changes. `validate` parses each file (JSON or JSONL)
and checks every document against the known `slicing.*/v1` schemas.

<trace> is a file path or `-` for stdin; predicates use the expression
language, e.g. \"x1@0 > 1 && x3@2 <= 3\"."
}

/// Parses a strictly positive integer flag value; zero and garbage both
/// produce a typed usage error naming the flag.
fn parse_positive(flag: &str, value: &str) -> Result<u64, String> {
    let n: u64 = value
        .parse()
        .map_err(|e| format!("{flag}: {e}\n\n{}", usage()))?;
    if n == 0 {
        return Err(format!("{flag} must be positive (got 0)\n\n{}", usage()));
    }
    Ok(n)
}

fn load_trace(path: &str) -> Result<Computation, String> {
    let text = if path == "-" {
        use std::io::Read;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
    };
    from_text(&text).map_err(|e| e.to_string())
}

/// Strips the global `--log`/`--report` flags (valid before or after the
/// subcommand), installs the stderr logger, and returns the remaining args
/// plus the report path.
fn global_flags(raw: Vec<String>) -> Result<(Vec<String>, Option<String>), String> {
    let mut args = Vec::with_capacity(raw.len());
    let mut log_level = None;
    let mut report = None;
    let mut it = raw.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--log" => {
                let value = it.next().ok_or("--log needs a level")?;
                log_level =
                    Some(slicing_observe::Level::parse(&value).ok_or_else(|| {
                        format!("unknown log level {value:?} (try debug or trace)")
                    })?);
            }
            "--report" => report = Some(it.next().ok_or("--report needs a path")?),
            _ => args.push(arg),
        }
    }
    match log_level {
        Some(level) => slicing_observe::install(std::sync::Arc::new(
            slicing_observe::StderrLogger::new(level),
        )),
        None => {
            if let Some(logger) = slicing_observe::StderrLogger::from_env() {
                slicing_observe::install(std::sync::Arc::new(logger));
            }
        }
    }
    Ok((args, report))
}

fn run() -> Result<(), String> {
    let (args, report) = global_flags(std::env::args().skip(1).collect())?;
    let Some(command) = args.first() else {
        return Err(usage().to_owned());
    };
    if report.is_some()
        && !matches!(
            command.as_str(),
            "detect" | "recover" | "monitor" | "serve" | "bench-diff"
        )
    {
        eprintln!(
            "note: --report only applies to `slicing detect`, `slicing recover`, \
             `slicing monitor`, `slicing serve`, and `slicing bench-diff`; ignoring"
        );
    }

    match command.as_str() {
        "fixture" => match args.get(1).map(String::as_str) {
            Some("figure1") => {
                print!(
                    "{}",
                    computation_slicing::computation::trace::to_text(&test_fixtures::figure1())
                );
                Ok(())
            }
            Some("grid40") => {
                print!(
                    "{}",
                    computation_slicing::computation::trace::to_text(&grid40_fixture())
                );
                Ok(())
            }
            other => Err(format!(
                "unknown fixture {other:?}; available: figure1, grid40"
            )),
        },
        "stats" => {
            let (trace, pred_src) = two_args(&args)?;
            let comp = load_trace(trace)?;
            let pred = parse_predicate(&comp, pred_src).map_err(|e| e.to_string())?;
            let spec = compile_predicate(&comp, &pred);
            let slice = spec.slice(&comp);
            let stats = SliceStats::gather(&comp, &slice, Some(5_000_000));
            println!("{stats}");
            println!("meta-events:");
            for (i, meta) in slice.meta_events().iter().enumerate() {
                let names: Vec<String> = meta.iter().map(|&e| comp.describe_event(e)).collect();
                println!("  M{i}: {{{}}}", names.join(", "));
            }
            Ok(())
        }
        "detect" => {
            let (trace, pred_src) = two_args(&args)?;
            let mut engine = "slice".to_owned();
            let mut limits = Limits::none();
            let mut threads = 4usize;
            let mut it = args[3..].iter();
            while let Some(flag) = it.next() {
                let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
                match flag.as_str() {
                    "--engine" => engine = value.clone(),
                    "--max-cuts" => {
                        limits.max_cuts = Some(value.parse().map_err(|e| format!("{e}"))?)
                    }
                    "--max-live-cuts" => {
                        let n: u64 = value.parse().map_err(|e| format!("{e}"))?;
                        limits = limits.with_live_cuts(n);
                    }
                    "--cap-kb" => {
                        let kb: u64 = value.parse().map_err(|e| format!("{e}"))?;
                        limits.max_bytes = Some(kb * 1024);
                    }
                    "--threads" => threads = value.parse().map_err(|e| format!("{e}"))?,
                    "--timeout-ms" => {
                        let ms: u64 = value.parse().map_err(|e| format!("{e}"))?;
                        limits.max_elapsed = Some(std::time::Duration::from_millis(ms));
                    }
                    other => return Err(format!("unknown flag {other}\n\n{}", usage())),
                }
            }
            let comp = load_trace(trace)?;
            let pred = parse_predicate(&comp, pred_src).map_err(|e| e.to_string())?;

            let outcome = match engine.as_str() {
                "slice" => {
                    let spec = compile_predicate(&comp, &pred);
                    let r = detect_with_slicing(&comp, &spec, &limits);
                    println!(
                        "slicing: {} (slice {} bytes, computed in {:?})",
                        r.search, r.slice_bytes, r.slicing_elapsed
                    );
                    r.search
                }
                "bfs" => detect_bfs(&comp, &comp, &pred, &limits),
                "dfs" => detect_dfs(&comp, &comp, &pred, &limits),
                "pom" => detect_pom(&comp, &pred, &limits),
                "reverse" => detect_reverse_search(&comp, &pred, &limits),
                "parallel" => detect::detect_bfs_parallel(&comp, &comp, &pred, &limits, threads),
                "lean" => detect::detect_lean(&comp, &comp, &pred, &limits),
                "lean-parallel" => {
                    detect::detect_lean_parallel(&comp, &comp, &pred, &limits, threads)
                }
                "hybrid" => {
                    let spec = compile_predicate(&comp, &pred);
                    let budget = detect::suggested_pom_budget(&comp, 4);
                    let h = detect::detect_hybrid(&comp, &spec, budget, &limits);
                    println!(
                        "hybrid: answered by {:?} (POM budget {budget} bytes)",
                        h.phase
                    );
                    match (h.phase, h.slicing) {
                        (detect::HybridPhase::Slicing, Some(s)) => s.search,
                        _ => h.pom,
                    }
                }
                other => return Err(format!("unknown engine {other}\n\n{}", usage())),
            };
            if engine != "slice" {
                println!("{engine}: {outcome}");
            }
            if let Some(path) = &report {
                // A real slicing.run-report/v1 document (the same shape
                // the bench binaries emit), so `slicing validate` and
                // bench tooling can consume it.
                let mut run =
                    slicing_observe::RunReport::new(workload_name(trace), engine.as_str());
                run.procs = Some(comp.num_processes() as u64);
                run.events = Some(comp.num_events() as u64);
                run.detected = Some(outcome.detected());
                run.witness = outcome.found.as_ref().map(|cut| {
                    (0..cut.num_processes())
                        .map(|p| u64::from(cut.count(computation_slicing::ProcessId::new(p))))
                        .collect()
                });
                run.aborted = outcome.aborted.map(|r| r.code().to_owned());
                run.cuts_explored = Some(outcome.cuts_explored);
                run.max_stored_cuts = Some(outcome.max_stored_cuts);
                run.peak_bytes = Some(outcome.peak_bytes);
                run.elapsed_secs = Some(outcome.elapsed.as_secs_f64());
                for (name, d) in &outcome.phases {
                    run = run.phase(name.as_str(), d.as_secs_f64());
                }
                let json = run.to_json();
                if path == "-" {
                    println!("{json}");
                } else {
                    std::fs::write(path, format!("{json}\n"))
                        .map_err(|e| format!("writing {path}: {e}"))?;
                }
            }
            match &outcome.found {
                Some(cut) => {
                    println!("witness cut: {cut}");
                    let st = GlobalState::new(&comp, cut);
                    for p in comp.processes() {
                        let mut vals = Vec::new();
                        for n in comp.var_names(p) {
                            let value = st.get_named(p, n).ok_or_else(|| {
                                format!("variable {n} on {p} has no value at the witness cut")
                            })?;
                            vals.push(format!("{n}={value}"));
                        }
                        println!(
                            "  {p} @ {}: {}",
                            comp.describe_event(st.frontier(p)),
                            vals.join(", ")
                        );
                    }
                }
                None if outcome.completed() => println!("predicate does not hold anywhere"),
                None => println!("undecided: search hit a resource limit"),
            }
            Ok(())
        }
        "recover" => {
            let mut protocol = None;
            let mut procs = 4usize;
            let mut events = 12u32;
            let mut seed = 1u64;
            let mut fault = "corrupt".to_owned();
            let mut attempts = 3u32;
            let mut reinject = 0u32;
            let mut backoff = true;
            let mut timeout_ms = None;
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                if flag == "--no-backoff" {
                    backoff = false;
                    continue;
                }
                let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
                match flag.as_str() {
                    "--protocol" => protocol = Some(value.clone()),
                    "--procs" => procs = value.parse().map_err(|e| format!("{e}"))?,
                    "--events" => events = value.parse().map_err(|e| format!("{e}"))?,
                    "--seed" => seed = value.parse().map_err(|e| format!("{e}"))?,
                    "--fault" => fault = value.clone(),
                    "--attempts" => attempts = value.parse().map_err(|e| format!("{e}"))?,
                    "--reinject" => reinject = value.parse().map_err(|e| format!("{e}"))?,
                    "--timeout-ms" => timeout_ms = Some(value.parse().map_err(|e| format!("{e}"))?),
                    other => return Err(format!("unknown flag {other}\n\n{}", usage())),
                }
            }
            let protocol =
                protocol.ok_or_else(|| format!("recover needs --protocol\n\n{}", usage()))?;

            let mut cfg = RecoverConfig {
                sim: sim::SimConfig {
                    seed,
                    max_events_per_process: events,
                    ..sim::SimConfig::default()
                },
                ..RecoverConfig::default()
            };
            cfg.retry.max_attempts = attempts;
            cfg.retry.backoff = backoff;
            cfg.retry.reinject_attempts = reinject;
            if let Some(ms) = timeout_ms {
                cfg.detect = ResilientConfig::default()
                    .with_total_deadline(std::time::Duration::from_millis(ms));
            }

            let outcome = match protocol.as_str() {
                "ps" => recover_protocol(
                    || sim::primary_secondary::PrimarySecondary::new(procs),
                    sim::primary_secondary::violation_spec,
                    &fault,
                    &mut cfg,
                )?,
                "db" => recover_protocol(
                    || sim::database::DatabasePartitioning::new(procs),
                    sim::database::violation_spec,
                    &fault,
                    &mut cfg,
                )?,
                other => return Err(format!("unknown protocol {other:?} (try ps or db)")),
            };

            println!("verdict: {}", outcome.verdict);
            if let Some(engine) = outcome.engine {
                println!(
                    "detected by: {engine} ({} engine fallback(s))",
                    outcome.engine_fallbacks
                );
            }
            if let Some(witness) = &outcome.witness {
                println!("witness cut: {witness}");
            }
            if let Some(line) = &outcome.line {
                let method = outcome.line_method.map_or("?", |m| m.name());
                println!("recovery line: {line} (method {method})");
            }
            for (i, a) in outcome.attempts.iter().enumerate() {
                println!(
                    "attempt {}: seed {} deliver-weight {}{}{}",
                    i + 1,
                    a.seed,
                    a.deliver_weight,
                    if a.reinjected { " reinjected" } else { "" },
                    if a.violation_found {
                        " -> violation recurred"
                    } else {
                        " -> clean"
                    },
                );
            }
            if let Some(path) = &report {
                let json = outcome.to_json();
                if path == "-" {
                    println!("{json}");
                } else {
                    std::fs::write(path, format!("{json}\n"))
                        .map_err(|e| format!("writing {path}: {e}"))?;
                }
            }
            match outcome.verdict {
                RecoveryVerdict::CleanAlready | RecoveryVerdict::Recovered => Ok(()),
                other => Err(format!("recovery failed: {other}")),
            }
        }
        "monitor" => monitor_cmd(&args, report.as_deref()),
        "serve" => serve_cmd(&args, report.as_deref()),
        "profile" => {
            let (trace, pred_src) = two_args(&args)?;
            let mut engine = "slice".to_owned();
            let mut threads = 4usize;
            let mut folded = false;
            let mut out = None;
            let mut it = args[3..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--folded" => folded = true,
                    "--engine" => {
                        engine = it.next().ok_or("--engine needs a value")?.clone();
                    }
                    "--threads" => {
                        threads = it
                            .next()
                            .ok_or("--threads needs a value")?
                            .parse()
                            .map_err(|e| format!("{e}"))?;
                    }
                    "--out" => out = Some(it.next().ok_or("--out needs a path")?.clone()),
                    other => return Err(format!("unknown flag {other}\n\n{}", usage())),
                }
            }
            let comp = load_trace(trace)?;
            let pred = parse_predicate(&comp, pred_src).map_err(|e| e.to_string())?;

            // The profiler is the process-wide recorder for the run, so
            // worker threads of the parallel engines report too. It
            // replaces any --log stderr logger for the profiled region.
            let profiler = std::sync::Arc::new(slicing_observe::Profiler::new());
            slicing_observe::install(profiler.clone());
            let outcome = run_engine(&comp, &pred, &engine, &Limits::none(), threads);
            slicing_observe::uninstall();
            let outcome = outcome?;

            let mut profile = profiler.report();
            profile.workload = workload_name(trace);
            profile.predicate = pred_src.to_owned();
            profile.engine = engine;
            let json = profile.to_json();
            if let Some(path) = &out {
                std::fs::write(path, format!("{json}\n"))
                    .map_err(|e| format!("writing {path}: {e}"))?;
            }
            if folded {
                print!("{}", profile.to_folded());
            } else if out.is_none() {
                println!("{json}");
            }
            eprintln!("profiled: {outcome}");
            Ok(())
        }
        "bench-diff" => {
            let (base_path, cur_path) = two_args(&args)?;
            let mut threshold = slicing_observe::diff::DEFAULT_THRESHOLD;
            let mut it = args[3..].iter();
            while let Some(flag) = it.next() {
                let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
                match flag.as_str() {
                    "--threshold" => threshold = value.parse().map_err(|e| format!("{e}"))?,
                    other => return Err(format!("unknown flag {other}\n\n{}", usage())),
                }
            }
            let baseline = load_json_doc(base_path)?;
            let current = load_json_doc(cur_path)?;
            let verdict = slicing_observe::diff::diff(&baseline, &current, threshold)?;
            print!("{}", verdict.render_text());
            if let Some(path) = &report {
                let json = verdict.to_json();
                if path == "-" {
                    println!("{json}");
                } else {
                    std::fs::write(path, format!("{json}\n"))
                        .map_err(|e| format!("writing {path}: {e}"))?;
                }
            }
            if verdict.pass() {
                Ok(())
            } else {
                Err(format!(
                    "bench drift: {} check(s) over threshold {threshold}",
                    verdict.failures().len()
                ))
            }
        }
        "validate" => {
            let paths = &args[1..];
            if paths.is_empty() {
                return Err(format!("validate needs at least one file\n\n{}", usage()));
            }
            let mut problems = 0u64;
            for path in paths {
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
                let mut schemas: Vec<&'static str> = Vec::new();
                // A file is either one JSON document (possibly pretty,
                // spanning lines) or JSONL; try whole-file first.
                let docs: Vec<(usize, String)> = match slicing_observe::json::parse(&text) {
                    Ok(_) => vec![(1, text.clone())],
                    Err(_) => text
                        .lines()
                        .enumerate()
                        .filter(|(_, l)| !l.trim().is_empty())
                        .map(|(i, l)| (i + 1, l.to_owned()))
                        .collect(),
                };
                if docs.is_empty() {
                    eprintln!("{path}: empty file");
                    problems += 1;
                    continue;
                }
                let mut file_problems = 0u64;
                for (line, doc_text) in &docs {
                    match slicing_observe::json::parse(doc_text) {
                        Ok(doc) => match slicing_observe::schema::validate(&doc) {
                            Ok(name) => schemas.push(name),
                            Err(e) => {
                                eprintln!("{path}:{line}: {e}");
                                file_problems += 1;
                            }
                        },
                        Err(e) => {
                            eprintln!("{path}:{line}: {e}");
                            file_problems += 1;
                        }
                    }
                }
                problems += file_problems;
                if file_problems == 0 {
                    schemas.sort_unstable();
                    schemas.dedup();
                    println!(
                        "{path}: {} document(s) ok ({})",
                        docs.len(),
                        schemas.join(", ")
                    );
                }
            }
            if problems == 0 {
                Ok(())
            } else {
                Err(format!("validation failed: {problems} problem(s)"))
            }
        }
        "modality" => {
            let (trace, pred_src) = two_args(&args)?;
            let mode = match (args.get(3).map(String::as_str), args.get(4)) {
                (Some("--mode"), Some(m)) => m.clone(),
                _ => return Err(format!("modality needs --mode\n\n{}", usage())),
            };
            let comp = load_trace(trace)?;
            let pred = parse_predicate(&comp, pred_src).map_err(|e| e.to_string())?;
            let limits = Limits::none();
            let verdict = match mode.as_str() {
                "possibly" => detect_bfs(&comp, &comp, &pred, &limits).detected(),
                "definitely" => definitely(&comp, &pred, &limits),
                "invariant" => detect::invariant(&comp, &pred, &limits),
                "controllable" => detect::controllable(&comp, &pred, &limits),
                other => return Err(format!("unknown mode {other}\n\n{}", usage())),
            };
            println!("{mode}: {verdict}");
            Ok(())
        }
        "show" => {
            let trace = args.get(1).ok_or_else(|| usage().to_owned())?;
            let comp = load_trace(trace)?;
            let cut = match args.get(2) {
                Some(spec) => {
                    let counts: Result<Vec<u32>, _> =
                        spec.split(',').map(|t| t.trim().parse()).collect();
                    let cut = computation_slicing::Cut::from(
                        counts.map_err(|e| format!("invalid cut: {e}"))?,
                    );
                    if !comp.is_consistent(&cut) {
                        return Err(format!("{cut} is not a consistent cut of this trace"));
                    }
                    Some(cut)
                }
                None => None,
            };
            print!(
                "{}",
                computation_slicing::computation::render::render_space_time(&comp, cut.as_ref())
            );
            Ok(())
        }
        "cuts" => {
            let trace = args.get(1).ok_or_else(|| usage().to_owned())?;
            let mut limit = 100u64;
            if let (Some(flag), Some(value)) = (args.get(2), args.get(3)) {
                if flag == "--limit" {
                    limit = value.parse().map_err(|e| format!("{e}"))?;
                }
            }
            let comp = load_trace(trace)?;
            let mut shown = 0u64;
            for_each_cut(&comp, |cut| {
                println!("{cut}");
                shown += 1;
                shown < limit
            });
            let total = count_cuts(&comp, Some(5_000_000));
            println!(
                "# shown {shown} of {}{}",
                total.value(),
                if total.is_exact() { "" } else { "+" }
            );
            Ok(())
        }
        "dot" => {
            let trace = args.get(1).ok_or_else(|| usage().to_owned())?;
            let comp = load_trace(trace)?;
            match args.get(2) {
                Some(pred_src) => {
                    let pred = parse_predicate(&comp, pred_src).map_err(|e| e.to_string())?;
                    let spec = compile_predicate(&comp, &pred);
                    let slice = spec.slice(&comp);
                    print!("{}", slice_to_dot(&slice));
                }
                None => print!("{}", computation_to_dot(&comp)),
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    }
}

/// Runs the protocol clean, injects the requested fault kind (scanning a
/// few seeds for an injectable site), and drives the recovery loop.
fn recover_protocol<P: Protocol>(
    mut make: impl FnMut() -> P,
    spec_of: fn(&Computation) -> PredicateSpec,
    fault: &str,
    cfg: &mut RecoverConfig,
) -> Result<RecoveryOutcome, String> {
    let clean = sim::run(&mut make(), &cfg.sim).map_err(|e| e.to_string())?;
    let subject = if fault == "none" {
        clean
    } else {
        let plan = (0..16)
            .find_map(|offset| sim::sample_fault_plan(&clean, fault, cfg.sim.seed + offset))
            .ok_or_else(|| {
                format!("no injectable {fault:?} fault in this run (try another --seed)")
            })?;
        let faulty = sim::inject_plan(&clean, &plan).map_err(String::from)?;
        if cfg.retry.reinject_attempts > 0 {
            cfg.reinject = Some(plan);
        }
        faulty
    };
    Ok(recover(make, spec_of, &subject, cfg))
}

/// Runs one detection engine by name, silently (no per-engine printing);
/// shared by `slicing profile`.
fn run_engine(
    comp: &Computation,
    pred: &computation_slicing::predicates::expr::ExprPredicate,
    engine: &str,
    limits: &Limits,
    threads: usize,
) -> Result<computation_slicing::Detection, String> {
    Ok(match engine {
        "slice" => {
            let spec = compile_predicate(comp, pred);
            detect_with_slicing(comp, &spec, limits).search
        }
        "bfs" => detect_bfs(comp, comp, pred, limits),
        "dfs" => detect_dfs(comp, comp, pred, limits),
        "pom" => detect_pom(comp, pred, limits),
        "reverse" => detect_reverse_search(comp, pred, limits),
        "parallel" => detect::detect_bfs_parallel(comp, comp, pred, limits, threads),
        "lean" => detect::detect_lean(comp, comp, pred, limits),
        "lean-parallel" => detect::detect_lean_parallel(comp, comp, pred, limits, threads),
        "hybrid" => {
            let spec = compile_predicate(comp, pred);
            let budget = detect::suggested_pom_budget(comp, 4);
            let h = detect::detect_hybrid(comp, &spec, budget, limits);
            match (h.phase, h.slicing) {
                (detect::HybridPhase::Slicing, Some(s)) => s.search,
                _ => h.pom,
            }
        }
        other => return Err(format!("unknown engine {other}\n\n{}", usage())),
    })
}

/// The fixed profiling workload: a 40×40 grid (two processes, forty
/// events each, no messages — a 41² = 1681-cut lattice) with a counter
/// variable `x` per process so expression predicates parse. `x@0 > 999`
/// never holds, making an exhaustive deterministic sweep.
fn grid40_fixture() -> Computation {
    let mut b = computation_slicing::ComputationBuilder::new(2);
    let vars = [
        b.declare_var(b.process(0), "x", computation_slicing::Value::Int(0)),
        b.declare_var(b.process(1), "x", computation_slicing::Value::Int(0)),
    ];
    for (p, &var) in vars.iter().enumerate() {
        for i in 1..=40i64 {
            b.step(b.process(p), &[(var, computation_slicing::Value::Int(i))]);
        }
    }
    b.build().expect("grid40 is acyclic")
}

/// Reads and parses one JSON document from a file (or stdin via `-`).
fn load_json_doc(path: &str) -> Result<slicing_observe::json::JsonValue, String> {
    let text = if path == "-" {
        use std::io::Read;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
    };
    slicing_observe::json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Workload label for profile reports: the trace file's stem.
fn workload_name(trace: &str) -> String {
    if trace == "-" {
        return "stdin".to_owned();
    }
    std::path::Path::new(trace)
        .file_stem()
        .map_or_else(|| trace.to_owned(), |s| s.to_string_lossy().into_owned())
}

fn two_args(args: &[String]) -> Result<(&str, &str), String> {
    match (args.get(1), args.get(2)) {
        (Some(a), Some(b)) => Ok((a, b)),
        _ => Err(usage().to_owned()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming trace ingestion (`monitor` and `serve`).
//
// Both long-running subcommands feed events into an online engine as the
// lines arrive instead of materializing the whole trace as a
// `Computation` first, so resident memory stays O(vars + messages), not
// O(events). `monitor` makes two passes over a seekable source (stdin is
// spooled to a temporary file); `serve` is a single pass over a live
// stream.
// ---------------------------------------------------------------------------

use computation_slicing::computation::trace::{parse_line, TraceOp};
use computation_slicing::detect::{GcConfig, MonitorHub, OnlineMonitor};
use computation_slicing::{Conjunctive, Cut, Value, VarRef};

/// A contextual trace error in the same shape `TraceError::Syntax`
/// renders, so streaming and batch parsing report problems identically.
fn trace_syntax(line: usize, message: &str) -> String {
    format!("trace syntax error on line {line}: {message}")
}

/// A seekable handle on the trace: real files are read in place, stdin is
/// spooled to a temporary file (constant memory) so the monitor can make
/// its header pass and its replay pass over the same bytes.
struct TraceSource {
    path: std::path::PathBuf,
    spooled: bool,
}

impl TraceSource {
    fn open(arg: &str) -> Result<Self, String> {
        if arg != "-" {
            return Ok(TraceSource {
                path: arg.into(),
                spooled: false,
            });
        }
        let path = std::env::temp_dir().join(format!("slicing-stdin-{}.trace", std::process::id()));
        let mut out = std::fs::File::create(&path).map_err(|e| format!("spooling stdin: {e}"))?;
        std::io::copy(&mut std::io::stdin().lock(), &mut out)
            .map_err(|e| format!("spooling stdin: {e}"))?;
        Ok(TraceSource {
            path,
            spooled: true,
        })
    }

    fn display(&self) -> String {
        if self.spooled {
            "stdin".to_owned()
        } else {
            self.path.display().to_string()
        }
    }

    fn reader(&self) -> Result<std::io::BufReader<std::fs::File>, String> {
        Ok(std::io::BufReader::new(
            std::fs::File::open(&self.path)
                .map_err(|e| format!("reading {}: {e}", self.display()))?,
        ))
    }
}

impl Drop for TraceSource {
    fn drop(&mut self) {
        if self.spooled {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// A message edge read from the stream, by (process, position) endpoints.
struct TraceMsg {
    send: (usize, u32),
    recv: (usize, u32),
}

/// What the monitor's header pass gathers: the process count, variable
/// declarations in file order, message edges, and per-process event
/// counts — never the events themselves.
struct TraceIndex {
    procs: usize,
    decls: Vec<(usize, String, Value, usize)>,
    msgs: Vec<TraceMsg>,
}

/// Header pass: validates line syntax, directive ordering, process
/// ranges, event variable names, and message endpoints — everything
/// `from_text` rejects — while retaining only O(vars + messages) state.
fn scan_trace(source: &TraceSource) -> Result<TraceIndex, String> {
    use std::io::BufRead;
    let mut procs: Option<usize> = None;
    let mut decls: Vec<(usize, String, Value, usize)> = Vec::new();
    let mut raw_msgs: Vec<(TraceMsg, usize)> = Vec::new();
    let mut counts: Vec<u32> = Vec::new();
    let mut names: Vec<std::collections::HashSet<String>> = Vec::new();
    for (i, raw) in source.reader()?.lines().enumerate() {
        let lineno = i + 1;
        let raw = raw.map_err(|e| format!("reading {}: {e}", source.display()))?;
        let Some(op) = parse_line(&raw, lineno).map_err(|e| e.to_string())? else {
            continue;
        };
        match op {
            TraceOp::Procs(n) => {
                if procs.is_some() {
                    return Err(trace_syntax(lineno, "duplicate procs line"));
                }
                procs = Some(n);
                counts = vec![0; n];
                names = vec![std::collections::HashSet::new(); n];
            }
            TraceOp::Var {
                process,
                name,
                initial,
            } => {
                let n = procs.ok_or_else(|| trace_syntax(lineno, "var before procs"))?;
                if process >= n {
                    return Err(trace_syntax(lineno, "process index out of range"));
                }
                names[process].insert(name.clone());
                decls.push((process, name, initial, lineno));
            }
            TraceOp::Event {
                process, writes, ..
            } => {
                let n = procs.ok_or_else(|| trace_syntax(lineno, "event before procs"))?;
                if process >= n {
                    return Err(trace_syntax(lineno, "process index out of range"));
                }
                for (key, _) in &writes {
                    if !names[process].contains(key) {
                        return Err(trace_syntax(
                            lineno,
                            &format!("unknown variable {key:?} on process {process}"),
                        ));
                    }
                }
                counts[process] += 1;
            }
            TraceOp::Msg { send, recv } => {
                raw_msgs.push((TraceMsg { send, recv }, lineno));
            }
            _ => {}
        }
    }
    let procs = procs.ok_or_else(|| trace_syntax(0, "trace has no procs line"))?;
    let mut msgs = Vec::with_capacity(raw_msgs.len());
    for (m, lineno) in raw_msgs {
        if m.send.0 >= procs || m.send.1 > counts[m.send.0] {
            return Err(trace_syntax(lineno, "bad send endpoint"));
        }
        if m.recv.0 >= procs || m.recv.1 > counts[m.recv.0] {
            return Err(trace_syntax(lineno, "bad recv endpoint"));
        }
        msgs.push(m);
    }
    Ok(TraceIndex { procs, decls, msgs })
}

/// The header-only computation (declared variables, no steps) that
/// predicates are parsed against. Variables are declared in file order,
/// so the `VarRef`s the expression parser hands out line up with the
/// online engine's own declarations.
fn header_computation(
    procs: usize,
    decls: &[(usize, String, Value, usize)],
) -> Result<Computation, String> {
    let mut b = computation_slicing::ComputationBuilder::new(procs);
    for (p, name, initial, lineno) in decls {
        b.try_declare_var(computation_slicing::ProcessId::new(*p), name, *initial)
            .map_err(|e| trace_syntax(*lineno, &e.to_string()))?;
    }
    b.build().map_err(|e| e.to_string())
}

/// Tracks which message edges have both endpoints replayed. Endpoints at
/// position 0 are initial events and always ready; the rest become ready
/// when their event streams past. O(messages) memory.
struct MsgTracker {
    remaining: Vec<u8>,
    by_endpoint: std::collections::HashMap<(usize, u32), Vec<usize>>,
}

impl MsgTracker {
    fn new() -> Self {
        MsgTracker {
            remaining: Vec::new(),
            by_endpoint: std::collections::HashMap::new(),
        }
    }

    /// Registers message `idx`; returns true if it is ready right now
    /// given the already-replayed per-process positions.
    fn add(&mut self, idx: usize, msg: &TraceMsg, positions: &[u32]) -> bool {
        debug_assert_eq!(idx, self.remaining.len());
        let mut need = 0u8;
        for ep in [msg.send, msg.recv] {
            if ep.1 > positions[ep.0] {
                self.by_endpoint.entry(ep).or_default().push(idx);
                need += 1;
            }
        }
        self.remaining.push(need);
        need == 0
    }

    /// The event at (process, pos) was just replayed: returns the indices
    /// of messages that became ready.
    fn touch(&mut self, process: usize, pos: u32) -> Vec<usize> {
        let Some(list) = self.by_endpoint.remove(&(process, pos)) else {
            return Vec::new();
        };
        list.into_iter()
            .filter(|&i| {
                self.remaining[i] -= 1;
                self.remaining[i] == 0
            })
            .collect()
    }
}

/// Delivers one message edge to the monitor. Messages whose receive lies
/// inside a resumed prefix are already part of the checkpointed state and
/// are never redelivered; endpoints compacted by GC (or rejected by the
/// engine) are warned about and skipped — the stream keeps flowing.
fn deliver_monitor_msg(m: &mut OnlineMonitor, msg: &TraceMsg, skipped_until: &[u32]) {
    if msg.recv.1 <= skipped_until[msg.recv.0] {
        return;
    }
    match (
        m.event_at(msg.send.0, msg.send.1),
        m.event_at(msg.recv.0, msg.recv.1),
    ) {
        (Some(s), Some(r)) => {
            if let Err(err) = m.message(s, r) {
                eprintln!("warning: skipped message {s} -> {r}: {err}");
            }
        }
        _ => eprintln!("warning: skipped message into history compacted by GC"),
    }
}

/// [`deliver_monitor_msg`] for the multiplexing hub.
fn deliver_hub_msg(hub: &mut MonitorHub, msg: &TraceMsg, skipped_until: &[u32]) {
    if msg.recv.1 <= skipped_until[msg.recv.0] {
        return;
    }
    match (
        hub.event_at(msg.send.0, msg.send.1),
        hub.event_at(msg.recv.0, msg.recv.1),
    ) {
        (Some(s), Some(r)) => {
            if let Err(err) = hub.message(s, r) {
                eprintln!("warning: skipped message {s} -> {r}: {err}");
            }
        }
        _ => eprintln!("warning: skipped message into history compacted by GC"),
    }
}

/// Writes a report document to `path` (stdout for `-`).
fn write_report(path: &str, json: &str) -> Result<(), String> {
    if path == "-" {
        println!("{json}");
        Ok(())
    } else {
        std::fs::write(path, format!("{json}\n")).map_err(|e| format!("writing {path}: {e}"))
    }
}

/// `slicing monitor`: replay one conjunctive predicate over a recorded
/// trace through the incremental online monitor. Ingestion is streaming:
/// a header pass gathers declarations and message edges, then events are
/// fed to the monitor line by line.
fn monitor_cmd(args: &[String], report: Option<&str>) -> Result<(), String> {
    use std::io::BufRead;

    let (trace, pred_src) = two_args(args)?;
    let mut check_every: u64 = 1;
    let mut metrics_path: Option<String> = None;
    let mut metrics_every: u64 = 100;
    let mut checkpoint_path: Option<String> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut checkpoint_keep: usize = 1;
    let mut resume_path: Option<String> = None;
    let mut gc_every: Option<u64> = None;
    let mut gc_lag: Option<u32> = None;
    let mut it = args[3..].iter();
    while let Some(flag) = it.next() {
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--check-every" => check_every = parse_positive(flag, value)?,
            "--metrics" => metrics_path = Some(value.clone()),
            "--metrics-every" => metrics_every = parse_positive(flag, value)?,
            "--checkpoint" => checkpoint_path = Some(value.clone()),
            "--checkpoint-every" => checkpoint_every = Some(parse_positive(flag, value)?),
            "--checkpoint-keep" => {
                checkpoint_keep = usize::try_from(parse_positive(flag, value)?)
                    .map_err(|_| format!("{flag}: value exceeds usize range"))?
            }
            "--resume" => resume_path = Some(value.clone()),
            "--gc-every" => gc_every = Some(parse_positive(flag, value)?),
            "--gc-lag" => {
                gc_lag = Some(
                    u32::try_from(parse_positive(flag, value)?)
                        .map_err(|_| format!("{flag}: value exceeds u32 range"))?,
                )
            }
            other => return Err(format!("unknown flag {other}\n\n{}", usage())),
        }
    }
    if checkpoint_every.is_some() && checkpoint_path.is_none() {
        return Err(format!(
            "--checkpoint-every needs --checkpoint <path>\n\n{}",
            usage()
        ));
    }
    if resume_path.is_some() && (gc_every.is_some() || gc_lag.is_some()) {
        return Err("GC configuration travels inside the checkpoint; drop \
             --gc-every/--gc-lag when using --resume"
            .to_owned());
    }

    // Live telemetry: a scoped snapshotter sees every counter, gauge, and
    // sample the monitor emits on this thread and turns them into
    // periodic `slicing.metrics/v1` delta lines. Checkpointing needs the
    // snapshotter even without --metrics so the stream cursor can be
    // persisted.
    let snapshotter = (metrics_path.is_some() || checkpoint_path.is_some())
        .then(|| std::sync::Arc::new(slicing_observe::MetricsSnapshotter::new()));
    let mut metrics_out = match &metrics_path {
        Some(path) => Some(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?,
        )),
        None => None,
    };
    let _metrics_guard = snapshotter
        .as_ref()
        .map(|s| slicing_observe::scoped(s.clone()));

    let source = TraceSource::open(trace)?;
    let index = scan_trace(&source)?;
    let comp = header_computation(index.procs, &index.decls)?;
    let pred = parse_predicate(&comp, pred_src).map_err(|e| e.to_string())?;
    let conj = pred.to_conjunctive().ok_or_else(|| {
        "monitor needs a conjunctive predicate (local clauses joined by &&)".to_owned()
    })?;

    // Fresh start, or restore a checkpointed monitor and skip the prefix
    // of the trace it already consumed.
    let (mut m, skip) = match &resume_path {
        Some(path) => {
            let (state, seq) =
                computation_slicing::recovery::load_checkpoint(std::path::Path::new(path))
                    .map_err(|e| e.to_string())?;
            if state.slicer.num_processes != index.procs {
                return Err(format!(
                    "{path}: checkpoint has {} processes but the trace has {} — \
                     wrong trace?",
                    state.slicer.num_processes, index.procs
                ));
            }
            if let Some(s) = &snapshotter {
                s.resume_from(seq);
            }
            let m = computation_slicing::recovery::resume_monitor(&state, conj.clauses().to_vec())
                .map_err(|e| format!("{path}: {e}"))?;
            println!(
                "resumed from {path}: {} events already consumed",
                state.stats.events
            );
            (m, state.stats.events)
        }
        None => {
            let mut m = OnlineMonitor::new(index.procs);
            if gc_every.is_some() || gc_lag.is_some() {
                m = m.with_gc(GcConfig {
                    lag: gc_lag.unwrap_or(128),
                    every: gc_every.unwrap_or(1024),
                });
            }
            (m, 0)
        }
    };

    // Mirror the trace's variables in declaration (file) order, so event
    // writes resolve by name without any further trace lookups. On resume
    // the declarations come from the checkpoint and are looked up instead.
    let mut var_of: Vec<std::collections::HashMap<String, VarRef>> =
        vec![std::collections::HashMap::new(); index.procs];
    for (p, name, initial, _lineno) in &index.decls {
        let mv = if resume_path.is_some() {
            m.var(*p, name)
                .ok_or_else(|| format!("checkpoint does not declare {name}@{p} — wrong trace?"))?
        } else {
            m.declare_var(*p, name, *initial)
                .map_err(|e| e.to_string())?
        };
        var_of[*p].insert(name.clone(), mv);
    }
    if resume_path.is_none() {
        for clause in conj.clauses() {
            m.watch_clause(clause.clone()).map_err(|e| e.to_string())?;
        }
    }

    let write_ckpt = |m: &OnlineMonitor,
                      snapshotter: &Option<std::sync::Arc<slicing_observe::MetricsSnapshotter>>|
     -> Result<(), String> {
        if let Some(path) = &checkpoint_path {
            let seq = snapshotter.as_ref().map_or(0, |s| s.seq());
            computation_slicing::recovery::write_checkpoint_rotating(
                std::path::Path::new(path),
                m,
                seq,
                checkpoint_keep,
            )
            .map_err(|e| format!("writing {path}: {e}"))?;
        }
        Ok(())
    };

    // Replay pass: stream events straight into the monitor; a message is
    // delivered as soon as both endpoints have been replayed.
    let mut tracker = MsgTracker::new();
    let mut positions = vec![0u32; index.procs];
    let mut skipped_until = vec![0u32; index.procs];
    for (i, msg) in index.msgs.iter().enumerate() {
        if tracker.add(i, msg, &positions) {
            deliver_monitor_msg(&mut m, msg, &skipped_until);
        }
    }
    let mut observed = 0u64;
    let mut last_ckpt: Option<u64> = None;
    let mut alarms: Vec<Cut> = Vec::new();
    let check =
        |m: &mut OnlineMonitor, alarms: &mut Vec<Cut>, observed: u64| -> Result<(), String> {
            if let Some(cut) = m.check().map_err(|e| e.to_string())? {
                println!("alarm after {observed} events: fault possible at cut {cut}");
                alarms.push(cut);
            }
            Ok(())
        };
    for (i, raw) in source.reader()?.lines().enumerate() {
        let lineno = i + 1;
        let raw = raw.map_err(|e| format!("reading {}: {e}", source.display()))?;
        let Some(op) = parse_line(&raw, lineno).map_err(|e| e.to_string())? else {
            continue;
        };
        let TraceOp::Event {
            process: p, writes, ..
        } = op
        else {
            continue; // header and messages were consumed in the first pass
        };
        positions[p] += 1;
        let pos = positions[p];
        observed += 1;
        if observed <= skip {
            // Consumed before the checkpoint: messages among skipped
            // events are already part of the checkpointed state and are
            // not redelivered.
            skipped_until[p] = pos;
            for idx in tracker.touch(p, pos) {
                deliver_monitor_msg(&mut m, &index.msgs[idx], &skipped_until);
            }
            continue;
        }
        let mut assignments = Vec::with_capacity(writes.len());
        for (name, value) in &writes {
            let var = var_of[p].get(name).copied().ok_or_else(|| {
                trace_syntax(lineno, &format!("unknown variable {name:?} on process {p}"))
            })?;
            assignments.push((var, *value));
        }
        m.observe(p, &assignments)
            .map_err(|e| format!("trace line {lineno}: {e}"))?;
        for idx in tracker.touch(p, pos) {
            deliver_monitor_msg(&mut m, &index.msgs[idx], &skipped_until);
        }
        if observed.is_multiple_of(check_every) {
            check(&mut m, &mut alarms, observed)?;
        }
        if observed.is_multiple_of(metrics_every) {
            if let (Some(s), Some(out)) = (&snapshotter, metrics_out.as_mut()) {
                s.write_snapshot(out, observed)
                    .map_err(|e| format!("writing metrics: {e}"))?;
            }
        }
        if let Some(every) = checkpoint_every {
            if observed.is_multiple_of(every) {
                write_ckpt(&m, &snapshotter)?;
                last_ckpt = Some(observed);
            }
        }
    }
    if !observed.is_multiple_of(check_every) {
        check(&mut m, &mut alarms, observed)?;
    }
    // A final checkpoint so the artifact always reflects the full stream,
    // whatever the cadence (skipped when the cadence just wrote it, so a
    // rotation generation isn't wasted on a duplicate).
    if last_ckpt != Some(observed) {
        write_ckpt(&m, &snapshotter)?;
    }
    if let (Some(s), Some(out)) = (&snapshotter, metrics_out.as_mut()) {
        // Final snapshot so the stream always covers the tail.
        if !observed.is_multiple_of(metrics_every) || observed == 0 {
            s.write_snapshot(out, observed)
                .map_err(|e| format!("writing metrics: {e}"))?;
        }
        use std::io::Write;
        out.flush().map_err(|e| format!("writing metrics: {e}"))?;
    }

    let stats = m.stats();
    println!(
        "monitored {} events, {} messages: {} distinct alarm cut(s)",
        stats.events, stats.messages, stats.alarms
    );
    println!(
        "check work: {} probes over {} checks ({} milliprobe/event), peak {} queued candidates",
        stats.check_cost,
        stats.checks,
        stats.check_cost * 1000 / stats.events.max(1),
        stats.peak_candidates
    );
    if let Some(path) = report {
        let json = slicing_observe::json::JsonObject::new()
            .str("schema", slicing_observe::schema::MONITOR_REPORT)
            .u64("events", stats.events)
            .u64("messages", stats.messages)
            .u64("checks", stats.checks)
            .u64("alarms", stats.alarms)
            .u64("check_cost", stats.check_cost)
            .u64("delta_cuts", stats.delta_cuts)
            .u64("peak_candidates", stats.peak_candidates)
            .raw(
                "alarm_cuts",
                &alarms
                    .iter()
                    .fold(slicing_observe::json::JsonArray::new(), |arr, c| {
                        arr.push_str(&c.to_string())
                    })
                    .finish(),
            )
            .finish();
        write_report(path, &json)?;
    }
    Ok(())
}

/// Builds (and caches) the header-only [`Computation`] that tenant
/// predicate expressions are parsed against: the declared variables with
/// their initial values, no events.
fn header_comp<'a>(
    cache: &'a mut Option<Computation>,
    procs: usize,
    decls: &[(usize, String, Value, usize)],
) -> Result<&'a Computation, String> {
    if cache.is_none() {
        *cache = Some(header_computation(procs, decls)?);
    }
    Ok(cache.as_ref().expect("just filled"))
}

/// Parses a tenant predicate expression and requires the conjunctive
/// fragment the multiplexer (like the online monitor) detects.
fn parse_tenant(comp: &Computation, expr: &str) -> Result<Conjunctive, String> {
    parse_predicate(comp, expr)
        .map_err(|e| e.to_string())?
        .to_conjunctive()
        .ok_or_else(|| "serve needs conjunctive predicates (local clauses joined by &&)".to_owned())
}

/// Completes the hub's tenant roster before the first live event:
/// re-registers checkpointed tenants (restoring clause closures), then
/// adds command-line tenants that are not already present.
fn ensure_tenants(
    hub: &mut MonitorHub,
    comp: &Computation,
    resume_tenants: &[(String, String)],
    cli_tenants: &[(String, String)],
) -> Result<(), String> {
    for (id, source) in resume_tenants {
        let conj = parse_tenant(comp, source).map_err(|e| format!("restoring tenant {id}: {e}"))?;
        hub.restore_tenant(id, &conj)
            .map_err(|e| format!("restoring tenant {id}: {e}"))?;
    }
    let hollow = hub.unrestored_clauses();
    if !hollow.is_empty() {
        return Err(format!(
            "checkpoint clauses left unrestored after tenant re-registration: {}",
            hollow.join(", ")
        ));
    }
    for (id, source) in cli_tenants {
        if hub.group_of(id).is_some() {
            continue; // already restored from the checkpoint
        }
        let conj = parse_tenant(comp, source).map_err(|e| format!("tenant {id}: {e}"))?;
        hub.add_tenant(id, &conj, source)
            .map_err(|e| format!("tenant {id}: {e}"))?;
    }
    Ok(())
}

/// `slicing serve`: multiplex many tenant predicates onto one live trace
/// stream through a shared [`MonitorHub`]. Single-pass ingestion — events
/// are observed as the lines arrive, messages are delivered as soon as
/// both endpoints exist, and `tenant <id> <expr>` / `untenant <id>`
/// directives adjust the roster mid-stream.
fn serve_cmd(args: &[String], report: Option<&str>) -> Result<(), String> {
    use std::io::BufRead;

    let mut stream: Option<String> = None;
    let mut cli_tenants: Vec<(String, String)> = Vec::new();
    let mut listen: Option<String> = None;
    let mut check_every: u64 = 1;
    let mut metrics_path: Option<String> = None;
    let mut metrics_every: u64 = 100;
    let mut checkpoint_path: Option<String> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut checkpoint_keep: usize = 1;
    let mut resume_path: Option<String> = None;
    let mut gc_every: Option<u64> = None;
    let mut gc_lag: Option<u32> = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        if !arg.starts_with("--") {
            if let Some(first) = &stream {
                return Err(format!(
                    "unexpected argument {arg} (stream is already {first})\n\n{}",
                    usage()
                ));
            }
            stream = Some(arg.clone());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("{arg} needs a value"))?;
        match arg.as_str() {
            "--tenant" => {
                let (id, expr) = value
                    .split_once('=')
                    .ok_or_else(|| format!("--tenant needs id=EXPR (got {value:?})"))?;
                let id = id.trim();
                if id.is_empty() {
                    return Err(format!("--tenant needs a non-empty id (got {value:?})"));
                }
                cli_tenants.push((id.to_owned(), expr.trim().to_owned()));
            }
            "--listen" => listen = Some(value.clone()),
            "--check-every" => check_every = parse_positive(arg, value)?,
            "--metrics" => metrics_path = Some(value.clone()),
            "--metrics-every" => metrics_every = parse_positive(arg, value)?,
            "--checkpoint" => checkpoint_path = Some(value.clone()),
            "--checkpoint-every" => checkpoint_every = Some(parse_positive(arg, value)?),
            "--checkpoint-keep" => {
                checkpoint_keep = usize::try_from(parse_positive(arg, value)?)
                    .map_err(|_| format!("{arg}: value exceeds usize range"))?
            }
            "--resume" => resume_path = Some(value.clone()),
            "--gc-every" => gc_every = Some(parse_positive(arg, value)?),
            "--gc-lag" => {
                gc_lag = Some(
                    u32::try_from(parse_positive(arg, value)?)
                        .map_err(|_| format!("{arg}: value exceeds u32 range"))?,
                )
            }
            other => return Err(format!("unknown flag {other}\n\n{}", usage())),
        }
    }
    if checkpoint_every.is_some() && checkpoint_path.is_none() {
        return Err(format!(
            "--checkpoint-every needs --checkpoint <path>\n\n{}",
            usage()
        ));
    }
    if resume_path.is_some() && (gc_every.is_some() || gc_lag.is_some()) {
        return Err("GC configuration travels inside the checkpoint; drop \
             --gc-every/--gc-lag when using --resume"
            .to_owned());
    }
    if listen.is_some() {
        if let Some(path) = &stream {
            return Err(format!(
                "pass a stream path ({path}) or --listen, not both\n\n{}",
                usage()
            ));
        }
    }

    let mut resume_state = match &resume_path {
        Some(path) => Some(
            computation_slicing::recovery::load_hub_checkpoint(std::path::Path::new(path))
                .map_err(|e| {
                    if e.kind() == std::io::ErrorKind::InvalidData {
                        e.to_string() // already carries the path
                    } else {
                        format!("{path}: {e}")
                    }
                })?,
        ),
        None => None,
    };

    let snapshotter = (metrics_path.is_some() || checkpoint_path.is_some())
        .then(|| std::sync::Arc::new(slicing_observe::MetricsSnapshotter::new()));
    if let (Some(s), Some((_, seq))) = (&snapshotter, &resume_state) {
        s.resume_from(*seq);
    }
    let mut metrics_out = match &metrics_path {
        Some(path) => Some(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?,
        )),
        None => None,
    };
    let _metrics_guard = snapshotter
        .as_ref()
        .map(|s| slicing_observe::scoped(s.clone()));

    let mut input: Box<dyn BufRead> = match (&listen, stream.as_deref().unwrap_or("-")) {
        (Some(addr), _) => {
            let listener =
                std::net::TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
            let local = listener.local_addr().map_err(|e| e.to_string())?;
            eprintln!("serve: listening on {local}");
            let (conn, peer) = listener
                .accept()
                .map_err(|e| format!("accepting on {local}: {e}"))?;
            eprintln!("serve: stream connected from {peer}");
            Box::new(std::io::BufReader::new(conn))
        }
        (None, "-") => Box::new(std::io::stdin().lock()),
        (None, path) => Box::new(std::io::BufReader::new(
            std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?,
        )),
    };

    let write_hub_ckpt =
        |hub: &MonitorHub,
         snapshotter: &Option<std::sync::Arc<slicing_observe::MetricsSnapshotter>>|
         -> Result<(), String> {
            if let Some(path) = &checkpoint_path {
                let seq = snapshotter.as_ref().map_or(0, |s| s.seq());
                computation_slicing::recovery::write_hub_checkpoint(
                    std::path::Path::new(path),
                    hub,
                    seq,
                    checkpoint_keep,
                )
                .map_err(|e| format!("writing {path}: {e}"))?;
            }
            Ok(())
        };

    let mut hub: Option<MonitorHub> = None;
    let mut resume_tenants: Vec<(String, String)> = Vec::new();
    let mut skip: u64 = 0;
    let mut tenants_ensured = false;
    let mut decls: Vec<(usize, String, Value, usize)> = Vec::new();
    let mut header: Option<Computation> = None;
    let mut tracker = MsgTracker::new();
    let mut msgs: Vec<TraceMsg> = Vec::new();
    let mut positions: Vec<u32> = Vec::new();
    let mut skipped_until: Vec<u32> = Vec::new();
    let mut observed = 0u64;
    let mut last_ckpt: Option<u64> = None;
    let mut alarm_log: Vec<(String, u64, Cut)> = Vec::new();

    let mut buf = String::new();
    let mut lineno = 0usize;
    loop {
        buf.clear();
        let n = input
            .read_line(&mut buf)
            .map_err(|e| format!("reading stream: {e}"))?;
        if n == 0 {
            break;
        }
        lineno += 1;
        let line = buf.trim();

        // Roster directives are a serve-only extension of the trace
        // grammar and are peeled off before the line parser sees them.
        if let Some(rest) = line.strip_prefix("tenant ") {
            let h = hub
                .as_mut()
                .ok_or_else(|| trace_syntax(lineno, "tenant directive before procs"))?;
            let (id, expr) = rest.trim().split_once(char::is_whitespace).ok_or_else(|| {
                trace_syntax(lineno, "tenant directive needs an id and an expression")
            })?;
            let expr = expr.trim();
            if !tenants_ensured {
                let comp = header_comp(&mut header, h.num_processes(), &decls)?;
                ensure_tenants(h, comp, &resume_tenants, &cli_tenants)?;
                tenants_ensured = true;
            }
            let in_skip = observed < skip;
            if in_skip && h.group_of(id).is_some() {
                continue; // replay of an add the checkpoint already holds
            }
            let comp = header_comp(&mut header, h.num_processes(), &decls)?;
            match parse_tenant(comp, expr)
                .and_then(|conj| h.add_tenant(id, &conj, expr).map_err(|e| e.to_string()))
            {
                Ok(_) => {
                    if !in_skip {
                        println!("tenant {id} added after {} events", h.stats().events);
                    }
                }
                // A malformed tenant must not take the stream down: every
                // other tenant keeps being served.
                Err(e) => eprintln!("warning: ignoring tenant {id} (line {lineno}): {e}"),
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("untenant ") {
            let h = hub
                .as_mut()
                .ok_or_else(|| trace_syntax(lineno, "untenant directive before procs"))?;
            let id = rest.trim();
            let removed = h.remove_tenant(id);
            if observed >= skip {
                if removed {
                    println!("tenant {id} removed after {} events", h.stats().events);
                } else {
                    eprintln!("warning: untenant {id} (line {lineno}): no such tenant");
                }
            }
            continue;
        }

        let Some(op) = parse_line(&buf, lineno).map_err(|e| e.to_string())? else {
            continue;
        };
        match op {
            TraceOp::Procs(procs) => {
                if hub.is_some() {
                    return Err(trace_syntax(lineno, "duplicate procs line"));
                }
                let h = match resume_state.take() {
                    Some((state, _seq)) => {
                        if state.values.len() != procs {
                            return Err(format!(
                                "checkpoint has {} processes but the stream has {procs} — \
                                 wrong stream?",
                                state.values.len()
                            ));
                        }
                        skip = state.stats.events;
                        resume_tenants = state
                            .tenants
                            .iter()
                            .map(|t| (t.id.clone(), t.source.clone()))
                            .collect();
                        let h = MonitorHub::from_state(&state).map_err(|e| e.to_string())?;
                        println!(
                            "resumed from {}: {} events already consumed",
                            resume_path.as_deref().unwrap_or("checkpoint"),
                            skip
                        );
                        h
                    }
                    None => {
                        let mut h = MonitorHub::new(procs);
                        if gc_every.is_some() || gc_lag.is_some() {
                            h = h.with_gc(GcConfig {
                                lag: gc_lag.unwrap_or(128),
                                every: gc_every.unwrap_or(1024),
                            });
                        }
                        h
                    }
                };
                positions = vec![0; procs];
                skipped_until = vec![0; procs];
                hub = Some(h);
            }
            TraceOp::Var {
                process,
                name,
                initial,
            } => {
                let h = hub
                    .as_mut()
                    .ok_or_else(|| trace_syntax(lineno, "var before procs"))?;
                if process >= h.num_processes() {
                    return Err(trace_syntax(lineno, "process index out of range"));
                }
                if resume_path.is_some() {
                    if h.var(process, &name).is_none() {
                        return Err(format!(
                            "checkpoint does not declare {name}@{process} — wrong stream?"
                        ));
                    }
                } else {
                    h.declare_var(process, &name, initial)
                        .map_err(|e| trace_syntax(lineno, &e.to_string()))?;
                }
                decls.push((process, name, initial, lineno));
                header = None; // new variable invalidates the parse context
            }
            TraceOp::Event {
                process: p, writes, ..
            } => {
                let h = hub
                    .as_mut()
                    .ok_or_else(|| trace_syntax(lineno, "event before procs"))?;
                if p >= h.num_processes() {
                    return Err(trace_syntax(lineno, "process index out of range"));
                }
                positions[p] += 1;
                observed += 1;
                if observed <= skip {
                    // Consumed before the checkpoint: already inside the
                    // restored hub state, don't re-observe.
                    skipped_until[p] = positions[p];
                    for idx in tracker.touch(p, positions[p]) {
                        deliver_hub_msg(h, &msgs[idx], &skipped_until);
                    }
                    continue;
                }
                if !tenants_ensured {
                    let comp = header_comp(&mut header, h.num_processes(), &decls)?;
                    ensure_tenants(h, comp, &resume_tenants, &cli_tenants)?;
                    tenants_ensured = true;
                }
                let mut assignments = Vec::with_capacity(writes.len());
                for (name, value) in &writes {
                    let var = h.var(p, name).ok_or_else(|| {
                        trace_syntax(lineno, &format!("unknown variable {name:?} on process {p}"))
                    })?;
                    assignments.push((var, *value));
                }
                h.observe(p, &assignments)
                    .map_err(|e| format!("stream line {lineno}: {e}"))?;
                for idx in tracker.touch(p, positions[p]) {
                    deliver_hub_msg(h, &msgs[idx], &skipped_until);
                }
                let ev = h.stats().events;
                if ev.is_multiple_of(check_every) {
                    for r in h.check_all() {
                        for tenant in &r.tenants {
                            println!(
                                "alarm tenant={tenant} after {} events: fault possible at cut {}",
                                r.alarm.events, r.alarm.cut
                            );
                            alarm_log.push((tenant.clone(), r.alarm.events, r.alarm.cut.clone()));
                        }
                    }
                }
                if ev.is_multiple_of(metrics_every) {
                    if let (Some(s), Some(out)) = (&snapshotter, metrics_out.as_mut()) {
                        s.write_snapshot(out, ev)
                            .map_err(|e| format!("writing metrics: {e}"))?;
                    }
                }
                if let Some(every) = checkpoint_every {
                    if ev.is_multiple_of(every) {
                        write_hub_ckpt(h, &snapshotter)?;
                        last_ckpt = Some(ev);
                    }
                }
            }
            TraceOp::Msg { send, recv } => {
                let h = hub
                    .as_mut()
                    .ok_or_else(|| trace_syntax(lineno, "msg before procs"))?;
                if send.0 >= h.num_processes() {
                    return Err(trace_syntax(lineno, "bad send endpoint"));
                }
                if recv.0 >= h.num_processes() {
                    return Err(trace_syntax(lineno, "bad recv endpoint"));
                }
                msgs.push(TraceMsg { send, recv });
                let idx = msgs.len() - 1;
                if tracker.add(idx, &msgs[idx], &positions) {
                    deliver_hub_msg(h, &msgs[idx], &skipped_until);
                }
            }
            _ => {}
        }
    }

    let h = hub
        .as_mut()
        .ok_or_else(|| "stream has no procs line".to_owned())?;
    if !tenants_ensured {
        let comp = header_comp(&mut header, h.num_processes(), &decls)?;
        ensure_tenants(h, comp, &resume_tenants, &cli_tenants)?;
    }
    let ev = h.stats().events;
    if !ev.is_multiple_of(check_every) {
        for r in h.check_all() {
            for tenant in &r.tenants {
                println!(
                    "alarm tenant={tenant} after {} events: fault possible at cut {}",
                    r.alarm.events, r.alarm.cut
                );
                alarm_log.push((tenant.clone(), r.alarm.events, r.alarm.cut.clone()));
            }
        }
    }
    if last_ckpt != Some(ev) {
        write_hub_ckpt(h, &snapshotter)?;
    }
    if let (Some(s), Some(out)) = (&snapshotter, metrics_out.as_mut()) {
        if !ev.is_multiple_of(metrics_every) || ev == 0 {
            s.write_snapshot(out, ev)
                .map_err(|e| format!("writing metrics: {e}"))?;
        }
        use std::io::Write;
        out.flush().map_err(|e| format!("writing metrics: {e}"))?;
    }

    let stats = h.stats();
    println!(
        "served {} events, {} messages: {} alarm(s) across {} tenant(s)",
        stats.events,
        stats.messages,
        stats.alarms,
        h.tenant_count()
    );
    println!(
        "multiplexed {} tenant(s) onto {} group(s), {} slot(s), {} distinct clause(s)",
        h.tenant_count(),
        h.group_count(),
        h.slot_count(),
        h.clause_count()
    );
    println!(
        "check work: {} probes + {} clause eval(s) over {} checks, peak {} queued candidates",
        stats.check_cost, stats.clause_evals, stats.checks, stats.peak_candidates
    );
    if let Some(path) = report {
        let log = alarm_log
            .iter()
            .fold(
                slicing_observe::json::JsonArray::new(),
                |arr, (tenant, events, cut)| {
                    let cut_arr = cut
                        .counts()
                        .iter()
                        .fold(slicing_observe::json::JsonArray::new(), |a, c| {
                            a.push_raw(&c.to_string())
                        })
                        .finish();
                    arr.push_raw(
                        &slicing_observe::json::JsonObject::new()
                            .str("tenant", tenant)
                            .u64("events", *events)
                            .raw("cut", &cut_arr)
                            .finish(),
                    )
                },
            )
            .finish();
        let json = slicing_observe::json::JsonObject::new()
            .str("schema", slicing_observe::schema::SERVE_REPORT)
            .u64("tenants", h.tenant_count() as u64)
            .u64("groups", h.group_count() as u64)
            .u64("slots", h.slot_count() as u64)
            .u64("events", stats.events)
            .u64("messages", stats.messages)
            .u64("checks", stats.checks)
            .u64("alarms", stats.alarms)
            .u64("check_cost", stats.check_cost)
            .u64("clause_evals", stats.clause_evals)
            .u64("delta_cuts", stats.delta_cuts)
            .u64("peak_candidates", stats.peak_candidates)
            .u64("dropped", stats.fanout_dropped)
            .raw("alarm_log", &log)
            .finish();
        write_report(path, &json)?;
    }
    Ok(())
}
