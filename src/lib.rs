//! **computation-slicing** — software fault tolerance of distributed
//! programs using computation slicing.
//!
//! A Rust implementation of the system described in Mittal & Garg,
//! *"Software Fault Tolerance of Distributed Programs Using Computation
//! Slicing"* (ICDCS 2003): record a distributed execution as a
//! [`Computation`], describe a global fault as a predicate over process
//! variables and channels, compute the **slice** — the smallest
//! sub-state-space guaranteed to contain every consistent cut satisfying
//! the predicate — and search the slice instead of the exponentially
//! larger cut lattice.
//!
//! # Crates
//!
//! | Facade module | Crate | Contents |
//! |---|---|---|
//! | [`computation`] | `slicing-computation` | events, vector clocks, cuts, the cut lattice, oracles, traces |
//! | [`predicates`] | `slicing-predicates` | predicate classes (local, conjunctive, regular, linear, k-local, …) and the expression language |
//! | [`slicer`] | `slicing-core` | the slicing algorithms and grafting |
//! | [`detect`] | `slicing-detect` | detection engines: enumeration, partial-order methods, reverse search, slice-then-search, graceful degradation |
//! | [`sim`] | `slicing-sim` | protocol simulators (primary–secondary, database partitioning, token ring) and fault injection |
//! | [`recovery`] | `slicing-recover` | recovery lines, rollback and controlled replay — the paper's fault-tolerance loop |
//!
//! The most common entry points are re-exported at the crate root.
//!
//! # Quickstart
//!
//! Detect the paper's introduction predicate
//! `(x1·x2 + x3 < 5) ∧ (x1 > 1) ∧ (x3 ≤ 3)` on the Figure 1 computation by
//! slicing with respect to its regular conjuncts and evaluating the full
//! predicate on the six remaining cuts (instead of all twenty-eight):
//!
//! ```
//! use computation_slicing::computation::test_fixtures::figure1;
//! use computation_slicing::predicates::expr::parse_predicate;
//! use computation_slicing::{detect_bfs, slice_conjunctive, Limits};
//!
//! let comp = figure1();
//! let weak = parse_predicate(&comp, "x1@0 > 1 && x3@2 <= 3")?;
//! let full = parse_predicate(&comp, "x1@0 * x2@1 + x3@2 < 5 && x1@0 > 1 && x3@2 <= 3")?;
//!
//! let slice = slice_conjunctive(&comp, &weak.to_conjunctive().unwrap());
//! let outcome = detect_bfs(&slice, &comp, &full, &Limits::none());
//! assert!(outcome.detected());
//! assert!(outcome.cuts_explored <= 6);
//! # Ok::<(), computation_slicing::predicates::expr::ParseError>(())
//! ```

#![warn(missing_docs)]

pub use slicing_computation as computation;
pub use slicing_core as slicer;
pub use slicing_detect as detect;
pub use slicing_predicates as predicates;
pub use slicing_recover as recovery;
pub use slicing_sim as sim;

pub use slicing_computation::{
    BuildError, Computation, ComputationBuilder, Cut, CutSpace, EventId, GlobalState, ProcSet,
    ProcessId, Value, VarRef,
};
pub use slicing_core::{
    graft_and, graft_or, slice_conjunctive, slice_decomposable, slice_klocal, slice_linear,
    slice_postlinear, slice_regular, OnlineSlicer, PredicateSpec, Slice, SliceStats,
};
pub use slicing_detect::{
    definitely, detect_bfs, detect_dfs, detect_hybrid, detect_pom, detect_resilient,
    detect_reverse_search, detect_with_slicing, AlarmReport, Detection, HubAlarm, HubStats,
    HybridDetection, Limits, MonitorHub, MonitorStats, OnlineMonitor, ResilientConfig,
    ResilientDetection, SliceDetection,
};
pub use slicing_predicates::{
    AtLeastInTransit, AtMostInTransit, BoundedDifference, Conjunctive, FnPredicate,
    KLocalPredicate, LinearPredicate, LocalPredicate, PendingAtMost, PostLinearPredicate,
    Predicate, RegularPredicate, SentPendingAtMost,
};
pub use slicing_recover::{
    recover, recovery_line, RecoverConfig, RecoveryLine, RecoveryOutcome, RecoveryVerdict,
    RetryPolicy,
};
