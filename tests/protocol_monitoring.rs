//! End-to-end protocol monitoring: the paper's two experimental setups as
//! integration tests.

use computation_slicing::computation::lattice::for_each_cut;
use computation_slicing::sim::database::{self, DatabasePartitioning};
use computation_slicing::sim::fault::{inject_database_fault, inject_primary_secondary_fault};
use computation_slicing::sim::primary_secondary::{self, PrimarySecondary};
use computation_slicing::sim::{run, SimConfig};
use computation_slicing::{
    detect_pom, detect_with_slicing, Computation, FnPredicate, GlobalState, Limits, Predicate,
    ProcSet,
};

fn ps_run(seed: u64, n: usize, events: u32) -> Computation {
    let cfg = SimConfig {
        seed,
        max_events_per_process: events,
        ..SimConfig::default()
    };
    run(&mut PrimarySecondary::new(n), &cfg).unwrap()
}

fn db_run(seed: u64, n: usize, events: u32) -> Computation {
    let cfg = SimConfig {
        seed,
        max_events_per_process: events,
        ..SimConfig::default()
    };
    run(&mut DatabasePartitioning::new(n), &cfg).unwrap()
}

#[test]
fn primary_secondary_fault_free_runs_are_clean() {
    for seed in 0..8 {
        let comp = ps_run(seed, 4, 10);
        let spec = primary_secondary::violation_spec(&comp);
        let outcome = detect_with_slicing(&comp, &spec, &Limits::none());
        assert!(!outcome.detected(), "seed {seed}: false alarm");

        let inv = primary_secondary::invariant(&comp);
        let not_inv = FnPredicate::new(ProcSet::all(4), "¬I", move |st| !inv.eval(st));
        let pom = detect_pom(&comp, &not_inv, &Limits::none());
        assert!(!pom.detected(), "seed {seed}: POM false alarm");
    }
}

#[test]
fn primary_secondary_injected_faults_agree_across_detectors() {
    let mut detections = 0;
    for seed in 0..8 {
        let comp = ps_run(seed, 4, 8);
        let Some((faulty, _)) = inject_primary_secondary_fault(&comp, seed * 31 + 1) else {
            continue;
        };
        let spec = primary_secondary::violation_spec(&faulty);
        let sliced = detect_with_slicing(&faulty, &spec, &Limits::none());

        let inv = primary_secondary::invariant(&faulty);
        let not_inv = FnPredicate::new(ProcSet::all(4), "¬I", move |st| !inv.eval(st));
        let pom = detect_pom(&faulty, &not_inv, &Limits::none());

        assert_eq!(sliced.detected(), pom.detected(), "seed {seed}");
        if sliced.detected() {
            detections += 1;
            // The witness must genuinely violate the invariant.
            let cut = sliced.search.found.clone().unwrap();
            let inv = primary_secondary::invariant(&faulty);
            assert!(!inv.eval(&GlobalState::new(&faulty, &cut)), "seed {seed}");
        }
    }
    assert!(detections >= 3, "too few faults detectable: {detections}");
}

#[test]
fn database_fault_free_runs_are_clean() {
    for seed in 0..8 {
        let comp = db_run(seed, 4, 10);
        let spec = database::violation_spec(&comp);
        let outcome = detect_with_slicing(&comp, &spec, &Limits::none());
        assert!(!outcome.detected(), "seed {seed}: false alarm");
    }
}

#[test]
fn database_injected_faults_agree_across_detectors() {
    let mut detections = 0;
    for seed in 0..8 {
        let comp = db_run(seed, 4, 8);
        let Some((faulty, _)) = inject_database_fault(&comp, seed * 17 + 3) else {
            continue;
        };
        let spec = database::violation_spec(&faulty);
        let sliced = detect_with_slicing(&faulty, &spec, &Limits::none());

        let inv = database::invariant(&faulty);
        let not_inv = FnPredicate::new(ProcSet::all(4), "¬I", move |st| !inv.eval(st));
        let pom = detect_pom(&faulty, &not_inv, &Limits::none());

        assert_eq!(sliced.detected(), pom.detected(), "seed {seed}");
        if sliced.detected() {
            detections += 1;
        }
    }
    assert!(detections >= 3, "too few faults detectable: {detections}");
}

#[test]
fn fault_free_slices_are_empty_like_the_paper_reports() {
    // Section 5.1: "for fault-free computations, the slice is always
    // empty" — check across seeds for both protocols.
    let mut empty = 0;
    let mut total = 0;
    for seed in 0..6 {
        let comp = ps_run(seed, 4, 10);
        let slice = primary_secondary::violation_spec(&comp).slice(&comp);
        total += 1;
        if slice.is_empty_slice() {
            empty += 1;
        }
        let comp = db_run(seed, 4, 10);
        let slice = database::violation_spec(&comp).slice(&comp);
        total += 1;
        if slice.is_empty_slice() {
            empty += 1;
        }
    }
    // The approximate slice can retain a few cuts, but it should be empty
    // in the clear majority of fault-free runs.
    assert!(
        empty * 2 > total,
        "only {empty}/{total} fault-free slices were empty"
    );
}

#[test]
fn faulty_search_examines_few_cuts_after_slicing() {
    // Section 5.1 reports ≤13 (PS) / ≤4 (DB) cuts examined after slicing;
    // sizes differ here, but the residual search must stay tiny relative
    // to the lattice.
    let comp = ps_run(1, 4, 8);
    let lattice_floor = {
        // Count up to a bound only — the full lattice is huge.
        let mut count = 0u64;
        for_each_cut(&comp, |_| {
            count += 1;
            count < 50_000
        });
        count
    };
    if let Some((faulty, _)) = inject_primary_secondary_fault(&comp, 5) {
        let spec = primary_secondary::violation_spec(&faulty);
        let outcome = detect_with_slicing(&faulty, &spec, &Limits::none());
        if outcome.detected() {
            assert!(
                outcome.search.cuts_explored * 10 < lattice_floor,
                "residual search too large: {} vs lattice ≥ {}",
                outcome.search.cuts_explored,
                lattice_floor
            );
        }
    }
}

/// Paper-scale smoke test: n = 10 processes with 60 events each —
/// approaching the paper's n = 6..12 at ≤90 events/process. Slicing must
/// stay polynomial (well under a minute) and raise no false alarm; the
/// fault-free slice is empty at this scale. Ignored by default; run with
/// `cargo test -- --ignored`.
#[test]
#[ignore = "paper-scale run takes seconds; enable with --ignored"]
fn paper_scale_primary_secondary_fault_free() {
    let comp = ps_run(0, 10, 60);
    let spec = primary_secondary::violation_spec(&comp);
    let started = std::time::Instant::now();
    let outcome = detect_with_slicing(&comp, &spec, &Limits::cuts(5_000_000));
    assert!(outcome.search.completed(), "slicing must finish");
    assert!(!outcome.detected(), "fault-free run raised an alarm");
    // Generous wall-clock sanity bound: the point is polynomial behaviour
    // even in debug builds (release finishes in ~50 ms).
    assert!(
        started.elapsed() < std::time::Duration::from_secs(300),
        "slicing blew its polynomial budget: {:?}",
        started.elapsed()
    );
}
