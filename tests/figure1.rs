//! End-to-end reproduction of the paper's Figure 1 and the surrounding
//! introduction narrative.

use computation_slicing::computation::lattice::{all_cuts, count_cuts};
use computation_slicing::computation::test_fixtures::figure1;
use computation_slicing::predicates::expr::parse_predicate;
use computation_slicing::{
    detect_bfs, detect_with_slicing, slice_conjunctive, Cut, GlobalState, Limits, Predicate,
    PredicateSpec, SliceStats,
};

#[test]
fn computation_has_twenty_eight_cuts() {
    let comp = figure1();
    assert_eq!(count_cuts(&comp, None).value(), 28);
}

#[test]
fn slice_has_six_cuts_and_four_meta_events() {
    let comp = figure1();
    let weak = parse_predicate(&comp, "x1@0 > 1 && x3@2 <= 3").unwrap();
    let slice = slice_conjunctive(&comp, &weak.to_conjunctive().unwrap());
    assert_eq!(slice.count_cuts(None).value(), 6);
    let metas = slice.meta_events();
    assert_eq!(metas.len(), 4);
    // The bottom meta-event groups the initial events with f and v —
    // Figure 1(b)'s {a, e, f, u, v}.
    assert_eq!(metas[0].len(), 5);
    let f = comp.event_by_label("f").unwrap();
    let v = comp.event_by_label("v").unwrap();
    assert!(metas[0].contains(&f));
    assert!(metas[0].contains(&v));
    // The remaining meta-events are singletons {w}, {g}, {b}.
    let singles: Vec<_> = metas[1..]
        .iter()
        .map(|m| comp.label(m[0]).unwrap().to_owned())
        .collect();
    let mut sorted = singles.clone();
    sorted.sort();
    assert_eq!(sorted, vec!["b", "g", "w"]);
}

#[test]
fn slice_cuts_are_exactly_the_satisfying_cuts() {
    let comp = figure1();
    let weak = parse_predicate(&comp, "x1@0 > 1 && x3@2 <= 3").unwrap();
    let slice = slice_conjunctive(&comp, &weak.to_conjunctive().unwrap());
    for cut in all_cuts(&slice) {
        assert!(weak.eval(&GlobalState::new(&comp, &cut)), "cut {cut}");
    }
    for cut in all_cuts(&comp) {
        let sat = weak.eval(&GlobalState::new(&comp, &cut));
        assert_eq!(slice.contains_cut(&cut), sat, "cut {cut}");
    }
}

#[test]
fn full_intro_predicate_detected_within_six_cuts() {
    let comp = figure1();
    let weak = parse_predicate(&comp, "x1@0 > 1 && x3@2 <= 3").unwrap();
    let full = parse_predicate(&comp, "x1@0 * x2@1 + x3@2 < 5 && x1@0 > 1 && x3@2 <= 3").unwrap();
    let slice = slice_conjunctive(&comp, &weak.to_conjunctive().unwrap());
    let outcome = detect_bfs(&slice, &comp, &full, &Limits::none());
    assert!(outcome.detected());
    assert!(outcome.cuts_explored <= 6);
    // BFS reaches the earliest such state: {a, e, f, u, v} = ⟨1, 2, 2⟩.
    assert_eq!(outcome.found.unwrap(), Cut::from(vec![1, 2, 2]));
}

#[test]
fn pipeline_via_predicate_spec_matches() {
    let comp = figure1();
    let weak = parse_predicate(&comp, "x1@0 > 1 && x3@2 <= 3").unwrap();
    let spec = PredicateSpec::conjunctive(weak.to_conjunctive().unwrap());
    let outcome = detect_with_slicing(&comp, &spec, &Limits::none());
    assert!(outcome.detected());
    assert!(outcome.search.cuts_explored <= 6);
}

#[test]
fn stats_report_the_reduction() {
    let comp = figure1();
    let weak = parse_predicate(&comp, "x1@0 > 1 && x3@2 <= 3").unwrap();
    let slice = slice_conjunctive(&comp, &weak.to_conjunctive().unwrap());
    let stats = SliceStats::gather(&comp, &slice, None);
    assert_eq!(stats.computation_cuts.value(), 28);
    assert_eq!(stats.slice_cuts.value(), 6);
    assert!(stats.reduction_factor() > 4.0);
}
