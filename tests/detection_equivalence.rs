//! All detection engines must agree with each other and with the
//! brute-force oracle on `possibly: b`.

use proptest::prelude::*;

use computation_slicing::computation::oracle::satisfying_cuts;
use computation_slicing::computation::test_fixtures::{random_computation, RandomConfig};
use computation_slicing::{
    detect_bfs, detect_dfs, detect_pom, detect_reverse_search, detect_with_slicing, Computation,
    Conjunctive, FnPredicate, GlobalState, KLocalPredicate, Limits, LocalPredicate, Predicate,
    PredicateSpec, ProcSet,
};

fn computations() -> impl Strategy<Value = Computation> {
    (any::<u64>(), 2usize..=4, 2u32..=4, 0u64..=70).prop_map(|(seed, n, m, msg)| {
        let cfg = RandomConfig {
            processes: n,
            events_per_process: m,
            send_percent: msg,
            recv_percent: msg,
            value_range: 3,
        };
        random_computation(seed, &cfg)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// BFS, DFS, reverse search, and POM agree with the oracle on an
    /// arbitrary (structureless) predicate.
    #[test]
    fn engines_agree_on_arbitrary_predicates(comp in computations(), t in 0i64..6) {
        let n = comp.num_processes();
        let vars: Vec<_> = comp.processes().map(|p| comp.var(p, "x").unwrap()).collect();
        let pred = FnPredicate::new(ProcSet::all(n), "sum == t", move |st| {
            vars.iter().map(|&v| st.get(v).expect_int()).sum::<i64>() == t
        });
        let oracle = !satisfying_cuts(&comp, |st| pred.eval(st)).is_empty();
        let limits = Limits::none();

        prop_assert_eq!(detect_bfs(&comp, &comp, &pred, &limits).detected(), oracle);
        prop_assert_eq!(detect_dfs(&comp, &comp, &pred, &limits).detected(), oracle);
        prop_assert_eq!(detect_reverse_search(&comp, &pred, &limits).detected(), oracle);
        prop_assert_eq!(detect_pom(&comp, &pred, &limits).detected(), oracle);
    }

    /// The slice-then-search pipeline agrees with direct search on
    /// composed specifications, and its witnesses genuinely satisfy the
    /// predicate.
    #[test]
    fn slicing_pipeline_agrees(comp in computations(), t in 0i64..3) {
        let x0 = comp.var(comp.process(0), "x").unwrap();
        let x1 = comp.var(comp.process(1), "x").unwrap();
        let spec = PredicateSpec::or(vec![
            PredicateSpec::klocal(KLocalPredicate::new(
                vec![x0, x1],
                "x0 == x1 + 1",
                |v| v[0].expect_int() == v[1].expect_int() + 1,
            )),
            PredicateSpec::conjunctive(Conjunctive::new(vec![LocalPredicate::int(
                x0,
                format!("x0 >= {t}"),
                move |v| v >= t,
            )])),
        ]);
        let outcome = detect_with_slicing(&comp, &spec, &Limits::none());
        let oracle = !satisfying_cuts(&comp, |st| spec.eval(st)).is_empty();
        prop_assert_eq!(outcome.detected(), oracle);
        if let Some(cut) = &outcome.search.found {
            prop_assert!(spec.eval(&GlobalState::new(&comp, cut)));
        }
    }

    /// POM never explores more cuts than full BFS (selective search only
    /// prunes), while still agreeing on the verdict.
    #[test]
    fn pom_explores_a_subset(comp in computations()) {
        let pred = FnPredicate::new(ProcSet::empty(), "false", |_| false);
        let bfs = detect_bfs(&comp, &comp, &pred, &Limits::none());
        let pom = detect_pom(&comp, &pred, &Limits::none());
        prop_assert!(pom.cuts_explored <= bfs.cuts_explored);
        prop_assert!(!pom.detected() && !bfs.detected());
    }
}

/// A regression-style deterministic case: detection across engines on a
/// protocol run with a fault.
#[test]
fn engines_agree_on_a_faulty_protocol_run() {
    use computation_slicing::sim::fault::inject_primary_secondary_fault;
    use computation_slicing::sim::primary_secondary::{self, PrimarySecondary};
    use computation_slicing::sim::{run, SimConfig};

    let cfg = SimConfig {
        seed: 6,
        max_events_per_process: 8,
        ..SimConfig::default()
    };
    let comp = run(&mut PrimarySecondary::new(3), &cfg).unwrap();
    let (faulty, _) = inject_primary_secondary_fault(&comp, 2).unwrap();

    let inv = primary_secondary::invariant(&faulty);
    let not_inv = {
        let inv = inv.clone();
        FnPredicate::new(ProcSet::all(3), "¬I_ps", move |st| !inv.eval(st))
    };
    let spec = primary_secondary::violation_spec(&faulty);

    let bfs = detect_bfs(&faulty, &faulty, &not_inv, &Limits::none());
    let pom = detect_pom(&faulty, &not_inv, &Limits::none());
    let rev = detect_reverse_search(&faulty, &not_inv, &Limits::none());
    let sliced = detect_with_slicing(&faulty, &spec, &Limits::none());

    assert_eq!(bfs.detected(), pom.detected());
    assert_eq!(bfs.detected(), rev.detected());
    assert_eq!(bfs.detected(), sliced.detected());
}
