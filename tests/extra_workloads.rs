//! End-to-end monitoring of the extension workloads: central mutex and
//! clock synchronization.

use computation_slicing::computation::lattice::for_each_cut;
use computation_slicing::sim::clock_sync::{self, ClockSync};
use computation_slicing::sim::fault::{inject, FaultSpec};
use computation_slicing::sim::mutex::{self, CentralMutex};
use computation_slicing::sim::{run, SimConfig};
use computation_slicing::{
    detect_pom, detect_with_slicing, Computation, FnPredicate, GlobalState, Limits, ProcSet, Value,
};

fn mutex_run(seed: u64, n: usize, events: u32) -> Computation {
    let cfg = SimConfig {
        seed,
        max_events_per_process: events,
        ..SimConfig::default()
    };
    run(&mut CentralMutex::new(n), &cfg).unwrap()
}

fn clock_run(seed: u64, n: usize, events: u32) -> Computation {
    let cfg = SimConfig {
        seed,
        max_events_per_process: events,
        ..SimConfig::default()
    };
    run(&mut ClockSync::new(n), &cfg).unwrap()
}

#[test]
fn mutex_monitoring_is_clean_and_cheap_fault_free() {
    for seed in 0..6 {
        let comp = mutex_run(seed, 4, 12);
        let spec = mutex::violation_spec(&comp);
        let outcome = detect_with_slicing(&comp, &spec, &Limits::none());
        assert!(!outcome.detected(), "seed {seed}");
        // The violation is rare, so the slice search is (near) free.
        assert_eq!(outcome.search.cuts_explored, 0, "seed {seed}");
    }
}

#[test]
fn mutex_detectors_agree_on_corrupted_runs() {
    let comp = mutex_run(3, 4, 12);
    // Corrupt a client's in_cs flag at an arbitrary mid-run event.
    let p = comp.process(2);
    let fault = FaultSpec {
        process: p,
        position: comp.len(p) / 2,
        var_name: "in_cs".to_owned(),
        value: Value::Bool(true),
        transient: true,
    };
    let faulty = inject(&comp, &fault).unwrap();
    let spec = mutex::violation_spec(&faulty);
    let sliced = detect_with_slicing(&faulty, &spec, &Limits::none());

    let n = faulty.num_processes();
    let vars: Vec<_> = faulty
        .processes()
        .filter_map(|q| faulty.var(q, "in_cs"))
        .collect();
    let pred = FnPredicate::new(ProcSet::all(n), "two holders", move |st| {
        vars.iter().filter(|&&v| st.get(v).expect_bool()).count() >= 2
    });
    let pom = detect_pom(&faulty, &pred, &Limits::none());
    assert_eq!(sliced.detected(), pom.detected());
    if let Some(cut) = &sliced.search.found {
        assert!(spec.eval(&GlobalState::new(&faulty, cut)));
    }
}

#[test]
fn clock_sync_keeps_drift_bounded_with_gossip() {
    // With the default gossip rate and a modest delta the drift fault is
    // usually absent; when the slice is non-empty the residual search
    // still answers exactly.
    for seed in 0..5 {
        let comp = clock_run(seed, 3, 10);
        let delta = 20; // generous: a run can't tick that far apart
        let spec = clock_sync::drift_spec(&comp, delta);
        let outcome = detect_with_slicing(&comp, &spec, &Limits::none());
        assert!(
            !outcome.detected(),
            "seed {seed}: impossible drift detected"
        );
    }
}

#[test]
fn clock_sync_drift_detection_matches_enumeration() {
    for seed in 0..5 {
        let comp = clock_run(seed, 3, 8);
        for delta in [0i64, 1, 2] {
            let spec = clock_sync::drift_spec(&comp, delta);
            let sliced = detect_with_slicing(&comp, &spec, &Limits::none());
            let mut brute = false;
            for_each_cut(&comp, |cut| {
                if spec.eval(&GlobalState::new(&comp, cut)) {
                    brute = true;
                    return false;
                }
                true
            });
            assert_eq!(sliced.detected(), brute, "seed {seed} delta {delta}");
        }
    }
}
