//! Trace serialization round-trips on real protocol runs, and sliced
//! results survive the round trip.

use computation_slicing::computation::lattice::count_cuts;
use computation_slicing::computation::trace::{from_text, to_text};
use computation_slicing::sim::primary_secondary::{self, PrimarySecondary};
use computation_slicing::sim::token_ring::{no_token_spec, TokenRing};
use computation_slicing::sim::{run, SimConfig};
use computation_slicing::{detect_with_slicing, Limits};

#[test]
fn protocol_runs_round_trip_through_the_trace_format() {
    let cfg = SimConfig {
        seed: 13,
        max_events_per_process: 12,
        ..SimConfig::default()
    };
    let comp = run(&mut PrimarySecondary::new(4), &cfg).unwrap();
    let text = to_text(&comp);
    let parsed = from_text(&text).unwrap();

    assert_eq!(parsed.num_processes(), comp.num_processes());
    assert_eq!(parsed.num_events(), comp.num_events());
    assert_eq!(parsed.messages(), comp.messages());
    for e in comp.events() {
        let p = comp.process_of(e);
        for name in comp.var_names(p) {
            let a = comp.var(p, name).unwrap();
            let b = parsed.var(p, name).unwrap();
            assert_eq!(
                comp.value_at(a, comp.position_of(e)),
                parsed.value_at(b, comp.position_of(e)),
                "event {e} var {name}"
            );
        }
    }
    // Emitting the parsed computation again is a fixpoint.
    assert_eq!(to_text(&parsed), text);
}

#[test]
fn detection_results_survive_the_round_trip() {
    let cfg = SimConfig {
        seed: 21,
        max_events_per_process: 10,
        ..SimConfig::default()
    };
    let comp = run(&mut TokenRing::new(3), &cfg).unwrap();
    let parsed = from_text(&to_text(&comp)).unwrap();
    assert_eq!(
        count_cuts(&comp, Some(100_000)),
        count_cuts(&parsed, Some(100_000))
    );

    let a = detect_with_slicing(&comp, &no_token_spec(&comp), &Limits::none());
    let b = detect_with_slicing(&parsed, &no_token_spec(&parsed), &Limits::none());
    assert_eq!(a.detected(), b.detected());
    assert_eq!(a.search.cuts_explored, b.search.cuts_explored);
    assert_eq!(a.search.found, b.search.found);
}

#[test]
fn violation_spec_rebuilds_against_parsed_computation() {
    let cfg = SimConfig {
        seed: 30,
        max_events_per_process: 8,
        ..SimConfig::default()
    };
    let comp = run(&mut PrimarySecondary::new(3), &cfg).unwrap();
    let parsed = from_text(&to_text(&comp)).unwrap();
    let spec = primary_secondary::violation_spec(&parsed);
    let outcome = detect_with_slicing(&parsed, &spec, &Limits::none());
    assert!(!outcome.detected(), "fault-free round trip raised an alarm");
}
