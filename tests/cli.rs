//! End-to-end tests of the `slicing` command-line tool.

use std::process::{Command, Output, Stdio};

fn slicing(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_slicing"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn slicing_with_stdin(args: &[&str], stdin: &str) -> Output {
    use std::io::Write;
    let mut child = Command::new(env!("CARGO_BIN_EXE_slicing"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    // Best-effort: a child that rejects its flags exits before reading
    // stdin, which surfaces here as a broken pipe — not a test failure.
    let _ = child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes());
    child.wait_with_output().expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn figure1_trace() -> String {
    let out = slicing(&["fixture", "figure1"]);
    assert!(out.status.success());
    stdout(&out)
}

#[test]
fn fixture_emits_a_parsable_trace() {
    let trace = figure1_trace();
    assert!(trace.contains("procs 3"));
    assert!(trace.contains("var 0 x1 2"));
    // Round-trip through the library parser.
    let comp = computation_slicing::computation::trace::from_text(&trace).unwrap();
    assert_eq!(comp.num_events(), 12);
}

#[test]
fn stats_reports_the_figure1_reduction() {
    let trace = figure1_trace();
    let out = slicing_with_stdin(&["stats", "-", "x1@0 > 1 && x3@2 <= 3"], &trace);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("28 → 6"), "{text}");
    assert!(text.contains("M3"), "{text}");
}

#[test]
fn detect_engines_agree() {
    let trace = figure1_trace();
    let pred = "x1@0 * x2@1 + x3@2 < 5 && x1@0 > 1 && x3@2 <= 3";
    for engine in [
        "slice", "bfs", "dfs", "pom", "reverse", "parallel", "hybrid",
    ] {
        let out = slicing_with_stdin(&["detect", "-", pred, "--engine", engine], &trace);
        assert!(out.status.success(), "{engine}");
        let text = stdout(&out);
        assert!(text.contains("witness cut"), "{engine}: {text}");
    }
}

#[test]
fn detect_reports_absence() {
    let trace = figure1_trace();
    let out = slicing_with_stdin(&["detect", "-", "x1@0 > 99"], &trace);
    assert!(out.status.success());
    assert!(stdout(&out).contains("does not hold anywhere"));
}

#[test]
fn modalities_answer() {
    let trace = figure1_trace();
    for (mode, expect) in [
        ("possibly", "possibly: true"),
        ("definitely", "definitely: false"),
        ("invariant", "invariant: false"),
        ("controllable", "controllable: false"),
    ] {
        let out = slicing_with_stdin(
            &["modality", "-", "x1@0 > 1 && x3@2 <= 3", "--mode", mode],
            &trace,
        );
        assert!(out.status.success(), "{mode}");
        assert!(stdout(&out).contains(expect), "{mode}: {}", stdout(&out));
    }
}

#[test]
fn show_renders_space_time() {
    let trace = figure1_trace();
    let out = slicing_with_stdin(&["show", "-"], &trace);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains('⊥'));
    assert!(text.contains("[s1]"));
    // With a cut fence.
    let out = slicing_with_stdin(&["show", "-", "2,2,2"], &trace);
    assert!(out.status.success());
    assert!(stdout(&out).contains('|'));
    // Inconsistent cuts are rejected.
    let out = slicing_with_stdin(&["show", "-", "1,1,2"], &trace);
    assert!(!out.status.success());
}

#[test]
fn cuts_lists_with_limit() {
    let trace = figure1_trace();
    let out = slicing_with_stdin(&["cuts", "-", "--limit", "5"], &trace);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("# shown 5 of 28"), "{text}");
}

#[test]
fn dot_outputs_graphviz() {
    let trace = figure1_trace();
    let out = slicing_with_stdin(&["dot", "-"], &trace);
    assert!(out.status.success());
    assert!(stdout(&out).starts_with("digraph computation"));
    let out = slicing_with_stdin(&["dot", "-", "x1@0 > 1 && x3@2 <= 3"], &trace);
    assert!(out.status.success());
    assert!(stdout(&out).starts_with("digraph slice"));
}

#[test]
fn errors_exit_nonzero_with_usage() {
    let out = slicing(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let out = slicing(&["bogus"]);
    assert!(!out.status.success());

    let trace = figure1_trace();
    let out = slicing_with_stdin(&["detect", "-", "nope@0 > 1"], &trace);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no variable"));

    let out = slicing_with_stdin(&["detect", "-", "x1@0 > 1", "--engine", "warp"], &trace);
    assert!(!out.status.success());
}

#[test]
fn help_prints_usage() {
    let out = slicing(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("usage:"));
}

#[test]
fn detect_accepts_a_timeout() {
    let trace = figure1_trace();
    let out = slicing_with_stdin(
        &[
            "detect",
            "-",
            "x1@0 > 1 && x3@2 <= 3",
            "--timeout-ms",
            "60000",
        ],
        &trace,
    );
    assert!(out.status.success());
    assert!(stdout(&out).contains("witness cut"));
}

#[test]
fn recover_runs_the_loop_and_reports() {
    let out = slicing(&[
        "--report",
        "-",
        "recover",
        "--protocol",
        "ps",
        "--procs",
        "3",
        "--events",
        "8",
        "--seed",
        "5",
        "--fault",
        "corrupt",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("verdict: recovered"), "{text}");
    assert!(text.contains("recovery line:"), "{text}");
    assert!(text.contains("slicing.recovery-report/v1"), "{text}");
}

#[test]
fn recover_with_no_fault_is_clean() {
    let out = slicing(&[
        "recover",
        "--protocol",
        "db",
        "--procs",
        "3",
        "--events",
        "8",
        "--fault",
        "none",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("verdict: clean-already"));
}

#[test]
fn recover_rejects_unknown_protocols_and_faults() {
    let out = slicing(&["recover", "--protocol", "warp"]);
    assert!(!out.status.success());

    let out = slicing(&["recover"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--protocol"));
}

// ---------------------------------------------------------------------------
// Observability surface: fixture grid40, profile, bench-diff, validate,
// monitor --metrics.
// ---------------------------------------------------------------------------

fn tmp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("slicing-cli-{}-{name}", std::process::id()))
}

fn grid40_trace() -> String {
    let out = slicing(&["fixture", "grid40"]);
    assert!(out.status.success());
    stdout(&out)
}

#[test]
fn fixture_grid40_round_trips() {
    let trace = grid40_trace();
    let comp = computation_slicing::computation::trace::from_text(&trace).unwrap();
    assert_eq!(
        comp.num_events(),
        82,
        "2 procs x (initial event + 40 steps)"
    );
}

/// The acceptance invariant of the profiler: the per-span counter sums in
/// the `slicing.profile/v1` document equal the flat totals a
/// [`MemoryRecorder`] reports for the very same deterministic run.
#[test]
fn profile_totals_match_flat_counters_on_grid40() {
    use std::collections::BTreeMap;
    use std::sync::Arc;

    let trace = grid40_trace();
    let trace_path = tmp_path("profile.trace");
    let json_path = tmp_path("profile.json");
    std::fs::write(&trace_path, &trace).unwrap();

    let out = slicing(&[
        "profile",
        trace_path.to_str().unwrap(),
        "x@0 > 999",
        "--engine",
        "bfs",
        "--out",
        json_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let doc = slicing_observe::json::parse(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
    assert_eq!(
        slicing_observe::schema::validate(&doc).unwrap(),
        slicing_observe::schema::PROFILE
    );
    assert_eq!(doc.get("engine").unwrap().as_str(), Some("bfs"));
    let mut profile_totals: BTreeMap<String, u64> = BTreeMap::new();
    for entry in doc.get("totals").unwrap().as_array().unwrap() {
        profile_totals.insert(
            entry.get("name").unwrap().as_str().unwrap().to_owned(),
            entry.get("value").unwrap().as_u64().unwrap(),
        );
    }

    // Replay the identical detection in-process under a flat recorder.
    let comp = computation_slicing::computation::trace::from_text(&trace).unwrap();
    let pred = computation_slicing::predicates::expr::parse_predicate(&comp, "x@0 > 999").unwrap();
    let mem = Arc::new(slicing_observe::MemoryRecorder::new(
        slicing_observe::Level::Trace,
    ));
    {
        let _guard = slicing_observe::scoped(mem.clone());
        let d = computation_slicing::detect_bfs(
            &comp,
            &comp,
            &pred,
            &computation_slicing::Limits::none(),
        );
        assert_eq!(d.cuts_explored, 41 * 41, "exhaustive sweep of the lattice");
    }
    let mut flat_totals: BTreeMap<String, u64> = BTreeMap::new();
    for event in mem.events() {
        if let slicing_observe::OwnedEvent::Counter { name, delta } = event {
            *flat_totals.entry(name).or_default() += delta;
        }
    }

    assert_eq!(
        profile_totals, flat_totals,
        "per-span sums must equal flat totals, counter for counter"
    );
    // Pin the headline figures so the workload can't silently change.
    assert_eq!(profile_totals.get("detect.cuts_explored"), Some(&1681));
    assert_eq!(profile_totals.get("detect.visited.inserts"), Some(&1681));

    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_file(&json_path).ok();
}

#[test]
fn profile_folded_emits_span_paths() {
    let trace = grid40_trace();
    let trace_path = tmp_path("folded.trace");
    std::fs::write(&trace_path, &trace).unwrap();
    let out = slicing(&[
        "profile",
        trace_path.to_str().unwrap(),
        "x@0 > 999",
        "--engine",
        "bfs",
        "--folded",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    let bfs_line = text
        .lines()
        .find(|l| l.starts_with("detect.bfs "))
        .unwrap_or_else(|| panic!("no detect.bfs stack line in:\n{text}"));
    // `name <self_nanos>` — the weight must parse as an integer.
    let weight = bfs_line.rsplit(' ').next().unwrap();
    weight.parse::<u64>().expect("folded weight is integral");
    std::fs::remove_file(&trace_path).ok();
}

#[test]
fn bench_diff_accepts_a_baseline_against_itself() {
    let baseline = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_detect.json");
    let out = slicing(&["bench-diff", baseline, baseline]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("bench-diff OK"), "{}", stdout(&out));
}

#[test]
fn bench_diff_flags_drift_past_threshold() {
    let old = tmp_path("diff-old.json");
    let new = tmp_path("diff-new.json");
    std::fs::write(
        &old,
        r#"{"schema":"slicing.bench-detect/v1","binary":"table_speedup","entries":[{"name":"bfs.grid40","detected":false,"cuts_explored":1000,"probes":4000,"hits":900,"inserts":1000,"heap_allocs":0,"seq_layers":0,"row_joins":0}]}"#,
    )
    .unwrap();
    std::fs::write(
        &new,
        r#"{"schema":"slicing.bench-detect/v1","binary":"table_speedup","entries":[{"name":"bfs.grid40","detected":false,"cuts_explored":2000,"probes":4000,"hits":900,"inserts":1000,"heap_allocs":0,"seq_layers":0,"row_joins":0}]}"#,
    )
    .unwrap();
    let out = slicing(&["bench-diff", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert!(!out.status.success(), "100% drift must fail the gate");
    let text = stdout(&out);
    assert!(text.contains("cuts_explored"), "{text}");

    // A generous threshold lets the same pair pass.
    let out = slicing(&[
        "bench-diff",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--threshold",
        "2.0",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(&old).ok();
    std::fs::remove_file(&new).ok();
}

#[test]
fn bench_diff_rejects_mismatched_schemas() {
    let old = tmp_path("diff-mismatch-old.json");
    let new = tmp_path("diff-mismatch-new.json");
    std::fs::write(
        &old,
        r#"{"schema":"slicing.bench-detect/v1","binary":"table_speedup","entries":[{"name":"a","detected":false,"cuts_explored":1,"probes":1,"hits":0,"inserts":1,"heap_allocs":0}]}"#,
    )
    .unwrap();
    std::fs::write(
        &new,
        r#"{"schema":"slicing.bench-online/v1","binary":"table_online","entries":[{"name":"a","events":1,"checks":1,"check_cost":1,"cost_per_event_milli":1,"delta_cuts":0,"alarms":0,"messages":0,"heap_allocs":0,"peak_candidates":0}]}"#,
    )
    .unwrap();
    let out = slicing(&["bench-diff", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("schema"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(&old).ok();
    std::fs::remove_file(&new).ok();
}

#[test]
fn validate_accepts_committed_artifacts_and_rejects_junk() {
    let out = slicing(&[
        "validate",
        concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_detect.json"),
        concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_online.json"),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("slicing.bench-detect/v1"), "{text}");
    assert!(text.contains("slicing.bench-online/v1"), "{text}");

    let bad = tmp_path("validate-bad.json");
    std::fs::write(&bad, r#"{"no_schema_here":true}"#).unwrap();
    let out = slicing(&["validate", bad.to_str().unwrap()]);
    assert!(!out.status.success(), "schema-less document must fail");
    std::fs::remove_file(&bad).ok();
}

#[test]
fn monitor_metrics_stream_is_valid_jsonl() {
    let trace = figure1_trace();
    let trace_path = tmp_path("metrics.trace");
    let metrics_path = tmp_path("metrics.jsonl");
    std::fs::write(&trace_path, &trace).unwrap();
    let out = slicing(&[
        "monitor",
        trace_path.to_str().unwrap(),
        "x1@0 > 1 && x3@2 <= 3",
        "--metrics",
        metrics_path.to_str().unwrap(),
        "--metrics-every",
        "4",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stream = std::fs::read_to_string(&metrics_path).unwrap();
    let lines: Vec<&str> = stream.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(!lines.is_empty(), "metrics stream is empty");
    let mut prev_seq = 0;
    for line in &lines {
        let doc = slicing_observe::json::parse(line).unwrap();
        assert_eq!(
            slicing_observe::schema::validate(&doc).unwrap(),
            slicing_observe::schema::METRICS
        );
        let seq = doc.get("seq").unwrap().as_u64().unwrap();
        assert!(seq > prev_seq || prev_seq == 0, "snapshots in order");
        prev_seq = seq;
    }
    // The tail snapshot labels the final observed-event count.
    let last = slicing_observe::json::parse(lines.last().unwrap()).unwrap();
    assert_eq!(last.get("at").unwrap().as_u64(), Some(9));
    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_file(&metrics_path).ok();
}

// ---------------------------------------------------------------------------
// Run-forever surface: flag validation, GC flags, checkpoint/resume.
// ---------------------------------------------------------------------------

#[test]
fn monitor_rejects_zero_and_garbage_cadences() {
    let trace = figure1_trace();
    for flag in ["--check-every", "--metrics-every", "--checkpoint-every"] {
        let out = slicing_with_stdin(&["monitor", "-", "x1@0 > 1", flag, "0"], &trace);
        assert!(!out.status.success(), "{flag} 0 must be rejected");
        let err = String::from_utf8_lossy(&out.stderr).into_owned();
        assert!(
            err.contains(&format!("{flag} must be positive (got 0)")),
            "{flag}: {err}"
        );
        assert!(err.contains("usage:"), "{flag}: error must carry usage");

        let out = slicing_with_stdin(&["monitor", "-", "x1@0 > 1", flag, "three"], &trace);
        assert!(!out.status.success(), "{flag} three must be rejected");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains(flag),
            "{flag}: parse error must name the flag"
        );
    }
    // --checkpoint-every without a destination is a usage error too.
    let out = slicing_with_stdin(
        &["monitor", "-", "x1@0 > 1", "--checkpoint-every", "5"],
        &trace,
    );
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs --checkpoint"));
}

#[test]
fn monitor_with_gc_matches_the_plain_verdict() {
    let trace = figure1_trace();
    let plain = slicing_with_stdin(&["monitor", "-", "x1@0 > 1 && x3@2 <= 3"], &trace);
    assert!(plain.status.success());
    let gc = slicing_with_stdin(
        &[
            "monitor",
            "-",
            "x1@0 > 1 && x3@2 <= 3",
            "--gc-lag",
            "16",
            "--gc-every",
            "2",
        ],
        &trace,
    );
    assert!(
        gc.status.success(),
        "{}",
        String::from_utf8_lossy(&gc.stderr)
    );
    assert_eq!(stdout(&plain), stdout(&gc), "GC changed the CLI verdict");
}

/// End-to-end kill-and-resume: checkpoint a run over a prefix trace, then
/// resume it against the full trace. The alarm line and the final
/// monitor report must be identical to the unbroken run, the checkpoint
/// must validate against the schema registry, and explicit GC flags must
/// be rejected on resume (the configuration travels in the checkpoint).
#[test]
fn monitor_checkpoint_resume_converges_to_the_unbroken_run() {
    let trace = figure1_trace();
    // The trace lists events in replay order, so the first lines form a
    // valid prefix computation: same processes, same per-process event
    // prefixes, no messages past the cut.
    let prefix: String = trace.lines().take(9).map(|l| format!("{l}\n")).collect();
    let ckpt = tmp_path("resume.ckpt");
    let pred = "x1@0 > 1 && x3@2 <= 3";

    let unbroken = slicing_with_stdin(&["--report", "-", "monitor", "-", pred], &trace);
    assert!(unbroken.status.success());

    let out = slicing_with_stdin(
        &["monitor", "-", pred, "--checkpoint", ckpt.to_str().unwrap()],
        &prefix,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout(&out).contains("monitored 4 events"),
        "{}",
        stdout(&out)
    );
    let doc = slicing_observe::json::parse(std::fs::read_to_string(&ckpt).unwrap().trim()).unwrap();
    assert_eq!(
        slicing_observe::schema::validate(&doc).unwrap(),
        slicing_observe::schema::CHECKPOINT
    );

    let resumed = slicing_with_stdin(
        &[
            "--report",
            "-",
            "monitor",
            "-",
            pred,
            "--resume",
            ckpt.to_str().unwrap(),
        ],
        &trace,
    );
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let text = stdout(&resumed);
    assert!(text.contains("resumed from"), "{text}");
    assert!(
        text.contains("alarm after 7 events: fault possible at cut ⟨1, 2, 2⟩"),
        "{text}"
    );
    // Line-for-line identical from the alarm on: same alarms, same
    // cumulative stats, same report document.
    let tail = |s: &str| {
        s.lines()
            .skip_while(|l| !l.starts_with("alarm"))
            .map(str::to_owned)
            .collect::<Vec<_>>()
    };
    assert_eq!(tail(&stdout(&unbroken)), tail(&text));

    // GC flags on resume are rejected: the checkpoint owns that config.
    let out = slicing_with_stdin(
        &[
            "monitor",
            "-",
            pred,
            "--resume",
            ckpt.to_str().unwrap(),
            "--gc-lag",
            "8",
        ],
        &trace,
    );
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("travels inside the checkpoint"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn detect_report_is_a_valid_run_report() {
    let trace = figure1_trace();
    let out = slicing_with_stdin(
        &["--report", "-", "detect", "-", "x1@0 > 1 && x3@2 <= 3"],
        &trace,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    let line = text
        .lines()
        .find(|l| l.starts_with('{'))
        .unwrap_or_else(|| panic!("no JSON report line in:\n{text}"));
    let doc = slicing_observe::json::parse(line).unwrap();
    assert_eq!(
        slicing_observe::schema::validate(&doc).unwrap(),
        slicing_observe::schema::RUN_REPORT
    );
    assert_eq!(doc.get("engine").unwrap().as_str(), Some("slice"));
    assert_eq!(doc.get("detected").unwrap().as_bool(), Some(true));
    let witness: Vec<u64> = doc
        .get("witness")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_u64().unwrap())
        .collect();
    assert_eq!(witness, vec![1, 2, 2], "earliest satisfying cut");
}

// ---------------------------------------------------------------------------
// `slicing serve`: multi-tenant predicate multiplexing over a live stream.
// ---------------------------------------------------------------------------

#[test]
fn serve_multiplexes_tenants_over_one_stream() {
    let trace = figure1_trace();
    let out = slicing_with_stdin(
        &[
            "--report",
            "-",
            "serve",
            "--tenant",
            "a=x1@0 > 1 && x3@2 <= 3",
            "--tenant",
            "b=x1@0 > 1 && x3@2 <= 3",
            "--tenant",
            "c=x1@0 > 1",
        ],
        &trace,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    // Tenants a and b share one group: one settle, two identical alarms.
    assert!(
        text.contains("alarm tenant=a after 7 events: fault possible at cut ⟨1, 1, 2⟩"),
        "{text}"
    );
    assert!(
        text.contains("alarm tenant=b after 7 events: fault possible at cut ⟨1, 1, 2⟩"),
        "{text}"
    );
    assert!(text.contains("alarm tenant=c after 1 events"), "{text}");
    assert!(
        text.contains("served 9 events, 4 messages: 2 alarm(s) across 3 tenant(s)"),
        "{text}"
    );
    assert!(
        text.contains("multiplexed 3 tenant(s) onto 2 group(s), 2 slot(s), 2 distinct clause(s)"),
        "{text}"
    );
    // The report is a valid serve-report document with the same story.
    let line = text
        .lines()
        .find(|l| l.starts_with('{'))
        .unwrap_or_else(|| panic!("no JSON report line in:\n{text}"));
    let doc = slicing_observe::json::parse(line).unwrap();
    assert_eq!(
        slicing_observe::schema::validate(&doc).unwrap(),
        slicing_observe::schema::SERVE_REPORT
    );
    assert_eq!(doc.get("tenants").unwrap().as_u64(), Some(3));
    assert_eq!(doc.get("groups").unwrap().as_u64(), Some(2));
    assert_eq!(doc.get("events").unwrap().as_u64(), Some(9));
    assert_eq!(
        doc.get("alarm_log").unwrap().as_array().unwrap().len(),
        3,
        "one log entry per (tenant, alarm)"
    );
}

#[test]
fn serve_roster_directives_add_and_remove_tenants_mid_stream() {
    let stream = "\
procs 2
var 0 x 0
var 1 y 0
event 0 x=0
event 1 y=0
tenant late x@0 > 0 && y@1 > 1
event 0 x=1
event 1 y=2
untenant late
event 0 x=0
event 1 y=0
tenant bad z@9 > 1
";
    let out = slicing_with_stdin(&["serve", "--tenant", "main=x@0 > 0 && y@1 > 0"], stream);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("tenant late added after 2 events"), "{text}");
    assert!(text.contains("alarm tenant=late after 4 events"), "{text}");
    assert!(text.contains("alarm tenant=main after 4 events"), "{text}");
    assert!(
        text.contains("tenant late removed after 4 events"),
        "{text}"
    );
    // The roster at the end is just `main`; the malformed directive was
    // shed with a warning instead of killing the stream.
    assert!(
        text.contains("served 6 events, 0 messages: 2 alarm(s) across 1 tenant(s)"),
        "{text}"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("warning: ignoring tenant bad"), "{err}");
}

#[test]
fn serve_checkpoints_rotate_and_resume_converges() {
    let trace = figure1_trace();
    let prefix: String = trace.lines().take(9).map(|l| format!("{l}\n")).collect();
    let ckpt = tmp_path("serve.ckpt");
    let tenants = [
        "--tenant",
        "a=x1@0 > 1 && x3@2 <= 3",
        "--tenant",
        "c=x1@0 > 1",
    ];

    let mut unbroken_args = vec!["serve"];
    unbroken_args.extend_from_slice(&tenants);
    let unbroken = slicing_with_stdin(&unbroken_args, &trace);
    assert!(unbroken.status.success());

    // First incarnation: 4 events, rotated checkpoints every 2 events.
    let ckpt_s = ckpt.to_str().unwrap();
    let mut args = vec!["serve"];
    args.extend_from_slice(&tenants);
    args.extend_from_slice(&[
        "--checkpoint",
        ckpt_s,
        "--checkpoint-every",
        "2",
        "--checkpoint-keep",
        "2",
    ]);
    let out = slicing_with_stdin(&args, &prefix);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // keep=2: the newest generation plus one older one, nothing else.
    let gen1 = std::path::PathBuf::from(format!("{ckpt_s}.1"));
    let gen2 = std::path::PathBuf::from(format!("{ckpt_s}.2"));
    assert!(ckpt.exists(), "newest checkpoint generation missing");
    assert!(gen1.exists(), "previous checkpoint generation missing");
    assert!(!gen2.exists(), "retention kept more than --checkpoint-keep");
    let doc = slicing_observe::json::parse(std::fs::read_to_string(&ckpt).unwrap().trim()).unwrap();
    assert_eq!(
        slicing_observe::schema::validate(&doc).unwrap(),
        slicing_observe::schema::SERVE_CHECKPOINT
    );

    // Second incarnation: resume from the checkpoint over the full
    // stream; the tail (alarms and summary) matches the unbroken run.
    let mut resume_args = vec!["serve"];
    resume_args.extend_from_slice(&tenants);
    resume_args.extend_from_slice(&["--resume", ckpt_s]);
    let resumed = slicing_with_stdin(&resume_args, &trace);
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let text = stdout(&resumed);
    assert!(text.contains("resumed from"), "{text}");
    let tail = |s: &str| {
        s.lines()
            .skip_while(|l| !l.starts_with("alarm tenant=a"))
            .map(str::to_owned)
            .collect::<Vec<_>>()
    };
    assert_eq!(tail(&stdout(&unbroken)), tail(&text));

    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(&gen1).ok();
}

#[test]
fn monitor_checkpoint_keep_rotates_generations() {
    let trace = figure1_trace();
    let ckpt = tmp_path("monitor-rotate.ckpt");
    let ckpt_s = ckpt.to_str().unwrap();
    let out = slicing_with_stdin(
        &[
            "monitor",
            "-",
            "x1@0 > 1 && x3@2 <= 3",
            "--checkpoint",
            ckpt_s,
            "--checkpoint-every",
            "3",
            "--checkpoint-keep",
            "3",
        ],
        &trace,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // 9 events at cadence 3 → generations for events 9, 6, 3.
    for suffix in ["", ".1", ".2"] {
        let path = std::path::PathBuf::from(format!("{ckpt_s}{suffix}"));
        assert!(path.exists(), "missing generation {ckpt_s}{suffix}");
        let doc =
            slicing_observe::json::parse(std::fs::read_to_string(&path).unwrap().trim()).unwrap();
        assert_eq!(
            slicing_observe::schema::validate(&doc).unwrap(),
            slicing_observe::schema::CHECKPOINT
        );
        std::fs::remove_file(&path).ok();
    }
    assert!(!std::path::PathBuf::from(format!("{ckpt_s}.3")).exists());
}

/// Malformed traces and predicates must come back as error messages, not
/// panics — the `expect`-on-untrusted-input regression lockdown.
#[test]
fn malformed_input_never_panics_the_cli() {
    let cases: &[(&[&str], &str, &str)] = &[
        (
            &["monitor", "-", "x@0 > 1"],
            "procs 1\nvar 0 x 0\nevent 0 y=1\n",
            "unknown variable",
        ),
        (
            &["monitor", "-", "x@0 > 1"],
            "procs 1\nvar 0 x 0\nevent 5 x=1\n",
            "process index out of range",
        ),
        (
            &["monitor", "-", "nope@0 > 1"],
            "procs 1\nvar 0 x 0\nevent 0 x=1\n",
            "no variable named",
        ),
        (
            &["serve", "--tenant", "t=x@0 > 1"],
            "procs 1\nvar 0 x 0\nmsg 0 1 7 1\n",
            "bad recv endpoint",
        ),
        (
            &["serve", "--tenant", "t=x@0 > 1 || y@1 > 1"],
            "procs 2\nvar 0 x 0\nvar 1 y 0\n",
            "conjunctive",
        ),
        (
            &["detect", "-", "x@0 > 1"],
            "procs 1\nvar 0 x zebra\n",
            "trace syntax error",
        ),
    ];
    for (args, stdin, needle) in cases {
        let out = slicing_with_stdin(args, stdin);
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(!out.status.success(), "{args:?} should fail: {err}");
        assert!(
            !err.contains("panicked"),
            "{args:?} panicked on malformed input:\n{err}"
        );
        assert!(err.contains(needle), "{args:?}: wanted {needle:?} in {err}");
    }
}
