//! End-to-end tests of the `slicing` command-line tool.

use std::process::{Command, Output, Stdio};

fn slicing(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_slicing"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn slicing_with_stdin(args: &[&str], stdin: &str) -> Output {
    use std::io::Write;
    let mut child = Command::new(env!("CARGO_BIN_EXE_slicing"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("stdin written");
    child.wait_with_output().expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn figure1_trace() -> String {
    let out = slicing(&["fixture", "figure1"]);
    assert!(out.status.success());
    stdout(&out)
}

#[test]
fn fixture_emits_a_parsable_trace() {
    let trace = figure1_trace();
    assert!(trace.contains("procs 3"));
    assert!(trace.contains("var 0 x1 2"));
    // Round-trip through the library parser.
    let comp = computation_slicing::computation::trace::from_text(&trace).unwrap();
    assert_eq!(comp.num_events(), 12);
}

#[test]
fn stats_reports_the_figure1_reduction() {
    let trace = figure1_trace();
    let out = slicing_with_stdin(&["stats", "-", "x1@0 > 1 && x3@2 <= 3"], &trace);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("28 → 6"), "{text}");
    assert!(text.contains("M3"), "{text}");
}

#[test]
fn detect_engines_agree() {
    let trace = figure1_trace();
    let pred = "x1@0 * x2@1 + x3@2 < 5 && x1@0 > 1 && x3@2 <= 3";
    for engine in [
        "slice", "bfs", "dfs", "pom", "reverse", "parallel", "hybrid",
    ] {
        let out = slicing_with_stdin(&["detect", "-", pred, "--engine", engine], &trace);
        assert!(out.status.success(), "{engine}");
        let text = stdout(&out);
        assert!(text.contains("witness cut"), "{engine}: {text}");
    }
}

#[test]
fn detect_reports_absence() {
    let trace = figure1_trace();
    let out = slicing_with_stdin(&["detect", "-", "x1@0 > 99"], &trace);
    assert!(out.status.success());
    assert!(stdout(&out).contains("does not hold anywhere"));
}

#[test]
fn modalities_answer() {
    let trace = figure1_trace();
    for (mode, expect) in [
        ("possibly", "possibly: true"),
        ("definitely", "definitely: false"),
        ("invariant", "invariant: false"),
        ("controllable", "controllable: false"),
    ] {
        let out = slicing_with_stdin(
            &["modality", "-", "x1@0 > 1 && x3@2 <= 3", "--mode", mode],
            &trace,
        );
        assert!(out.status.success(), "{mode}");
        assert!(stdout(&out).contains(expect), "{mode}: {}", stdout(&out));
    }
}

#[test]
fn show_renders_space_time() {
    let trace = figure1_trace();
    let out = slicing_with_stdin(&["show", "-"], &trace);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains('⊥'));
    assert!(text.contains("[s1]"));
    // With a cut fence.
    let out = slicing_with_stdin(&["show", "-", "2,2,2"], &trace);
    assert!(out.status.success());
    assert!(stdout(&out).contains('|'));
    // Inconsistent cuts are rejected.
    let out = slicing_with_stdin(&["show", "-", "1,1,2"], &trace);
    assert!(!out.status.success());
}

#[test]
fn cuts_lists_with_limit() {
    let trace = figure1_trace();
    let out = slicing_with_stdin(&["cuts", "-", "--limit", "5"], &trace);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("# shown 5 of 28"), "{text}");
}

#[test]
fn dot_outputs_graphviz() {
    let trace = figure1_trace();
    let out = slicing_with_stdin(&["dot", "-"], &trace);
    assert!(out.status.success());
    assert!(stdout(&out).starts_with("digraph computation"));
    let out = slicing_with_stdin(&["dot", "-", "x1@0 > 1 && x3@2 <= 3"], &trace);
    assert!(out.status.success());
    assert!(stdout(&out).starts_with("digraph slice"));
}

#[test]
fn errors_exit_nonzero_with_usage() {
    let out = slicing(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let out = slicing(&["bogus"]);
    assert!(!out.status.success());

    let trace = figure1_trace();
    let out = slicing_with_stdin(&["detect", "-", "nope@0 > 1"], &trace);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no variable"));

    let out = slicing_with_stdin(&["detect", "-", "x1@0 > 1", "--engine", "warp"], &trace);
    assert!(!out.status.success());
}

#[test]
fn help_prints_usage() {
    let out = slicing(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("usage:"));
}

#[test]
fn detect_accepts_a_timeout() {
    let trace = figure1_trace();
    let out = slicing_with_stdin(
        &[
            "detect",
            "-",
            "x1@0 > 1 && x3@2 <= 3",
            "--timeout-ms",
            "60000",
        ],
        &trace,
    );
    assert!(out.status.success());
    assert!(stdout(&out).contains("witness cut"));
}

#[test]
fn recover_runs_the_loop_and_reports() {
    let out = slicing(&[
        "--report",
        "-",
        "recover",
        "--protocol",
        "ps",
        "--procs",
        "3",
        "--events",
        "8",
        "--seed",
        "5",
        "--fault",
        "corrupt",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("verdict: recovered"), "{text}");
    assert!(text.contains("recovery line:"), "{text}");
    assert!(text.contains("slicing.recovery-report/v1"), "{text}");
}

#[test]
fn recover_with_no_fault_is_clean() {
    let out = slicing(&[
        "recover",
        "--protocol",
        "db",
        "--procs",
        "3",
        "--events",
        "8",
        "--fault",
        "none",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("verdict: clean-already"));
}

#[test]
fn recover_rejects_unknown_protocols_and_faults() {
    let out = slicing(&["recover", "--protocol", "warp"]);
    assert!(!out.status.success());

    let out = slicing(&["recover"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--protocol"));
}
