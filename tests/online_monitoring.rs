//! Replaying recorded protocol runs through the online monitor and
//! checking it against offline detection at every prefix.

use std::collections::HashMap;

use computation_slicing::detect::OnlineMonitor;
use computation_slicing::sim::token_ring::{no_token_spec, TokenRing};
use computation_slicing::sim::{run, SimConfig};
use computation_slicing::{detect_with_slicing, Computation, EventId, Limits};

fn token_run(seed: u64, n: usize, events: u32) -> Computation {
    let cfg = SimConfig {
        seed,
        max_events_per_process: events,
        ..SimConfig::default()
    };
    run(&mut TokenRing::new(n), &cfg).unwrap()
}

/// Streams each original event (with its recorded values and messages)
/// into a monitor watching "no process has the token", checking after
/// every step that the monitor agrees with offline slice-then-search on
/// the same prefix — including the exact alarm cut.
#[test]
fn monitor_agrees_with_offline_detection_at_every_prefix() {
    for seed in [3u64, 5, 9] {
        let comp = token_run(seed, 3, 8);
        let n = comp.num_processes();
        let mut m = OnlineMonitor::new(n);
        let mut mon_vars = Vec::new();
        for i in 0..n {
            let p = comp.process(i);
            let v = comp.var(p, "has_token").unwrap();
            mon_vars.push(m.declare_var(i, "has_token", comp.value_at(v, 0)).unwrap());
        }
        for &v in &mon_vars {
            m.watch_bool(v, "token absent", |val| !val).unwrap();
        }

        // Original event id → monitor event id, filled as we stream.
        let mut mapped: HashMap<EventId, EventId> = HashMap::new();
        let mut alarmed = false;
        for e in comp.events() {
            if comp.is_initial(e) {
                continue;
            }
            let p = comp.process_of(e);
            let pos = comp.position_of(e);
            let var_orig = comp.var(p, "has_token").unwrap();
            let value = comp.value_at(var_orig, pos);
            let ne = m
                .observe(p.as_usize(), &[(mon_vars[p.as_usize()], value)])
                .unwrap();
            mapped.insert(e, ne);
            // Append order is a valid observation order for the simulator's
            // runs, so every receive's send is already mapped.
            for msg in comp.messages_into(e).collect::<Vec<_>>() {
                m.message(mapped[&msg.send], ne).unwrap();
            }

            // Offline ground truth on the same prefix.
            let history = m.history().unwrap();
            let spec = no_token_spec(&history);
            let offline = detect_with_slicing(&history, &spec, &Limits::none());
            let online = m.check().unwrap();
            if !alarmed {
                assert_eq!(
                    online.is_some(),
                    offline.detected(),
                    "seed {seed}: prefix after {}",
                    comp.describe_event(e)
                );
                if let Some(cut) = online {
                    assert_eq!(Some(&cut), offline.search.found.as_ref(), "seed {seed}");
                    alarmed = true;
                }
            } else {
                // `possibly` is monotone over growing histories: offline
                // keeps detecting; the monitor reports the alarm once.
                assert!(offline.detected(), "seed {seed}");
            }
        }
        assert!(alarmed, "seed {seed}: the token never travelled");
    }
}

/// The monitor's history snapshot equals the original computation once the
/// whole run has been streamed.
#[test]
fn full_replay_reconstructs_the_run() {
    let comp = token_run(5, 3, 10);
    let n = comp.num_processes();
    let mut m = OnlineMonitor::new(n);
    let mut mon_vars = Vec::new();
    for i in 0..n {
        let p = comp.process(i);
        for name in ["has_token", "work"] {
            let v = comp.var(p, name).unwrap();
            let mv = m.declare_var(i, name, comp.value_at(v, 0)).unwrap();
            mon_vars.push((i, name, mv));
        }
    }

    let mut mapped: HashMap<EventId, EventId> = HashMap::new();
    for e in comp.events() {
        if comp.is_initial(e) {
            continue;
        }
        let p = comp.process_of(e);
        let pos = comp.position_of(e);
        let writes: Vec<_> = mon_vars
            .iter()
            .filter(|&&(i, _, _)| i == p.as_usize())
            .map(|&(_, name, mv)| {
                let orig = comp.var(p, name).unwrap();
                (mv, comp.value_at(orig, pos))
            })
            .collect();
        let ne = m.observe(p.as_usize(), &writes).unwrap();
        mapped.insert(e, ne);
        for msg in comp.messages_into(e).collect::<Vec<_>>() {
            m.message(mapped[&msg.send], ne).unwrap();
        }
    }

    let history = m.history().unwrap();
    assert_eq!(history.num_events(), comp.num_events());
    assert_eq!(history.messages().len(), comp.messages().len());
    for p in comp.processes() {
        for name in ["has_token", "work"] {
            let a = comp.var(p, name).unwrap();
            let b = history.var(p, name).unwrap();
            for pos in 0..comp.len(p) {
                assert_eq!(
                    history.value_at(b, pos),
                    comp.value_at(a, pos),
                    "{p} {name} @ {pos}"
                );
            }
        }
    }
}
