//! Property-based validation of every slicing algorithm against the
//! brute-force lattice oracles, on randomly generated computations.

use std::collections::BTreeSet;

use proptest::prelude::*;

use computation_slicing::computation::lattice::all_cuts;
use computation_slicing::computation::oracle::{expected_slice_cuts, is_sublattice};
use computation_slicing::computation::test_fixtures::{random_computation, RandomConfig};
use computation_slicing::slicer::{
    graft_and, graft_or, slice_co_regular, slice_conjunctive, slice_klocal, slice_linear,
    slice_postlinear,
};
use computation_slicing::{
    Computation, Conjunctive, Cut, KLocalPredicate, LocalPredicate, Predicate,
};

/// Strategy: a small random computation described by (seed, processes,
/// events per process, message density).
fn computations() -> impl Strategy<Value = Computation> {
    (any::<u64>(), 2usize..=4, 2u32..=4, 0u64..=70).prop_map(|(seed, n, m, msg)| {
        let cfg = RandomConfig {
            processes: n,
            events_per_process: m,
            send_percent: msg,
            recv_percent: msg,
            value_range: 3,
        };
        random_computation(seed, &cfg)
    })
}

fn threshold_conjunctive(comp: &Computation, t: i64) -> Conjunctive {
    let clauses = comp
        .processes()
        .map(|p| {
            let x = comp.var(p, "x").unwrap();
            LocalPredicate::int(x, format!("x >= {t}"), move |v| v >= t)
        })
        .collect();
    Conjunctive::new(clauses)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The conjunctive slicer is lean and equals the oracle closure.
    #[test]
    fn conjunctive_slicer_is_exact(comp in computations(), t in 0i64..3) {
        let pred = threshold_conjunctive(&comp, t);
        let slice = slice_conjunctive(&comp, &pred);
        let got: BTreeSet<Cut> = all_cuts(&slice).into_iter().collect();
        let (closure, sat) = expected_slice_cuts(&comp, |st| pred.eval(st));
        prop_assert_eq!(&got, &closure);
        prop_assert_eq!(closure.len(), sat.len(), "regular predicates slice lean");
    }

    /// The generic linear slicer agrees with the fast conjunctive slicer.
    #[test]
    fn linear_equals_conjunctive_on_conjunctive_inputs(comp in computations(), t in 0i64..3) {
        let pred = threshold_conjunctive(&comp, t);
        let fast: BTreeSet<Cut> = all_cuts(&slice_conjunctive(&comp, &pred)).into_iter().collect();
        let gen: BTreeSet<Cut> = all_cuts(&slice_linear(&comp, &pred)).into_iter().collect();
        prop_assert_eq!(fast, gen);
    }

    /// The post-linear slicer matches the oracle on regular predicates.
    #[test]
    fn postlinear_slicer_matches_oracle(comp in computations(), t in 0i64..3) {
        let pred = threshold_conjunctive(&comp, t);
        let got: BTreeSet<Cut> = all_cuts(&slice_postlinear(&comp, &pred)).into_iter().collect();
        let (closure, _) = expected_slice_cuts(&comp, |st| pred.eval(st));
        prop_assert_eq!(got, closure);
    }

    /// The co-regular slicer computes the exact complement closure.
    #[test]
    fn coregular_slicer_matches_oracle(comp in computations(), t in 0i64..3) {
        let pred = threshold_conjunctive(&comp, t);
        let got: BTreeSet<Cut> = all_cuts(&slice_co_regular(&comp, &pred)).into_iter().collect();
        let (closure, _) = expected_slice_cuts(&comp, |st| !pred.eval(st));
        prop_assert_eq!(got, closure);
    }

    /// The k-local slicer is exact for 2-local inequality predicates.
    #[test]
    fn klocal_slicer_matches_oracle(comp in computations()) {
        let x0 = comp.var(comp.process(0), "x").unwrap();
        let x1 = comp.var(comp.process(1), "x").unwrap();
        let pred = KLocalPredicate::new(vec![x0, x1], "x0 != x1", |v| v[0] != v[1]);
        let got: BTreeSet<Cut> = all_cuts(&slice_klocal(&comp, &pred)).into_iter().collect();
        let (closure, _) = expected_slice_cuts(&comp, |st| pred.eval(st));
        prop_assert_eq!(got, closure);
    }

    /// Grafts compute intersection and union-closure of cut sets.
    #[test]
    fn grafting_matches_set_semantics(comp in computations(), t1 in 0i64..3, t2 in 0i64..3) {
        let x0 = comp.var(comp.process(0), "x").unwrap();
        let x1 = comp.var(comp.process(1), "x").unwrap();
        let p1 = Conjunctive::new(vec![LocalPredicate::int(x0, "a", move |v| v >= t1)]);
        let p2 = Conjunctive::new(vec![LocalPredicate::int(x1, "b", move |v| v <= t2)]);
        let s1 = slice_conjunctive(&comp, &p1);
        let s2 = slice_conjunctive(&comp, &p2);
        let c1: BTreeSet<Cut> = all_cuts(&s1).into_iter().collect();
        let c2: BTreeSet<Cut> = all_cuts(&s2).into_iter().collect();

        let anded: BTreeSet<Cut> = all_cuts(&graft_and(&s1, &s2)).into_iter().collect();
        let want_and: BTreeSet<Cut> = c1.intersection(&c2).cloned().collect();
        prop_assert_eq!(anded, want_and);

        let ored: BTreeSet<Cut> = all_cuts(&graft_or(&s1, &s2)).into_iter().collect();
        let union: Vec<Cut> = c1.union(&c2).cloned().collect();
        let want_or = computation_slicing::computation::oracle::sublattice_closure(&union);
        prop_assert_eq!(ored, want_or);
    }

    /// Every slice's cut set is a sublattice — the structural invariant
    /// behind Birkhoff's representation.
    #[test]
    fn slices_are_always_sublattices(comp in computations(), t in 0i64..3) {
        let pred = threshold_conjunctive(&comp, t);
        for slice in [
            slice_linear(&comp, &pred),
            slice_co_regular(&comp, &pred),
            slice_postlinear(&comp, &pred),
        ] {
            let cuts: BTreeSet<Cut> = all_cuts(&slice).into_iter().collect();
            prop_assert!(is_sublattice(&cuts));
        }
    }
}
