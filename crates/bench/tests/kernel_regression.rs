//! Fixed-seed engine regression suite for the cut kernel.
//!
//! The expected values below were captured from the pre-kernel
//! implementation (every engine backed by `std::collections::HashSet<Cut>`
//! with heap-allocated `Cut(Vec<u32>)` payloads). The pooled `CutSet` /
//! `CutMap64` kernel, the `Arc`-shared slice J-table, and the sharded
//! parallel BFS must reproduce them bit-for-bit: same verdict, same
//! witness size, same number of cuts explored. Any divergence means the
//! optimization changed semantics, not just speed.

use std::sync::Arc;

use slicing_bench::Workload;
use slicing_computation::test_fixtures::{figure1, grid, random_computation, RandomConfig};
use slicing_computation::{cut_heap_allocs, Computation, ProcSet};
use slicing_detect::{
    detect_bfs, detect_bfs_parallel, detect_dfs, detect_pom, detect_reverse_search,
    detect_with_slicing, Limits,
};
use slicing_observe::{Level, MemoryRecorder};
use slicing_predicates::{expr::parse_predicate, FnPredicate};
use slicing_sim::primary_secondary;

/// (detected, witness size, cuts explored) for one engine run.
type Row = (bool, Option<u64>, u64);

fn check(
    tag: &str,
    comp: &Computation,
    pred: &FnPredicate,
    expect: [Row; 4],
    par_size: Option<u64>,
) {
    let l = Limits::none();
    let rows = [
        ("bfs", detect_bfs(comp, comp, pred, &l)),
        ("dfs", detect_dfs(comp, comp, pred, &l)),
        ("pom", detect_pom(comp, pred, &l)),
        ("rev", detect_reverse_search(comp, pred, &l)),
    ];
    for ((name, d), want) in rows.into_iter().zip(expect) {
        let got = (
            d.detected(),
            d.found.as_ref().map(|c| c.size()),
            d.cuts_explored,
        );
        assert_eq!(got, want, "{tag} {name}");
    }
    for threads in [2, 4] {
        let par = detect_bfs_parallel(comp, comp, pred, &l, threads);
        assert_eq!(par.detected(), par_size.is_some(), "{tag} par t{threads}");
        assert_eq!(
            par.found.as_ref().map(|c| c.size()),
            par_size,
            "{tag} par t{threads}"
        );
    }
}

#[test]
fn random_computations_match_the_old_kernel() {
    let cfg = RandomConfig {
        processes: 4,
        events_per_process: 4,
        value_range: 3,
        send_percent: 40,
        recv_percent: 40,
    };
    // seed → (bfs, dfs, pom, rev) rows + parallel witness size.
    let table: [(u64, [Row; 4], Option<u64>); 4] = [
        (
            1,
            [
                (true, Some(7), 25),
                (true, Some(13), 27),
                (true, Some(13), 27),
                (true, Some(8), 160),
            ],
            Some(7),
        ),
        (
            7,
            [
                (true, Some(6), 8),
                (true, Some(11), 8),
                (true, Some(11), 8),
                (true, Some(11), 8),
            ],
            Some(6),
        ),
        (
            13,
            [
                (true, Some(7), 29),
                (true, Some(7), 4),
                (true, Some(7), 4),
                (true, Some(8), 5),
            ],
            Some(7),
        ),
        (
            42,
            [
                (true, Some(4), 1),
                (true, Some(4), 1),
                (true, Some(4), 1),
                (true, Some(4), 1),
            ],
            Some(4),
        ),
    ];
    for (seed, expect, par_size) in table {
        let comp = random_computation(seed, &cfg);
        let vars: Vec<_> = comp
            .processes()
            .map(|p| comp.var(p, "x").unwrap())
            .collect();
        let t = (seed % 5) as i64;
        let pred = FnPredicate::new(ProcSet::all(4), "sum == t", move |st| {
            vars.iter().map(|&v| st.get(v).expect_int()).sum::<i64>() == t
        });
        check(&format!("rand{seed}"), &comp, &pred, expect, par_size);
    }
}

#[test]
fn figure1_paper_predicate_matches_the_old_kernel() {
    let comp = figure1();
    let pred = parse_predicate(&comp, "x1@0 * x2@1 + x3@2 < 5 && x1@0 > 1 && x3@2 <= 3").unwrap();
    let d = detect_bfs(&comp, &comp, &pred, &Limits::none());
    assert!(d.detected());
    assert_eq!(d.found.as_ref().map(|c| c.size()), Some(5));
    assert_eq!(d.cuts_explored, 6);
}

#[test]
fn exhaustive_grid_sweep_matches_the_old_kernel() {
    // Unsatisfiable predicate: every engine sweeps all 13×13 = 169 cuts.
    let comp = grid(12, 12);
    let never = FnPredicate::new(ProcSet::all(2), "false", |_| false);
    check(
        "grid12",
        &comp,
        &never,
        [
            (false, None, 169),
            (false, None, 169),
            (false, None, 169),
            (false, None, 169),
        ],
        None,
    );
}

#[test]
fn protocol_slicing_pipeline_matches_the_old_kernel() {
    for (seed, size) in [(3u64, 10), (8, 8)] {
        let comp = Workload::PrimarySecondary.simulate(5, 10, seed);
        let faulty = Workload::PrimarySecondary.inject_fault(&comp, seed);
        let spec = primary_secondary::violation_spec(&faulty);
        let s = detect_with_slicing(&faulty, &spec, &Limits::none());
        assert!(s.detected(), "seed {seed}");
        assert_eq!(
            s.search.found.as_ref().map(|c| c.size()),
            Some(size),
            "seed {seed}"
        );
        assert_eq!(s.search.cuts_explored, 1, "seed {seed}");
    }
}

#[test]
fn protocol_workload_counters_are_pinned() {
    // The scenario-zoo workloads through the same slicing pipeline:
    // detection verdict, cuts explored, J-row joins, and the visited-set
    // probe/hit/insert counters are exact functions of the fixed seed.
    //
    // (workload, seed, cuts, row_joins, probes, hits, inserts)
    let table = [
        (
            Workload::LeaderElection,
            2u64,
            1u64,
            34u64,
            1u64,
            0u64,
            1u64,
        ),
        (Workload::CrdtReplication, 0, 1, 1418, 1, 0, 1),
        (Workload::WorkQueue, 0, 1, 194, 1, 0, 1),
    ];
    for (w, seed, cuts, row_joins, probes, hits, inserts) in table {
        let comp = w.simulate(4, 8, seed);
        let faulty = w.inject_fault(&comp, seed.wrapping_mul(1009));
        let spec = w.violation_spec(&faulty);
        let rec = Arc::new(MemoryRecorder::new(Level::Trace));
        let s = {
            let _guard = slicing_observe::scoped(rec.clone());
            detect_with_slicing(&faulty, &spec, &Limits::none())
        };
        let tag = format!("{} seed {seed}", w.name());
        assert!(s.detected(), "{tag}");
        let got = (
            s.search.cuts_explored,
            rec.counter_total("slice.j_table.row_joins"),
            rec.counter_total("detect.visited.probes"),
            rec.counter_total("detect.visited.hits"),
            rec.counter_total("detect.visited.inserts"),
        );
        assert_eq!(got, (cuts, row_joins, probes, hits, inserts), "{tag}");
    }
}

#[test]
fn slicer_kernel_counters_are_pinned() {
    // The kernelized slicer's deterministic work counters on fixed-seed
    // protocol workloads: J-row joins (the flat-table hot loop), J-table
    // builds, and graft edge merges are exact functions of the input.
    // Drift means the slicing algorithm changed, not just its speed — and
    // the cut heap must stay untouched end to end (the warm-arena / inline
    // contract the 3× slicing win rests on).
    //
    // (workload, seed, row_joins, builds, edges_merged)
    let table = [
        (Workload::PrimarySecondary, 3u64, 2287u64, 61u64, 332u64),
        (Workload::PrimarySecondary, 8, 1512, 61, 29),
        (Workload::DatabasePartitioning, 5, 261, 12, 74),
    ];
    for (w, seed, row_joins, builds, merged) in table {
        let comp = w.simulate(5, 10, seed);
        let faulty = w.inject_fault(&comp, seed);
        let spec = w.violation_spec(&faulty);
        let rec = Arc::new(MemoryRecorder::new(Level::Trace));
        let allocs_before = cut_heap_allocs();
        let s = {
            let _guard = slicing_observe::scoped(rec.clone());
            detect_with_slicing(&faulty, &spec, &Limits::none())
        };
        let tag = format!("{} seed {seed}", w.name());
        assert!(s.detected(), "{tag}");
        assert_eq!(cut_heap_allocs() - allocs_before, 0, "{tag}: cut heap");
        let got = (
            rec.counter_total("slice.j_table.row_joins"),
            rec.counter_total("slice.j_table.builds"),
            rec.counter_total("slice.graft.edges_merged"),
        );
        assert_eq!(got, (row_joins, builds, merged), "{tag}");
    }
}
