//! Fixed-seed regression pins for the lean (bounded-memory) engine's
//! deterministic counters, mirroring `kernel_regression.rs`.
//!
//! The expected values below were captured from the run that produced the
//! committed `BENCH_memory.json`. Layers walked, peak live cuts, and
//! regeneration probes are exact functions of the workload — any drift
//! means the traversal order (and therefore the engine's semantics or its
//! memory bound) changed, not just its speed.

use std::sync::Arc;

use slicing_bench::Workload;
use slicing_computation::test_fixtures::{grid, hypercube};
use slicing_computation::{Computation, ProcSet};
use slicing_detect::{detect_bfs, detect_lean, Limits};
use slicing_observe::{Level, MemoryRecorder};
use slicing_predicates::{FnPredicate, Predicate};

/// (detected, witness size, cuts explored, layers, peak live cuts,
/// regeneration probes) for one lean run.
type Pin = (bool, Option<u64>, u64, u64, u64, u64);

fn lean_counters<P: Predicate>(tag: &str, comp: &Computation, pred: &P) -> Pin {
    let rec = Arc::new(MemoryRecorder::new(Level::Trace));
    let d = {
        let _guard = slicing_observe::scoped(rec.clone());
        detect_lean(comp, comp, pred, &Limits::none())
    };
    assert!(d.completed(), "{tag}: aborted under no limits");
    // The lean verdict and witness must also still match full BFS.
    let bfs = detect_bfs(comp, comp, pred, &Limits::none());
    assert_eq!(d.detected(), bfs.detected(), "{tag}: verdict vs bfs");
    assert_eq!(d.found, bfs.found, "{tag}: witness vs bfs");
    (
        d.detected(),
        d.found.as_ref().map(|c| c.size()),
        d.cuts_explored,
        rec.counter_total("detect.lean.layers"),
        d.max_stored_cuts,
        rec.counter_total("detect.lean.regen_probes"),
    )
}

#[test]
fn grid40_counters_are_pinned() {
    let comp = grid(40, 40);
    let never = FnPredicate::new(ProcSet::all(2), "false", |_| false);
    // 41² cuts in 81 layers; each interior cut probes both retreats.
    assert_eq!(
        lean_counters("grid40", &comp, &never),
        (false, None, 1681, 81, 81, 3200)
    );
}

#[test]
fn cube5x8_counters_are_pinned() {
    let comp = hypercube(5, 8);
    let never = FnPredicate::new(ProcSet::all(5), "false", |_| false);
    // 9⁵ cuts in 41 layers; the widest layer pair peaks at 7851 live cuts.
    assert_eq!(
        lean_counters("cube5x8", &comp, &never),
        (false, None, 59049, 41, 7851, 669952)
    );
}

#[test]
fn protocol_counters_are_pinned() {
    // (workload, layers, peak live, regen probes, witness size, cuts).
    let table = [
        (Workload::PrimarySecondary, 6, 78, 475, 10, 76),
        (Workload::DatabasePartitioning, 25, 268, 18788, 29, 1912),
    ];
    for (w, layers, peak, probes, size, cuts) in table {
        let healthy = w.simulate(5, 10, 3);
        let faulty = w.inject_fault(&healthy, 3);
        let pred = w.violation_pred(&faulty);
        assert_eq!(
            lean_counters(w.name(), &faulty, &pred),
            (true, Some(size), cuts, layers, peak, probes),
            "{}",
            w.name()
        );
    }
}
