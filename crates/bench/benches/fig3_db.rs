//! Criterion micro-benchmark tracking **Figure 3**: computation slicing
//! vs. partial-order methods on database-partitioning runs. The paper's
//! full sweep lives in the `fig3_database` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use slicing_bench::{measure_pom, measure_slicing, Workload};
use slicing_detect::Limits;

fn bench_fig3(c: &mut Criterion) {
    let w = Workload::DatabasePartitioning;
    let limits = Limits::none();
    let mut group = c.benchmark_group("fig3_database");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for &(procs, faults) in &[(4usize, 0u32), (6, 0), (4, 1), (6, 1)] {
        let mut comp = w.simulate(procs, 12, 42);
        for f in 0..faults {
            comp = w.inject_fault(&comp, 7 + u64::from(f));
        }
        let label = format!("n{procs}_f{faults}");
        group.bench_with_input(BenchmarkId::new("slicing", &label), &comp, |b, comp| {
            b.iter(|| measure_slicing(w, comp, &limits))
        });
        group.bench_with_input(BenchmarkId::new("pom", &label), &comp, |b, comp| {
            b.iter(|| measure_pom(w, comp, &limits))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
