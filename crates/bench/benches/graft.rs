//! Grafting cost (Section 3.4): conjunction and disjunction grafts are
//! `O(n|E|)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use slicing_computation::test_fixtures::{random_computation, RandomConfig};
use slicing_core::{graft_and, graft_or, slice_conjunctive, Slice};
use slicing_predicates::{Conjunctive, LocalPredicate};

fn slices(events: u32) -> (slicing_computation::Computation, u32) {
    let cfg = RandomConfig {
        processes: 6,
        events_per_process: events,
        send_percent: 30,
        recv_percent: 30,
        value_range: 4,
    };
    (random_computation(3, &cfg), events)
}

fn pred(comp: &slicing_computation::Computation, proc_idx: usize, t: i64) -> Conjunctive {
    let p = comp.process(proc_idx);
    let x = comp.var(p, "x").unwrap();
    Conjunctive::new(vec![LocalPredicate::int(x, "thr", move |v| v >= t)])
}

fn bench_grafts(c: &mut Criterion) {
    let mut group = c.benchmark_group("graft");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for &events in &[25u32, 50, 100] {
        let (comp, _) = slices(events);
        let s1: Slice<'_> = slice_conjunctive(&comp, &pred(&comp, 0, 1));
        let s2: Slice<'_> = slice_conjunctive(&comp, &pred(&comp, 1, 2));
        group.bench_with_input(
            BenchmarkId::new("and", events),
            &(&s1, &s2),
            |b, (s1, s2)| b.iter(|| graft_and(s1, s2)),
        );
        group.bench_with_input(
            BenchmarkId::new("or", events),
            &(&s1, &s2),
            |b, (s1, s2)| b.iter(|| graft_or(s1, s2)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_grafts);
criterion_main!(benches);
