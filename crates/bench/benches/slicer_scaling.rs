//! Scaling of the core slicers with |E| — checks the complexity claims of
//! Sections 3.3 and 4.3: the conjunctive slicer is `O(|E|)` and the
//! generic linear/regular slicer `O(n²|E|)`, so doubling the events should
//! roughly double both (for fixed n).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use slicing_computation::test_fixtures::{random_computation, RandomConfig};
use slicing_computation::Computation;
use slicing_core::{slice_conjunctive, slice_linear, slice_postlinear};
use slicing_predicates::{AtMostInTransit, Conjunctive, LocalPredicate};

fn workload(n: usize, events: u32) -> (Computation, Conjunctive) {
    let cfg = RandomConfig {
        processes: n,
        events_per_process: events,
        send_percent: 30,
        recv_percent: 30,
        value_range: 4,
    };
    let comp = random_computation(7, &cfg);
    let clauses = comp
        .processes()
        .map(|p| {
            let x = comp.var(p, "x").unwrap();
            LocalPredicate::int(x, "x >= 1", |v| v >= 1)
        })
        .collect();
    (comp, Conjunctive::new(clauses))
}

fn bench_slicers(c: &mut Criterion) {
    let mut group = c.benchmark_group("slicer_scaling");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for &events in &[25u32, 50, 100] {
        let (comp, pred) = workload(6, events);
        group.bench_with_input(
            BenchmarkId::new("conjunctive_O(E)", events),
            &(&comp, &pred),
            |b, (comp, pred)| b.iter(|| slice_conjunctive(comp, pred)),
        );
        group.bench_with_input(
            BenchmarkId::new("linear_O(n2E)", events),
            &(&comp, &pred),
            |b, (comp, pred)| b.iter(|| slice_linear(comp, *pred)),
        );
        group.bench_with_input(
            BenchmarkId::new("postlinear_O(n2E)", events),
            &(&comp, &pred),
            |b, (comp, pred)| b.iter(|| slice_postlinear(comp, *pred)),
        );
        let chan = AtMostInTransit::new(comp.process(0), comp.process(1), 0);
        group.bench_with_input(
            BenchmarkId::new("linear_channel", events),
            &(&comp, chan),
            |b, (comp, chan)| b.iter(|| slice_linear(comp, chan)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_slicers);
criterion_main!(benches);
