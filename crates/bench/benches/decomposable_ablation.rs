//! Ablation for Section 4.1's headline claim: on the "counters of all
//! processes are approximately synchronized" predicate (clause span k = 2,
//! s = n clauses per process), the decomposable slicer is ~n× faster than
//! slicing the conjunction as one monolithic regular predicate with the
//! generic `O(n²|E|)` algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use slicing_computation::{Computation, GlobalState, ProcSet, VarRef};
use slicing_core::{slice_decomposable, slice_linear};
use slicing_predicates::{BoundedDifference, LinearPredicate, Predicate};
use slicing_sim::clock_sync::{self, ClockSync};
use slicing_sim::{run, SimConfig};

fn counters(n: usize, events: u32) -> (Computation, Vec<VarRef>) {
    let cfg = SimConfig {
        seed: 17,
        max_events_per_process: events,
        ..SimConfig::default()
    };
    let comp = run(&mut ClockSync::new(n), &cfg).expect("protocol run builds");
    let vars = clock_sync::clock_vars(&comp);
    (comp, vars)
}

/// The whole conjunction treated as one opaque regular predicate — what
/// the ICDCS'01 algorithm would slice directly.
#[derive(Debug)]
struct Monolithic(Vec<BoundedDifference>);

impl Predicate for Monolithic {
    fn support(&self) -> ProcSet {
        self.0
            .iter()
            .map(Predicate::support)
            .fold(ProcSet::empty(), ProcSet::union)
    }

    fn eval(&self, st: &GlobalState<'_>) -> bool {
        self.0.iter().all(|c| c.eval(st))
    }
}

impl LinearPredicate for Monolithic {
    fn forbidden_process(&self, st: &GlobalState<'_>) -> slicing_computation::ProcessId {
        self.0
            .iter()
            .find(|c| !c.eval(st))
            .expect("called on falsifying state")
            .forbidden_process(st)
    }
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposable_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for &n in &[4usize, 8, 12] {
        let (comp, vars) = counters(n, 12);
        let clauses = clock_sync::synchronized_clauses(&comp, 3);
        let _ = vars;
        group.bench_with_input(
            BenchmarkId::new("decomposable", n),
            &(&comp, &clauses),
            |b, (comp, clauses)| b.iter(|| slice_decomposable(comp, clauses)),
        );
        let mono = Monolithic(clauses.clone());
        group.bench_with_input(
            BenchmarkId::new("monolithic", n),
            &(&comp, &mono),
            |b, (comp, mono)| b.iter(|| slice_linear(comp, *mono)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
