//! Criterion micro-benchmark tracking **Figure 2**: computation slicing
//! vs. partial-order methods on primary–secondary runs, fault-free and
//! with one injected fault. The paper's full sweep lives in the
//! `fig2_primary_secondary` binary; this bench pins a few points so
//! regressions show in `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use slicing_bench::{measure_pom, measure_slicing, Workload};
use slicing_detect::Limits;

fn bench_fig2(c: &mut Criterion) {
    let w = Workload::PrimarySecondary;
    let limits = Limits::none();
    let mut group = c.benchmark_group("fig2_primary_secondary");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for &(procs, faults) in &[(4usize, 0u32), (5, 0), (4, 1), (5, 1)] {
        let mut comp = w.simulate(procs, 12, 42);
        for f in 0..faults {
            comp = w.inject_fault(&comp, 7 + u64::from(f));
        }
        let label = format!("n{procs}_f{faults}");
        group.bench_with_input(BenchmarkId::new("slicing", &label), &comp, |b, comp| {
            b.iter(|| measure_slicing(w, comp, &limits))
        });
        group.bench_with_input(BenchmarkId::new("pom", &label), &comp, |b, comp| {
            b.iter(|| measure_pom(w, comp, &limits))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
