//! k-local slicing cost (Section 4.2): `O(n · m^(k-1) · |E|)` — the DNF
//! transform dominates as events per process (`m`) grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use slicing_computation::test_fixtures::{random_computation, RandomConfig};
use slicing_core::slice_klocal;
use slicing_predicates::KLocalPredicate;

fn bench_klocal(c: &mut Criterion) {
    let mut group = c.benchmark_group("klocal");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for &events in &[8u32, 16, 32] {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: events,
            send_percent: 30,
            recv_percent: 30,
            value_range: 6,
        };
        let comp = random_computation(11, &cfg);
        let x0 = comp.var(comp.process(0), "x").unwrap();
        let x1 = comp.var(comp.process(1), "x").unwrap();
        let x2 = comp.var(comp.process(2), "x").unwrap();

        let p2 = KLocalPredicate::new(vec![x0, x1], "x0 != x1", |v| v[0] != v[1]);
        group.bench_with_input(BenchmarkId::new("k2_neq", events), &comp, |b, comp| {
            b.iter(|| slice_klocal(comp, &p2))
        });

        let p3 = KLocalPredicate::new(vec![x0, x1, x2], "x0+x1==x2", |v| {
            v[0].expect_int() + v[1].expect_int() == v[2].expect_int()
        });
        group.bench_with_input(BenchmarkId::new("k3_sum", events), &comp, |b, comp| {
            b.iter(|| slice_klocal(comp, &p3))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_klocal);
criterion_main!(benches);
