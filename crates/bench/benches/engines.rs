//! Cross-engine comparison on one fixed workload: how the detection
//! engines (BFS, DFS, reverse search, partial-order methods, parallel BFS,
//! slice-then-search, hybrid) trade time against each other when the
//! predicate holds nowhere (worst case: the space must be exhausted).

use criterion::{criterion_group, criterion_main, Criterion};

use slicing_bench::Workload;
use slicing_detect::{
    detect_bfs, detect_bfs_parallel, detect_dfs, detect_hybrid, detect_pom, detect_reverse_search,
    detect_with_slicing, suggested_pom_budget, Limits,
};

fn bench_engines(c: &mut Criterion) {
    let w = Workload::PrimarySecondary;
    let comp = w.simulate(4, 10, 7);
    let pred = w.violation_pred(&comp);
    let spec = w.violation_spec(&comp);
    let limits = Limits::none();

    let mut group = c.benchmark_group("engines_ps_fault_free");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("bfs", |b| {
        b.iter(|| detect_bfs(&comp, &comp, &pred, &limits))
    });
    group.bench_function("dfs", |b| {
        b.iter(|| detect_dfs(&comp, &comp, &pred, &limits))
    });
    group.bench_function("reverse_search", |b| {
        b.iter(|| detect_reverse_search(&comp, &pred, &limits))
    });
    group.bench_function("pom", |b| b.iter(|| detect_pom(&comp, &pred, &limits)));
    group.bench_function("parallel_bfs_4", |b| {
        b.iter(|| detect_bfs_parallel(&comp, &comp, &pred, &limits, 4))
    });
    group.bench_function("slicing", |b| {
        b.iter(|| detect_with_slicing(&comp, &spec, &limits))
    });
    let budget = suggested_pom_budget(&comp, 4);
    group.bench_function("hybrid", |b| {
        b.iter(|| detect_hybrid(&comp, &spec, budget, &limits))
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
