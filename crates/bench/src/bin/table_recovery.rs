//! Measures the full fault-tolerance loop the paper motivates (Section 1):
//! inject a fault, detect it through the graceful-degradation engine
//! chain, compute the recovery line from the slice, roll back, and replay
//! until the invariant holds — reporting detect+recover latency, retry
//! counts, and verdict rates per workload × fault kind.
//!
//! ```text
//! cargo run --release -p slicing-bench --bin table_recovery -- \
//!     [--procs 4] [--events 12] [--seeds 10] [--attempts 3] \
//!     [--timeout-ms N] [--report recovery.json]
//! ```
//!
//! `--report <path>` writes every per-seed run as a
//! `slicing.bench-report/v1` JSON document whose engine field is
//! `recover/<fault-kind>`; failing verdicts land in the run's `aborted`
//! field so downstream tooling can gate on them.

use std::time::Instant;

use slicing_bench::Workload;
use slicing_observe::{RunReport, RunReportSet};
use slicing_recover::{recover, RecoverConfig, RecoveryOutcome, RecoveryVerdict};
use slicing_sim::crdt::{self, CrdtReplication};
use slicing_sim::database::{self, DatabasePartitioning};
use slicing_sim::leader_election::{self, LeaderElection};
use slicing_sim::primary_secondary::{self, PrimarySecondary};
use slicing_sim::work_queue::{self, WorkQueue};
use slicing_sim::{inject_plan, run, sample_fault_plan, SimConfig};

const FAULT_KINDS: [&str; 6] = [
    "corrupt",
    "drop-message",
    "duplicate-message",
    "delay-delivery",
    "crash-stop",
    "burst",
];

/// Clean run → sampled fault of `kind` → full recovery loop. `None` when
/// the run offers no injection site of that kind.
fn run_one(
    workload: Workload,
    procs: usize,
    kind: &str,
    cfg: &RecoverConfig,
) -> Option<(RecoveryOutcome, f64)> {
    let clean = match workload {
        Workload::PrimarySecondary => run(&mut PrimarySecondary::new(procs), &cfg.sim),
        Workload::DatabasePartitioning => run(&mut DatabasePartitioning::new(procs), &cfg.sim),
        Workload::LeaderElection => run(&mut LeaderElection::new(procs), &cfg.sim),
        Workload::CrdtReplication => run(&mut CrdtReplication::new(procs), &cfg.sim),
        Workload::WorkQueue => run(&mut WorkQueue::new(procs), &cfg.sim),
    }
    .expect("simulation succeeds");
    let plan = (0..16).find_map(|o| sample_fault_plan(&clean, kind, cfg.sim.seed + o))?;
    let faulty = inject_plan(&clean, &plan).ok()?;
    let start = Instant::now();
    let outcome = match workload {
        Workload::PrimarySecondary => recover(
            || PrimarySecondary::new(procs),
            primary_secondary::violation_spec,
            &faulty,
            cfg,
        ),
        Workload::DatabasePartitioning => recover(
            || DatabasePartitioning::new(procs),
            database::violation_spec,
            &faulty,
            cfg,
        ),
        Workload::LeaderElection => recover(
            || LeaderElection::new(procs),
            leader_election::violation_spec,
            &faulty,
            cfg,
        ),
        Workload::CrdtReplication => recover(
            || CrdtReplication::new(procs),
            crdt::violation_spec,
            &faulty,
            cfg,
        ),
        Workload::WorkQueue => recover(
            || WorkQueue::new(procs),
            work_queue::violation_spec,
            &faulty,
            cfg,
        ),
    };
    Some((outcome, start.elapsed().as_secs_f64()))
}

fn main() {
    // Honor SLICING_LOG so CI can grep the counter stream (e.g. failing
    // the soak on any `recover.fallback_exhausted`).
    if let Some(logger) = slicing_observe::StderrLogger::from_env() {
        slicing_observe::install(std::sync::Arc::new(logger));
    }
    let mut procs: usize = 4;
    let mut events: u32 = 12;
    let mut seeds: u64 = 10;
    let mut attempts: u32 = 3;
    let mut timeout_ms: Option<u64> = None;
    let mut report_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--procs" => procs = value.parse().expect("integer"),
            "--events" => events = value.parse().expect("integer"),
            "--seeds" => seeds = value.parse().expect("integer"),
            "--attempts" => attempts = value.parse().expect("integer"),
            "--timeout-ms" => timeout_ms = Some(value.parse().expect("integer")),
            "--report" => report_path = Some(value),
            other => panic!("unknown flag {other}"),
        }
    }
    let mut report = RunReportSet::new("table_recovery");

    println!(
        "# Detect → recovery-line → rollback → replay — n = {procs}, events/process = {events}, {seeds} seeds, {attempts} attempt(s)"
    );
    println!(
        "{:<24} {:<18} {:>4} {:>9} {:>10} {:>7} {:>7} {:>8} {:>9}",
        "workload",
        "fault",
        "runs",
        "detected",
        "recovered",
        "clean",
        "failed",
        "replays",
        "avg_ms"
    );
    let mut failures = 0u64;
    for workload in Workload::PAPER.into_iter().chain(Workload::PROTOCOLS) {
        for kind in FAULT_KINDS {
            let mut injected = 0u64;
            let mut detected = 0u64;
            let mut recovered = 0u64;
            let mut clean = 0u64;
            let mut failed = 0u64;
            let mut replays = 0u64;
            let mut elapsed = 0.0f64;
            for seed in 0..seeds {
                let mut cfg = RecoverConfig {
                    sim: SimConfig {
                        seed,
                        max_events_per_process: events,
                        ..SimConfig::default()
                    },
                    ..RecoverConfig::default()
                };
                cfg.retry.max_attempts = attempts;
                if let Some(ms) = timeout_ms {
                    cfg.detect = cfg
                        .detect
                        .with_total_deadline(std::time::Duration::from_millis(ms));
                }
                let Some((outcome, secs)) = run_one(workload, procs, kind, &cfg) else {
                    continue;
                };
                injected += 1;
                elapsed += secs;
                replays += outcome.attempts.len() as u64;
                if outcome.detected {
                    detected += 1;
                }
                match outcome.verdict {
                    RecoveryVerdict::Recovered => recovered += 1,
                    RecoveryVerdict::CleanAlready => clean += 1,
                    _ => failed += 1,
                }
                if report_path.is_some() {
                    let mut run_report = RunReport::new(workload.name(), format!("recover/{kind}"));
                    run_report.seed = Some(seed);
                    run_report.procs = Some(procs as u64);
                    run_report.events = Some(events as u64);
                    run_report.detected = Some(outcome.detected);
                    run_report.elapsed_secs = Some(secs);
                    if !matches!(
                        outcome.verdict,
                        RecoveryVerdict::Recovered | RecoveryVerdict::CleanAlready
                    ) {
                        run_report.aborted = Some(outcome.verdict.name().to_owned());
                    }
                    report.push(
                        run_report
                            .counter("replays", outcome.attempts.len() as u64)
                            .counter("engine_fallbacks", outcome.engine_fallbacks as u64)
                            .counter(
                                "recovered",
                                u64::from(outcome.verdict == RecoveryVerdict::Recovered),
                            ),
                    );
                }
            }
            failures += failed;
            println!(
                "{:<24} {:<18} {:>4} {:>9} {:>10} {:>7} {:>7} {:>8} {:>9.2}",
                workload.name(),
                kind,
                injected,
                detected,
                recovered,
                clean,
                failed,
                replays,
                if injected > 0 {
                    elapsed * 1000.0 / injected as f64
                } else {
                    0.0
                },
            );
        }
    }
    println!("\n# `clean` runs carried a fault that never produced a violating cut");
    println!("# (structural faults are often absorbed); `failed` counts verdicts");
    println!("# other than recovered/clean-already and should be zero.");
    if let Some(path) = &report_path {
        report.write_to(path).expect("write report");
        eprintln!("# wrote {} runs to {path}", report.runs.len());
    }
    assert_eq!(failures, 0, "some runs failed to recover");
}
