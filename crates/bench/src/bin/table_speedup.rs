//! Detection-throughput table for the cut kernel: wall-clock per run and
//! deterministic search-effort counters for every engine on fixed
//! workloads. The repo's first perf artifact — `BENCH_detect.json`
//! (schema `slicing.bench-detect/v1`) is the committed baseline CI gates
//! against.
//!
//! ```text
//! cargo run --release -p slicing-bench --bin table_speedup -- \
//!     [--quick] [--grid 40] [--reps 200] [--seeds 5] [--out BENCH_detect.json]
//! ```
//!
//! Two measurements per entry:
//!
//! - **wall_us_per_run** — mean wall-clock over `--reps` repetitions with
//!   no recorder installed. Machine-dependent; reported, never gated.
//! - **cuts / probes / hits / inserts / heap_allocs** — exact functions of
//!   the workload (visited-set effort counters and spilled-cut
//!   allocations), identical on every machine. CI fails when these regress
//!   more than 25% against the committed baseline.
//!
//! `--quick` only lowers `--reps`: the workloads (and therefore every
//! deterministic counter) stay identical to the committed full run.

use std::sync::Arc;
use std::time::Instant;

use slicing_bench::{measure_slicing, Workload};
use slicing_computation::test_fixtures::{grid, hypercube};
use slicing_computation::{cut_heap_allocs, ProcSet};
use slicing_detect::{detect_bfs, detect_bfs_parallel, detect_dfs, Limits};
use slicing_observe::json::{JsonArray, JsonObject};
use slicing_observe::{Level, MemoryRecorder};
use slicing_predicates::FnPredicate;

struct Entry {
    name: String,
    engine: &'static str,
    threads: usize,
    reps: u32,
    wall_us: f64,
    detected: bool,
    cuts: u64,
    probes: u64,
    hits: u64,
    inserts: u64,
    heap_allocs: u64,
    /// Layers the parallel engine ran on its sequential replica path
    /// (`detect.parallel.seq_layers`); zero for other engines.
    seq_layers: u64,
    /// J-table row joins in the kernelized slicer
    /// (`slice.j_table.row_joins`); zero outside the slicing pipeline.
    row_joins: u64,
}

impl Entry {
    fn to_json(&self) -> String {
        JsonObject::new()
            .str("name", &self.name)
            .str("engine", self.engine)
            .u64("threads", self.threads as u64)
            .u64("reps", u64::from(self.reps))
            .f64("wall_us_per_run", self.wall_us)
            .bool("detected", self.detected)
            .u64("cuts_explored", self.cuts)
            .u64("probes", self.probes)
            .u64("hits", self.hits)
            .u64("inserts", self.inserts)
            .u64("heap_allocs", self.heap_allocs)
            .u64("seq_layers", self.seq_layers)
            .u64("row_joins", self.row_joins)
            .finish()
    }
}

/// Runs `f` once under a trace recorder for the deterministic counters,
/// then `reps` times bare for the wall clock.
fn measure<F: FnMut() -> (bool, u64)>(
    name: impl Into<String>,
    engine: &'static str,
    threads: usize,
    reps: u32,
    mut f: F,
) -> Entry {
    let rec = Arc::new(MemoryRecorder::new(Level::Trace));
    let allocs_before = cut_heap_allocs();
    let (detected, cuts) = {
        let _guard = slicing_observe::scoped(rec.clone());
        f()
    };
    let heap_allocs = cut_heap_allocs() - allocs_before;
    let probes = rec.counter_total("detect.visited.probes");
    let hits = rec.counter_total("detect.visited.hits");
    let inserts = rec.counter_total("detect.visited.inserts");
    let seq_layers = rec.counter_total("detect.parallel.seq_layers");
    let row_joins = rec.counter_total("slice.j_table.row_joins");

    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    let wall_us = start.elapsed().as_secs_f64() * 1e6 / f64::from(reps.max(1));
    Entry {
        name: name.into(),
        engine,
        threads,
        reps,
        wall_us,
        detected,
        cuts,
        probes,
        hits,
        inserts,
        heap_allocs,
        seq_layers,
        row_joins,
    }
}

fn main() {
    let mut quick = false;
    let mut grid_size: u32 = 40;
    let mut reps: Option<u32> = None;
    let mut seeds: u64 = 5;
    let mut out = String::from("BENCH_detect.json");
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--grid" => grid_size = it.next().expect("--grid N").parse().expect("integer"),
            "--reps" => reps = Some(it.next().expect("--reps N").parse().expect("integer")),
            "--seeds" => seeds = it.next().expect("--seeds N").parse().expect("integer"),
            "--out" => out = it.next().expect("--out PATH"),
            other => panic!("unknown flag {other}"),
        }
    }
    let reps = reps.unwrap_or(if quick { 20 } else { 200 });
    let limits = Limits::none();
    let mut entries: Vec<Entry> = Vec::new();

    // Exhaustive lattice sweeps: the never-predicate forces every engine
    // through all (grid+1)² cuts, making the visited set the hot path.
    let comp = grid(grid_size, grid_size);
    let never = FnPredicate::new(ProcSet::all(2), "false", |_| false);
    entries.push(measure(
        format!("bfs.grid{grid_size}"),
        "bfs",
        1,
        reps,
        || {
            let d = detect_bfs(&comp, &comp, &never, &limits);
            (d.detected(), d.cuts_explored)
        },
    ));
    entries.push(measure(
        format!("dfs.grid{grid_size}"),
        "dfs",
        1,
        reps,
        || {
            let d = detect_dfs(&comp, &comp, &never, &limits);
            (d.detected(), d.cuts_explored)
        },
    ));
    for threads in [2usize, 4] {
        entries.push(measure(
            format!("bfs_parallel{threads}.grid{grid_size}"),
            "bfs_parallel",
            threads,
            reps,
            || {
                let d = detect_bfs_parallel(&comp, &comp, &never, &limits, threads);
                (d.detected(), d.cuts_explored)
            },
        ));
    }

    // Parallel scaling needs wide lattice layers: a 5-process hypercube's
    // middle layers are thousands of cuts wide, so worker expansion and
    // shard merging both run threaded. Grid layers (≤ 41 cuts) stay on the
    // inline path by design — parallelism cannot pay for spawns there.
    let cube = hypercube(5, 8);
    let never5 = FnPredicate::new(ProcSet::all(5), "false", |_| false);
    let cube_reps = (reps / 4).max(1);
    entries.push(measure("bfs.cube5x8", "bfs", 1, cube_reps, || {
        let d = detect_bfs(&cube, &cube, &never5, &limits);
        (d.detected(), d.cuts_explored)
    }));
    for threads in [2usize, 4] {
        entries.push(measure(
            format!("bfs_parallel{threads}.cube5x8"),
            "bfs_parallel",
            threads,
            cube_reps,
            || {
                let d = detect_bfs_parallel(&cube, &cube, &never5, &limits, threads);
                (d.detected(), d.cuts_explored)
            },
        ));
    }

    // The paper's protocol workloads (Figures 2/3) through the slicing
    // pipeline: slice construction dominates, search explores few cuts.
    for w in [Workload::PrimarySecondary, Workload::DatabasePartitioning] {
        let faulty: Vec<_> = (0..seeds)
            .map(|seed| {
                let comp = w.simulate(7, 12, seed);
                w.inject_fault(&comp, seed)
            })
            .collect();
        entries.push(measure(
            format!("slicing.{}", w.name()),
            "slicing",
            1,
            (reps / 20).max(1),
            || {
                let mut detected = false;
                let mut cuts = 0;
                for comp in &faulty {
                    let s = measure_slicing(w, comp, &limits);
                    detected |= s.detected;
                    cuts += s.cuts;
                }
                (detected, cuts)
            },
        ));
        // The warm-arena contract the slicer kernel rests on: once the
        // measurement loop above has warmed every pool, further slicing
        // reps must not touch the cut heap at all.
        let warm_allocs = cut_heap_allocs();
        for comp in &faulty {
            std::hint::black_box(measure_slicing(w, comp, &limits));
        }
        assert_eq!(
            cut_heap_allocs(),
            warm_allocs,
            "warm {} slicing rep allocated on the cut heap",
            w.name()
        );
    }

    println!("# Detection throughput — grid {grid_size}×{grid_size}, {reps} reps, {seeds} protocol seeds");
    println!(
        "{:<32} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>6} {:>8} {:>9}",
        "entry",
        "threads",
        "wall µs/run",
        "cuts",
        "probes",
        "hits",
        "inserts",
        "alloc",
        "seq_lyr",
        "row_join"
    );
    for e in &entries {
        println!(
            "{:<32} {:>8} {:>12.1} {:>10} {:>10} {:>10} {:>10} {:>6} {:>8} {:>9}",
            e.name,
            e.threads,
            e.wall_us,
            e.cuts,
            e.probes,
            e.hits,
            e.inserts,
            e.heap_allocs,
            e.seq_layers,
            e.row_joins
        );
    }
    for e in entries.iter().filter(|e| e.engine == "bfs_parallel") {
        let workload = e.name.split_once('.').map_or("", |(_, w)| w);
        let seq = entries
            .iter()
            .find(|s| s.engine == "bfs" && s.name.ends_with(workload));
        if let Some(seq) = seq {
            println!(
                "# {workload} speedup at {} threads: {:.2}×",
                e.threads,
                seq.wall_us / e.wall_us
            );
        }
    }

    let doc = JsonObject::new()
        .str("schema", slicing_observe::schema::BENCH_DETECT)
        .str("binary", "table_speedup")
        .bool("quick", quick)
        .u64("grid", u64::from(grid_size))
        .u64("reps", u64::from(reps))
        .u64("seeds", seeds)
        .raw(
            "entries",
            &entries
                .iter()
                .fold(JsonArray::new(), |arr, e| arr.push_raw(&e.to_json()))
                .finish(),
        )
        .finish();
    std::fs::write(&out, format!("{doc}\n")).expect("write bench artifact");
    eprintln!("# wrote {} entries to {out}", entries.len());
}
