//! Reproduces **Figure 2** (primary–secondary): time and memory versus the
//! number of processes, for computation slicing and partial-order methods,
//! in the fault-free and one-injected-fault scenarios.
//!
//! ```text
//! cargo run --release -p slicing-bench --bin fig2_primary_secondary -- \
//!     [--procs 6 | --min-procs 4 --max-procs 8] [--events 20] [--seeds 5] \
//!     [--cap-mb 64] [--max-cuts 2000000] [--report fig2.json]
//! ```
//!
//! `--procs n` runs a single process count (shorthand for
//! `--min-procs n --max-procs n`); `--report <path>` additionally writes
//! every per-seed run as a `slicing.bench-report/v1` JSON document.
//!
//! The paper runs n = 6..12 with up to 90 events per process on 2003-era
//! hardware; the defaults here are scaled so the exponential baseline
//! finishes quickly. Pass larger `--events`/`--max-procs` for paper-scale
//! sweeps.

use slicing_bench::{kib, measure_pom, measure_slicing, ms, sweep_samples, Aggregate, Workload};
use slicing_detect::Limits;
use slicing_observe::RunReportSet;

struct Args {
    min_procs: usize,
    max_procs: usize,
    events: u32,
    seeds: u64,
    cap_mb: u64,
    max_cuts: u64,
    timeout_ms: Option<u64>,
    report: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        min_procs: 4,
        max_procs: 8,
        events: 20,
        seeds: 5,
        cap_mb: 64,
        max_cuts: 2_000_000,
        timeout_ms: None,
        report: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--procs" => {
                let n = value.parse().expect("integer");
                args.min_procs = n;
                args.max_procs = n;
            }
            "--min-procs" => args.min_procs = value.parse().expect("integer"),
            "--max-procs" => args.max_procs = value.parse().expect("integer"),
            "--events" => args.events = value.parse().expect("integer"),
            "--seeds" => args.seeds = value.parse().expect("integer"),
            "--cap-mb" => args.cap_mb = value.parse().expect("integer"),
            "--max-cuts" => args.max_cuts = value.parse().expect("integer"),
            "--timeout-ms" => args.timeout_ms = Some(value.parse().expect("integer")),
            "--report" => args.report = Some(value),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let limits = Limits {
        max_bytes: Some(args.cap_mb * 1024 * 1024),
        max_cuts: Some(args.max_cuts),
        max_elapsed: args.timeout_ms.map(std::time::Duration::from_millis),
        ..Limits::none()
    };
    let w = Workload::PrimarySecondary;
    let mut report = RunReportSet::new("fig2_primary_secondary");

    println!(
        "# Figure 2 — primary-secondary, events/process = {}, seeds = {}",
        args.events, args.seeds
    );
    println!(
        "# memory cap {} MiB, cut cap {}",
        args.cap_mb, args.max_cuts
    );
    for (panel, faults) in [("(a) no faults", 0u32), ("(b) one injected fault", 1u32)] {
        println!("\n## {panel}");
        println!(
            "{:>5} {:>14} {:>14} {:>12} {:>10} {:>14} {:>14} {:>12} {:>10} {:>8}",
            "n",
            "slice_time_ms",
            "slice_mem_kib",
            "slice_cuts",
            "slice_det",
            "pom_time_ms",
            "pom_mem_kib",
            "pom_cuts",
            "pom_det",
            "pom_oom%"
        );
        for n in args.min_procs..=args.max_procs {
            let s_runs = sweep_samples(
                w,
                n,
                args.events,
                0..args.seeds,
                faults,
                &limits,
                measure_slicing,
            );
            let p_runs = sweep_samples(
                w,
                n,
                args.events,
                0..args.seeds,
                faults,
                &limits,
                measure_pom,
            );
            if args.report.is_some() {
                for (engine, runs) in [("slice", &s_runs), ("pom", &p_runs)] {
                    for (seed, sample) in runs {
                        let mut r = sample.to_report(w, engine, n, args.events, *seed);
                        r = r.counter("faults_injected", u64::from(faults));
                        report.push(r);
                    }
                }
            }
            let s = Aggregate::of(&s_runs.iter().map(|(_, s)| s.clone()).collect::<Vec<_>>());
            let p = Aggregate::of(&p_runs.iter().map(|(_, s)| s.clone()).collect::<Vec<_>>());
            println!(
                "{:>5} {:>14} {:>14} {:>12.1} {:>10} {:>14} {:>14} {:>12.1} {:>10} {:>8.1}",
                n,
                ms(s.mean_time),
                kib(s.mean_bytes),
                s.mean_cuts,
                format!("{}/{}", s.detections, s.completed),
                ms(p.mean_time),
                kib(p.mean_bytes),
                p.mean_cuts,
                format!("{}/{}", p.detections, p.completed),
                p.abort_rate() * 100.0,
            );
        }
    }
    println!("\n# Expected shape (paper): slicing grows polynomially in n on both");
    println!("# panels; partial-order methods grow (almost) exponentially and may");
    println!("# hit the memory cap at the largest n.");
    if let Some(path) = &args.report {
        report.write_to(path).expect("write report");
        eprintln!("# wrote {} runs to {path}", report.runs.len());
    }
}
