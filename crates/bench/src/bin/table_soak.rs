//! Run-forever soak for the GC'd online monitor: a fixed-seed stream of
//! one million events — late cross-process messages, periodic fault
//! bursts, acknowledged alarms — flows through an [`OnlineMonitor`] with
//! causal-stability garbage collection on, is killed at the midpoint,
//! checkpointed through the `slicing.checkpoint/v1` codec, restored, and
//! run to completion. The committed artifact — `BENCH_soak.json` (schema
//! `slicing.bench-soak/v1`) — is the baseline CI gates against.
//!
//! ```text
//! cargo run --release -p slicing-bench --bin table_soak -- \
//!     [--quick] [--procs 6] [--segments 4] [--events 1000000] \
//!     [--gc-lag 128] [--gc-every 1024] [--out BENCH_soak.json]
//! ```
//!
//! Every reported number is a **deterministic counter** — a pure function
//! of the seed and flags, identical on every machine. The soak asserts
//! its two headline claims in-process before writing the artifact:
//!
//! - **Bounded retention.** `retained_peak` — the high-water mark of the
//!   `monitor.retained_events` gauge — stays below a constant derived
//!   from the GC configuration, *independent of stream length*. An
//!   un-GC'd monitor run over a prefix of the same stream provides the
//!   linear-growth foil (the `plain_prefix` row).
//! - **Flat per-event cost.** The amortized check cost per event in the
//!   last segment is within 25% (plus one probe) of the first segment,
//!   even though the last segment sits on a history several times
//!   longer — and even though the stream was killed and restored from a
//!   checkpoint in between.
//!
//! The kill happens at the exact stream midpoint: the monitor is
//! checkpointed to a real file with [`write_checkpoint`], dropped, loaded
//! back with [`load_checkpoint`], and resumed with [`resume_monitor`].
//! Because restarts renumber event ids densely, the workload addresses
//! events by `(process, position)` — the coordinates that survive — and
//! translates them through [`OnlineMonitor::event_at`] at delivery time.
//! Message lateness is bounded well below the GC lag so replayed
//! deliveries always target retained events. Wall-clock is intentionally
//! absent: this table gates the *work* of the algorithm, never time.

use std::collections::VecDeque;

use slicing_computation::{cut_heap_allocs, Value};
use slicing_detect::{GcConfig, OnlineMonitor};
use slicing_observe::json::{JsonArray, JsonObject};
use slicing_predicates::LocalPredicate;
use slicing_recover::{load_checkpoint, resume_monitor, write_checkpoint};

/// Message endpoints stay within this many global steps of the tip —
/// strictly below any accepted `--gc-lag`, so late deliveries never
/// target compacted history.
const LATENESS_WINDOW: usize = 32;
/// A fault burst — one candidate observation on every process in a row —
/// fires every this-many steps, guaranteeing alarms throughout the soak.
const BURST_PERIOD: u64 = 4096;

struct Row {
    name: String,
    events: u64,
    messages: u64,
    checks: u64,
    alarms: u64,
    check_cost: u64,
    cost_per_event_milli: u64,
    delta_cuts: u64,
    compactions: u64,
    dropped_events: u64,
    retained_peak: u64,
    heap_allocs: u64,
}

impl Row {
    fn to_json(&self) -> String {
        JsonObject::new()
            .str("name", &self.name)
            .u64("events", self.events)
            .u64("messages", self.messages)
            .u64("checks", self.checks)
            .u64("alarms", self.alarms)
            .u64("check_cost", self.check_cost)
            .u64("cost_per_event_milli", self.cost_per_event_milli)
            .u64("delta_cuts", self.delta_cuts)
            .u64("compactions", self.compactions)
            .u64("dropped_events", self.dropped_events)
            .u64("retained_peak", self.retained_peak)
            .u64("heap_allocs", self.heap_allocs)
            .finish()
    }
}

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The soak's moving parts besides the monitor itself: the deterministic
/// rng, the bounded ring of recently observed `(process, position)`
/// coordinates, and the global step counter driving burst scheduling.
struct Workload {
    rng: XorShift,
    recent: VecDeque<(usize, u32)>,
    step: u64,
    procs: usize,
}

impl Workload {
    fn new(procs: usize) -> Self {
        Workload {
            rng: XorShift(0x51ce_d001_u64 | 1),
            recent: VecDeque::with_capacity(LATENESS_WINDOW + 1),
            step: 0,
            procs,
        }
    }

    /// One soak step: observe (burst steps force a candidate on a
    /// round-robin process), maybe deliver a message from an older event
    /// to the fresh one, maybe deliver a *late* message between two older
    /// events, check, and acknowledge any alarm so retention never pins.
    fn step(&mut self, m: &mut OnlineMonitor) {
        let burst = self.step % BURST_PERIOD < self.procs as u64;
        let p = if burst {
            (self.step % BURST_PERIOD) as usize
        } else {
            self.rng.below(self.procs as u64) as usize
        };
        // Sparse greens (~1 in 5) keep candidate queues churning; a burst
        // makes every conjunct hold at once so a real alarm must fire.
        let green = burst || self.rng.below(5) == 0;
        let x = m.var(p, "x").expect("declared in fresh()");
        let pos = m.events_on(p);
        m.observe(p, &[(x, Value::Int(i64::from(green)))])
            .expect("typed observation");
        self.recent.push_back((p, pos));
        if self.recent.len() > LATENESS_WINDOW {
            self.recent.pop_front();
        }
        if self.rng.below(3) == 0 && self.recent.len() >= 2 {
            let si = self.rng.below(self.recent.len() as u64 - 1) as usize;
            let (sp, spos) = self.recent[si];
            if sp != p {
                self.deliver(m, (sp, spos), (p, pos));
            }
        }
        if self.rng.below(8) == 0 && self.recent.len() >= 3 {
            // A late delivery between two *older* events re-times settled
            // history; observation order is a topological order, so the
            // edge is acyclic by construction.
            let si = self.rng.below(self.recent.len() as u64 - 2) as usize;
            let ri = si + 1 + self.rng.below((self.recent.len() - 1 - si) as u64) as usize;
            let (send, recv) = (self.recent[si], self.recent[ri]);
            if send.0 != recv.0 {
                self.deliver(m, send, recv);
            }
        }
        if m.check().expect("check never fails").is_some() {
            m.acknowledge_alarm();
        }
        self.step += 1;
    }

    /// Delivers by surviving coordinates; duplicate edges (the ring can
    /// re-pick a pair) are skipped, anything else is a soak bug.
    fn deliver(&mut self, m: &mut OnlineMonitor, send: (usize, u32), recv: (usize, u32)) {
        let s = m.event_at(send.0, send.1).expect("send within lag window");
        let r = m.event_at(recv.0, recv.1).expect("recv within lag window");
        if let Err(e) = m.message(s, r) {
            assert!(
                matches!(e, slicing_computation::BuildError::DuplicateMessage { .. }),
                "unexpected delivery failure: {e}"
            );
        }
    }
}

fn fresh(procs: usize, gc: Option<GcConfig>) -> OnlineMonitor {
    let mut m = OnlineMonitor::new(procs);
    if let Some(cfg) = gc {
        m = m.with_gc(cfg);
    }
    for i in 0..procs {
        let v = m.declare_var(i, "x", Value::Int(0)).expect("fresh var");
        m.watch_int(v, "x > 0", |x| x > 0).expect("watch up front");
    }
    m
}

/// Kills the monitor at the midpoint: checkpoint to a real file, drop,
/// load, restore, re-register the clauses. Returns the resumed monitor.
fn kill_and_resume(m: OnlineMonitor, procs: usize) -> OnlineMonitor {
    let path = std::env::temp_dir().join(format!("slicing-soak-{}.ckpt", std::process::id()));
    write_checkpoint(&path, &m, 0).expect("write midpoint checkpoint");
    let before = m.stats();
    drop(m);
    let (state, _seq) = load_checkpoint(&path).expect("load midpoint checkpoint");
    let clauses: Vec<LocalPredicate> = {
        let probe = OnlineMonitor::from_state(&state).expect("restore");
        (0..procs)
            .map(|i| {
                let v = probe.var(i, "x").expect("declared var survives");
                LocalPredicate::int(v, "x > 0", |x| x > 0)
            })
            .collect()
    };
    let resumed = resume_monitor(&state, clauses).expect("resume");
    assert_eq!(
        resumed.stats(),
        before,
        "restore changed the monitor's counters"
    );
    std::fs::remove_file(&path).expect("remove checkpoint");
    resumed
}

fn main() {
    let mut quick = false;
    let mut procs: usize = 6;
    let mut segments: u64 = 4;
    let mut events: u64 = 1_000_000;
    let mut gc_lag: u32 = 128;
    let mut gc_every: u64 = 1024;
    let mut out = String::from("BENCH_soak.json");
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--procs" => procs = it.next().expect("--procs N").parse().expect("integer"),
            "--segments" => segments = it.next().expect("--segments N").parse().expect("integer"),
            "--events" => events = it.next().expect("--events N").parse().expect("integer"),
            "--gc-lag" => gc_lag = it.next().expect("--gc-lag N").parse().expect("integer"),
            "--gc-every" => gc_every = it.next().expect("--gc-every N").parse().expect("integer"),
            "--out" => out = it.next().expect("--out PATH"),
            other => panic!("unknown flag {other}"),
        }
    }
    if quick {
        events = events.min(40_000);
    }
    assert!(procs >= 2, "the soak needs at least two processes");
    assert!(
        (LATENESS_WINDOW as u32) < gc_lag,
        "message lateness must stay strictly below the GC lag"
    );
    assert!(
        segments >= 2 && segments.is_multiple_of(2),
        "the midpoint kill needs an even segment count"
    );
    let per_segment = events / segments;
    let gc = GcConfig {
        lag: gc_lag,
        every: gc_every,
    };

    // The linear-growth foil: the same stream prefix through an un-GC'd
    // monitor. One segment is plenty to dwarf the GC'd peak.
    let plain_events = per_segment;
    let mut plain = fresh(procs, None);
    let mut plain_load = Workload::new(procs);
    let plain_allocs = cut_heap_allocs();
    for _ in 0..plain_events {
        plain_load.step(&mut plain);
    }
    let ps = plain.stats();
    let plain_retained = plain.retained_events();
    let plain_row = Row {
        name: "plain_prefix".to_owned(),
        events: ps.events,
        messages: ps.messages,
        checks: ps.checks,
        alarms: ps.alarms,
        check_cost: ps.check_cost,
        cost_per_event_milli: ps.check_cost * 1000 / ps.events.max(1),
        delta_cuts: ps.delta_cuts,
        compactions: ps.compactions,
        dropped_events: ps.dropped_events,
        retained_peak: plain_retained,
        heap_allocs: cut_heap_allocs() - plain_allocs,
    };
    drop(plain);

    // The soak proper: same generator, GC on, killed and restored at the
    // exact midpoint.
    let mut m = fresh(procs, Some(gc));
    let mut load = Workload::new(procs);
    let mut rows: Vec<Row> = vec![plain_row];
    let mut prev = m.stats();
    for seg in 1..=segments {
        let allocs_before = cut_heap_allocs();
        for _ in 0..per_segment {
            load.step(&mut m);
        }
        if seg == segments / 2 {
            m = kill_and_resume(m, procs);
        }
        let cur = m.stats();
        let seg_events = cur.events - prev.events;
        let check_cost = cur.check_cost - prev.check_cost;
        rows.push(Row {
            name: format!("segment{seg}"),
            events: seg_events,
            messages: cur.messages - prev.messages,
            checks: cur.checks - prev.checks,
            alarms: cur.alarms - prev.alarms,
            check_cost,
            cost_per_event_milli: check_cost * 1000 / seg_events.max(1),
            delta_cuts: cur.delta_cuts - prev.delta_cuts,
            compactions: cur.compactions - prev.compactions,
            dropped_events: cur.dropped_events - prev.dropped_events,
            retained_peak: cur.retained_peak,
            heap_allocs: cut_heap_allocs() - allocs_before,
        });
        prev = cur;
    }
    let stats = m.stats();

    // Headline claim 1: retention is bounded by the GC configuration, not
    // the stream length. Between compaction attempts up to `gc_every`
    // fresh events pile up on top of the `lag` window and the candidate
    // queues; 4× that sum is a generous constant roof that a linearly
    // growing history blows through almost immediately.
    let roof = 4 * (u64::from(gc_lag) + gc_every + stats.peak_candidates + procs as u64);
    assert!(
        stats.retained_peak <= roof,
        "retention is not bounded: peak {} > roof {roof}",
        stats.retained_peak
    );
    assert!(
        stats.retained_peak < plain_retained,
        "GC'd peak {} should undercut the un-GC'd prefix {}",
        stats.retained_peak,
        plain_retained
    );
    assert!(stats.compactions > 0, "the soak never compacted");
    assert!(
        stats.alarms > 0,
        "the soak never alarmed — workload too weak"
    );

    // Headline claim 2: per-event check cost is flat across segments —
    // including across the midpoint kill/restore.
    let first = &rows[1];
    let last = &rows[rows.len() - 1];
    assert!(
        last.cost_per_event_milli <= first.cost_per_event_milli * 125 / 100 + 1000,
        "per-event check cost grew with history length: {} -> {} milliprobe/event",
        first.cost_per_event_milli,
        last.cost_per_event_milli
    );

    println!(
        "# Run-forever soak — {procs} procs, {segments}×{per_segment} events, GC lag {gc_lag} / every {gc_every}, kill+resume at midpoint"
    );
    println!(
        "{:<13} {:>9} {:>9} {:>8} {:>11} {:>12} {:>8} {:>9} {:>10} {:>6}",
        "row",
        "events",
        "messages",
        "alarms",
        "cost",
        "milli/event",
        "compact",
        "dropped",
        "ret. peak",
        "alloc"
    );
    for r in &rows {
        println!(
            "{:<13} {:>9} {:>9} {:>8} {:>11} {:>12} {:>8} {:>9} {:>10} {:>6}",
            r.name,
            r.events,
            r.messages,
            r.alarms,
            r.check_cost,
            r.cost_per_event_milli,
            r.compactions,
            r.dropped_events,
            r.retained_peak,
            r.heap_allocs
        );
    }
    println!(
        "# retention: GC'd peak {} vs un-GC'd prefix {} (roof {roof}); cost {} -> {} milliprobe/event (flat across kill+resume)",
        stats.retained_peak, plain_retained, first.cost_per_event_milli, last.cost_per_event_milli
    );

    let doc = JsonObject::new()
        .str("schema", slicing_observe::schema::BENCH_SOAK)
        .str("binary", "table_soak")
        .bool("quick", quick)
        .u64("procs", procs as u64)
        .u64("segments", segments)
        .u64("events_per_segment", per_segment)
        .u64("gc_lag", u64::from(gc_lag))
        .u64("gc_every", gc_every)
        .raw(
            "entries",
            &rows
                .iter()
                .fold(JsonArray::new(), |arr, r| arr.push_raw(&r.to_json()))
                .finish(),
        )
        .finish();
    std::fs::write(&out, format!("{doc}\n")).expect("write bench artifact");
    eprintln!("# wrote {} rows to {out}", rows.len());
}
