//! Scenario-zoo detection table: the leader-election, CRDT-replication,
//! and work-queue workloads through the slicing pipeline and the
//! partial-order-methods baseline, on fixed seeds with one injected
//! corrupt fault each. The committed baseline — `BENCH_protocols.json`
//! (schema `slicing.bench-protocols/v1`) — is what CI gates against.
//!
//! ```text
//! cargo run --release -p slicing-bench --bin table_protocols -- \
//!     [--quick] [--procs 5] [--events 10] [--seeds 3] [--reps 50] \
//!     [--out BENCH_protocols.json]
//! ```
//!
//! Two measurements per entry:
//!
//! - **wall_us_per_run** — mean wall-clock over `--reps` repetitions with
//!   no recorder installed. Machine-dependent; reported, never gated.
//! - **detected / witness_size / cuts / probes / hits / inserts /
//!   heap_allocs / row_joins** — exact functions of the seeded workload,
//!   identical on every machine. `detected` and `witness_size` must
//!   reproduce bit-for-bit; the effort counters get the usual 25% drift
//!   allowance.
//!
//! `--quick` only lowers `--reps`: the workloads (and therefore every
//! deterministic counter) stay identical to the committed full run.

use std::sync::Arc;
use std::time::Instant;

use slicing_bench::Workload;
use slicing_computation::{cut_heap_allocs, Computation};
use slicing_detect::{detect_pom, detect_with_slicing, Limits};
use slicing_observe::json::{JsonArray, JsonObject};
use slicing_observe::{Level, MemoryRecorder};

struct Entry {
    name: String,
    engine: &'static str,
    reps: u32,
    wall_us: f64,
    detected: bool,
    witness_size: u64,
    cuts: u64,
    probes: u64,
    hits: u64,
    inserts: u64,
    heap_allocs: u64,
    row_joins: u64,
}

impl Entry {
    fn to_json(&self) -> String {
        JsonObject::new()
            .str("name", &self.name)
            .str("engine", self.engine)
            .u64("reps", u64::from(self.reps))
            .f64("wall_us_per_run", self.wall_us)
            .bool("detected", self.detected)
            .u64("witness_size", self.witness_size)
            .u64("cuts_explored", self.cuts)
            .u64("probes", self.probes)
            .u64("hits", self.hits)
            .u64("inserts", self.inserts)
            .u64("heap_allocs", self.heap_allocs)
            .u64("row_joins", self.row_joins)
            .finish()
    }
}

/// Runs `f` once under a trace recorder for the deterministic counters,
/// then `reps` times bare for the wall clock.
fn measure<F: FnMut() -> (bool, u64, u64)>(
    name: impl Into<String>,
    engine: &'static str,
    reps: u32,
    mut f: F,
) -> Entry {
    let rec = Arc::new(MemoryRecorder::new(Level::Trace));
    let allocs_before = cut_heap_allocs();
    let (detected, witness_size, cuts) = {
        let _guard = slicing_observe::scoped(rec.clone());
        f()
    };
    let heap_allocs = cut_heap_allocs() - allocs_before;
    let probes = rec.counter_total("detect.visited.probes");
    let hits = rec.counter_total("detect.visited.hits");
    let inserts = rec.counter_total("detect.visited.inserts");
    let row_joins = rec.counter_total("slice.j_table.row_joins");

    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    let wall_us = start.elapsed().as_secs_f64() * 1e6 / f64::from(reps.max(1));
    Entry {
        name: name.into(),
        engine,
        reps,
        wall_us,
        detected,
        witness_size,
        cuts,
        probes,
        hits,
        inserts,
        heap_allocs,
        row_joins,
    }
}

fn main() {
    let mut quick = false;
    let mut procs: usize = 5;
    let mut events: u32 = 10;
    let mut seeds: u64 = 3;
    let mut reps: Option<u32> = None;
    let mut out = String::from("BENCH_protocols.json");
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--procs" => procs = it.next().expect("--procs N").parse().expect("integer"),
            "--events" => events = it.next().expect("--events N").parse().expect("integer"),
            "--seeds" => seeds = it.next().expect("--seeds N").parse().expect("integer"),
            "--reps" => reps = Some(it.next().expect("--reps N").parse().expect("integer")),
            "--out" => out = it.next().expect("--out PATH"),
            other => panic!("unknown flag {other}"),
        }
    }
    let reps = reps.unwrap_or(if quick { 5 } else { 50 });
    let limits = Limits::none();
    let mut entries: Vec<Entry> = Vec::new();

    for w in Workload::PROTOCOLS {
        // One corrupt fault per seed, injected into the protocol's own
        // summary variables (the monotone counters stay untouched, so the
        // co-regular slice leaves remain sound on the faulted runs).
        let faulty: Vec<Computation> = (0..seeds)
            .map(|seed| {
                let comp = w.simulate(procs, events, seed);
                w.inject_fault(&comp, seed.wrapping_mul(1009))
            })
            .collect();
        for (seed, comp) in faulty.iter().enumerate() {
            let name = format!("{}.s{seed}", w.name());
            entries.push(measure(format!("slicing.{name}"), "slicing", reps, || {
                let s = detect_with_slicing(comp, &w.violation_spec(comp), &limits);
                let witness = s.search.found.as_ref().map_or(0, |c| c.size());
                (s.detected(), witness, s.search.cuts_explored)
            }));
            entries.push(measure(format!("pom.{name}"), "pom", reps, || {
                let d = detect_pom(comp, &w.violation_pred(comp), &limits);
                let witness = d.found.as_ref().map_or(0, |c| c.size());
                (d.detected(), witness, d.cuts_explored)
            }));
        }
        // The warm-arena contract: once the measurement loop has warmed
        // every pool, further slicing reps must not touch the cut heap.
        let warm_allocs = cut_heap_allocs();
        for comp in &faulty {
            std::hint::black_box(detect_with_slicing(comp, &w.violation_spec(comp), &limits));
        }
        assert_eq!(
            cut_heap_allocs(),
            warm_allocs,
            "warm {} slicing rep allocated on the cut heap",
            w.name()
        );
    }

    println!(
        "# Scenario-zoo detection — n = {procs}, events/process = {events}, {seeds} seeds, {reps} reps"
    );
    println!(
        "{:<36} {:>12} {:>4} {:>8} {:>8} {:>8} {:>6} {:>8} {:>6} {:>9}",
        "entry",
        "wall µs/run",
        "det",
        "witness",
        "cuts",
        "probes",
        "hits",
        "inserts",
        "alloc",
        "row_join"
    );
    for e in &entries {
        println!(
            "{:<36} {:>12.1} {:>4} {:>8} {:>8} {:>8} {:>6} {:>8} {:>6} {:>9}",
            e.name,
            e.wall_us,
            e.detected,
            e.witness_size,
            e.cuts,
            e.probes,
            e.hits,
            e.inserts,
            e.heap_allocs,
            e.row_joins
        );
    }
    for e in entries.iter().filter(|e| e.engine == "pom") {
        let workload = e.name.strip_prefix("pom.").unwrap_or("");
        let slicing = entries
            .iter()
            .find(|s| s.engine == "slicing" && s.name.ends_with(workload));
        if let Some(s) = slicing {
            println!(
                "# {workload}: slicing explores {} cuts vs pom's {} ({:.2}× wall)",
                s.cuts,
                e.cuts,
                e.wall_us / s.wall_us
            );
        }
    }

    let doc = JsonObject::new()
        .str("schema", slicing_observe::schema::BENCH_PROTOCOLS)
        .str("binary", "table_protocols")
        .bool("quick", quick)
        .u64("procs", procs as u64)
        .u64("events", u64::from(events))
        .u64("seeds", seeds)
        .u64("reps", u64::from(reps))
        .raw(
            "entries",
            &entries
                .iter()
                .fold(JsonArray::new(), |arr, e| arr.push_raw(&e.to_json()))
                .finish(),
        )
        .finish();
    std::fs::write(&out, format!("{doc}\n")).expect("write bench artifact");
    eprintln!("# wrote {} entries to {out}", entries.len());
}
