//! Peak-live-memory table for the traversal engines: full-visited-set BFS
//! against the bounded-memory lean engine on fixed workloads. The
//! committed artifact — `BENCH_memory.json` (schema
//! `slicing.bench-memory/v1`) — is the baseline CI gates against.
//!
//! ```text
//! cargo run --release -p slicing-bench --bin table_memory -- \
//!     [--quick] [--grid 40] [--out BENCH_memory.json]
//! ```
//!
//! Every reported number is a **deterministic counter** — a pure function
//! of the workload, identical on every machine:
//!
//! - **peak_live_cuts** — the engine's high-water mark of simultaneously
//!   stored cuts (`Detection::max_stored_cuts`). For BFS this is the whole
//!   visited set; for lean it is two lattice layers.
//! - **visited_inserts / layers / regen_probes** — the visited-set and
//!   layer-regeneration effort counters.
//! - **heap_allocs** — spilled-cut heap allocations during the run.
//!
//! Wall-clock is intentionally absent: this table exists to gate memory
//! semantics, and wall-clock is never gated. `--quick` is accepted for CLI
//! symmetry with the other tables but changes nothing — with no
//! repetitions to trim, the quick run **is** the full run.

use std::sync::Arc;

use slicing_bench::Workload;
use slicing_computation::test_fixtures::{grid, hypercube};
use slicing_computation::{cut_heap_allocs, ProcSet};
use slicing_detect::{detect_bfs, detect_lean, Detection, Limits};
use slicing_observe::json::{JsonArray, JsonObject};
use slicing_observe::{Level, MemoryRecorder};
use slicing_predicates::FnPredicate;

struct Entry {
    name: String,
    workload: String,
    engine: &'static str,
    detected: bool,
    witness_size: u64,
    cuts: u64,
    peak_live_cuts: u64,
    visited_inserts: u64,
    layers: u64,
    regen_probes: u64,
    heap_allocs: u64,
}

impl Entry {
    fn to_json(&self) -> String {
        JsonObject::new()
            .str("name", &self.name)
            .str("workload", &self.workload)
            .str("engine", self.engine)
            .bool("detected", self.detected)
            .u64("witness_size", self.witness_size)
            .u64("cuts_explored", self.cuts)
            .u64("peak_live_cuts", self.peak_live_cuts)
            .u64("visited_inserts", self.visited_inserts)
            .u64("layers", self.layers)
            .u64("regen_probes", self.regen_probes)
            .u64("heap_allocs", self.heap_allocs)
            .finish()
    }
}

/// Runs one engine once under a trace recorder and captures the
/// deterministic memory counters.
fn measure<F: FnOnce() -> Detection>(workload: &str, engine: &'static str, f: F) -> Entry {
    let rec = Arc::new(MemoryRecorder::new(Level::Trace));
    let allocs_before = cut_heap_allocs();
    let d = {
        let _guard = slicing_observe::scoped(rec.clone());
        f()
    };
    assert!(
        d.completed(),
        "{workload}.{engine} aborted under no limits: {:?}",
        d.aborted
    );
    if engine == "lean" {
        // The gauge stream and the tracker must agree on the high-water
        // mark — a cheap cross-check of the instrumentation itself.
        assert_eq!(
            rec.gauge_max("detect.lean.peak_live_cuts"),
            Some(d.max_stored_cuts),
            "{workload}: peak gauge disagrees with the tracker"
        );
    }
    Entry {
        name: format!("{engine}.{workload}"),
        workload: workload.to_string(),
        engine,
        detected: d.detected(),
        witness_size: d.found.as_ref().map_or(0, |c| c.size()),
        cuts: d.cuts_explored,
        peak_live_cuts: d.max_stored_cuts,
        visited_inserts: rec.counter_total("detect.visited.inserts"),
        layers: rec.counter_total("detect.lean.layers"),
        regen_probes: rec.counter_total("detect.lean.regen_probes"),
        heap_allocs: cut_heap_allocs() - allocs_before,
    }
}

/// Runs both engines on one workload and asserts the lean contract: same
/// verdict, same witness size, same explored count — only the live set may
/// differ.
fn measure_pair<F>(entries: &mut Vec<Entry>, workload: &str, run: F)
where
    F: Fn(&'static str) -> Detection,
{
    let bfs = measure(workload, "bfs", || run("bfs"));
    let lean = measure(workload, "lean", || run("lean"));
    assert_eq!(bfs.detected, lean.detected, "{workload}: verdict differs");
    assert_eq!(
        bfs.witness_size, lean.witness_size,
        "{workload}: witness differs"
    );
    assert_eq!(bfs.cuts, lean.cuts, "{workload}: explored count differs");
    entries.push(bfs);
    entries.push(lean);
}

fn main() {
    let mut quick = false;
    let mut grid_size: u32 = 40;
    let mut out = String::from("BENCH_memory.json");
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--grid" => grid_size = it.next().expect("--grid N").parse().expect("integer"),
            "--out" => out = it.next().expect("--out PATH"),
            other => panic!("unknown flag {other}"),
        }
    }
    let limits = Limits::none();
    let mut entries: Vec<Entry> = Vec::new();

    // Exhaustive sweep: the never-predicate forces both engines through
    // all (grid+1)² cuts, so BFS stores the whole lattice while lean
    // retains two 41-cut layers.
    let comp = grid(grid_size, grid_size);
    let never = FnPredicate::new(ProcSet::all(2), "false", |_| false);
    measure_pair(
        &mut entries,
        &format!("grid{grid_size}"),
        |engine| match engine {
            "bfs" => detect_bfs(&comp, &comp, &never, &limits),
            _ => detect_lean(&comp, &comp, &never, &limits),
        },
    );

    // Wide middle layers: the 5-process hypercube's widest layer is a
    // multinomial peak, the shape the O(widest layer) bound is about.
    let cube = hypercube(5, 8);
    let never5 = FnPredicate::new(ProcSet::all(5), "false", |_| false);
    measure_pair(&mut entries, "cube5x8", |engine| match engine {
        "bfs" => detect_bfs(&cube, &cube, &never5, &limits),
        _ => detect_lean(&cube, &cube, &never5, &limits),
    });

    // The paper's protocol workloads with an injected fault: detection
    // stops at the earliest witness, so both engines walk the same short
    // prefix of layers.
    for w in [Workload::PrimarySecondary, Workload::DatabasePartitioning] {
        let seed = 3;
        let healthy = w.simulate(5, 10, seed);
        let faulty = w.inject_fault(&healthy, seed);
        let pred = w.violation_pred(&faulty);
        measure_pair(&mut entries, w.name(), |engine| match engine {
            "bfs" => detect_bfs(&faulty, &faulty, &pred, &limits),
            _ => detect_lean(&faulty, &faulty, &pred, &limits),
        });
    }

    // The acceptance bar: on the exhaustive grid sweep the lean engine's
    // live set must be at most 10% of the BFS visited set.
    let grid_tag = format!("grid{grid_size}");
    let bfs_visited = entries
        .iter()
        .find(|e| e.workload == grid_tag && e.engine == "bfs")
        .map(|e| e.visited_inserts)
        .expect("grid bfs entry");
    let lean_peak = entries
        .iter()
        .find(|e| e.workload == grid_tag && e.engine == "lean")
        .map(|e| e.peak_live_cuts)
        .expect("grid lean entry");
    assert!(
        lean_peak * 10 <= bfs_visited,
        "lean peak {lean_peak} exceeds 10% of BFS visited set {bfs_visited}"
    );

    println!("# Peak-live-memory — grid {grid_size}×{grid_size}, fixed seeds");
    println!(
        "{:<28} {:>8} {:>10} {:>10} {:>10} {:>8} {:>12} {:>6}",
        "entry", "detected", "cuts", "peak live", "visited", "layers", "regen probes", "alloc"
    );
    for e in &entries {
        println!(
            "{:<28} {:>8} {:>10} {:>10} {:>10} {:>8} {:>12} {:>6}",
            e.name,
            e.detected,
            e.cuts,
            e.peak_live_cuts,
            e.visited_inserts,
            e.layers,
            e.regen_probes,
            e.heap_allocs
        );
    }
    println!(
        "# grid{grid_size}: lean peak {lean_peak} cuts = {:.1}% of BFS visited set {bfs_visited}",
        100.0 * lean_peak as f64 / bfs_visited as f64
    );

    let doc = JsonObject::new()
        .str("schema", slicing_observe::schema::BENCH_MEMORY)
        .str("binary", "table_memory")
        .bool("quick", quick)
        .u64("grid", u64::from(grid_size))
        .raw(
            "entries",
            &entries
                .iter()
                .fold(JsonArray::new(), |arr, e| arr.push_raw(&e.to_json()))
                .finish(),
        )
        .finish();
    std::fs::write(&out, format!("{doc}\n")).expect("write bench artifact");
    eprintln!("# wrote {} entries to {out}", entries.len());
}
