//! Reproduces the paper's Section 5.1 worst-case observations: with a
//! memory cap in place, the partial-order-methods baseline runs out of
//! memory in a fraction of runs (≈6% for primary–secondary at n = 12 under
//! their 100 MB cap; ≈1% for database partitioning at n = 10), while
//! slicing stays within budget — making resource provisioning predictable.
//!
//! ```text
//! cargo run --release -p slicing-bench --bin table_oom_rate -- \
//!     [--procs 7] [--events 22] [--seeds 20] [--cap-kb 256] \
//!     [--max-cuts 5000000] [--faults 1] [--report oom.json]
//! ```
//!
//! The cap defaults to a deliberately small value so the effect shows at
//! laptop scale; the paper's absolute 100 MB corresponds to much larger
//! runs. `--max-cuts` adds a state-count cap on top of the byte cap (both
//! are enforced together); `--report <path>` writes every per-seed run as
//! a `slicing.bench-report/v1` JSON document.

use slicing_bench::{
    measure_hybrid, measure_pom, measure_slicing, sweep_samples, Aggregate, Workload,
};
use slicing_detect::Limits;
use slicing_observe::RunReportSet;

fn main() {
    let mut procs: usize = 7;
    let mut events: u32 = 22;
    let mut seeds: u64 = 20;
    let mut cap_kb: u64 = 256;
    let mut max_cuts: u64 = 5_000_000;
    let mut faults: u32 = 1;
    let mut timeout_ms: Option<u64> = None;
    let mut report_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--procs" => procs = value.parse().expect("integer"),
            "--events" => events = value.parse().expect("integer"),
            "--seeds" => seeds = value.parse().expect("integer"),
            "--cap-kb" => cap_kb = value.parse().expect("integer"),
            "--max-cuts" => max_cuts = value.parse().expect("integer"),
            "--faults" => faults = value.parse().expect("integer"),
            "--timeout-ms" => timeout_ms = Some(value.parse().expect("integer")),
            "--report" => report_path = Some(value),
            other => panic!("unknown flag {other}"),
        }
    }
    // All caps at once: a run aborts on whichever budget it hits first.
    let mut limits = Limits::new(Some(cap_kb * 1024), Some(max_cuts));
    if let Some(t) = timeout_ms {
        limits = limits.with_deadline(std::time::Duration::from_millis(t));
    }
    let mut report = RunReportSet::new("table_oom_rate");

    println!(
        "# Out-of-memory rates under a {cap_kb} KiB cap — n = {procs}, events/process = {events}, {seeds} seeds, {faults} fault(s)"
    );
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>11} {:>11} {:>11}",
        "workload", "slice_oom%", "pom_oom%", "hybrid_oom%", "slice_det", "pom_det", "hybrid_det"
    );
    for w in [Workload::PrimarySecondary, Workload::DatabasePartitioning] {
        let s_runs = sweep_samples(w, procs, events, 0..seeds, faults, &limits, measure_slicing);
        let p_runs = sweep_samples(w, procs, events, 0..seeds, faults, &limits, measure_pom);
        let h_runs = sweep_samples(w, procs, events, 0..seeds, faults, &limits, measure_hybrid);
        if report_path.is_some() {
            for (engine, runs) in [("slice", &s_runs), ("pom", &p_runs), ("hybrid", &h_runs)] {
                for (seed, sample) in runs {
                    report.push(sample.to_report(w, engine, procs, events, *seed));
                }
            }
        }
        let s = Aggregate::of(&s_runs.iter().map(|(_, s)| s.clone()).collect::<Vec<_>>());
        let p = Aggregate::of(&p_runs.iter().map(|(_, s)| s.clone()).collect::<Vec<_>>());
        let h = Aggregate::of(&h_runs.iter().map(|(_, s)| s.clone()).collect::<Vec<_>>());
        println!(
            "{:<24} {:>11.1}% {:>11.1}% {:>11.1}% {:>11} {:>11} {:>11}",
            w.name(),
            s.abort_rate() * 100.0,
            p.abort_rate() * 100.0,
            h.abort_rate() * 100.0,
            format!("{}/{}", s.detections, s.completed),
            format!("{}/{}", p.detections, p.completed),
            format!("{}/{}", h.detections, h.completed),
        );
    }
    println!("\n# Expected shape (paper): the baseline hits the cap on a fraction");
    println!("# of runs (its memory depends on where — and whether — the fault");
    println!("# occurs), while slicing's footprint is stable and cap-free.");
    if let Some(path) = &report_path {
        report.write_to(path).expect("write report");
        eprintln!("# wrote {} runs to {path}", report.runs.len());
    }
}
