//! Reproduces the paper's state-space-reduction claims ("the slice has
//! much fewer consistent cuts than the computation itself — exponentially
//! smaller in many cases"): cut counts of computation versus slice across
//! the workloads in this repository.
//!
//! ```text
//! cargo run --release -p slicing-bench --bin table_slice_stats -- \
//!     [--events 14] [--cap 5000000] [--report stats.json]
//! ```
//!
//! `--report <path>` writes one `slicing.bench-report/v1` run per table
//! row, with the cut counts as counters.

use std::cell::RefCell;

use slicing_bench::Workload;
use slicing_computation::test_fixtures::figure1;
use slicing_core::{slice_decomposable, SliceStats};
use slicing_observe::{RunReport, RunReportSet};
use slicing_sim::clock_sync::{self, ClockSync};
use slicing_sim::token_ring::{no_token_spec, TokenRing};
use slicing_sim::{run, SimConfig};

fn main() {
    let mut events: u32 = 14;
    let mut cap: u64 = 5_000_000;
    let mut timeout_ms: Option<u64> = None;
    let mut report_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--events" => events = value.parse().expect("integer"),
            "--cap" => cap = value.parse().expect("integer"),
            "--timeout-ms" => timeout_ms = Some(value.parse().expect("integer")),
            "--report" => report_path = Some(value),
            other => panic!("unknown flag {other}"),
        }
    }
    let report = RefCell::new(RunReportSet::new("table_slice_stats"));

    // A whole-table deadline: rows started after it has passed are skipped
    // so a large `--events` sweep degrades to a partial table instead of
    // hanging CI.
    let started = std::time::Instant::now();
    let deadline = timeout_ms.map(std::time::Duration::from_millis);
    let expired = move || deadline.is_some_and(|d| started.elapsed() > d);

    println!(
        "{:<34} {:>8} {:>14} {:>12} {:>10} {:>12}",
        "workload / predicate", "events", "lattice_cuts", "slice_cuts", "metas", "reduction"
    );

    let row = |name: &str, stats: &SliceStats| {
        println!(
            "{:<34} {:>8} {:>13}{} {:>11}{} {:>10} {:>11.1}x",
            name,
            stats.num_events,
            stats.computation_cuts.value(),
            if stats.computation_cuts.is_exact() {
                " "
            } else {
                "+"
            },
            stats.slice_cuts.value(),
            if stats.slice_cuts.is_exact() {
                " "
            } else {
                "+"
            },
            stats.num_meta_events,
            stats.reduction_factor(),
        );
        let mut r = RunReport::new(name, "slice-stats");
        r.events = Some(stats.num_events as u64);
        let r = r
            .counter("computation_cuts", stats.computation_cuts.value())
            .counter("slice_cuts", stats.slice_cuts.value())
            .counter("meta_events", stats.num_meta_events as u64);
        report.borrow_mut().push(r);
    };

    // Figure 1.
    {
        let comp = figure1();
        let pred = slicing_predicates::expr::parse_predicate(&comp, "x1@0 > 1 && x3@2 <= 3")
            .expect("fixture predicate parses");
        let conj = pred.to_conjunctive().expect("conjunctive");
        let slice = slicing_core::slice_conjunctive(&comp, &conj);
        row(
            "figure-1 / (x1>1)∧(x3≤3)",
            &SliceStats::gather(&comp, &slice, Some(cap)),
        );
    }

    // Token ring: no process has the token.
    if !expired() {
        let cfg = SimConfig {
            seed: 5,
            max_events_per_process: events,
            ..SimConfig::default()
        };
        let comp = run(&mut TokenRing::new(4), &cfg).expect("run builds");
        let slice = no_token_spec(&comp).slice(&comp);
        row(
            "token-ring / no-token",
            &SliceStats::gather(&comp, &slice, Some(cap)),
        );
    }

    // Primary-secondary and database partitioning, fault-free and faulty.
    for w in [Workload::PrimarySecondary, Workload::DatabasePartitioning] {
        for faults in [0u32, 1] {
            if expired() {
                break;
            }
            let mut comp = w.simulate(5, events, 11);
            for f in 0..faults {
                comp = w.inject_fault(&comp, 77 + u64::from(f));
            }
            let slice = w.violation_spec(&comp).slice(&comp);
            let stats = SliceStats::gather(&comp, &slice, Some(cap));
            let name = format!(
                "{} / ¬I ({})",
                w.name(),
                if faults == 0 { "fault-free" } else { "1 fault" }
            );
            row(&name, &stats);
        }
    }

    // Decomposable regular predicate on monotone clocks.
    if !expired() {
        let cfg = SimConfig {
            seed: 99,
            max_events_per_process: events,
            ..SimConfig::default()
        };
        let comp = run(&mut ClockSync::new(4), &cfg).expect("run builds");
        let clauses = clock_sync::synchronized_clauses(&comp, 2);
        let slice = slice_decomposable(&comp, &clauses);
        row(
            "clock-sync / |ci-cj|≤2",
            &SliceStats::gather(&comp, &slice, Some(cap)),
        );
    }

    if expired() {
        println!("\n# --timeout-ms deadline passed: remaining rows skipped");
    }
    println!("\n(+ marks a capped count: the true value is at least the shown one; cap = {cap})");
    if let Some(path) = &report_path {
        let report = report.borrow();
        report.write_to(path).expect("write report");
        eprintln!("# wrote {} runs to {path}", report.runs.len());
    }
}
