//! Tenant sweep for the predicate-multiplexing hub: the same fixed-seed
//! stream — eight processes, churning integer values, cross-process
//! messages — is served to 1, 16, and 256 tenants whose two-clause
//! conjunctive predicates are drawn from a bounded pool, so large rosters
//! overlap heavily. The committed artifact — `BENCH_serve.json` (schema
//! `slicing.bench-serve/v1`) — is the baseline CI gates against.
//!
//! ```text
//! cargo run --release -p slicing-bench --bin table_serve -- \
//!     [--quick] [--procs 8] [--events 120000] [--out BENCH_serve.json]
//! ```
//!
//! Every reported number is a **deterministic counter** — a pure function
//! of the seed and flags, identical on every machine. The sweep asserts
//! its headline claims in-process before writing the artifact:
//!
//! - **Sublinear cost growth.** Per-event work (clause evaluations plus
//!   settle probes, `cost_per_event_milli`) for 256 tenants stays under
//!   `PRED_SHAPES`× (24×) the single-tenant cost — it tracks the number
//!   of distinct predicates, never the roster size — because shared
//!   sub-slices are keyed once per distinct clause bundle, not once per
//!   tenant.
//! - **Bounded structure.** Distinct groups saturate at the predicate
//!   pool size: 256 tenants fold onto the same few dozen shared groups.
//!
//! Wall-clock is intentionally absent: this table gates the *work* of the
//! multiplexer, never time.

use slicing_computation::{cut_heap_allocs, Value, VarRef};
use slicing_detect::MonitorHub;
use slicing_observe::json::{JsonArray, JsonObject};
use slicing_predicates::{Conjunctive, LocalPredicate};

/// Distinct predicate shapes tenants draw from; 256 tenants spread over
/// this many groups, so group structure saturates early in the sweep.
const PRED_SHAPES: usize = 24;

struct Row {
    name: String,
    tenants: u64,
    groups: u64,
    slots: u64,
    events: u64,
    messages: u64,
    alarms: u64,
    check_cost: u64,
    clause_evals: u64,
    delta_cuts: u64,
    cost_per_event_milli: u64,
    heap_allocs: u64,
}

impl Row {
    fn to_json(&self) -> String {
        JsonObject::new()
            .str("name", &self.name)
            .u64("tenants", self.tenants)
            .u64("groups", self.groups)
            .u64("slots", self.slots)
            .u64("events", self.events)
            .u64("messages", self.messages)
            .u64("alarms", self.alarms)
            .u64("check_cost", self.check_cost)
            .u64("clause_evals", self.clause_evals)
            .u64("delta_cuts", self.delta_cuts)
            .u64("cost_per_event_milli", self.cost_per_event_milli)
            .u64("heap_allocs", self.heap_allocs)
            .finish()
    }
}

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

enum Step {
    Event { process: usize, value: i64 },
    Msg { from: usize, to: usize },
}

/// The shared stream: one event per step on a seeded process, and every
/// fourth step a message from an older event into the fresh one (skipped
/// when the draw lands on the same process, keeping the stream a pure
/// function of the seed).
fn build_stream(procs: usize, steps: u64) -> Vec<Step> {
    let mut rng = XorShift(0x5e7e_bead_u64 | 1);
    let mut stream = Vec::with_capacity(steps as usize);
    let mut event_procs: Vec<usize> = Vec::new();
    for s in 0..steps {
        let process = rng.below(procs as u64) as usize;
        stream.push(Step::Event {
            process,
            value: rng.below(6) as i64,
        });
        event_procs.push(process);
        if s % 4 == 3 && event_procs.len() > 1 {
            let to = event_procs.len() - 1;
            let from = rng.below(to as u64) as usize;
            if event_procs[from] != event_procs[to] {
                stream.push(Step::Msg { from, to });
            }
        }
    }
    stream
}

/// The clause pool: three threshold clauses per process. Each predicate
/// shape pairs two clauses on distinct processes.
fn clause_pool(vars: &[VarRef]) -> Vec<(String, LocalPredicate)> {
    let mut pool = Vec::new();
    for (p, &v) in vars.iter().enumerate() {
        pool.push((
            format!("x@{p} > 3"),
            LocalPredicate::int(v, format!("x@{p} > 3"), |x| x > 3),
        ));
        pool.push((
            format!("x@{p} == 0"),
            LocalPredicate::int(v, format!("x@{p} == 0"), |x| x == 0),
        ));
        pool.push((
            format!("x@{p} % 2 == 1"),
            LocalPredicate::int(v, format!("x@{p} % 2 == 1"), |x| x % 2 == 1),
        ));
    }
    pool
}

/// Tenant `i` watches shape `i % PRED_SHAPES`: a deterministic clause
/// pair on distinct processes. The multipliers are coprime to the pool
/// size, so all `PRED_SHAPES` shapes are distinct.
fn shape_clauses(shape: usize, pool_len: usize) -> (usize, usize) {
    let a = (shape * 5) % pool_len;
    let mut b = (shape * 11 + 7) % pool_len;
    while b / 3 == a / 3 {
        b = (b + 3) % pool_len;
    }
    (a, b)
}

/// Serves the shared stream to `tenants` tenants on one hub and returns
/// the sweep row.
fn run_sweep(procs: usize, tenants: u64, stream: &[Step]) -> Row {
    let allocs_before = cut_heap_allocs();
    let mut hub = MonitorHub::new(procs);
    let vars: Vec<VarRef> = (0..procs)
        .map(|p| hub.declare_var(p, "x", Value::Int(0)).expect("fresh var"))
        .collect();
    let pool = clause_pool(&vars);
    for i in 0..tenants {
        let (a, b) = shape_clauses(i as usize % PRED_SHAPES, pool.len());
        let pred = Conjunctive::new(vec![pool[a].1.clone(), pool[b].1.clone()]);
        let source = format!("{} && {}", pool[a].0, pool[b].0);
        hub.add_tenant(&format!("t{i}"), &pred, &source)
            .expect("tenant registers");
    }
    let registration_evals = hub.stats().clause_evals;
    let mut event_ids = Vec::new();
    for step in stream {
        match step {
            Step::Event { process, value } => {
                let e = hub
                    .observe(*process, &[(vars[*process], Value::Int(*value))])
                    .expect("typed observation");
                event_ids.push(e);
            }
            Step::Msg { from, to } => {
                hub.message(event_ids[*from], event_ids[*to])
                    .expect("acyclic by construction");
            }
        }
        hub.check_all();
    }
    let stats = hub.stats();
    let clause_evals = stats.clause_evals - registration_evals;
    // Per-event multiplexing work: every clause evaluation plus every
    // settle probe, normalized by stream length. The event ingest itself
    // is tenant-independent and excluded.
    let work = clause_evals + stats.check_cost;
    Row {
        name: format!("tenants{tenants}"),
        tenants,
        groups: hub.group_count() as u64,
        slots: hub.slot_count() as u64,
        events: stats.events,
        messages: stats.messages,
        alarms: stats.alarms,
        check_cost: stats.check_cost,
        clause_evals,
        delta_cuts: stats.delta_cuts,
        cost_per_event_milli: work * 1000 / stats.events.max(1),
        heap_allocs: cut_heap_allocs() - allocs_before,
    }
}

fn main() {
    let mut quick = false;
    let mut procs: usize = 8;
    let mut events: u64 = 120_000;
    let mut out = String::from("BENCH_serve.json");
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--procs" => procs = it.next().expect("--procs N").parse().expect("integer"),
            "--events" => events = it.next().expect("--events N").parse().expect("integer"),
            "--out" => out = it.next().expect("--out PATH"),
            other => panic!("unknown flag {other}"),
        }
    }
    if quick {
        events = events.min(8_000);
    }
    assert!(procs >= 4, "the sweep needs at least four processes");

    let stream = build_stream(procs, events);
    let sweep: &[u64] = &[1, 16, 256];
    let rows: Vec<Row> = sweep
        .iter()
        .map(|&n| run_sweep(procs, n, &stream))
        .collect();

    let one = &rows[0];
    let big = &rows[rows.len() - 1];

    // Headline claim 1: per-event work scales with the number of distinct
    // predicate shapes (the structure), never the roster size — a 256×
    // roster costs less than PRED_SHAPES× (24×) the single-tenant work,
    // an order of magnitude under linear.
    assert!(
        big.cost_per_event_milli < one.cost_per_event_milli * PRED_SHAPES as u64,
        "multiplexing cost is not sublinear: {} tenants at {} milli/event vs 1 tenant at {}",
        big.tenants,
        big.cost_per_event_milli,
        one.cost_per_event_milli
    );
    // Per-event cost grows with roster size (more distinct groups), it
    // just grows sublinearly.
    for pair in rows.windows(2) {
        assert!(
            pair[0].cost_per_event_milli <= pair[1].cost_per_event_milli,
            "cost should be monotone in tenants: {} then {}",
            pair[0].cost_per_event_milli,
            pair[1].cost_per_event_milli
        );
    }
    // Headline claim 2: group structure saturates at the predicate pool.
    assert!(
        big.groups <= PRED_SHAPES as u64 && big.groups < big.tenants,
        "groups did not saturate: {} groups for {} tenants",
        big.groups,
        big.tenants
    );
    assert!(
        rows.iter().all(|r| r.alarms > 0),
        "a sweep row never alarmed — workload too weak"
    );

    println!(
        "# Tenant sweep — {procs} procs, {events} events, {PRED_SHAPES} predicate shapes, sweep {sweep:?}"
    );
    println!(
        "{:<12} {:>7} {:>6} {:>6} {:>9} {:>8} {:>8} {:>11} {:>12} {:>12} {:>8}",
        "row",
        "tenants",
        "groups",
        "slots",
        "events",
        "messages",
        "alarms",
        "cost",
        "clause_eval",
        "milli/event",
        "alloc"
    );
    for r in &rows {
        println!(
            "{:<12} {:>7} {:>6} {:>6} {:>9} {:>8} {:>8} {:>11} {:>12} {:>12} {:>8}",
            r.name,
            r.tenants,
            r.groups,
            r.slots,
            r.events,
            r.messages,
            r.alarms,
            r.check_cost,
            r.clause_evals,
            r.cost_per_event_milli,
            r.heap_allocs
        );
    }
    println!(
        "# sublinear: {}x tenants for {:.1}x per-event work ({} -> {} milli/event)",
        big.tenants / one.tenants,
        big.cost_per_event_milli as f64 / one.cost_per_event_milli.max(1) as f64,
        one.cost_per_event_milli,
        big.cost_per_event_milli
    );

    let doc = JsonObject::new()
        .str("schema", slicing_observe::schema::BENCH_SERVE)
        .str("binary", "table_serve")
        .bool("quick", quick)
        .u64("procs", procs as u64)
        .u64("events", events)
        .raw(
            "entries",
            &rows
                .iter()
                .fold(JsonArray::new(), |arr, r| arr.push_raw(&r.to_json()))
                .finish(),
        )
        .finish();
    std::fs::write(&out, format!("{doc}\n")).expect("write bench artifact");
    eprintln!("# wrote {} rows to {out}", rows.len());
}
