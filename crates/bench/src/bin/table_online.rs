//! Streaming-soak table for the online monitor: a fixed-seed event stream
//! is fed through [`OnlineMonitor`] with a check after *every* event, and
//! the per-event check cost is recorded per segment. The committed
//! artifact — `BENCH_online.json` (schema `slicing.bench-online/v1`) — is
//! the baseline CI gates against.
//!
//! ```text
//! cargo run --release -p slicing-bench --bin table_online -- \
//!     [--quick] [--procs 4] [--segments 4] [--events 2000] [--warmup 2000] \
//!     [--out BENCH_online.json]
//! ```
//!
//! Every reported number is a **deterministic counter** — a pure function
//! of the seed and flags, identical on every machine:
//!
//! - **check_cost** — candidate probes + alarm joins performed by the
//!   monitor's checks in the segment (`MonitorStats::check_cost` delta).
//! - **cost_per_event_milli** — `1000 × check_cost / events`, the
//!   amortized per-event check cost. The headline claim is that this is
//!   *flat across segments*: segment 4 monitors a history 4× longer than
//!   segment 1 but pays the same per event.
//! - **heap_allocs** — spilled-cut allocations during the segment's
//!   observe/check loop; must be zero (the soak stays at ≤ 16 processes,
//!   and the warm monitor reuses its scratch cut).
//! - **cost_p50/p90/p99/max** — the per-check cost distribution inside
//!   the segment, summarized with log-bucketed histograms whose
//!   percentile figures are bucket upper bounds: deterministic,
//!   order-independent, and machine-independent, so they are safe to
//!   compare across runs (though CI gates only the scale-invariant
//!   columns).
//!
//! Recorded segments start only after a warm-up phase (`--warmup` events,
//! streamed but not tabulated): during cold start many candidate queues
//! are still empty, which makes checks *cheaper* than steady state and
//! would both mask growth and skew cross-run comparisons. Wall-clock is
//! intentionally absent: this table gates the *work* of the incremental
//! algorithm, and wall-clock is never gated. `--quick` trims the segment
//! length only — never the warm-up — so per-event numbers stay
//! steady-state and comparable, and CI gates them with a 25% drift
//! allowance.

use slicing_computation::{cut_heap_allocs, Cut, EventId, Value, VarRef};
use slicing_detect::OnlineMonitor;
use slicing_observe::json::{JsonArray, JsonObject};

struct Segment {
    name: String,
    segment: u64,
    events: u64,
    checks: u64,
    check_cost: u64,
    cost_per_event_milli: u64,
    delta_cuts: u64,
    alarms: u64,
    messages: u64,
    heap_allocs: u64,
    peak_candidates: u64,
    /// Per-check cost distribution (log-bucketed percentiles, so the
    /// figures are deterministic and machine-independent like every
    /// other column): p50/p90/p99/max of `monitor.check.cost` samples
    /// recorded during the segment.
    cost_p50: u64,
    cost_p90: u64,
    cost_p99: u64,
    cost_max: u64,
}

impl Segment {
    fn to_json(&self) -> String {
        JsonObject::new()
            .str("name", &self.name)
            .u64("segment", self.segment)
            .u64("events", self.events)
            .u64("checks", self.checks)
            .u64("check_cost", self.check_cost)
            .u64("cost_per_event_milli", self.cost_per_event_milli)
            .u64("cost_p50", self.cost_p50)
            .u64("cost_p90", self.cost_p90)
            .u64("cost_p99", self.cost_p99)
            .u64("cost_max", self.cost_max)
            .u64("delta_cuts", self.delta_cuts)
            .u64("alarms", self.alarms)
            .u64("messages", self.messages)
            .u64("heap_allocs", self.heap_allocs)
            .u64("peak_candidates", self.peak_candidates)
            .finish()
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// One soak step: observe a pseudo-random event, maybe wire a message from
/// an older event of another process (never cyclic — the fresh event is
/// maximal), and run a check.
fn step(
    m: &mut OnlineMonitor,
    vars: &[VarRef],
    rng: &mut u64,
    last_event: &mut [Option<EventId>],
    last_alarm: &mut Option<Cut>,
) {
    let procs = vars.len();
    let p = (xorshift(rng) % procs as u64) as usize;
    // Sparse greens: the conjunct holds at ~1 event in 5, so heads
    // advance and queues keep churning instead of only growing.
    let green = xorshift(rng).is_multiple_of(5);
    let e = m
        .observe(p, &[(vars[p], Value::Int(i64::from(green)))])
        .expect("typed observation");
    if xorshift(rng).is_multiple_of(3) {
        let q = (xorshift(rng) % procs as u64) as usize;
        if q != p {
            if let Some(send) = last_event[q] {
                m.message(send, e).expect("acyclic forward message");
            }
        }
    }
    last_event[p] = Some(e);
    if let Some(alarm) = m.check().expect("check never fails") {
        *last_alarm = Some(alarm);
    }
}

fn main() {
    let mut quick = false;
    let mut procs: usize = 4;
    let mut segments: u64 = 4;
    let mut events_per_segment: u64 = 2000;
    let mut warmup: u64 = 2000;
    let mut out = String::from("BENCH_online.json");
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--procs" => procs = it.next().expect("--procs N").parse().expect("integer"),
            "--segments" => segments = it.next().expect("--segments N").parse().expect("integer"),
            "--events" => {
                events_per_segment = it.next().expect("--events N").parse().expect("integer");
            }
            "--warmup" => warmup = it.next().expect("--warmup N").parse().expect("integer"),
            "--out" => out = it.next().expect("--out PATH"),
            other => panic!("unknown flag {other}"),
        }
    }
    if quick {
        events_per_segment = events_per_segment.min(500);
    }
    assert!(procs >= 2, "the soak needs at least two processes");
    assert!(
        procs <= 16,
        "the zero-allocation claim is about inline cuts (≤ 16 processes)"
    );

    let mut m = OnlineMonitor::new(procs);
    let vars: Vec<_> = (0..procs)
        .map(|i| m.declare_var(i, "x", Value::Int(0)).expect("fresh var"))
        .collect();
    for &v in &vars {
        m.watch_int(v, "x > 0", |x| x > 0).expect("watch up front");
    }

    let mut rng: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut last_event: Vec<Option<EventId>> = vec![None; procs];
    let mut last_alarm: Option<Cut> = None;
    let mut rows: Vec<Segment> = Vec::new();

    // Warm up to steady state before recording: cold-start checks are
    // artificially cheap while candidate queues are still empty.
    for _ in 0..warmup {
        step(&mut m, &vars, &mut rng, &mut last_event, &mut last_alarm);
    }
    let mut prev = m.stats();

    for seg in 1..=segments {
        let allocs_before = cut_heap_allocs();
        // A scoped recorder catches the segment's `monitor.check.cost`
        // samples for the percentile columns. Scoped to the segment so
        // each row summarizes its own distribution.
        let mem = std::sync::Arc::new(slicing_observe::MemoryRecorder::new(
            slicing_observe::Level::Trace,
        ));
        let recording = slicing_observe::scoped(mem.clone());
        for _ in 0..events_per_segment {
            step(&mut m, &vars, &mut rng, &mut last_event, &mut last_alarm);
        }
        drop(recording);
        let heap_allocs = cut_heap_allocs() - allocs_before;
        let (_, cost_p50, cost_p90, cost_p99, cost_max) =
            mem.sample_histogram("monitor.check.cost").summary();

        // Differential sanity at the segment boundary: the offline
        // reference must agree with the monitor's settled verdict.
        let offline = m.check_offline().expect("acyclic history").found;
        assert!(
            offline.is_none() || offline.as_ref() == last_alarm.as_ref(),
            "segment {seg}: offline verdict {offline:?} diverged from the monitor"
        );

        let cur = m.stats();
        let events = cur.events - prev.events;
        let check_cost = cur.check_cost - prev.check_cost;
        rows.push(Segment {
            name: format!("segment{seg}"),
            segment: seg,
            events,
            checks: cur.checks - prev.checks,
            check_cost,
            cost_per_event_milli: check_cost * 1000 / events.max(1),
            delta_cuts: cur.delta_cuts - prev.delta_cuts,
            alarms: cur.alarms - prev.alarms,
            messages: cur.messages - prev.messages,
            heap_allocs,
            peak_candidates: cur.peak_candidates,
            cost_p50,
            cost_p90,
            cost_p99,
            cost_max,
        });
        prev = cur;
    }

    // The acceptance bar, in-binary: per-event check cost must be *flat*
    // in history length. Segment `segments` watches a history `segments`×
    // longer than segment 1; an O(history) check would scale the per-event
    // cost by the same factor. Allow 25% plus a one-probe absolute slack.
    let first = &rows[0];
    let last = &rows[rows.len() - 1];
    assert!(
        last.cost_per_event_milli <= first.cost_per_event_milli * 125 / 100 + 1000,
        "per-event check cost grew with history length: {} -> {} milliprobe/event",
        first.cost_per_event_milli,
        last.cost_per_event_milli
    );
    for row in &rows {
        assert_eq!(
            row.heap_allocs, 0,
            "{}: the warm monitor allocated cut storage",
            row.name
        );
    }

    println!(
        "# Online-monitor soak — {procs} procs, {warmup} warm-up + {segments}×{events_per_segment} events, fixed seed"
    );
    println!(
        "{:<10} {:>8} {:>10} {:>12} {:>5} {:>5} {:>5} {:>10} {:>8} {:>9} {:>6} {:>10}",
        "segment",
        "events",
        "cost",
        "milli/event",
        "p50",
        "p99",
        "max",
        "delta",
        "alarms",
        "messages",
        "alloc",
        "peak cand"
    );
    for r in &rows {
        println!(
            "{:<10} {:>8} {:>10} {:>12} {:>5} {:>5} {:>5} {:>10} {:>8} {:>9} {:>6} {:>10}",
            r.name,
            r.events,
            r.check_cost,
            r.cost_per_event_milli,
            r.cost_p50,
            r.cost_p99,
            r.cost_max,
            r.delta_cuts,
            r.alarms,
            r.messages,
            r.heap_allocs,
            r.peak_candidates
        );
    }
    println!(
        "# per-event check cost: segment1 {} vs segment{segments} {} milliprobe/event (flat)",
        first.cost_per_event_milli, last.cost_per_event_milli
    );

    let doc = JsonObject::new()
        .str("schema", slicing_observe::schema::BENCH_ONLINE)
        .str("binary", "table_online")
        .bool("quick", quick)
        .u64("procs", procs as u64)
        .u64("segments", segments)
        .u64("events_per_segment", events_per_segment)
        .u64("warmup", warmup)
        .raw(
            "entries",
            &rows
                .iter()
                .fold(JsonArray::new(), |arr, r| arr.push_raw(&r.to_json()))
                .finish(),
        )
        .finish();
    std::fs::write(&out, format!("{doc}\n")).expect("write bench artifact");
    eprintln!("# wrote {} segments to {out}", rows.len());
}
