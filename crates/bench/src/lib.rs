//! Shared experiment harness for reproducing the paper's figures and
//! tables.
//!
//! The binaries in `src/bin/` regenerate each figure's series (see
//! `EXPERIMENTS.md` at the repository root); the Criterion benches in
//! `benches/` track the same workloads as micro-benchmarks.

#![warn(missing_docs)]

use std::time::Duration;

use slicing_computation::Computation;
use slicing_core::PredicateSpec;
use slicing_detect::{
    detect_hybrid, detect_pom, detect_with_slicing, suggested_pom_budget, Limits,
};
use slicing_observe::RunReport;
use slicing_predicates::{FnPredicate, Predicate};
use slicing_sim::crdt::{self, CrdtReplication};
use slicing_sim::database::{self, DatabasePartitioning};
use slicing_sim::fault::{
    inject_crdt_fault, inject_database_fault, inject_leader_election_fault,
    inject_primary_secondary_fault, inject_work_queue_fault,
};
use slicing_sim::leader_election::{self, LeaderElection};
use slicing_sim::primary_secondary::{self, PrimarySecondary};
use slicing_sim::work_queue::{self, WorkQueue};
use slicing_sim::{run, SimConfig};

/// Which protocol an experiment drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// The primary–secondary protocol (Figure 2).
    PrimarySecondary,
    /// The database-partitioning protocol (Figure 3).
    DatabasePartitioning,
    /// Raft-style leader election (scenario zoo).
    LeaderElection,
    /// Op-based PN-counter replication (scenario zoo).
    CrdtReplication,
    /// Producer/broker/consumer work queue (scenario zoo).
    WorkQueue,
}

impl Workload {
    /// The two workloads from the paper's evaluation.
    pub const PAPER: [Workload; 2] = [Workload::PrimarySecondary, Workload::DatabasePartitioning];

    /// The scenario-zoo protocol workloads.
    pub const PROTOCOLS: [Workload; 3] = [
        Workload::LeaderElection,
        Workload::CrdtReplication,
        Workload::WorkQueue,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::PrimarySecondary => "primary-secondary",
            Workload::DatabasePartitioning => "database-partitioning",
            Workload::LeaderElection => "leader-election",
            Workload::CrdtReplication => "crdt-replication",
            Workload::WorkQueue => "work-queue",
        }
    }

    /// Simulates a fault-free run.
    pub fn simulate(self, procs: usize, events: u32, seed: u64) -> Computation {
        let cfg = SimConfig {
            seed,
            max_events_per_process: events,
            ..SimConfig::default()
        };
        match self {
            Workload::PrimarySecondary => {
                run(&mut PrimarySecondary::new(procs), &cfg).expect("protocol run builds")
            }
            Workload::DatabasePartitioning => {
                run(&mut DatabasePartitioning::new(procs), &cfg).expect("protocol run builds")
            }
            Workload::LeaderElection => {
                run(&mut LeaderElection::new(procs), &cfg).expect("protocol run builds")
            }
            Workload::CrdtReplication => {
                run(&mut CrdtReplication::new(procs), &cfg).expect("protocol run builds")
            }
            Workload::WorkQueue => {
                run(&mut WorkQueue::new(procs), &cfg).expect("protocol run builds")
            }
        }
    }

    /// Injects one random fault (returns the input unchanged if no
    /// candidate exists).
    pub fn inject_fault(self, comp: &Computation, seed: u64) -> Computation {
        let injected = match self {
            Workload::PrimarySecondary => inject_primary_secondary_fault(comp, seed),
            Workload::DatabasePartitioning => inject_database_fault(comp, seed),
            Workload::LeaderElection => inject_leader_election_fault(comp, seed),
            Workload::CrdtReplication => inject_crdt_fault(comp, seed),
            Workload::WorkQueue => inject_work_queue_fault(comp, seed),
        };
        injected.map(|(c, _)| c).unwrap_or_else(|| comp.clone())
    }

    /// The sliceable specification of the global fault `¬I`.
    pub fn violation_spec(self, comp: &Computation) -> PredicateSpec {
        match self {
            Workload::PrimarySecondary => primary_secondary::violation_spec(comp),
            Workload::DatabasePartitioning => database::violation_spec(comp),
            Workload::LeaderElection => leader_election::violation_spec(comp),
            Workload::CrdtReplication => crdt::violation_spec(comp),
            Workload::WorkQueue => work_queue::violation_spec(comp),
        }
    }

    /// `¬I` as a plain predicate for the baseline searcher.
    pub fn violation_pred(self, comp: &Computation) -> FnPredicate {
        let n = comp.num_processes();
        let all = slicing_computation::ProcSet::all(n);
        match self {
            Workload::PrimarySecondary => {
                let inv = primary_secondary::invariant(comp);
                FnPredicate::new(all, "¬I_ps", move |st| !inv.eval(st))
            }
            Workload::DatabasePartitioning => {
                let inv = database::invariant(comp);
                FnPredicate::new(all, "¬I_db", move |st| !inv.eval(st))
            }
            Workload::LeaderElection => {
                let inv = leader_election::invariant(comp);
                FnPredicate::new(all, "¬I_le", move |st| !inv.eval(st))
            }
            Workload::CrdtReplication => {
                let inv = crdt::invariant(comp);
                FnPredicate::new(all, "¬I_crdt", move |st| !inv.eval(st))
            }
            Workload::WorkQueue => {
                let inv = work_queue::invariant(comp);
                FnPredicate::new(all, "¬I_wq", move |st| !inv.eval(st))
            }
        }
    }
}

/// One measured detection run.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Whether a violating cut was found.
    pub detected: bool,
    /// Wall-clock time, including slicing for the slicing approach.
    pub time: Duration,
    /// Peak tracked bytes (search structures plus the slice).
    pub bytes: u64,
    /// Cuts whose predicate value was examined.
    pub cuts: u64,
    /// Whether the run hit a resource limit.
    pub aborted: bool,
    /// Per-phase wall-time breakdown, when the engine reports one.
    pub phases: Vec<(String, Duration)>,
}

impl Sample {
    /// Converts the sample into a [`RunReport`] row for `--report` output.
    pub fn to_report(
        &self,
        workload: Workload,
        engine: &str,
        procs: usize,
        events: u32,
        seed: u64,
    ) -> RunReport {
        let mut r = RunReport::new(workload.name(), engine);
        r.seed = Some(seed);
        r.procs = Some(procs as u64);
        r.events = Some(u64::from(events));
        r.detected = Some(self.detected);
        r.aborted = self.aborted.then(|| "limit".to_owned());
        r.cuts_explored = Some(self.cuts);
        r.peak_bytes = Some(self.bytes);
        r.elapsed_secs = Some(self.time.as_secs_f64());
        for (name, d) in &self.phases {
            r = r.phase(name.clone(), d.as_secs_f64());
        }
        r
    }
}

/// Runs the computation-slicing approach on one computation.
pub fn measure_slicing(workload: Workload, comp: &Computation, limits: &Limits) -> Sample {
    let spec = workload.violation_spec(comp);
    let outcome = detect_with_slicing(comp, &spec, limits);
    Sample {
        detected: outcome.detected(),
        time: outcome.total_elapsed(),
        bytes: outcome.total_peak_bytes(),
        cuts: outcome.search.cuts_explored,
        aborted: !outcome.search.completed(),
        phases: outcome.search.phases.clone(),
    }
}

/// Runs the paper's hybrid strategy (POM under a `4·n·|E|`-entry budget,
/// slicing fallback) on one computation.
pub fn measure_hybrid(workload: Workload, comp: &Computation, limits: &Limits) -> Sample {
    let spec = workload.violation_spec(comp);
    let budget = suggested_pom_budget(comp, 4);
    let outcome = detect_hybrid(comp, &spec, budget, limits);
    let aborted = match &outcome.slicing {
        Some(s) => !s.search.completed(),
        None => false,
    };
    Sample {
        detected: outcome.detected(),
        time: outcome.total_elapsed(),
        bytes: outcome.pom.peak_bytes
            + outcome
                .slicing
                .as_ref()
                .map(|s| s.total_peak_bytes())
                .unwrap_or(0),
        cuts: outcome.pom.cuts_explored
            + outcome
                .slicing
                .as_ref()
                .map(|s| s.search.cuts_explored)
                .unwrap_or(0),
        aborted,
        phases: outcome.pom.phases.clone(),
    }
}

/// Runs the partial-order-methods baseline on one computation.
pub fn measure_pom(workload: Workload, comp: &Computation, limits: &Limits) -> Sample {
    let pred = workload.violation_pred(comp);
    let outcome = detect_pom(comp, &pred, limits);
    Sample {
        detected: outcome.detected(),
        time: outcome.elapsed,
        bytes: outcome.peak_bytes,
        cuts: outcome.cuts_explored,
        aborted: !outcome.completed(),
        phases: outcome.phases.clone(),
    }
}

/// Aggregate of several samples (the paper averages over runs, excluding
/// out-of-memory runs from the averages but reporting their rate).
#[derive(Debug, Clone, Default)]
pub struct Aggregate {
    /// Samples that ran to completion.
    pub completed: u32,
    /// Samples that hit a limit.
    pub aborted: u32,
    /// How many completed samples detected the fault.
    pub detections: u32,
    /// Mean time over completed samples.
    pub mean_time: Duration,
    /// Mean peak bytes over completed samples.
    pub mean_bytes: f64,
    /// Mean examined cuts over completed samples.
    pub mean_cuts: f64,
    /// Maximum examined cuts over completed samples.
    pub max_cuts: u64,
}

impl Aggregate {
    /// Folds samples into an aggregate.
    pub fn of(samples: &[Sample]) -> Aggregate {
        let mut agg = Aggregate::default();
        let mut total_time = Duration::ZERO;
        let mut total_bytes = 0f64;
        let mut total_cuts = 0f64;
        for s in samples {
            if s.aborted {
                agg.aborted += 1;
                continue;
            }
            agg.completed += 1;
            if s.detected {
                agg.detections += 1;
            }
            total_time += s.time;
            total_bytes += s.bytes as f64;
            total_cuts += s.cuts as f64;
            agg.max_cuts = agg.max_cuts.max(s.cuts);
        }
        if agg.completed > 0 {
            agg.mean_time = total_time / agg.completed;
            agg.mean_bytes = total_bytes / f64::from(agg.completed);
            agg.mean_cuts = total_cuts / f64::from(agg.completed);
        }
        agg
    }

    /// Fraction of samples that hit the limit (the paper's ~6% / ~1%
    /// out-of-memory rates).
    pub fn abort_rate(&self) -> f64 {
        let total = self.completed + self.aborted;
        if total == 0 {
            0.0
        } else {
            f64::from(self.aborted) / f64::from(total)
        }
    }
}

/// Runs one approach over seeds for a fixed (workload, n, events),
/// returning the per-seed samples — for `--report` output and for
/// aggregation via [`Aggregate::of`].
pub fn sweep_samples(
    workload: Workload,
    procs: usize,
    events: u32,
    seeds: std::ops::Range<u64>,
    faults: u32,
    limits: &Limits,
    approach: fn(Workload, &Computation, &Limits) -> Sample,
) -> Vec<(u64, Sample)> {
    seeds
        .map(|seed| {
            let mut comp = workload.simulate(procs, events, seed);
            for f in 0..faults {
                comp = workload.inject_fault(&comp, seed.wrapping_mul(1009) + u64::from(f));
            }
            (seed, approach(workload, &comp, limits))
        })
        .collect()
}

/// Sweeps one approach over seeds for a fixed (workload, n, events).
pub fn sweep(
    workload: Workload,
    procs: usize,
    events: u32,
    seeds: std::ops::Range<u64>,
    faults: u32,
    limits: &Limits,
    approach: fn(Workload, &Computation, &Limits) -> Sample,
) -> Aggregate {
    let samples: Vec<Sample> =
        sweep_samples(workload, procs, events, seeds, faults, limits, approach)
            .into_iter()
            .map(|(_, s)| s)
            .collect();
    Aggregate::of(&samples)
}

/// Formats a duration in fractional milliseconds for table output.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Formats bytes in KiB for table output.
pub fn kib(bytes: f64) -> String {
    format!("{:.1}", bytes / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_both_approaches() {
        for w in Workload::PAPER.into_iter().chain(Workload::PROTOCOLS) {
            let procs = 3;
            let s = sweep(w, procs, 6, 0..3, 0, &Limits::none(), measure_slicing);
            assert_eq!(s.completed + s.aborted, 3, "{w:?}");
            assert_eq!(s.detections, 0, "{w:?}: fault-free false alarm");
            let p = sweep(w, procs, 6, 0..3, 0, &Limits::none(), measure_pom);
            assert_eq!(p.detections, 0, "{w:?}");
        }
    }

    #[test]
    fn protocol_faulty_sweeps_detect_and_agree() {
        for w in Workload::PROTOCOLS {
            let s = sweep(w, 3, 8, 0..6, 1, &Limits::none(), measure_slicing);
            let p = sweep(w, 3, 8, 0..6, 1, &Limits::none(), measure_pom);
            assert_eq!(s.detections, p.detections, "{w:?}: approaches must agree");
            assert!(s.detections > 0, "{w:?}: no injected fault was detected");
        }
    }

    #[test]
    fn faulty_sweeps_detect_sometimes() {
        let s = sweep(
            Workload::PrimarySecondary,
            3,
            8,
            0..6,
            1,
            &Limits::none(),
            measure_slicing,
        );
        let p = sweep(
            Workload::PrimarySecondary,
            3,
            8,
            0..6,
            1,
            &Limits::none(),
            measure_pom,
        );
        assert_eq!(s.detections, p.detections, "approaches must agree");
    }

    #[test]
    fn aggregate_math() {
        let samples = vec![
            Sample {
                detected: true,
                time: Duration::from_millis(2),
                bytes: 100,
                cuts: 10,
                aborted: false,
                phases: Vec::new(),
            },
            Sample {
                detected: false,
                time: Duration::from_millis(4),
                bytes: 300,
                cuts: 30,
                aborted: false,
                phases: Vec::new(),
            },
            Sample {
                detected: false,
                time: Duration::ZERO,
                bytes: 0,
                cuts: 0,
                aborted: true,
                phases: Vec::new(),
            },
        ];
        let agg = Aggregate::of(&samples);
        assert_eq!(agg.completed, 2);
        assert_eq!(agg.aborted, 1);
        assert_eq!(agg.detections, 1);
        assert_eq!(agg.mean_time, Duration::from_millis(3));
        assert!((agg.mean_bytes - 200.0).abs() < 1e-9);
        assert_eq!(agg.max_cuts, 30);
        assert!((agg.abort_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(Duration::from_millis(1)), "1.000");
        assert_eq!(kib(2048.0), "2.0");
    }
}
