//! Model substrate for computation slicing: distributed computations,
//! consistent cuts, and the lattice they form.
//!
//! A *distributed computation* is a finite set of events, partitioned among
//! processes and partially ordered by Lamport's happened-before relation
//! (process order plus point-to-point messages). A *consistent cut* is a
//! subset of events closed under that order — a global state the execution
//! could have passed through. The set of consistent cuts forms a
//! distributive lattice, whose size is `O(kⁿ)` for `n` processes with `k`
//! events each; *computation slicing* (the `slicing-core` crate) prunes it.
//!
//! This crate provides:
//!
//! - [`ComputationBuilder`] / [`Computation`]: construction and queries
//!   (vector clocks, consistency checks, channel states, variable values);
//! - [`Cut`] and [`GlobalState`]: cuts as per-process prefix vectors and
//!   the variable/channel view at a cut;
//! - [`CutSpace`] with [`lattice`] traversals: a trait that lets detection
//!   algorithms search computations and slices interchangeably;
//! - [`graph`]: the directed-graph toolkit (Tarjan SCC, condensation) the
//!   slicing algorithms build on;
//! - [`oracle`]: brute-force ground truth (satisfying cuts, sublattice
//!   closures) used to validate the polynomial algorithms;
//! - [`trace`]: a plain-text serialization format for computations;
//! - [`test_fixtures`]: shared fixtures, including a reconstruction of the
//!   paper's Figure 1.
//!
//! # Example
//!
//! ```
//! use slicing_computation::{ComputationBuilder, Cut, GlobalState, Value};
//!
//! // p0 sets x := 1 and sends a message that p1 receives.
//! let mut b = ComputationBuilder::new(2);
//! let x = b.declare_var(b.process(0), "x", Value::Int(0));
//! let send = b.step(b.process(0), &[(x, Value::Int(1))]);
//! let recv = b.append_event(b.process(1));
//! b.message(send, recv)?;
//! let comp = b.build()?;
//!
//! // The cut containing the receive but not the send is inconsistent.
//! assert!(!comp.is_consistent(&Cut::from(vec![1, 2])));
//!
//! // Enumerate the lattice (3 cuts here).
//! let cuts = slicing_computation::lattice::all_cuts(&comp);
//! assert_eq!(cuts.len(), 3);
//! assert_eq!(GlobalState::new(&comp, &cuts[2]).get(x), Value::Int(1));
//! # Ok::<(), slicing_computation::BuildError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod computation;
mod cut;
mod cutset;
mod event;
mod process;
mod state;
mod value;

pub mod graph;
pub mod lattice;
pub mod oracle;
pub mod render;
pub mod test_fixtures;
pub mod trace;

pub use builder::{BuildError, ComputationBuilder};
pub use computation::{Computation, VarRef};
pub use cut::{cut_heap_allocs, Cut, CutPacking};
pub use cutset::{
    hash_counts, hash_packed, BandedCutSet, CutBuildHasher, CutHasher, CutMap64, CutSet,
    CutSetStats, PackedBandedSet, PackedCutSet,
};
pub use event::{EventId, Message};
pub use lattice::CutSpace;
pub use process::{ProcSet, ProcSetIter, ProcessId};
pub use state::GlobalState;
pub use value::Value;
