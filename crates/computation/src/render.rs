//! ASCII space-time diagrams of computations — quick terminal
//! visualization for the CLI and for debugging traces.

use std::fmt::Write as _;

use crate::computation::Computation;
use crate::cut::Cut;

/// Renders a space-time diagram: one row per process, one column per
/// event in a topological order of happened-before (so time flows left to
/// right), message sends/receives annotated with matching numeric tags.
///
/// ```text
/// p0 ⊥--a[s1]-----c
/// p1 ⊥------b(r1)--
/// ```
///
/// `[sN]`/`(rN)` mark the send and receive of message `N`. An optional
/// `cut` draws a `|` fence after each process's frontier event.
///
/// # Examples
///
/// ```
/// use slicing_computation::render::render_space_time;
/// use slicing_computation::test_fixtures::figure1;
///
/// let comp = figure1();
/// let art = render_space_time(&comp, None);
/// assert!(art.lines().count() >= 3);
/// ```
pub fn render_space_time(comp: &Computation, cut: Option<&Cut>) -> String {
    let num_events = comp.num_events();
    let mut tags: Vec<Vec<(u32, bool)>> = vec![Vec::new(); num_events];
    for (i, m) in comp.messages().iter().enumerate() {
        let tag = (i + 1) as u32;
        tags[m.send.as_usize()].push((tag, true));
        tags[m.recv.as_usize()].push((tag, false));
    }

    // A topological order: causal-past size is a strictly monotone key
    // along happened-before (e → f implies min_cut(e) ⊊ min_cut(f)).
    let mut order: Vec<crate::event::EventId> = comp.events().collect();
    order.sort_by_key(|&e| (comp.min_cut(e).size(), e));

    // Pre-render each event's cell text.
    let cells: Vec<String> = comp
        .events()
        .map(|e| {
            let mut cell = String::new();
            if comp.is_initial(e) {
                cell.push('⊥');
            } else {
                match comp.label(e) {
                    Some(l) => cell.push_str(l),
                    None => cell.push('o'),
                }
            }
            for &(tag, is_send) in &tags[e.as_usize()] {
                if is_send {
                    let _ = write!(cell, "[s{tag}]");
                } else {
                    let _ = write!(cell, "(r{tag})");
                }
            }
            cell
        })
        .collect();

    // Column widths are uniform per column (cell + one dash of slack).
    let widths: Vec<usize> = order
        .iter()
        .map(|&e| cells[e.as_usize()].chars().count() + 1)
        .collect();

    let name_width = comp
        .processes()
        .map(|p| p.to_string().len())
        .max()
        .unwrap_or(2);

    let mut out = String::new();
    for p in comp.processes() {
        let _ = write!(out, "{:<name_width$} ", p.to_string());
        let fence_after = cut.map(|c| comp.event_at(p, c.frontier_pos(p)));
        for (col, &e) in order.iter().enumerate() {
            let width = widths[col];
            if comp.process_of(e) == p {
                let cell = &cells[e.as_usize()];
                let pad = width.saturating_sub(cell.chars().count());
                out.push_str(cell);
                for _ in 0..pad {
                    out.push('-');
                }
            } else {
                for _ in 0..width {
                    out.push('-');
                }
            }
            if fence_after == Some(e) {
                out.push('|');
            }
        }
        // Trim trailing dashes for readability.
        while out.ends_with('-') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::figure1;

    #[test]
    fn renders_every_process_and_message() {
        let comp = figure1();
        let art = render_space_time(&comp, None);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            assert!(line.starts_with(&format!("p{i}")), "{line}");
            assert!(line.contains('⊥'), "{line}");
        }
        // 4 messages → tags s1..s4 and r1..r4 all present.
        for tag in 1..=4 {
            assert!(art.contains(&format!("[s{tag}]")), "missing send {tag}");
            assert!(art.contains(&format!("(r{tag})")), "missing recv {tag}");
        }
        // Labels appear.
        for l in ["b", "g", "w"] {
            assert!(art.contains(l));
        }
    }

    #[test]
    fn cut_fence_is_drawn_once_per_process() {
        let comp = figure1();
        let cut = Cut::from(vec![2, 2, 2]);
        let art = render_space_time(&comp, Some(&cut));
        for line in art.lines() {
            assert_eq!(line.matches('|').count(), 1, "{line}");
        }
        // The fence on p0 comes right after label `b`.
        let p0 = art.lines().next().unwrap();
        let b_pos = p0.find('b').unwrap();
        let fence = p0.find('|').unwrap();
        assert!(fence > b_pos && fence - b_pos <= 3, "{p0}");
    }

    #[test]
    fn unlabeled_events_render_as_circles() {
        let comp = crate::test_fixtures::grid(2, 1);
        let art = render_space_time(&comp, None);
        assert_eq!(art.matches('o').count(), 3);
    }
}
