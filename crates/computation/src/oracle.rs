//! Brute-force lattice oracles used to validate the slicing algorithms.
//!
//! Everything here is exponential on purpose: the oracles enumerate the full
//! set of consistent cuts and compute sublattice closures by fixpoint, so
//! the polynomial slicing algorithms can be checked against ground truth on
//! small computations (unit tests, property tests, and the examples).

use std::collections::BTreeSet;

use crate::computation::Computation;
use crate::cut::Cut;
use crate::lattice::all_cuts;
use crate::state::GlobalState;

/// Enumerates every consistent cut of `comp` satisfying `pred`.
pub fn satisfying_cuts(
    comp: &Computation,
    mut pred: impl FnMut(&GlobalState<'_>) -> bool,
) -> Vec<Cut> {
    all_cuts(comp)
        .into_iter()
        .filter(|cut| pred(&GlobalState::new(comp, cut)))
        .collect()
}

/// Computes the smallest sublattice of the cut lattice containing `cuts`:
/// the closure under pairwise join (set union) and meet (set intersection).
///
/// By Birkhoff's theorem this is exactly the set of consistent cuts of the
/// slice with respect to any predicate whose satisfying cuts are `cuts`
/// (Definition 1 of the paper).
pub fn sublattice_closure(cuts: &[Cut]) -> BTreeSet<Cut> {
    let mut closed: BTreeSet<Cut> = cuts.iter().cloned().collect();
    let mut frontier: Vec<Cut> = closed.iter().cloned().collect();
    while let Some(cut) = frontier.pop() {
        let mut new = Vec::new();
        for other in &closed {
            let j = cut.join(other);
            if !closed.contains(&j) {
                new.push(j);
            }
            let m = cut.meet(other);
            if !closed.contains(&m) {
                new.push(m);
            }
        }
        for c in new {
            if closed.insert(c.clone()) {
                frontier.push(c);
            }
        }
    }
    closed
}

/// Returns `true` if `cuts` is closed under pairwise join and meet.
pub fn is_sublattice(cuts: &BTreeSet<Cut>) -> bool {
    for a in cuts {
        for b in cuts {
            if !cuts.contains(&a.join(b)) || !cuts.contains(&a.meet(b)) {
                return false;
            }
        }
    }
    true
}

/// The ground-truth slice contents for a predicate: the sublattice closure
/// of its satisfying cuts. Returns the closure and the raw satisfying cuts.
pub fn expected_slice_cuts(
    comp: &Computation,
    pred: impl FnMut(&GlobalState<'_>) -> bool,
) -> (BTreeSet<Cut>, Vec<Cut>) {
    let sat = satisfying_cuts(comp, pred);
    (sublattice_closure(&sat), sat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ComputationBuilder;
    use crate::value::Value;

    #[test]
    fn closure_of_empty_set_is_empty() {
        assert!(sublattice_closure(&[]).is_empty());
    }

    #[test]
    fn closure_of_chain_is_itself() {
        let cuts = vec![
            Cut::from(vec![1, 1]),
            Cut::from(vec![2, 1]),
            Cut::from(vec![2, 2]),
        ];
        let closed = sublattice_closure(&cuts);
        assert_eq!(closed.len(), 3);
        assert!(is_sublattice(&closed));
    }

    #[test]
    fn closure_adds_joins_and_meets() {
        // Two incomparable cuts: closure must add their join and meet.
        let cuts = vec![Cut::from(vec![2, 1]), Cut::from(vec![1, 2])];
        let closed = sublattice_closure(&cuts);
        assert_eq!(closed.len(), 4);
        assert!(closed.contains(&Cut::from(vec![1, 1])));
        assert!(closed.contains(&Cut::from(vec![2, 2])));
        assert!(is_sublattice(&closed));
    }

    #[test]
    fn is_sublattice_detects_gaps() {
        let mut cuts = BTreeSet::new();
        cuts.insert(Cut::from(vec![2, 1]));
        cuts.insert(Cut::from(vec![1, 2]));
        assert!(!is_sublattice(&cuts));
    }

    #[test]
    fn satisfying_cuts_filters_by_state() {
        let mut b = ComputationBuilder::new(1);
        let x = b.declare_var(b.process(0), "x", Value::Int(0));
        b.step(b.process(0), &[(x, Value::Int(1))]);
        b.step(b.process(0), &[(x, Value::Int(2))]);
        let comp = b.build().unwrap();
        let sat = satisfying_cuts(&comp, |st| st.get(x).expect_int() >= 1);
        assert_eq!(sat.len(), 2);
    }

    #[test]
    fn expected_slice_cuts_returns_closure_and_raw() {
        let comp = crate::test_fixtures::figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let x3 = comp.var(comp.process(2), "x3").unwrap();
        let (closure, sat) = expected_slice_cuts(&comp, |st| {
            st.get(x1).expect_int() > 1 && st.get(x3).expect_int() <= 3
        });
        // The paper's Figure 1(b): exactly six consistent cuts, and the
        // predicate is regular so the closure adds nothing.
        assert_eq!(sat.len(), 6);
        assert_eq!(closure.len(), 6);
        assert!(is_sublattice(&closure));
    }
}
