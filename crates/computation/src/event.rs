//! Event identifiers.

use std::fmt;

/// Identifier of an event in a computation.
///
/// Events are numbered densely from `0` to `|E| - 1` across all processes,
/// in the order they were appended to the
/// [`ComputationBuilder`](crate::ComputationBuilder). The fictitious initial
/// event of each process (position 0) is an ordinary event with an id; the
/// fictitious final events (⊤) of the paper are *virtual* and never carry an
/// `EventId` (see [`slicing-core`'s `Node`] for how slices refer to ⊤).
///
/// # Examples
///
/// ```
/// use slicing_computation::EventId;
///
/// let e = EventId::new(3);
/// assert_eq!(e.as_usize(), 3);
/// assert_eq!(e.to_string(), "e3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u32);

impl EventId {
    /// Creates an event identifier from its dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in 32 bits.
    pub fn new(index: usize) -> Self {
        EventId(u32::try_from(index).expect("event index exceeds u32 range"))
    }

    /// Returns the dense index of this event.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Returns the dense index as a `u32`.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<EventId> for usize {
    fn from(e: EventId) -> usize {
        e.as_usize()
    }
}

/// A point-to-point message: an ordering edge from the send event to the
/// receive event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Message {
    /// The event at which the message was sent.
    pub send: EventId,
    /// The event at which the message was received.
    pub recv: EventId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let e = EventId::new(42);
        assert_eq!(e.as_usize(), 42);
        assert_eq!(e.as_u32(), 42);
        assert_eq!(usize::from(e), 42);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(EventId::new(1) < EventId::new(2));
    }

    #[test]
    fn display() {
        assert_eq!(EventId::new(7).to_string(), "e7");
    }
}
