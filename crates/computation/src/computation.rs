//! The distributed computation: events, ordering, variables, channels.

use std::collections::HashMap;
use std::fmt;

use crate::cut::Cut;
use crate::event::{EventId, Message};
use crate::process::ProcessId;
use crate::value::Value;

/// Reference to a declared variable of one process.
///
/// Obtained from [`ComputationBuilder::declare_var`](crate::ComputationBuilder::declare_var)
/// or [`Computation::var`]; used to read values via
/// [`GlobalState::get`](crate::GlobalState::get).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarRef {
    pub(crate) process: ProcessId,
    pub(crate) index: u16,
}

impl VarRef {
    /// The process hosting this variable.
    pub fn process(self) -> ProcessId {
        self.process
    }

    /// Dense index of the variable among its process's variables.
    pub fn index(self) -> usize {
        self.index as usize
    }
}

/// Per-process variable table: names and a full value snapshot per event
/// position.
#[derive(Debug, Clone, Default)]
pub(crate) struct ProcessVars {
    pub(crate) names: Vec<String>,
    pub(crate) by_name: HashMap<String, u16>,
    /// `snapshots[pos][var]` is the value of `var` immediately after the
    /// event at `pos` has executed. `snapshots[0]` holds the initial values.
    pub(crate) snapshots: Vec<Vec<Value>>,
}

/// A distributed computation: a finite set of events per process, ordered by
/// process order and point-to-point messages (Lamport's happened-before
/// relation), with the values of process variables recorded after every
/// event.
///
/// Position 0 of every process is its fictitious initial event ⊥ᵢ carrying
/// the initial variable values; every non-trivial consistent cut contains
/// all of them. The fictitious final events ⊤ᵢ are not materialized.
///
/// Construct via [`ComputationBuilder`](crate::ComputationBuilder).
///
/// # Examples
///
/// ```
/// use slicing_computation::{ComputationBuilder, Cut, Value};
///
/// let mut b = ComputationBuilder::new(2);
/// let x = b.declare_var(b.process(0), "x", Value::Int(0));
/// let e0 = b.step(b.process(0), &[(x, Value::Int(1))]);
/// let e1 = b.append_event(b.process(1));
/// b.message(e0, e1)?;
/// let comp = b.build()?;
///
/// assert_eq!(comp.num_processes(), 2);
/// assert_eq!(comp.num_events(), 4); // two initial events + e0 + e1
/// // The cut {⊥0, ⊥1, e1} is inconsistent: it contains the receive but
/// // not the send.
/// assert!(!comp.is_consistent(&Cut::from(vec![1, 2])));
/// assert!(comp.is_consistent(&Cut::from(vec![2, 2])));
/// # Ok::<(), slicing_computation::BuildError>(())
/// ```
#[derive(Clone)]
pub struct Computation {
    pub(crate) num_processes: usize,
    /// Process of each event, indexed by event id.
    pub(crate) proc_of: Vec<ProcessId>,
    /// Position of each event on its process, indexed by event id.
    pub(crate) pos_of: Vec<u32>,
    /// Events of each process in process order (position 0 = initial event).
    pub(crate) per_process: Vec<Vec<EventId>>,
    /// All messages.
    pub(crate) messages: Vec<Message>,
    /// Indices into `messages` received at each event.
    pub(crate) msgs_in: Vec<Vec<u32>>,
    /// Indices into `messages` sent at each event.
    pub(crate) msgs_out: Vec<Vec<u32>>,
    /// Least non-trivial consistent cut containing each event — the vector
    /// clock of the event, joined with the bottom cut.
    pub(crate) min_cut: Vec<Cut>,
    /// Per-process variables.
    pub(crate) vars: Vec<ProcessVars>,
    /// `sends_prefix[i][j][p]` = number of messages sent from `i` to `j` by
    /// events of `i` at positions `1..=p`.
    pub(crate) sends_prefix: Vec<Vec<Vec<u32>>>,
    /// `recvs_prefix[j][i][p]` = number of messages from `i` received by `j`
    /// at positions `1..=p`.
    pub(crate) recvs_prefix: Vec<Vec<Vec<u32>>>,
    /// Optional human-readable event labels (for examples and debugging).
    pub(crate) labels: Vec<Option<String>>,
}

impl Computation {
    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.num_processes
    }

    /// The `i`-th process id.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_processes()`.
    pub fn process(&self, i: usize) -> ProcessId {
        assert!(i < self.num_processes, "process index out of range");
        ProcessId::new(i)
    }

    /// Iterates over all process ids.
    pub fn processes(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.num_processes).map(ProcessId::new)
    }

    /// Total number of events, including the initial events.
    pub fn num_events(&self) -> usize {
        self.proc_of.len()
    }

    /// Iterates over all event ids.
    pub fn events(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.num_events()).map(EventId::new)
    }

    /// Number of events on process `p`, including its initial event.
    pub fn len(&self, p: ProcessId) -> u32 {
        self.per_process[p.as_usize()].len() as u32
    }

    /// Returns `true` if the computation has no real (non-initial) events.
    pub fn is_empty(&self) -> bool {
        self.num_events() == self.num_processes
    }

    /// The event of process `p` at position `pos` (0 = initial event).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range for `p`.
    pub fn event_at(&self, p: ProcessId, pos: u32) -> EventId {
        self.per_process[p.as_usize()][pos as usize]
    }

    /// The process hosting event `e`.
    pub fn process_of(&self, e: EventId) -> ProcessId {
        self.proc_of[e.as_usize()]
    }

    /// The position of event `e` on its process.
    pub fn position_of(&self, e: EventId) -> u32 {
        self.pos_of[e.as_usize()]
    }

    /// Returns `true` if `e` is a fictitious initial event.
    pub fn is_initial(&self, e: EventId) -> bool {
        self.pos_of[e.as_usize()] == 0
    }

    /// All messages of the computation.
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// Messages received at event `e`.
    pub fn messages_into(&self, e: EventId) -> impl Iterator<Item = Message> + '_ {
        self.msgs_in[e.as_usize()]
            .iter()
            .map(move |&m| self.messages[m as usize])
    }

    /// Messages sent at event `e`.
    pub fn messages_out_of(&self, e: EventId) -> impl Iterator<Item = Message> + '_ {
        self.msgs_out[e.as_usize()]
            .iter()
            .map(move |&m| self.messages[m as usize])
    }

    /// The least non-trivial consistent cut containing `e`. This is the
    /// vector clock of `e` (entry `j` counts the events of process `j` that
    /// happened before or at `e`), joined with the bottom cut so that all
    /// initial events are included.
    pub fn min_cut(&self, e: EventId) -> &Cut {
        &self.min_cut[e.as_usize()]
    }

    /// Lamport's happened-before: `true` if `e` causally precedes `f`
    /// (irreflexive, except that initial events mutually "precede" each
    /// other because the paper's model places them in one strongly connected
    /// component).
    pub fn happened_before(&self, e: EventId, f: EventId) -> bool {
        if e == f {
            return false;
        }
        self.causally_within(e, f)
    }

    /// Reflexive causal order: `true` if `e` belongs to the least consistent
    /// cut containing `f` (i.e. `e → f` or `e = f`, treating all initial
    /// events as mutually reachable).
    pub fn causally_within(&self, e: EventId, f: EventId) -> bool {
        let pe = self.proc_of[e.as_usize()];
        self.min_cut[f.as_usize()].count(pe) > self.pos_of[e.as_usize()]
    }

    /// Checks whether `cut` is a consistent cut: for every included receive
    /// event the matching send is included too. Entries must lie in
    /// `1..=len(p)`.
    pub fn is_consistent(&self, cut: &Cut) -> bool {
        if cut.num_processes() != self.num_processes {
            return false;
        }
        for p in self.processes() {
            let c = cut.count(p);
            if c < 1 || c > self.len(p) {
                return false;
            }
            let frontier = self.event_at(p, c - 1);
            if !self.min_cut(frontier).leq(cut) {
                return false;
            }
        }
        true
    }

    /// Returns `true` if the next event of process `p` after `cut` exists
    /// and is enabled (its causal prerequisites are inside `cut`), so that
    /// advancing `p` by one event yields a consistent cut.
    pub fn can_advance(&self, cut: &Cut, p: ProcessId) -> bool {
        let c = cut.count(p);
        if c >= self.len(p) {
            return false;
        }
        let next = self.event_at(p, c);
        let need = self.min_cut(next);
        self.processes()
            .all(|q| q == p || need.count(q) <= cut.count(q))
    }

    /// The frontier event of process `p` in `cut`: the last event of `p`
    /// inside the cut.
    pub fn frontier(&self, cut: &Cut, p: ProcessId) -> EventId {
        self.event_at(p, cut.frontier_pos(p))
    }

    /// The cut containing every event of the computation.
    pub fn top_cut(&self) -> Cut {
        Cut::from(
            (0..self.num_processes)
                .map(|i| self.len(ProcessId::new(i)))
                .collect::<Vec<_>>(),
        )
    }

    /// Looks up a variable of process `p` by name.
    pub fn var(&self, p: ProcessId, name: &str) -> Option<VarRef> {
        self.vars[p.as_usize()]
            .by_name
            .get(name)
            .map(|&index| VarRef { process: p, index })
    }

    /// Names of the variables of process `p`, in declaration order.
    pub fn var_names(&self, p: ProcessId) -> impl Iterator<Item = &str> {
        self.vars[p.as_usize()].names.iter().map(String::as_str)
    }

    /// Number of variables declared on process `p`.
    pub fn num_vars(&self, p: ProcessId) -> usize {
        self.vars[p.as_usize()].names.len()
    }

    /// Value of `var` immediately after the event of its process at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn value_at(&self, var: VarRef, pos: u32) -> Value {
        self.vars[var.process.as_usize()].snapshots[pos as usize][var.index as usize]
    }

    /// Distinct values `var` takes anywhere in the computation, in order of
    /// first occurrence. Used by the Stoller–Schneider k-local transform.
    pub fn distinct_values(&self, var: VarRef) -> Vec<Value> {
        let mut seen = Vec::new();
        let pv = &self.vars[var.process.as_usize()];
        for snap in &pv.snapshots {
            let v = snap[var.index as usize];
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen
    }

    /// Number of messages from `from` to `to` still in transit at `cut`:
    /// sent inside the cut but not yet received inside it.
    pub fn in_transit(&self, cut: &Cut, from: ProcessId, to: ProcessId) -> u32 {
        let sent =
            self.sends_prefix[from.as_usize()][to.as_usize()][cut.frontier_pos(from) as usize];
        let rcvd = self.recvs_prefix[to.as_usize()][from.as_usize()][cut.frontier_pos(to) as usize];
        sent - rcvd
    }

    /// Attaches no label; returns the label of `e` if one was set on the
    /// builder.
    pub fn label(&self, e: EventId) -> Option<&str> {
        self.labels[e.as_usize()].as_deref()
    }

    /// Finds the event carrying `label`, if any.
    pub fn event_by_label(&self, label: &str) -> Option<EventId> {
        self.labels
            .iter()
            .position(|l| l.as_deref() == Some(label))
            .map(EventId::new)
    }

    /// The sub-computation containing exactly the events of `cut`: the
    /// execution prefix that stopped at that global state. Useful for
    /// windowed online monitoring and for re-analyzing the past of a
    /// detected fault.
    ///
    /// Event positions, variable values, labels, and the messages with
    /// both endpoints inside the cut are preserved; consistency guarantees
    /// no message is left dangling.
    ///
    /// # Panics
    ///
    /// Panics if `cut` is not a consistent cut of this computation.
    pub fn prefix(&self, cut: &Cut) -> Computation {
        assert!(
            self.is_consistent(cut),
            "prefix requires a consistent cut, got {cut}"
        );
        let mut b = crate::builder::ComputationBuilder::new(self.num_processes);
        for p in self.processes() {
            let names: Vec<String> = self.var_names(p).map(str::to_owned).collect();
            for name in names {
                let v = self.var(p, &name).expect("listed name resolves");
                b.try_declare_var(p, &name, self.value_at(v, 0))
                    .expect("fresh builder accepts the declaration");
            }
        }
        // Replay in original append order so event ids keep their relative
        // order.
        for e in self.events() {
            let p = self.process_of(e);
            let pos = self.position_of(e);
            if pos == 0 || pos >= cut.count(p) {
                continue;
            }
            let ne = b.append_event(p);
            let names: Vec<String> = self.var_names(p).map(str::to_owned).collect();
            for name in names {
                let ov = self.var(p, &name).expect("listed name resolves");
                let nv = b.var(p, &name).expect("declared above");
                b.assign(ne, nv, self.value_at(ov, pos))
                    .expect("assignment targets the newest event");
            }
            if let Some(l) = self.label(e) {
                let l = l.to_owned();
                b.set_label(ne, &l);
            }
        }
        for m in &self.messages {
            let (sp, spos) = (self.process_of(m.send), self.position_of(m.send));
            let (rp, rpos) = (self.process_of(m.recv), self.position_of(m.recv));
            if rpos < cut.count(rp) {
                debug_assert!(spos < cut.count(sp), "consistency keeps sends inside");
                b.message(b.event_at(sp, spos), b.event_at(rp, rpos))
                    .expect("original messages are valid");
            }
        }
        b.build().expect("a prefix of an acyclic order is acyclic")
    }

    /// A compact human-readable description of event `e`.
    pub fn describe_event(&self, e: EventId) -> String {
        let p = self.process_of(e);
        let pos = self.position_of(e);
        match self.label(e) {
            Some(l) => format!("{l} ({p}:{pos})"),
            None => format!("{p}:{pos}"),
        }
    }
}

impl fmt::Debug for Computation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Computation")
            .field("num_processes", &self.num_processes)
            .field("num_events", &self.num_events())
            .field("num_messages", &self.messages.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ComputationBuilder;
    use crate::cut::Cut;
    use crate::value::Value;

    /// Two processes; p0 sends from its first event to p1's first event.
    fn diagonal() -> crate::Computation {
        let mut b = ComputationBuilder::new(2);
        let s = b.append_event(b.process(0));
        let r = b.append_event(b.process(1));
        b.message(s, r).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts_and_indexing() {
        let c = diagonal();
        assert_eq!(c.num_processes(), 2);
        assert_eq!(c.num_events(), 4);
        assert_eq!(c.len(c.process(0)), 2);
        assert!(!c.is_empty());
        let s = c.event_at(c.process(0), 1);
        assert_eq!(c.process_of(s), c.process(0));
        assert_eq!(c.position_of(s), 1);
        assert!(c.is_initial(c.event_at(c.process(0), 0)));
        assert!(!c.is_initial(s));
    }

    #[test]
    fn vector_clocks_capture_messages() {
        let c = diagonal();
        let s = c.event_at(c.process(0), 1);
        let r = c.event_at(c.process(1), 1);
        assert_eq!(c.min_cut(s).counts(), &[2, 1]);
        assert_eq!(c.min_cut(r).counts(), &[2, 2]);
        assert!(c.happened_before(s, r));
        assert!(!c.happened_before(r, s));
        assert!(!c.happened_before(s, s));
        assert!(c.causally_within(s, s));
    }

    #[test]
    fn initial_events_are_mutually_ordered() {
        let c = diagonal();
        let b0 = c.event_at(c.process(0), 0);
        let b1 = c.event_at(c.process(1), 0);
        // The paper places all initial events in one strongly connected
        // component; causally_within reflects that.
        assert!(c.causally_within(b0, b1));
        assert!(c.causally_within(b1, b0));
    }

    #[test]
    fn consistency_respects_messages() {
        let c = diagonal();
        assert!(c.is_consistent(&Cut::from(vec![1, 1])));
        assert!(c.is_consistent(&Cut::from(vec![2, 1])));
        assert!(c.is_consistent(&Cut::from(vec![2, 2])));
        // Receive without send.
        assert!(!c.is_consistent(&Cut::from(vec![1, 2])));
        // Out-of-range entries.
        assert!(!c.is_consistent(&Cut::from(vec![0, 1])));
        assert!(!c.is_consistent(&Cut::from(vec![3, 1])));
        assert!(!c.is_consistent(&Cut::from(vec![1])));
    }

    #[test]
    fn can_advance_tracks_enabledness() {
        let c = diagonal();
        let bottom = Cut::bottom(2);
        assert!(c.can_advance(&bottom, c.process(0)));
        // p1's next event is the receive; the send is not yet in the cut.
        assert!(!c.can_advance(&bottom, c.process(1)));
        let mid = Cut::from(vec![2, 1]);
        assert!(c.can_advance(&mid, c.process(1)));
        assert!(!c.can_advance(&mid, c.process(0))); // exhausted
    }

    #[test]
    fn top_cut_is_consistent_and_maximal() {
        let c = diagonal();
        let top = c.top_cut();
        assert_eq!(top.counts(), &[2, 2]);
        assert!(c.is_consistent(&top));
    }

    #[test]
    fn variables_carry_forward() {
        let mut b = ComputationBuilder::new(1);
        let p = b.process(0);
        let x = b.declare_var(p, "x", Value::Int(0));
        let y = b.declare_var(p, "y", Value::Bool(false));
        b.step(p, &[(x, Value::Int(5))]);
        b.step(p, &[(y, Value::Bool(true))]);
        let c = b.build().unwrap();
        assert_eq!(c.value_at(x, 0), Value::Int(0));
        assert_eq!(c.value_at(x, 1), Value::Int(5));
        assert_eq!(c.value_at(x, 2), Value::Int(5)); // carried forward
        assert_eq!(c.value_at(y, 2), Value::Bool(true));
        assert_eq!(c.num_vars(p), 2);
        assert_eq!(c.var(p, "x"), Some(x));
        assert_eq!(c.var(p, "nope"), None);
        assert_eq!(c.var_names(p).collect::<Vec<_>>(), vec!["x", "y"]);
    }

    #[test]
    fn distinct_values_in_first_occurrence_order() {
        let mut b = ComputationBuilder::new(1);
        let p = b.process(0);
        let x = b.declare_var(p, "x", Value::Int(0));
        for v in [1, 0, 2, 1] {
            b.step(p, &[(x, Value::Int(v))]);
        }
        let c = b.build().unwrap();
        assert_eq!(
            c.distinct_values(x),
            vec![Value::Int(0), Value::Int(1), Value::Int(2)]
        );
    }

    #[test]
    fn in_transit_counts_messages() {
        let c = diagonal();
        let p0 = c.process(0);
        let p1 = c.process(1);
        assert_eq!(c.in_transit(&Cut::bottom(2), p0, p1), 0);
        assert_eq!(c.in_transit(&Cut::from(vec![2, 1]), p0, p1), 1);
        assert_eq!(c.in_transit(&Cut::from(vec![2, 2]), p0, p1), 0);
        assert_eq!(c.in_transit(&Cut::from(vec![2, 2]), p1, p0), 0);
    }

    #[test]
    fn prefix_truncates_events_and_messages() {
        let c = crate::test_fixtures::figure1();
        // ⟨2, 2, 2⟩ keeps b, f, v and the single message f→v.
        let cut = Cut::from(vec![2, 2, 2]);
        let p = c.prefix(&cut);
        assert_eq!(p.num_events(), 6);
        assert_eq!(p.messages().len(), 1);
        assert_eq!(p.event_by_label("b").map(|e| p.position_of(e)), Some(1));
        assert!(p.event_by_label("g").is_none());
        // Values preserved at kept positions.
        let x1 = p.var(p.process(0), "x1").unwrap();
        assert_eq!(p.value_at(x1, 1), Value::Int(3));
        // The prefix of the top cut is the whole computation.
        let full = c.prefix(&c.top_cut());
        assert_eq!(full.num_events(), c.num_events());
        assert_eq!(full.messages(), c.messages());
    }

    #[test]
    fn prefix_lattice_is_the_down_set() {
        use crate::lattice::all_cuts;
        let c = crate::test_fixtures::figure1();
        let cut = Cut::from(vec![2, 3, 3]);
        let p = c.prefix(&cut);
        let want: Vec<Cut> = all_cuts(&c).into_iter().filter(|d| d.leq(&cut)).collect();
        assert_eq!(all_cuts(&p), want);
    }

    #[test]
    #[should_panic(expected = "consistent cut")]
    fn prefix_rejects_inconsistent_cuts() {
        let c = crate::test_fixtures::figure1();
        // v (p2 pos 1) without f (p1 pos 1) is inconsistent.
        let _ = c.prefix(&Cut::from(vec![1, 1, 2]));
    }

    #[test]
    fn labels() {
        let mut b = ComputationBuilder::new(1);
        let e = b.append_event(b.process(0));
        b.set_label(e, "a");
        let c = b.build().unwrap();
        assert_eq!(c.label(e), Some("a"));
        assert_eq!(c.event_by_label("a"), Some(e));
        assert_eq!(c.event_by_label("zz"), None);
        assert_eq!(c.describe_event(e), "a (p0:1)");
        let init = c.event_at(c.process(0), 0);
        assert_eq!(c.describe_event(init), "p0:0");
    }
}
