//! The lattice of consistent cuts, and generic traversal over it.

use std::collections::VecDeque;

use crate::computation::Computation;
use crate::cut::{Cut, CutPacking};
use crate::cutset::CutSet;
use crate::process::ProcessId;

/// A state space whose states are consistent cuts.
///
/// Both computations and slices expose their sets of consistent cuts through
/// this trait, so the detection algorithms in `slicing-detect` can search
/// either one unchanged — searching the slice instead of the computation is
/// precisely the paper's optimization.
///
/// Implementations must guarantee that the successor relation generates
/// exactly the non-trivial consistent cuts reachable from
/// [`bottom`](CutSpace::bottom), and that every successor strictly contains
/// its predecessor (so traversals terminate).
pub trait CutSpace {
    /// Number of processes spanned by the cuts.
    fn num_processes(&self) -> usize;

    /// The least non-trivial consistent cut, or `None` if the space is
    /// empty (an empty slice has no non-trivial cuts).
    fn bottom(&self) -> Option<Cut>;

    /// Appends every immediate successor of `cut` to `out` (duplicates
    /// allowed; callers dedup).
    fn successors(&self, cut: &Cut, out: &mut Vec<Cut>);

    /// Calls `f` with every immediate successor of `cut`, in the same
    /// order [`successors`](CutSpace::successors) would produce them.
    ///
    /// The hot-loop variant: each successor is lent to the consumer as it
    /// is built, skipping the cut moves (clone, push into the buffer,
    /// drain back out) a `Vec` round-trip costs; the borrow only lives for
    /// the call, so implementors may reuse one scratch cut across
    /// successors. Consumers that keep a successor must clone it.
    /// Implementors should override the default, which materializes
    /// through `successors` and allocates per call.
    fn for_each_successor(&self, cut: &Cut, f: &mut dyn FnMut(&Cut)) {
        let mut succ = Vec::new();
        self.successors(cut, &mut succ);
        for next in &succ {
            f(next);
        }
    }

    /// Number of immediate successors of `cut`, without materializing any
    /// of them.
    ///
    /// The count-only fast path: callers that need just the out-degree
    /// (branching-factor stats, frontier sizing) should use this instead of
    /// [`successors`](CutSpace::successors), which clones every successor
    /// into a `Vec`. The default counts through
    /// [`for_each_successor`](CutSpace::for_each_successor), which is
    /// already clone-free for the kernelized spaces; implementors with a
    /// cheaper census (a slice can count distinct J-targets directly) may
    /// override it.
    fn count_successors(&self, cut: &Cut) -> usize {
        let mut n = 0usize;
        self.for_each_successor(cut, &mut |_| n += 1);
        n
    }

    /// Packed successor streaming: calls `f` with `(packed key, size)`
    /// for every immediate successor of the cut whose counts are `counts`
    /// and whose key under `packing` is `key`, in
    /// [`for_each_successor`](CutSpace::for_each_successor) order, then
    /// returns `true`.
    ///
    /// The all-packed hot path of the banded search: a space that keeps
    /// its transition table in packed form (a slice's J-cuts) emits
    /// successors as whole-key joins without materializing a [`Cut`] per
    /// emission. The default returns `false` without emitting anything —
    /// "no accelerated path here" — and the caller falls back to
    /// [`for_each_successor`](CutSpace::for_each_successor) plus
    /// [`CutPacking::pack`]. Implementors must emit exactly the
    /// successors `for_each_successor` would, in the same order.
    fn for_each_successor_packed(
        &self,
        counts: &[u32],
        key: u64,
        packing: &CutPacking,
        f: &mut dyn FnMut(u64, u32),
    ) -> bool {
        let _ = (counts, key, packing, f);
        false
    }

    /// An estimate of the bytes needed to store one cut, used by the
    /// detection metrics to reproduce the paper's memory measurements.
    fn bytes_per_cut(&self) -> usize {
        // Vec header + one u32 per process.
        std::mem::size_of::<Cut>() + 4 * self.num_processes()
    }

    /// Unit-step successor enumeration, the layer-regeneration hook of the
    /// lean (bounded-memory) traversal: calls `f` with every process whose
    /// single-event advance of `cut` stays in the space, in ascending
    /// process order, and returns `true`.
    ///
    /// A space may support this only when it is *unit-step*: every
    /// successor of every cut adds exactly one event, so the cut lattice is
    /// layered by event count and each layer's successors all land in the
    /// next layer. Spaces whose successors can add several events at once
    /// (a slice advances by meta-events/J-closures) must return `false`
    /// without calling `f` — the default — and the lean engine then falls
    /// back to size-bucketed pending sets instead of layer regeneration.
    ///
    /// Implementations must enumerate in the same process order
    /// [`for_each_successor`](CutSpace::for_each_successor) uses, so that
    /// `advance(cut, p)` over the enumeration reproduces the exact
    /// successor stream — the property that makes the lean engine's
    /// verdict, witness, and explored-cut count identical to the global-
    /// visited-set BFS.
    fn for_each_advance(&self, _cut: &Cut, _f: &mut dyn FnMut(ProcessId)) -> bool {
        false
    }
}

impl CutSpace for Computation {
    fn num_processes(&self) -> usize {
        Computation::num_processes(self)
    }

    fn bottom(&self) -> Option<Cut> {
        // Adopt a `Vec` instead of calling `Cut::bottom`: for wide
        // computations the adoption path does not count a heap spill, so a
        // detection run that otherwise reuses arena scratch (the lean
        // engine) keeps `cut_heap_allocs()` flat across calls.
        Some(Cut::from(vec![1u32; Computation::num_processes(self)]))
    }

    fn successors(&self, cut: &Cut, out: &mut Vec<Cut>) {
        self.for_each_successor(cut, &mut |next| out.push(next.clone()));
    }

    fn for_each_successor(&self, cut: &Cut, f: &mut dyn FnMut(&Cut)) {
        // One scratch cut for the whole call: each successor differs from
        // `cut` in a single count, so advance it, lend it out, revert.
        let mut next = cut.clone();
        for i in 0..Computation::num_processes(self) {
            let p = ProcessId::new(i);
            if self.can_advance(cut, p) {
                let c = cut.count(p);
                next.set_count(p, c + 1);
                f(&next);
                next.set_count(p, c);
            }
        }
    }

    fn count_successors(&self, cut: &Cut) -> usize {
        (0..Computation::num_processes(self))
            .filter(|&i| self.can_advance(cut, ProcessId::new(i)))
            .count()
    }

    fn for_each_successor_packed(
        &self,
        counts: &[u32],
        key: u64,
        packing: &CutPacking,
        f: &mut dyn FnMut(u64, u32),
    ) -> bool {
        // Unit-step advances are single-lane increments on the packed key:
        // successor i is `key + (1 << i·lane_bits)`, and every successor
        // has the predecessor's size plus one. The enabledness test is
        // `can_advance` restated over the raw count slice.
        let lane_bits = packing.lane_bits();
        let size = packing.size_of(key) + 1;
        for (i, &c) in counts.iter().enumerate() {
            let p = ProcessId::new(i);
            if c >= self.len(p) {
                continue;
            }
            let need = self.min_cut(self.event_at(p, c)).counts();
            let enabled = need
                .iter()
                .zip(counts)
                .enumerate()
                .all(|(q, (nd, have))| q == i || nd <= have);
            if enabled {
                f(key + (1u64 << (i as u32 * lane_bits)), size);
            }
        }
        true
    }

    fn for_each_advance(&self, cut: &Cut, f: &mut dyn FnMut(ProcessId)) -> bool {
        // A computation's successors always add exactly one enabled event,
        // so the space is unit-step; same process order as
        // `for_each_successor`, without materializing any cut.
        for i in 0..Computation::num_processes(self) {
            let p = ProcessId::new(i);
            if self.can_advance(cut, p) {
                f(p);
            }
        }
        true
    }
}

/// Outcome of a (possibly capped) cut count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutCount {
    /// The space was exhausted; this is the exact number of cuts.
    Exact(u64),
    /// The cap was hit; the space has at least this many cuts.
    AtLeast(u64),
}

impl CutCount {
    /// The counted value, whether exact or a lower bound.
    pub fn value(self) -> u64 {
        match self {
            CutCount::Exact(v) | CutCount::AtLeast(v) => v,
        }
    }

    /// Returns `true` for [`CutCount::Exact`].
    pub fn is_exact(self) -> bool {
        matches!(self, CutCount::Exact(_))
    }
}

/// Breadth-first iterator over the consistent cuts of a [`CutSpace`],
/// created by [`cuts`].
///
/// Yields each cut exactly once, in non-decreasing order of event count
/// (BFS layers). Stores the visited set, so memory grows with the space —
/// use [`for_each_cut`] with early exit, or the reverse-search engines in
/// `slicing-detect`, when that matters.
#[derive(Debug)]
pub struct Cuts<'a, S: ?Sized> {
    space: &'a S,
    visited: CutSet,
    queue: VecDeque<Cut>,
    succ: Vec<Cut>,
}

impl<S: CutSpace + ?Sized> Iterator for Cuts<'_, S> {
    type Item = Cut;

    fn next(&mut self) -> Option<Cut> {
        let cut = self.queue.pop_front()?;
        self.succ.clear();
        self.space.successors(&cut, &mut self.succ);
        for next in self.succ.drain(..) {
            if self.visited.insert(&next) {
                self.queue.push_back(next);
            }
        }
        Some(cut)
    }
}

/// Iterates over every consistent cut of `space` in BFS order.
///
/// # Examples
///
/// ```
/// use slicing_computation::lattice::cuts;
/// use slicing_computation::test_fixtures::grid;
///
/// let comp = grid(1, 1);
/// assert_eq!(cuts(&comp).count(), 4);
/// let sizes: Vec<u64> = cuts(&comp).map(|c| c.size()).collect();
/// assert_eq!(sizes, vec![2, 3, 3, 4]); // layered by event count
/// ```
pub fn cuts<S: CutSpace + ?Sized>(space: &S) -> Cuts<'_, S> {
    let mut visited = CutSet::new(space.num_processes());
    let mut queue = VecDeque::new();
    if let Some(bottom) = space.bottom() {
        visited.insert(&bottom);
        queue.push_back(bottom);
    }
    Cuts {
        space,
        visited,
        queue,
        succ: Vec::new(),
    }
}

/// Visits every consistent cut of `space` breadth-first, starting from the
/// bottom cut, until `visit` returns `false` or the space is exhausted.
///
/// Returns the number of distinct cuts visited.
pub fn for_each_cut<S: CutSpace + ?Sized>(space: &S, mut visit: impl FnMut(&Cut) -> bool) -> u64 {
    let Some(bottom) = space.bottom() else {
        return 0;
    };
    let mut visited = CutSet::new(space.num_processes());
    let mut queue: VecDeque<Cut> = VecDeque::new();
    let mut succ = Vec::new();
    visited.insert(&bottom);
    queue.push_back(bottom);
    let mut count = 0u64;
    while let Some(cut) = queue.pop_front() {
        count += 1;
        if !visit(&cut) {
            return count;
        }
        succ.clear();
        space.successors(&cut, &mut succ);
        for next in succ.drain(..) {
            if visited.insert(&next) {
                queue.push_back(next);
            }
        }
    }
    count
}

/// Counts the consistent cuts of `space`, stopping at `cap` if provided.
pub fn count_cuts<S: CutSpace + ?Sized>(space: &S, cap: Option<u64>) -> CutCount {
    let cap = cap.unwrap_or(u64::MAX);
    let mut n = 0u64;
    let exhausted = {
        let mut done = true;
        for_each_cut(space, |_| {
            n += 1;
            if n >= cap {
                done = false;
                false
            } else {
                true
            }
        });
        done
    };
    if exhausted {
        CutCount::Exact(n)
    } else {
        CutCount::AtLeast(n)
    }
}

/// Collects every consistent cut of `space` into a sorted vector.
///
/// Intended for tests and small examples; the whole point of slicing is
/// that real computations have too many cuts to collect.
pub fn all_cuts<S: CutSpace + ?Sized>(space: &S) -> Vec<Cut> {
    let mut cuts = Vec::new();
    for_each_cut(space, |c| {
        cuts.push(c.clone());
        true
    });
    cuts.sort();
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ComputationBuilder;

    /// Two independent processes with `a` and `b` real events: the lattice
    /// is the full (a+1)×(b+1) grid.
    fn grid(a: u32, b: u32) -> Computation {
        let mut bld = ComputationBuilder::new(2);
        for _ in 0..a {
            bld.append_event(bld.process(0));
        }
        for _ in 0..b {
            bld.append_event(bld.process(1));
        }
        bld.build().unwrap()
    }

    #[test]
    fn independent_processes_form_a_grid() {
        let c = grid(2, 3);
        assert_eq!(count_cuts(&c, None), CutCount::Exact(12));
        let cuts = all_cuts(&c);
        assert_eq!(cuts.len(), 12);
        assert!(cuts.iter().all(|cut| c.is_consistent(cut)));
    }

    #[test]
    fn message_restricts_the_lattice() {
        // p0: s ; p1: r with s -> r. Cuts: (1,1), (2,1), (2,2) only.
        let mut b = ComputationBuilder::new(2);
        let s = b.append_event(b.process(0));
        let r = b.append_event(b.process(1));
        b.message(s, r).unwrap();
        let c = b.build().unwrap();
        assert_eq!(count_cuts(&c, None), CutCount::Exact(3));
    }

    #[test]
    fn figure1_has_28_cuts() {
        // The paper's Figure 1 computation has twenty-eight consistent
        // cuts. Reconstruction: see `figure1` in the slicing-core tests for
        // the full layout; this standalone copy checks the lattice size.
        let c = crate::test_fixtures::figure1();
        assert_eq!(count_cuts(&c, None), CutCount::Exact(28));
    }

    #[test]
    fn cap_stops_early() {
        let c = grid(5, 5);
        assert_eq!(count_cuts(&c, Some(10)), CutCount::AtLeast(10));
        assert!(count_cuts(&c, Some(10_000)).is_exact());
    }

    #[test]
    fn visit_early_exit() {
        let c = grid(3, 3);
        let visited = for_each_cut(&c, |_| false);
        assert_eq!(visited, 1);
    }

    #[test]
    fn cuts_iterator_matches_for_each() {
        let c = grid(3, 2);
        let via_iter: Vec<Cut> = cuts(&c).collect();
        let mut via_visit = Vec::new();
        for_each_cut(&c, |cut| {
            via_visit.push(cut.clone());
            true
        });
        assert_eq!(via_iter, via_visit);
        // Layered order: sizes never decrease.
        for w in via_iter.windows(2) {
            assert!(w[0].size() <= w[1].size());
        }
        // Standard iterator adapters work.
        assert_eq!(cuts(&c).filter(|c| c.size() == 4).count(), 3);
    }

    #[test]
    fn cuts_iterator_on_empty_space_is_empty() {
        struct Empty;
        impl CutSpace for Empty {
            fn num_processes(&self) -> usize {
                1
            }
            fn bottom(&self) -> Option<Cut> {
                None
            }
            fn successors(&self, _: &Cut, _: &mut Vec<Cut>) {}
        }
        assert_eq!(cuts(&Empty).count(), 0);
    }

    #[test]
    fn advance_enumeration_matches_successor_stream() {
        // On a computation (unit-step), advancing each enumerated process
        // by one event reproduces `for_each_successor` exactly — same
        // cuts, same order.
        let comp = crate::test_fixtures::figure1();
        let mut checked = 0;
        for_each_cut(&comp, |cut| {
            let mut via_succ = Vec::new();
            comp.for_each_successor(cut, &mut |next| via_succ.push(next.clone()));
            let mut via_advance = Vec::new();
            let supported = comp.for_each_advance(cut, &mut |p| {
                let mut next = cut.clone();
                next.set_count(p, cut.count(p) + 1);
                via_advance.push(next);
            });
            assert!(supported);
            assert_eq!(via_succ, via_advance, "at {cut}");
            checked += 1;
            true
        });
        assert_eq!(checked, 28);
    }

    #[test]
    fn advance_enumeration_defaults_to_unsupported() {
        struct Opaque;
        impl CutSpace for Opaque {
            fn num_processes(&self) -> usize {
                1
            }
            fn bottom(&self) -> Option<Cut> {
                Some(Cut::bottom(1))
            }
            fn successors(&self, _: &Cut, _: &mut Vec<Cut>) {}
        }
        let mut called = false;
        assert!(!Opaque.for_each_advance(&Cut::bottom(1), &mut |_| called = true));
        assert!(!called);
    }

    #[test]
    fn cut_count_accessors() {
        assert_eq!(CutCount::Exact(5).value(), 5);
        assert_eq!(CutCount::AtLeast(7).value(), 7);
        assert!(CutCount::Exact(5).is_exact());
        assert!(!CutCount::AtLeast(7).is_exact());
    }
}
