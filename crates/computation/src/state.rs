//! Global states: variable values at a consistent cut.

use crate::computation::{Computation, VarRef};
use crate::cut::Cut;
use crate::event::EventId;
use crate::process::ProcessId;
use crate::value::Value;

/// The global state reached after executing all events of a consistent cut:
/// a read-only view of every process's variables (values after its frontier
/// event) and of the channels (messages sent but not yet received within the
/// cut).
///
/// Global predicates are evaluated against a `GlobalState`
/// (see the `slicing-predicates` crate).
///
/// # Examples
///
/// ```
/// use slicing_computation::{ComputationBuilder, Cut, GlobalState, Value};
///
/// let mut b = ComputationBuilder::new(1);
/// let x = b.declare_var(b.process(0), "x", Value::Int(0));
/// b.step(b.process(0), &[(x, Value::Int(7))]);
/// let comp = b.build()?;
///
/// let bottom = Cut::bottom(1);
/// assert_eq!(GlobalState::new(&comp, &bottom).get(x), Value::Int(0));
/// let top = comp.top_cut();
/// assert_eq!(GlobalState::new(&comp, &top).get(x), Value::Int(7));
/// # Ok::<(), slicing_computation::BuildError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GlobalState<'a> {
    comp: &'a Computation,
    cut: &'a Cut,
}

impl<'a> GlobalState<'a> {
    /// Creates a view of `comp` at `cut`.
    ///
    /// The cut is not re-validated here; callers that construct cuts by
    /// joining consistent cuts may rely on consistency being preserved.
    /// Use [`Computation::is_consistent`] to check explicitly.
    pub fn new(comp: &'a Computation, cut: &'a Cut) -> Self {
        debug_assert_eq!(cut.num_processes(), comp.num_processes());
        GlobalState { comp, cut }
    }

    /// The underlying computation.
    pub fn computation(&self) -> &'a Computation {
        self.comp
    }

    /// The cut this state corresponds to.
    pub fn cut(&self) -> &'a Cut {
        self.cut
    }

    /// Value of `var` in this state (after the frontier event of its
    /// process).
    pub fn get(&self, var: VarRef) -> Value {
        self.comp
            .value_at(var, self.cut.frontier_pos(var.process()))
    }

    /// Value of the variable named `name` on process `p`.
    ///
    /// Returns `None` if no such variable was declared.
    pub fn get_named(&self, p: ProcessId, name: &str) -> Option<Value> {
        self.comp.var(p, name).map(|v| self.get(v))
    }

    /// The frontier event of process `p`: its last event inside the cut.
    pub fn frontier(&self, p: ProcessId) -> EventId {
        self.comp.frontier(self.cut, p)
    }

    /// Number of messages from `from` to `to` in transit at this state.
    pub fn in_transit(&self, from: ProcessId, to: ProcessId) -> u32 {
        self.comp.in_transit(self.cut, from, to)
    }

    /// Total number of messages destined for `p` that have been sent but
    /// not yet received at this state (the paper's example of a linear,
    /// non-regular predicate bounds this quantity).
    pub fn pending_for(&self, p: ProcessId) -> u32 {
        self.comp
            .processes()
            .filter(|&q| q != p)
            .map(|q| self.in_transit(q, p))
            .sum()
    }

    /// Snapshot of all variables of process `p` in this state, in
    /// declaration order.
    pub fn locals(&self, p: ProcessId) -> Vec<Value> {
        let pos = self.cut.frontier_pos(p);
        (0..self.comp.num_vars(p))
            .map(|i| {
                self.comp.value_at(
                    VarRef {
                        process: p,
                        index: i as u16,
                    },
                    pos,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ComputationBuilder;

    fn two_proc_with_message() -> (Computation, VarRef, VarRef) {
        let mut b = ComputationBuilder::new(2);
        let x = b.declare_var(b.process(0), "x", Value::Int(0));
        let y = b.declare_var(b.process(1), "y", Value::Int(10));
        let s = b.step(b.process(0), &[(x, Value::Int(1))]);
        let r = b.step(b.process(1), &[(y, Value::Int(11))]);
        b.message(s, r).unwrap();
        (b.build().unwrap(), x, y)
    }

    #[test]
    fn reads_frontier_values() {
        let (c, x, y) = two_proc_with_message();
        let cut = Cut::from(vec![2, 1]);
        let st = GlobalState::new(&c, &cut);
        assert_eq!(st.get(x), Value::Int(1));
        assert_eq!(st.get(y), Value::Int(10));
        assert_eq!(st.get_named(c.process(0), "x"), Some(Value::Int(1)));
        assert_eq!(st.get_named(c.process(0), "zz"), None);
    }

    #[test]
    fn frontier_events() {
        let (c, _, _) = two_proc_with_message();
        let cut = Cut::from(vec![2, 1]);
        let st = GlobalState::new(&c, &cut);
        assert_eq!(st.frontier(c.process(0)), c.event_at(c.process(0), 1));
        assert_eq!(st.frontier(c.process(1)), c.event_at(c.process(1), 0));
    }

    #[test]
    fn channel_accounting() {
        let (c, _, _) = two_proc_with_message();
        let mid = Cut::from(vec![2, 1]);
        let st = GlobalState::new(&c, &mid);
        assert_eq!(st.in_transit(c.process(0), c.process(1)), 1);
        assert_eq!(st.pending_for(c.process(1)), 1);
        assert_eq!(st.pending_for(c.process(0)), 0);
        let top = c.top_cut();
        let st = GlobalState::new(&c, &top);
        assert_eq!(st.pending_for(c.process(1)), 0);
    }

    #[test]
    fn locals_snapshot() {
        let (c, _, _) = two_proc_with_message();
        let top = c.top_cut();
        let st = GlobalState::new(&c, &top);
        assert_eq!(st.locals(c.process(0)), vec![Value::Int(1)]);
        assert_eq!(st.locals(c.process(1)), vec![Value::Int(11)]);
    }

    #[test]
    fn accessors_expose_parts() {
        let (c, _, _) = two_proc_with_message();
        let cut = Cut::bottom(2);
        let st = GlobalState::new(&c, &cut);
        assert_eq!(st.cut(), &cut);
        assert_eq!(st.computation().num_events(), c.num_events());
    }
}
