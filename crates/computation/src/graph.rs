//! A small directed-graph toolkit: adjacency lists, Tarjan's strongly
//! connected components, and condensation.
//!
//! The slicing algorithms manipulate directed graphs drawn on the event set
//! (possibly with cycles — each strongly connected component is a
//! *meta-event* that must be executed atomically), so SCC decomposition and
//! topological processing of the condensation are core primitives.

use std::fmt;

/// A directed graph over nodes `0..n` with adjacency lists.
///
/// # Examples
///
/// ```
/// use slicing_computation::graph::Digraph;
///
/// let mut g = Digraph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(2, 1);
/// let scc = g.tarjan_scc();
/// assert_eq!(scc.num_components(), 2);
/// // 1 and 2 form one component.
/// assert_eq!(scc.component_of(1), scc.component_of(2));
/// assert_ne!(scc.component_of(0), scc.component_of(1));
/// ```
#[derive(Clone, Default)]
pub struct Digraph {
    adj: Vec<Vec<u32>>,
    num_edges: usize,
}

impl Digraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Digraph {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Creates a graph from an edge list.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut g = Digraph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges (parallel edges counted separately).
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Adds the edge `u → v`.
    ///
    /// Duplicates are accepted and counted separately — checking on every
    /// insertion would make bulk construction quadratic. Callers that
    /// build graphs from overlapping edge sources (the slicers emit
    /// constraint edges that often repeat base happened-before edges)
    /// should call [`dedup_edges`](Digraph::dedup_edges) once afterwards.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        assert!((v as usize) < self.adj.len(), "edge target out of range");
        self.adj[u as usize].push(v);
        self.num_edges += 1;
    }

    /// Collapses parallel edges: sorts every adjacency list and removes
    /// duplicates, adjusting [`num_edges`](Digraph::num_edges). `O(|E| log
    /// |E|)` once, versus the `O(deg)` scan per insertion that dedup in
    /// [`add_edge`](Digraph::add_edge) would cost.
    pub fn dedup_edges(&mut self) {
        for adj in &mut self.adj {
            let before = adj.len();
            adj.sort_unstable();
            adj.dedup();
            self.num_edges -= before - adj.len();
        }
    }

    /// Successors of `u`.
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.adj[u as usize]
    }

    /// Computes the strongly connected components (iterative Tarjan).
    pub fn tarjan_scc(&self) -> SccDecomposition {
        const UNVISITED: u32 = u32::MAX;
        let n = self.adj.len();
        let mut index = vec![UNVISITED; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut comp_of = vec![UNVISITED; n];
        let mut components: Vec<Vec<u32>> = Vec::new();

        // Explicit DFS frames: (node, position in its adjacency list).
        let mut frames: Vec<(u32, usize)> = Vec::new();

        for start in 0..n as u32 {
            if index[start as usize] != UNVISITED {
                continue;
            }
            frames.push((start, 0));
            index[start as usize] = next_index;
            low[start as usize] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start as usize] = true;

            while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
                if let Some(&w) = self.adj[v as usize].get(*pos) {
                    *pos += 1;
                    if index[w as usize] == UNVISITED {
                        index[w as usize] = next_index;
                        low[w as usize] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        frames.push((w, 0));
                    } else if on_stack[w as usize] {
                        low[v as usize] = low[v as usize].min(index[w as usize]);
                    }
                } else {
                    frames.pop();
                    if let Some(&mut (parent, _)) = frames.last_mut() {
                        low[parent as usize] = low[parent as usize].min(low[v as usize]);
                    }
                    if low[v as usize] == index[v as usize] {
                        // v is the root of a component.
                        let cid = components.len() as u32;
                        let mut members = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            comp_of[w as usize] = cid;
                            members.push(w);
                            if w == v {
                                break;
                            }
                        }
                        components.push(members);
                    }
                }
            }
        }

        SccDecomposition {
            comp_of,
            components,
        }
    }
}

impl fmt::Debug for Digraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Digraph")
            .field("num_nodes", &self.num_nodes())
            .field("num_edges", &self.num_edges)
            .finish()
    }
}

/// The strongly connected components of a [`Digraph`].
///
/// Components are numbered in *reverse topological order* of the
/// condensation (Tarjan's completion order): every edge of the condensation
/// goes from a higher-numbered component to a lower-numbered one. Iterate
/// [`topo_order`](SccDecomposition::topo_order) for sources-first
/// processing.
#[derive(Debug, Clone)]
pub struct SccDecomposition {
    comp_of: Vec<u32>,
    components: Vec<Vec<u32>>,
}

impl SccDecomposition {
    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// The component containing node `v`.
    pub fn component_of(&self, v: u32) -> u32 {
        self.comp_of[v as usize]
    }

    /// Members of component `c`.
    pub fn members(&self, c: u32) -> &[u32] {
        &self.components[c as usize]
    }

    /// Component ids in topological order (sources of the condensation
    /// first).
    pub fn topo_order(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.components.len() as u32).rev()
    }

    /// Builds the condensation: a graph whose nodes are the components,
    /// with deduplicated edges and no self-loops.
    pub fn condensation(&self, g: &Digraph) -> Digraph {
        let nc = self.components.len();
        let mut cond = Digraph::new(nc);
        let mut last_seen = vec![u32::MAX; nc];
        for (cid, members) in self.components.iter().enumerate() {
            for &v in members {
                for &w in g.neighbors(v) {
                    let cw = self.comp_of[w as usize];
                    if cw as usize != cid && last_seen[cw as usize] != cid as u32 {
                        last_seen[cw as usize] = cid as u32;
                        cond.add_edge(cid as u32, cw);
                    }
                }
            }
        }
        cond
    }
}

/// Reusable workspace for SCC decomposition straight off an edge list —
/// the warm-path counterpart of [`Digraph::tarjan_scc`].
///
/// [`Digraph`] allocates one `Vec` per node plus per-component member
/// vectors on every build, which is fine for cold callers (meta-event
/// reporting) but dominates the slicer's J-table construction when slicing
/// runs in a loop (grafting, `detect_resilient`, the monitor). `SccScratch`
/// keeps every buffer — the CSR adjacency, the Tarjan stacks, and the
/// component tables — across [`decompose`](SccScratch::decompose) calls, so
/// a warm decomposition performs no heap allocation.
///
/// Components are numbered exactly like [`Digraph::tarjan_scc`]: reverse
/// topological order of the condensation (every edge goes from a
/// higher-numbered component to a lower-numbered one). Parallel edges are
/// accepted; callers that need per-target dedup should stamp targets during
/// their own traversal (see the slicer's J-propagation) rather than pay a
/// sort here.
///
/// # Examples
///
/// ```
/// use slicing_computation::graph::SccScratch;
///
/// let mut scratch = SccScratch::new();
/// scratch.decompose(3, &[(0, 1), (1, 2), (2, 1)]);
/// assert_eq!(scratch.num_components(), 2);
/// assert_eq!(scratch.comp_of(1), scratch.comp_of(2));
/// assert!(scratch.comp_of(0) > scratch.comp_of(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SccScratch {
    // CSR adjacency of the last-decomposed graph.
    heads: Vec<u32>,
    targets: Vec<u32>,
    cursor: Vec<u32>,
    // Tarjan state.
    index: Vec<u32>,
    low: Vec<u32>,
    on_stack: Vec<bool>,
    stack: Vec<u32>,
    frames: Vec<(u32, u32)>,
    // Output: comp_of per node, plus members grouped by component id
    // (components complete in id order, so the grouping is a by-product of
    // the pop loop — no second counting sort).
    comp_of: Vec<u32>,
    comp_members: Vec<u32>,
    comp_heads: Vec<u32>,
}

impl SccScratch {
    const UNVISITED: u32 = u32::MAX;

    /// Creates an empty workspace; buffers grow on first use and persist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decomposes the graph over nodes `0..n` with the given edge list
    /// into strongly connected components, reusing all internal buffers.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is `>= n`.
    pub fn decompose(&mut self, n: usize, edges: &[(u32, u32)]) {
        // CSR build: counting sort by source, preserving insertion order
        // per source so traversal order is deterministic.
        self.heads.clear();
        self.heads.resize(n + 1, 0);
        for &(u, v) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge endpoint out of range"
            );
            self.heads[u as usize + 1] += 1;
        }
        for i in 0..n {
            self.heads[i + 1] += self.heads[i];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.heads[..n]);
        self.targets.clear();
        self.targets.resize(edges.len(), 0);
        for &(u, v) in edges {
            let c = self.cursor[u as usize];
            self.targets[c as usize] = v;
            self.cursor[u as usize] = c + 1;
        }

        // Iterative Tarjan, mirroring `Digraph::tarjan_scc` over the CSR.
        self.index.clear();
        self.index.resize(n, Self::UNVISITED);
        self.low.clear();
        self.low.resize(n, 0);
        self.on_stack.clear();
        self.on_stack.resize(n, false);
        self.stack.clear();
        self.frames.clear();
        self.comp_of.clear();
        self.comp_of.resize(n, Self::UNVISITED);
        self.comp_members.clear();
        self.comp_heads.clear();
        self.comp_heads.push(0);
        let mut next_index = 0u32;

        for start in 0..n as u32 {
            if self.index[start as usize] != Self::UNVISITED {
                continue;
            }
            self.frames.push((start, self.heads[start as usize]));
            self.index[start as usize] = next_index;
            self.low[start as usize] = next_index;
            next_index += 1;
            self.stack.push(start);
            self.on_stack[start as usize] = true;

            while let Some(&mut (v, ref mut pos)) = self.frames.last_mut() {
                if *pos < self.heads[v as usize + 1] {
                    let w = self.targets[*pos as usize];
                    *pos += 1;
                    if self.index[w as usize] == Self::UNVISITED {
                        self.index[w as usize] = next_index;
                        self.low[w as usize] = next_index;
                        next_index += 1;
                        self.stack.push(w);
                        self.on_stack[w as usize] = true;
                        self.frames.push((w, self.heads[w as usize]));
                    } else if self.on_stack[w as usize] {
                        self.low[v as usize] = self.low[v as usize].min(self.index[w as usize]);
                    }
                } else {
                    self.frames.pop();
                    if let Some(&mut (parent, _)) = self.frames.last_mut() {
                        self.low[parent as usize] =
                            self.low[parent as usize].min(self.low[v as usize]);
                    }
                    if self.low[v as usize] == self.index[v as usize] {
                        let cid = (self.comp_heads.len() - 1) as u32;
                        loop {
                            let w = self.stack.pop().expect("tarjan stack underflow");
                            self.on_stack[w as usize] = false;
                            self.comp_of[w as usize] = cid;
                            self.comp_members.push(w);
                            if w == v {
                                break;
                            }
                        }
                        self.comp_heads.push(self.comp_members.len() as u32);
                    }
                }
            }
        }
    }

    /// Number of components of the last decomposition.
    pub fn num_components(&self) -> usize {
        self.comp_heads.len().saturating_sub(1)
    }

    /// The component containing node `v`.
    pub fn comp_of(&self, v: u32) -> u32 {
        self.comp_of[v as usize]
    }

    /// Members of component `c`, in Tarjan pop order.
    pub fn members(&self, c: u32) -> &[u32] {
        let lo = self.comp_heads[c as usize] as usize;
        let hi = self.comp_heads[c as usize + 1] as usize;
        &self.comp_members[lo..hi]
    }

    /// Successors of node `v` in the last-decomposed graph (CSR view,
    /// parallel edges preserved in insertion order).
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.heads[v as usize] as usize;
        let hi = self.heads[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Digraph::new(0);
        let scc = g.tarjan_scc();
        assert_eq!(scc.num_components(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn singleton_components_without_edges() {
        let g = Digraph::new(3);
        let scc = g.tarjan_scc();
        assert_eq!(scc.num_components(), 3);
        for v in 0..3 {
            assert_eq!(scc.members(scc.component_of(v)), &[v]);
        }
    }

    #[test]
    fn simple_cycle_is_one_component() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let scc = g.tarjan_scc();
        assert_eq!(scc.num_components(), 1);
        let mut m = scc.members(0).to_vec();
        m.sort_unstable();
        assert_eq!(m, vec![0, 1, 2]);
    }

    #[test]
    fn chain_components_in_reverse_topological_order() {
        // 0 -> 1 -> 2: Tarjan finishes sinks first, so component of 2 has
        // the smallest id and edges in the condensation point to smaller
        // ids.
        let g = Digraph::from_edges(3, [(0, 1), (1, 2)]);
        let scc = g.tarjan_scc();
        assert_eq!(scc.num_components(), 3);
        assert!(scc.component_of(0) > scc.component_of(1));
        assert!(scc.component_of(1) > scc.component_of(2));
        let order: Vec<u32> = scc.topo_order().collect();
        assert_eq!(order.first(), Some(&scc.component_of(0)));
        assert_eq!(order.last(), Some(&scc.component_of(2)));
    }

    #[test]
    fn mixed_graph() {
        // Two cycles bridged: (0,1) cycle -> (2,3) cycle, plus isolated 4.
        let g = Digraph::from_edges(5, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let scc = g.tarjan_scc();
        assert_eq!(scc.num_components(), 3);
        assert_eq!(scc.component_of(0), scc.component_of(1));
        assert_eq!(scc.component_of(2), scc.component_of(3));
        assert!(scc.component_of(0) > scc.component_of(2));
    }

    #[test]
    fn condensation_dedups_edges() {
        let g = Digraph::from_edges(4, [(0, 1), (1, 0), (0, 2), (1, 2), (2, 3)]);
        let scc = g.tarjan_scc();
        let cond = scc.condensation(&g);
        assert_eq!(cond.num_nodes(), 3);
        // {0,1} -> {2} appears once despite two underlying edges.
        let c01 = scc.component_of(0);
        assert_eq!(cond.neighbors(c01).len(), 1);
        assert_eq!(cond.num_edges(), 2);
    }

    #[test]
    fn self_loop_is_singleton_component() {
        let g = Digraph::from_edges(2, [(0, 0), (0, 1)]);
        let scc = g.tarjan_scc();
        assert_eq!(scc.num_components(), 2);
        let cond = scc.condensation(&g);
        // Self-loop must not survive condensation.
        assert_eq!(cond.num_edges(), 1);
    }

    #[test]
    fn large_path_does_not_overflow_stack() {
        // A 100k-node path exercises the iterative DFS.
        let n = 100_000u32;
        let g = Digraph::from_edges(n as usize, (0..n - 1).map(|i| (i, i + 1)));
        let scc = g.tarjan_scc();
        assert_eq!(scc.num_components(), n as usize);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_target_bounds_checked() {
        let mut g = Digraph::new(1);
        g.add_edge(0, 5);
    }

    #[test]
    fn scratch_matches_digraph_partition() {
        let cases: Vec<(usize, Vec<(u32, u32)>)> = vec![
            (0, vec![]),
            (3, vec![]),
            (3, vec![(0, 1), (1, 2), (2, 0)]),
            (5, vec![(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]),
            (4, vec![(0, 1), (1, 0), (0, 2), (1, 2), (2, 3), (0, 1)]),
            (2, vec![(0, 0), (0, 1)]),
        ];
        let mut scratch = SccScratch::new();
        for (n, edges) in cases {
            let g = Digraph::from_edges(n, edges.iter().copied());
            let scc = g.tarjan_scc();
            scratch.decompose(n, &edges);
            assert_eq!(scratch.num_components(), scc.num_components());
            // Same partition: nodes share a scratch component iff they
            // share a Digraph component.
            for u in 0..n as u32 {
                for v in 0..n as u32 {
                    assert_eq!(
                        scratch.comp_of(u) == scratch.comp_of(v),
                        scc.component_of(u) == scc.component_of(v),
                        "partition mismatch at ({u},{v})"
                    );
                }
            }
            // Reverse topological numbering: every edge crossing components
            // goes from a higher id to a lower id.
            for &(u, v) in &edges {
                let (cu, cv) = (scratch.comp_of(u), scratch.comp_of(v));
                if cu != cv {
                    assert!(cu > cv, "edge {u}->{v} violates reverse topo order");
                }
            }
            // Member groups are consistent with comp_of.
            for c in 0..scratch.num_components() as u32 {
                for &v in scratch.members(c) {
                    assert_eq!(scratch.comp_of(v), c);
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_is_clean_across_sizes() {
        let mut scratch = SccScratch::new();
        scratch.decompose(5, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        assert_eq!(scratch.num_components(), 3);
        // Shrinking reuse must not leak state from the larger run.
        scratch.decompose(2, &[(0, 1)]);
        assert_eq!(scratch.num_components(), 2);
        assert!(scratch.comp_of(0) > scratch.comp_of(1));
        assert_eq!(scratch.neighbors(0), &[1]);
        assert_eq!(scratch.neighbors(1), &[] as &[u32]);
        // Growing again works too.
        scratch.decompose(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(scratch.num_components(), 1);
    }

    #[test]
    fn dedup_edges_collapses_parallel_edges() {
        let mut g = Digraph::from_edges(3, [(0, 1), (0, 1), (1, 2), (0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.num_edges(), 6);
        g.dedup_edges();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[2]);
        // Reachability is untouched: still one big SCC.
        assert_eq!(g.tarjan_scc().num_components(), 1);
        // Idempotent.
        g.dedup_edges();
        assert_eq!(g.num_edges(), 3);
    }
}
