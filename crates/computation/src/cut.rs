//! Consistent cuts represented as per-process prefix vectors.
//!
//! `Cut` is the hottest data structure in the workspace: every visited-set
//! probe, successor expansion, and lattice join manipulates one. To keep
//! those inner loops allocation-free, the per-process counts live inline in
//! the struct for computations of up to [`Cut::INLINE_PROCESSES`] processes
//! and spill to the heap only beyond that. Cloning an inline cut is a plain
//! stack copy; heap spills are counted in a process-wide counter
//! ([`cut_heap_allocs`]) so tests and benches can assert that hot paths do
//! not allocate.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::process::ProcessId;

/// Number of `Cut`s that allocated a heap buffer since process start.
///
/// Incremented (relaxed) on every spill: constructing, cloning, or
/// combining a cut that spans more than [`Cut::INLINE_PROCESSES`]
/// processes. Converting an existing `Vec<u32>` into a `Cut` reuses the
/// vector's buffer and does not count.
static CUT_HEAP_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Reads the process-wide count of heap-allocating cut constructions.
///
/// Deltas of this counter bound the deep-clone traffic of an algorithm on
/// wide computations; for `<= INLINE_PROCESSES` processes it never moves.
pub fn cut_heap_allocs() -> u64 {
    CUT_HEAP_ALLOCS.load(Ordering::Relaxed)
}

/// Storage for the per-process counts: inline up to
/// [`Cut::INLINE_PROCESSES`] entries, heap-spilled beyond. The invariant
/// is strict — `len <= INLINE_PROCESSES` is *always* `Inline` — so
/// equality, ordering, and hashing can compare count slices without
/// normalizing representations.
#[derive(Clone)]
enum Repr {
    Inline {
        len: u8,
        buf: [u32; Cut::INLINE_PROCESSES],
    },
    Spilled(Vec<u32>),
}

/// A (candidate) consistent cut of a computation.
///
/// Every graph this library manipulates — computations and slices alike —
/// contains the process-order edges, so every consistent cut is a union of
/// per-process prefixes. `Cut` stores, for each process, *how many events of
/// that process are included*, counting the fictitious initial event at
/// position 0. Entry values therefore range from `1` (only the initial
/// event) to `len_i` (all events of process `i`); the paper's trivial cuts
/// (the empty set, and the set including the fictitious final events) are
/// never represented.
///
/// `Cut` is a plain vector: whether it is *consistent* is relative to a
/// computation and checked by
/// [`Computation::is_consistent`](crate::Computation::is_consistent).
///
/// The set of consistent cuts forms a distributive lattice under inclusion
/// ([`join`](Cut::join) = set union = componentwise max, [`meet`](Cut::meet)
/// = set intersection = componentwise min), which is the foundation of the
/// slicing theory (Birkhoff's representation theorem).
///
/// # Examples
///
/// ```
/// use slicing_computation::Cut;
///
/// let a = Cut::from(vec![1, 3, 2]);
/// let b = Cut::from(vec![2, 1, 2]);
/// assert_eq!(a.join(&b), Cut::from(vec![2, 3, 2]));
/// assert_eq!(a.meet(&b), Cut::from(vec![1, 1, 2]));
/// assert!(a.meet(&b).leq(&a));
/// ```
pub struct Cut(Repr);

impl Cut {
    /// Widest cut stored without heap allocation. Computations up to this
    /// many processes pay no allocation for cut clones, joins, or meets.
    pub const INLINE_PROCESSES: usize = 16;

    /// Builds a cut with every process at `value`.
    fn filled(num_processes: usize, value: u32) -> Self {
        if num_processes <= Self::INLINE_PROCESSES {
            Cut(Repr::Inline {
                len: num_processes as u8,
                buf: [value; Self::INLINE_PROCESSES],
            })
        } else {
            CUT_HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
            Cut(Repr::Spilled(vec![value; num_processes]))
        }
    }

    /// Builds a cut from a count slice (copies; spills iff too wide).
    pub fn from_counts(counts: &[u32]) -> Self {
        if counts.len() <= Self::INLINE_PROCESSES {
            let mut buf = [0u32; Self::INLINE_PROCESSES];
            buf[..counts.len()].copy_from_slice(counts);
            Cut(Repr::Inline {
                len: counts.len() as u8,
                buf,
            })
        } else {
            CUT_HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
            Cut(Repr::Spilled(counts.to_vec()))
        }
    }

    /// The bottom element of the lattice of non-trivial cuts: each process
    /// has executed only its initial event.
    pub fn bottom(num_processes: usize) -> Self {
        Cut::filled(num_processes, 1)
    }

    /// `true` if the counts live inline (no heap buffer).
    pub fn is_inline(&self) -> bool {
        matches!(self.0, Repr::Inline { .. })
    }

    /// Number of processes this cut spans.
    pub fn num_processes(&self) -> usize {
        self.counts().len()
    }

    /// Number of events of process `p` included in the cut (counting the
    /// initial event at position 0).
    pub fn count(&self, p: ProcessId) -> u32 {
        self.counts()[p.as_usize()]
    }

    /// Position (0-based) of the frontier event of process `p`: the last
    /// event of `p` inside the cut.
    pub fn frontier_pos(&self, p: ProcessId) -> u32 {
        debug_assert!(self.count(p) >= 1, "cut excludes an initial event");
        self.count(p) - 1
    }

    /// Sets the number of included events of process `p`.
    pub fn set_count(&mut self, p: ProcessId, count: u32) {
        self.counts_mut()[p.as_usize()] = count;
    }

    /// Overwrites this cut's counts from a slice of the same width.
    ///
    /// The allocation-free way to re-point a scratch cut at new counts in
    /// a hot loop: unlike [`from_counts`](Cut::from_counts) it copies only
    /// `counts.len()` words instead of initializing a whole inline buffer.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[inline]
    pub fn copy_from_counts(&mut self, counts: &[u32]) {
        self.counts_mut().copy_from_slice(counts);
    }

    /// Componentwise maximum: the set union of the two cuts (the lattice
    /// *join*).
    #[must_use]
    pub fn join(&self, other: &Cut) -> Cut {
        let mut out = self.clone();
        out.join_in_place(other);
        out
    }

    /// Componentwise minimum: the set intersection of the two cuts (the
    /// lattice *meet*).
    #[must_use]
    pub fn meet(&self, other: &Cut) -> Cut {
        let mut out = self.clone();
        out.meet_in_place(other);
        out
    }

    /// Overwrites this cut with the componentwise maximum of `base` and
    /// `other` in a single pass — a fused
    /// [`copy_from_counts`](Cut::copy_from_counts) +
    /// [`join_in_place`](Cut::join_in_place) for hot loops that re-point a
    /// scratch cut at a joined value. Allocation-free for every width.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[inline]
    pub fn assign_join_counts(&mut self, base: &[u32], other: &[u32]) {
        let out = self.counts_mut();
        assert_eq!(out.len(), base.len());
        assert_eq!(out.len(), other.len());
        for (i, o) in out.iter_mut().enumerate() {
            *o = base[i].max(other[i]);
        }
    }

    /// In-place join: grows `self` to include everything in `other`.
    /// Allocation-free for every width.
    pub fn join_in_place(&mut self, other: &Cut) {
        let b = other.counts();
        let a = self.counts_mut();
        debug_assert_eq!(a.len(), b.len());
        for (a, &b) in a.iter_mut().zip(b) {
            *a = (*a).max(b);
        }
    }

    /// In-place meet: shrinks `self` to its intersection with `other`.
    /// Allocation-free for every width.
    pub fn meet_in_place(&mut self, other: &Cut) {
        let b = other.counts();
        let a = self.counts_mut();
        debug_assert_eq!(a.len(), b.len());
        for (a, &b) in a.iter_mut().zip(b) {
            *a = (*a).min(b);
        }
    }

    /// In-place join (historical name; see [`join_in_place`](Cut::join_in_place)).
    pub fn join_assign(&mut self, other: &Cut) {
        self.join_in_place(other);
    }

    /// In-place meet (historical name; see [`meet_in_place`](Cut::meet_in_place)).
    pub fn meet_assign(&mut self, other: &Cut) {
        self.meet_in_place(other);
    }

    /// Set inclusion: `true` if every event in `self` is also in `other`.
    pub fn leq(&self, other: &Cut) -> bool {
        let (a, b) = (self.counts(), other.counts());
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).all(|(&a, &b)| a <= b)
    }

    /// Strict inclusion.
    pub fn lt(&self, other: &Cut) -> bool {
        self.leq(other) && self.counts() != other.counts()
    }

    /// Total number of events in the cut.
    pub fn size(&self) -> u64 {
        self.counts().iter().map(|&c| u64::from(c)).sum()
    }

    /// Returns the per-process counts as a slice.
    pub fn counts(&self) -> &[u32] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Spilled(v) => v,
        }
    }

    /// Mutable view of the per-process counts.
    fn counts_mut(&mut self) -> &mut [u32] {
        match &mut self.0 {
            Repr::Inline { len, buf } => &mut buf[..*len as usize],
            Repr::Spilled(v) => v,
        }
    }

    /// Iterates over `(process, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, u32)> + '_ {
        self.counts()
            .iter()
            .enumerate()
            .map(|(i, &c)| (ProcessId::new(i), c))
    }
}

impl Clone for Cut {
    fn clone(&self) -> Self {
        match &self.0 {
            Repr::Inline { len, buf } => Cut(Repr::Inline {
                len: *len,
                buf: *buf,
            }),
            Repr::Spilled(v) => {
                CUT_HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
                Cut(Repr::Spilled(v.clone()))
            }
        }
    }

    fn clone_from(&mut self, source: &Self) {
        // Reuse an existing spilled buffer instead of reallocating; all
        // other combinations fall back to a fresh clone.
        match (&mut self.0, &source.0) {
            (Repr::Spilled(dst), Repr::Spilled(src)) if dst.len() == src.len() => {
                dst.copy_from_slice(src);
            }
            (dst, _) => *dst = source.clone().0,
        }
    }
}

impl PartialEq for Cut {
    fn eq(&self, other: &Self) -> bool {
        self.counts() == other.counts()
    }
}

impl Eq for Cut {}

impl PartialOrd for Cut {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cut {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.counts().cmp(other.counts())
    }
}

impl std::hash::Hash for Cut {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash as the count slice: identical to the historical
        // `Cut(Vec<u32>)` derive and independent of the storage variant.
        self.counts().hash(state);
    }
}

/// A bit-packing plan mapping a cut's per-process counts into one `u64`
/// key: uniform-width bit lanes, one per process.
///
/// The lane width comes from the per-process event counts of the
/// computation being searched: counts on process `p` range over
/// `0..=maxima[p]`. When the lanes fit in 63 bits the packing is a
/// bijection between bounded cuts and keys — packed-key equality *is* cut
/// equality — and the clear top bit keeps `u64::MAX` free as a table
/// sentinel. [`for_maxima`](CutPacking::for_maxima) returns `None` for
/// computations too wide or too long to pack; callers fall back to
/// unpacked cut storage.
///
/// When the bit budget allows, the plan reserves one spare top bit per
/// lane and enough lane headroom to hold the total event count; lattice
/// joins ([`join`](CutPacking::join)) and cut sizes
/// ([`size_of`](CutPacking::size_of)) then run as branch-free SWAR
/// arithmetic on whole keys — no per-lane loops, no unpacking — which is
/// what makes packed lattice sweeps cheap.
///
/// # Examples
///
/// ```
/// use slicing_computation::{Cut, CutPacking};
///
/// let packing = CutPacking::for_maxima(&[12, 3, 200]).unwrap();
/// let cut = Cut::from(vec![7, 2, 143]);
/// let key = packing.pack(cut.counts());
/// let mut out = Cut::bottom(3);
/// packing.unpack_into(key, &mut out);
/// assert_eq!(out, cut);
/// assert_eq!(packing.size_of(key), 7 + 2 + 143);
/// let other = packing.pack(&[9, 1, 150]);
/// let join = packing.join(key, other);
/// assert_eq!(join, packing.pack(&[9, 2, 150]));
/// ```
#[derive(Debug, Clone)]
pub struct CutPacking {
    /// Bits per lane (uniform across processes).
    lane_bits: u32,
    /// Number of lanes.
    n: usize,
    /// `(1 << lane_bits) - 1`: one lane's value mask.
    lane_mask: u64,
    /// `Σᵢ 1 << (i·lane_bits)`: the all-lanes-one constant (SWAR sums).
    ones: u64,
    /// `Σᵢ 1 << (i·lane_bits + lane_bits - 1)`: every lane's spare top
    /// bit; meaningful only when `swar`.
    high: u64,
    /// `true` when lanes have a spare top bit and sum headroom, enabling
    /// branch-free [`join`](Self::join) and [`size_of`](Self::size_of).
    swar: bool,
}

impl CutPacking {
    /// Builds the packing for counts bounded by `maxima` (inclusive), or
    /// `None` when uniform lanes wide enough need more than 63 bits.
    pub fn for_maxima(maxima: &[u32]) -> Option<CutPacking> {
        let n = maxima.len();
        if n == 0 {
            return None;
        }
        let need = maxima
            .iter()
            .map(|&m| 32 - m.leading_zeros())
            .max()
            .unwrap();
        let sum: u64 = maxima.iter().map(|&m| u64::from(m)).sum();
        let sum_bits = 64 - sum.leading_zeros();
        // Prefer SWAR lanes: a spare top bit (values stay below
        // 2^(w-1)) and room for the total event count in one lane.
        let swar_bits = (need + 1).max(sum_bits);
        let (lane_bits, swar) = if (n as u32) * swar_bits <= 63 {
            (swar_bits, true)
        } else if (n as u32) * need <= 63 && need > 0 {
            (need, false)
        } else {
            return None;
        };
        let mut ones = 0u64;
        for i in 0..n {
            ones |= 1u64 << (i as u32 * lane_bits);
        }
        Some(CutPacking {
            lane_bits,
            n,
            lane_mask: (1u64 << lane_bits) - 1,
            ones,
            high: ones << (lane_bits - 1),
            swar,
        })
    }

    /// Number of processes (lanes) in the plan.
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// Bits per lane. Together with the lane count this fingerprints the
    /// plan: caches of packed values verify it before trusting their
    /// contents against a caller's plan.
    pub fn lane_bits(&self) -> u32 {
        self.lane_bits
    }

    /// Packs a count slice into its key. Counts must be within the
    /// construction-time maxima (debug-asserted) — injectivity depends on
    /// every count fitting its lane.
    #[inline]
    pub fn pack(&self, counts: &[u32]) -> u64 {
        debug_assert_eq!(counts.len(), self.n);
        let mut key = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            debug_assert!(u64::from(c) <= self.lane_mask, "count {c} exceeds lane {i}");
            key |= u64::from(c) << (i as u32 * self.lane_bits);
        }
        key
    }

    /// Writes the counts behind `key` into `cut`, which must span the
    /// plan's process count.
    #[inline]
    pub fn unpack_into(&self, key: u64, cut: &mut Cut) {
        let counts = cut.counts_mut();
        assert_eq!(counts.len(), self.n);
        for (i, c) in counts.iter_mut().enumerate() {
            *c = ((key >> (i as u32 * self.lane_bits)) & self.lane_mask) as u32;
        }
    }

    /// The lattice join (per-lane maximum) of two packed cuts.
    ///
    /// On a SWAR plan this is ten branch-free word ops for all lanes at
    /// once: the spare top bit absorbs each lane's borrow, so one
    /// subtraction compares every pair of lanes in parallel.
    #[inline]
    pub fn join(&self, a: u64, b: u64) -> u64 {
        if self.swar {
            let h = self.high;
            // Lane top bit of t set iff aᵢ ≥ bᵢ (the spare bit prevents
            // inter-lane borrows).
            let t = ((a | h) - b) & h;
            // Expand each set top bit to a full-lane mask.
            let m = t | (t - (t >> (self.lane_bits - 1)));
            (a & m) | (b & !m)
        } else {
            let mut out = 0u64;
            for i in 0..self.n {
                let s = i as u32 * self.lane_bits;
                out |= ((a >> s) & self.lane_mask).max((b >> s) & self.lane_mask) << s;
            }
            out
        }
    }

    /// The size (total event count) of a packed cut.
    ///
    /// On a SWAR plan this is one multiplication: `key · ones` accumulates
    /// every lane's prefix sum, and the top lane holds the total (lane
    /// headroom for the full event count guarantees no carries).
    #[inline]
    pub fn size_of(&self, key: u64) -> u32 {
        if self.swar {
            let top = (self.n as u32 - 1) * self.lane_bits;
            ((key.wrapping_mul(self.ones) >> top) & self.lane_mask) as u32
        } else {
            let mut sum = 0u64;
            for i in 0..self.n {
                sum += (key >> (i as u32 * self.lane_bits)) & self.lane_mask;
            }
            sum as u32
        }
    }
}

impl From<Vec<u32>> for Cut {
    fn from(counts: Vec<u32>) -> Self {
        if counts.len() <= Cut::INLINE_PROCESSES {
            Cut::from_counts(&counts)
        } else {
            // Take over the existing buffer: no new allocation.
            Cut(Repr::Spilled(counts))
        }
    }
}

impl From<Cut> for Vec<u32> {
    fn from(cut: Cut) -> Vec<u32> {
        match cut.0 {
            Repr::Inline { len, buf } => buf[..len as usize].to_vec(),
            Repr::Spilled(v) => v,
        }
    }
}

impl AsRef<[u32]> for Cut {
    fn as_ref(&self) -> &[u32] {
        self.counts()
    }
}

impl fmt::Debug for Cut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cut{:?}", self.counts())
    }
}

impl fmt::Display for Cut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.counts().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_includes_only_initial_events() {
        let c = Cut::bottom(4);
        assert_eq!(c.counts(), &[1, 1, 1, 1]);
        assert_eq!(c.size(), 4);
        for i in 0..4 {
            assert_eq!(c.frontier_pos(ProcessId::new(i)), 0);
        }
    }

    #[test]
    fn join_meet_are_componentwise() {
        let a = Cut::from(vec![1, 4, 2]);
        let b = Cut::from(vec![3, 1, 2]);
        assert_eq!(a.join(&b).counts(), &[3, 4, 2]);
        assert_eq!(a.meet(&b).counts(), &[1, 1, 2]);
    }

    #[test]
    fn join_meet_assign_match_pure_versions() {
        let a = Cut::from(vec![1, 4, 2]);
        let b = Cut::from(vec![3, 1, 2]);
        let mut j = a.clone();
        j.join_assign(&b);
        assert_eq!(j, a.join(&b));
        let mut m = a.clone();
        m.meet_assign(&b);
        assert_eq!(m, a.meet(&b));
    }

    #[test]
    fn inclusion_is_a_partial_order() {
        let a = Cut::from(vec![1, 2]);
        let b = Cut::from(vec![2, 2]);
        let c = Cut::from(vec![3, 1]);
        assert!(a.leq(&b));
        assert!(a.lt(&b));
        assert!(!b.leq(&a));
        // b and c are incomparable.
        assert!(!b.leq(&c) && !c.leq(&b));
        // Reflexivity.
        assert!(a.leq(&a) && !a.lt(&a));
    }

    #[test]
    fn lattice_absorption_laws() {
        let a = Cut::from(vec![1, 3, 2]);
        let b = Cut::from(vec![2, 1, 4]);
        assert_eq!(a.join(&a.meet(&b)), a);
        assert_eq!(a.meet(&a.join(&b)), a);
    }

    #[test]
    fn set_count_and_accessors() {
        let mut c = Cut::bottom(3);
        c.set_count(ProcessId::new(1), 5);
        assert_eq!(c.count(ProcessId::new(1)), 5);
        assert_eq!(c.frontier_pos(ProcessId::new(1)), 4);
        let pairs: Vec<(usize, u32)> = c.iter().map(|(p, n)| (p.as_usize(), n)).collect();
        assert_eq!(pairs, vec![(0, 1), (1, 5), (2, 1)]);
    }

    #[test]
    fn display_and_debug() {
        let c = Cut::from(vec![1, 2]);
        assert_eq!(c.to_string(), "⟨1, 2⟩");
        assert_eq!(format!("{c:?}"), "Cut[1, 2]");
    }

    #[test]
    fn storage_spills_exactly_beyond_inline_width() {
        assert!(Cut::bottom(Cut::INLINE_PROCESSES).is_inline());
        assert!(!Cut::bottom(Cut::INLINE_PROCESSES + 1).is_inline());
        // Round trip both representations.
        for n in [1, 15, 16, 17, 40] {
            let counts: Vec<u32> = (1..=n as u32).collect();
            let c = Cut::from(counts.clone());
            assert_eq!(c.counts(), &counts[..], "width {n}");
            assert_eq!(Vec::<u32>::from(c.clone()), counts, "width {n}");
            assert_eq!(c.is_inline(), n <= Cut::INLINE_PROCESSES);
        }
    }

    #[test]
    fn lattice_ops_agree_across_the_spill_boundary() {
        for n in [15usize, 16, 17, 19] {
            let a: Vec<u32> = (0..n).map(|i| 1 + (i as u32 * 7) % 5).collect();
            let b: Vec<u32> = (0..n).map(|i| 1 + (i as u32 * 3) % 5).collect();
            let (ca, cb) = (Cut::from(a.clone()), Cut::from(b.clone()));
            let join: Vec<u32> = a.iter().zip(&b).map(|(&x, &y)| x.max(y)).collect();
            let meet: Vec<u32> = a.iter().zip(&b).map(|(&x, &y)| x.min(y)).collect();
            assert_eq!(ca.join(&cb).counts(), &join[..], "width {n}");
            assert_eq!(ca.meet(&cb).counts(), &meet[..], "width {n}");
            let mut j = ca.clone();
            j.join_in_place(&cb);
            assert_eq!(j.counts(), &join[..], "width {n}");
            let mut m = ca.clone();
            m.meet_in_place(&cb);
            assert_eq!(m.counts(), &meet[..], "width {n}");
        }
    }

    #[test]
    fn hash_and_ord_are_representation_independent() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |c: &Cut| {
            let mut s = DefaultHasher::new();
            c.hash(&mut s);
            s.finish()
        };
        // Equality and hashing depend only on the counts; the old
        // Vec-backed Cut hashed as a slice, matched here byte for byte.
        let v: Vec<u32> = (1..=16).collect();
        let inline = Cut::from_counts(&v);
        assert!(inline.is_inline());
        assert_eq!(h(&inline), {
            let mut s = DefaultHasher::new();
            v[..].hash(&mut s);
            s.finish()
        });
        // Ord is lexicographic like Vec<u32>.
        let a = Cut::from(vec![1, 2, 9]);
        let b = Cut::from(vec![1, 3, 0]);
        assert!(a < b);
    }

    #[test]
    fn inline_cuts_never_touch_the_heap() {
        let before = cut_heap_allocs();
        let a = Cut::bottom(Cut::INLINE_PROCESSES);
        let b = a.clone();
        let j = a.join(&b);
        let m = a.meet(&j);
        let mut s = m.clone();
        s.join_in_place(&a);
        assert_eq!(cut_heap_allocs(), before, "inline ops allocated");
    }

    #[test]
    fn spilled_ops_count_heap_allocations() {
        let n = Cut::INLINE_PROCESSES + 4;
        let before = cut_heap_allocs();
        let a = Cut::bottom(n); // +1
        let b = a.clone(); // +1
        let _j = a.join(&b); // +1 (clone inside join)
        assert_eq!(cut_heap_allocs() - before, 3);
        // From<Vec> adopts the buffer: no new allocation.
        let before = cut_heap_allocs();
        let big = Cut::from(vec![1u32; n]);
        assert!(!big.is_inline());
        assert_eq!(cut_heap_allocs(), before);
    }

    #[test]
    fn clone_from_reuses_spilled_buffers() {
        let n = Cut::INLINE_PROCESSES + 2;
        let src = Cut::from(vec![3u32; n]);
        let mut dst = Cut::from(vec![1u32; n]);
        let before = cut_heap_allocs();
        dst.clone_from(&src);
        assert_eq!(dst, src);
        assert_eq!(cut_heap_allocs(), before, "clone_from reallocated");
    }

    #[test]
    fn packing_for_maxima_edge_cases() {
        assert!(CutPacking::for_maxima(&[]).is_none(), "no lanes");
        // 64 one-bit lanes need 64 bits even without SWAR headroom.
        assert!(CutPacking::for_maxima(&[1; 64]).is_none(), "too wide");
        // 15 lanes of 4-bit counts fit raw (60 bits) but not with SWAR
        // headroom (sum 210 needs 8-bit lanes → 120 bits).
        let tight = CutPacking::for_maxima(&[14; 15]).unwrap();
        assert!(!tight.swar, "tight plan must fall back to per-lane loops");
        assert_eq!(tight.lane_bits(), 4);
        // A narrow plan gets the spare bit and sum headroom.
        let roomy = CutPacking::for_maxima(&[12, 3, 200]).unwrap();
        assert!(roomy.swar);
        assert_eq!(roomy.num_processes(), 3);
    }

    /// Exercises pack/unpack/join/size_of on both plan flavors against the
    /// unpacked `Cut` operations, over a deterministic pseudo-random walk
    /// of in-range cuts.
    #[test]
    fn packing_ops_match_cut_ops_on_both_plans() {
        let plans = [
            (
                vec![12u32, 3, 200, 9],
                CutPacking::for_maxima(&[12, 3, 200, 9]).unwrap(),
            ),
            (vec![14u32; 15], CutPacking::for_maxima(&[14; 15]).unwrap()),
        ];
        assert!(plans[0].1.swar && !plans[1].1.swar, "one plan per flavor");
        for (maxima, packing) in &plans {
            let n = maxima.len();
            let mut rng = 0x9e3779b97f4a7c15u64;
            let mut draw = |m: u32| {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((rng >> 33) % u64::from(m + 1)) as u32
            };
            for _ in 0..200 {
                let a = Cut::from(maxima.iter().map(|&m| draw(m)).collect::<Vec<_>>());
                let b = Cut::from(maxima.iter().map(|&m| draw(m)).collect::<Vec<_>>());
                let (ka, kb) = (packing.pack(a.counts()), packing.pack(b.counts()));
                let mut out = Cut::bottom(n);
                packing.unpack_into(ka, &mut out);
                assert_eq!(out, a, "pack/unpack must round-trip");
                assert_eq!(packing.size_of(ka), a.size() as u32);
                let mut join = Cut::bottom(n);
                packing.unpack_into(packing.join(ka, kb), &mut join);
                assert_eq!(join, a.join(&b), "packed join vs componentwise max");
            }
        }
    }

    #[test]
    fn packing_keys_order_by_equality_not_accident() {
        // Injectivity on bounded counts: distinct cuts → distinct keys.
        let packing = CutPacking::for_maxima(&[3, 3, 3]).unwrap();
        let mut seen = std::collections::HashSet::new();
        for a in 0..=3u32 {
            for b in 0..=3 {
                for c in 0..=3 {
                    assert!(seen.insert(packing.pack(&[a, b, c])));
                }
            }
        }
        assert_eq!(seen.len(), 64);
    }
}
