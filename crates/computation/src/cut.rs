//! Consistent cuts represented as per-process prefix vectors.

use std::fmt;

use crate::process::ProcessId;

/// A (candidate) consistent cut of a computation.
///
/// Every graph this library manipulates — computations and slices alike —
/// contains the process-order edges, so every consistent cut is a union of
/// per-process prefixes. `Cut` stores, for each process, *how many events of
/// that process are included*, counting the fictitious initial event at
/// position 0. Entry values therefore range from `1` (only the initial
/// event) to `len_i` (all events of process `i`); the paper's trivial cuts
/// (the empty set, and the set including the fictitious final events) are
/// never represented.
///
/// `Cut` is a plain vector: whether it is *consistent* is relative to a
/// computation and checked by
/// [`Computation::is_consistent`](crate::Computation::is_consistent).
///
/// The set of consistent cuts forms a distributive lattice under inclusion
/// ([`join`](Cut::join) = set union = componentwise max, [`meet`](Cut::meet)
/// = set intersection = componentwise min), which is the foundation of the
/// slicing theory (Birkhoff's representation theorem).
///
/// # Examples
///
/// ```
/// use slicing_computation::Cut;
///
/// let a = Cut::from(vec![1, 3, 2]);
/// let b = Cut::from(vec![2, 1, 2]);
/// assert_eq!(a.join(&b), Cut::from(vec![2, 3, 2]));
/// assert_eq!(a.meet(&b), Cut::from(vec![1, 1, 2]));
/// assert!(a.meet(&b).leq(&a));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cut(Vec<u32>);

impl Cut {
    /// The bottom element of the lattice of non-trivial cuts: each process
    /// has executed only its initial event.
    pub fn bottom(num_processes: usize) -> Self {
        Cut(vec![1; num_processes])
    }

    /// Number of processes this cut spans.
    pub fn num_processes(&self) -> usize {
        self.0.len()
    }

    /// Number of events of process `p` included in the cut (counting the
    /// initial event at position 0).
    pub fn count(&self, p: ProcessId) -> u32 {
        self.0[p.as_usize()]
    }

    /// Position (0-based) of the frontier event of process `p`: the last
    /// event of `p` inside the cut.
    pub fn frontier_pos(&self, p: ProcessId) -> u32 {
        debug_assert!(self.0[p.as_usize()] >= 1, "cut excludes an initial event");
        self.0[p.as_usize()] - 1
    }

    /// Sets the number of included events of process `p`.
    pub fn set_count(&mut self, p: ProcessId, count: u32) {
        self.0[p.as_usize()] = count;
    }

    /// Componentwise maximum: the set union of the two cuts (the lattice
    /// *join*).
    #[must_use]
    pub fn join(&self, other: &Cut) -> Cut {
        debug_assert_eq!(self.0.len(), other.0.len());
        Cut(self
            .0
            .iter()
            .zip(&other.0)
            .map(|(&a, &b)| a.max(b))
            .collect())
    }

    /// Componentwise minimum: the set intersection of the two cuts (the
    /// lattice *meet*).
    #[must_use]
    pub fn meet(&self, other: &Cut) -> Cut {
        debug_assert_eq!(self.0.len(), other.0.len());
        Cut(self
            .0
            .iter()
            .zip(&other.0)
            .map(|(&a, &b)| a.min(b))
            .collect())
    }

    /// In-place join: grows `self` to include everything in `other`.
    pub fn join_assign(&mut self, other: &Cut) {
        debug_assert_eq!(self.0.len(), other.0.len());
        for (a, &b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(b);
        }
    }

    /// In-place meet: shrinks `self` to its intersection with `other`.
    pub fn meet_assign(&mut self, other: &Cut) {
        debug_assert_eq!(self.0.len(), other.0.len());
        for (a, &b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).min(b);
        }
    }

    /// Set inclusion: `true` if every event in `self` is also in `other`.
    pub fn leq(&self, other: &Cut) -> bool {
        debug_assert_eq!(self.0.len(), other.0.len());
        self.0.iter().zip(&other.0).all(|(&a, &b)| a <= b)
    }

    /// Strict inclusion.
    pub fn lt(&self, other: &Cut) -> bool {
        self.leq(other) && self.0 != other.0
    }

    /// Total number of events in the cut.
    pub fn size(&self) -> u64 {
        self.0.iter().map(|&c| u64::from(c)).sum()
    }

    /// Returns the per-process counts as a slice.
    pub fn counts(&self) -> &[u32] {
        &self.0
    }

    /// Iterates over `(process, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, u32)> + '_ {
        self.0
            .iter()
            .enumerate()
            .map(|(i, &c)| (ProcessId::new(i), c))
    }
}

impl From<Vec<u32>> for Cut {
    fn from(counts: Vec<u32>) -> Self {
        Cut(counts)
    }
}

impl From<Cut> for Vec<u32> {
    fn from(cut: Cut) -> Vec<u32> {
        cut.0
    }
}

impl AsRef<[u32]> for Cut {
    fn as_ref(&self) -> &[u32] {
        &self.0
    }
}

impl fmt::Debug for Cut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cut{:?}", self.0)
    }
}

impl fmt::Display for Cut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_includes_only_initial_events() {
        let c = Cut::bottom(4);
        assert_eq!(c.counts(), &[1, 1, 1, 1]);
        assert_eq!(c.size(), 4);
        for i in 0..4 {
            assert_eq!(c.frontier_pos(ProcessId::new(i)), 0);
        }
    }

    #[test]
    fn join_meet_are_componentwise() {
        let a = Cut::from(vec![1, 4, 2]);
        let b = Cut::from(vec![3, 1, 2]);
        assert_eq!(a.join(&b).counts(), &[3, 4, 2]);
        assert_eq!(a.meet(&b).counts(), &[1, 1, 2]);
    }

    #[test]
    fn join_meet_assign_match_pure_versions() {
        let a = Cut::from(vec![1, 4, 2]);
        let b = Cut::from(vec![3, 1, 2]);
        let mut j = a.clone();
        j.join_assign(&b);
        assert_eq!(j, a.join(&b));
        let mut m = a.clone();
        m.meet_assign(&b);
        assert_eq!(m, a.meet(&b));
    }

    #[test]
    fn inclusion_is_a_partial_order() {
        let a = Cut::from(vec![1, 2]);
        let b = Cut::from(vec![2, 2]);
        let c = Cut::from(vec![3, 1]);
        assert!(a.leq(&b));
        assert!(a.lt(&b));
        assert!(!b.leq(&a));
        // b and c are incomparable.
        assert!(!b.leq(&c) && !c.leq(&b));
        // Reflexivity.
        assert!(a.leq(&a) && !a.lt(&a));
    }

    #[test]
    fn lattice_absorption_laws() {
        let a = Cut::from(vec![1, 3, 2]);
        let b = Cut::from(vec![2, 1, 4]);
        assert_eq!(a.join(&a.meet(&b)), a);
        assert_eq!(a.meet(&a.join(&b)), a);
    }

    #[test]
    fn set_count_and_accessors() {
        let mut c = Cut::bottom(3);
        c.set_count(ProcessId::new(1), 5);
        assert_eq!(c.count(ProcessId::new(1)), 5);
        assert_eq!(c.frontier_pos(ProcessId::new(1)), 4);
        let pairs: Vec<(usize, u32)> = c.iter().map(|(p, n)| (p.as_usize(), n)).collect();
        assert_eq!(pairs, vec![(0, 1), (1, 5), (2, 1)]);
    }

    #[test]
    fn display_and_debug() {
        let c = Cut::from(vec![1, 2]);
        assert_eq!(c.to_string(), "⟨1, 2⟩");
        assert_eq!(format!("{c:?}"), "Cut[1, 2]");
    }
}
