//! Process identifiers and small process sets.

use std::fmt;

/// Identifier of a process in a distributed computation.
///
/// Processes are numbered densely from `0` to `n - 1`. A `ProcessId` is only
/// meaningful relative to the [`Computation`](crate::Computation) it was
/// created for.
///
/// # Examples
///
/// ```
/// use slicing_computation::ProcessId;
///
/// let p = ProcessId::new(2);
/// assert_eq!(p.as_usize(), 2);
/// assert_eq!(p.to_string(), "p2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates a process identifier from its dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds [`ProcSet::MAX_PROCESSES`].
    pub fn new(index: usize) -> Self {
        assert!(
            index < ProcSet::MAX_PROCESSES,
            "process index {index} exceeds the supported maximum of {}",
            ProcSet::MAX_PROCESSES
        );
        ProcessId(index as u32)
    }

    /// Returns the dense index of this process.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<ProcessId> for usize {
    fn from(p: ProcessId) -> usize {
        p.as_usize()
    }
}

/// A set of processes, used to describe the *support* of a predicate (the
/// processes whose variables it reads).
///
/// Backed by a 64-bit mask, which comfortably covers the computation sizes
/// studied in the paper (up to 12 processes) with a wide margin.
///
/// # Examples
///
/// ```
/// use slicing_computation::{ProcSet, ProcessId};
///
/// let mut s = ProcSet::empty();
/// s.insert(ProcessId::new(0));
/// s.insert(ProcessId::new(3));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(ProcessId::new(3)));
/// assert!(!s.contains(ProcessId::new(1)));
/// let ids: Vec<usize> = s.iter().map(|p| p.as_usize()).collect();
/// assert_eq!(ids, vec![0, 3]);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ProcSet(u64);

impl ProcSet {
    /// The largest process index representable in a `ProcSet`, plus one.
    pub const MAX_PROCESSES: usize = 64;

    /// Creates an empty set.
    pub fn empty() -> Self {
        ProcSet(0)
    }

    /// Creates the full set `{0, .., n - 1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`ProcSet::MAX_PROCESSES`].
    pub fn all(n: usize) -> Self {
        assert!(n <= Self::MAX_PROCESSES);
        if n == Self::MAX_PROCESSES {
            ProcSet(u64::MAX)
        } else {
            ProcSet((1u64 << n) - 1)
        }
    }

    /// Creates a singleton set.
    pub fn singleton(p: ProcessId) -> Self {
        ProcSet(1u64 << p.as_usize())
    }

    /// Adds a process to the set.
    pub fn insert(&mut self, p: ProcessId) {
        self.0 |= 1u64 << p.as_usize();
    }

    /// Removes a process from the set.
    pub fn remove(&mut self, p: ProcessId) {
        self.0 &= !(1u64 << p.as_usize());
    }

    /// Returns `true` if the set contains `p`.
    pub fn contains(self, p: ProcessId) -> bool {
        self.0 & (1u64 << p.as_usize()) != 0
    }

    /// Returns the union of two sets.
    #[must_use]
    pub fn union(self, other: ProcSet) -> ProcSet {
        ProcSet(self.0 | other.0)
    }

    /// Returns the intersection of two sets.
    #[must_use]
    pub fn intersection(self, other: ProcSet) -> ProcSet {
        ProcSet(self.0 & other.0)
    }

    /// Returns the number of processes in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the members in increasing index order.
    pub fn iter(self) -> ProcSetIter {
        ProcSetIter(self.0)
    }
}

impl FromIterator<ProcessId> for ProcSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = ProcSet::empty();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl IntoIterator for ProcSet {
    type Item = ProcessId;
    type IntoIter = ProcSetIter;

    fn into_iter(self) -> ProcSetIter {
        self.iter()
    }
}

impl fmt::Display for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the members of a [`ProcSet`].
#[derive(Debug, Clone)]
pub struct ProcSetIter(u64);

impl Iterator for ProcSetIter {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        if self.0 == 0 {
            return None;
        }
        let idx = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(ProcessId::new(idx))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for ProcSetIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_round_trip() {
        let p = ProcessId::new(7);
        assert_eq!(p.as_usize(), 7);
        assert_eq!(usize::from(p), 7);
    }

    #[test]
    #[should_panic(expected = "exceeds the supported maximum")]
    fn process_id_overflow_panics() {
        let _ = ProcessId::new(ProcSet::MAX_PROCESSES);
    }

    #[test]
    fn empty_set_has_no_members() {
        let s = ProcSet::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn all_covers_prefix() {
        let s = ProcSet::all(5);
        assert_eq!(s.len(), 5);
        for i in 0..5 {
            assert!(s.contains(ProcessId::new(i)));
        }
        assert!(!s.contains(ProcessId::new(5)));
    }

    #[test]
    fn all_supports_max_width() {
        let s = ProcSet::all(ProcSet::MAX_PROCESSES);
        assert_eq!(s.len(), ProcSet::MAX_PROCESSES);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = ProcSet::empty();
        s.insert(ProcessId::new(3));
        assert!(s.contains(ProcessId::new(3)));
        s.remove(ProcessId::new(3));
        assert!(!s.contains(ProcessId::new(3)));
        // Removing an absent member is a no-op.
        s.remove(ProcessId::new(3));
        assert!(s.is_empty());
    }

    #[test]
    fn union_and_intersection() {
        let a: ProcSet = [0, 1, 2].into_iter().map(ProcessId::new).collect();
        let b: ProcSet = [1, 2, 3].into_iter().map(ProcessId::new).collect();
        assert_eq!(a.union(b), ProcSet::all(4));
        let i = a.intersection(b);
        assert_eq!(i.len(), 2);
        assert!(i.contains(ProcessId::new(1)));
        assert!(i.contains(ProcessId::new(2)));
    }

    #[test]
    fn iteration_is_sorted() {
        let s: ProcSet = [5, 1, 9].into_iter().map(ProcessId::new).collect();
        let v: Vec<usize> = s.iter().map(ProcessId::as_usize).collect();
        assert_eq!(v, vec![1, 5, 9]);
    }

    #[test]
    fn display_formats() {
        let s: ProcSet = [0, 2].into_iter().map(ProcessId::new).collect();
        assert_eq!(s.to_string(), "{p0, p2}");
        assert_eq!(ProcSet::empty().to_string(), "{}");
    }
}
