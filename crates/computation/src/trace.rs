//! A plain-text trace format for computations.
//!
//! The format is line-oriented and diff-friendly, so recorded protocol runs
//! can be checked into a repository and replayed by the examples:
//!
//! ```text
//! # comments and blank lines are ignored
//! procs 3
//! var 0 x 5            # process 0 declares x with initial value 5
//! var 1 ok true
//! var 2 peer p0
//! event 0 x=6          # appends an event to process 0, assigning x
//! event 1 label=r ok=false
//! msg 0 1 1 1          # message from (p0, pos 1) to (p1, pos 1)
//! ```
//!
//! Values are written as integers (`-3`), booleans (`true`/`false`), or
//! process ids (`p2`). The key `label` inside an `event` line attaches an
//! event label instead of assigning a variable, so `label` is reserved and
//! cannot be used as a variable name in traces.

use std::error::Error;
use std::fmt;

use crate::builder::{BuildError, ComputationBuilder};
use crate::computation::Computation;
use crate::event::EventId;
use crate::process::ProcessId;
use crate::value::Value;

/// Errors produced when parsing a textual trace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The trace was structurally invalid (e.g. cyclic messages).
    Build(BuildError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Syntax { line, message } => {
                write!(f, "trace syntax error on line {line}: {message}")
            }
            TraceError::Build(e) => write!(f, "trace build error: {e}"),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Build(e) => Some(e),
            TraceError::Syntax { .. } => None,
        }
    }
}

impl From<BuildError> for TraceError {
    fn from(e: BuildError) -> Self {
        TraceError::Build(e)
    }
}

fn syntax(line: usize, message: impl Into<String>) -> TraceError {
    TraceError::Syntax {
        line,
        message: message.into(),
    }
}

fn format_value(v: Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Pid(p) => p.to_string(),
    }
}

/// One parsed line of the textual trace format: the unit of *streaming*
/// ingestion.
///
/// [`parse_line`] turns each input line into one of these without needing
/// the rest of the trace, so long-running consumers (`slicing monitor`,
/// `slicing serve`) can feed events into an online engine as they arrive
/// instead of materializing the whole computation first. [`from_text`] is
/// the batch consumer built on the same parser.
///
/// Syntax is checked here; *context* (process indices in range, variables
/// declared, endpoints existing) is the consumer's job, because only the
/// consumer knows how much of the trace it has seen.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceOp {
    /// `procs N` — the header declaring the process count.
    Procs(usize),
    /// `var p name init` — declare a variable with its initial value.
    Var {
        /// Owning process index.
        process: usize,
        /// Variable name (`label` is reserved and rejected at parse time).
        name: String,
        /// Initial value.
        initial: Value,
    },
    /// `event p [label=l] [k=v]…` — append an event, with optional label
    /// and variable writes in line order.
    Event {
        /// Process the event is appended to.
        process: usize,
        /// Optional event label (`label=` key).
        label: Option<String>,
        /// Variable assignments, in the order written on the line.
        writes: Vec<(String, Value)>,
    },
    /// `msg sp spos rp rpos` — a message edge between two event positions.
    Msg {
        /// Sender as (process index, event position).
        send: (usize, u32),
        /// Receiver as (process index, event position).
        recv: (usize, u32),
    },
}

/// Parses one line of the trace format into a [`TraceOp`].
///
/// Returns `Ok(None)` for blank lines and comments (everything after `#`
/// is stripped first). `lineno` is the 1-based line number used in error
/// messages.
///
/// # Errors
///
/// [`TraceError::Syntax`] for any malformed line: unknown directives,
/// missing fields, bad values, or the reserved variable name `label`.
pub fn parse_line(raw: &str, lineno: usize) -> Result<Option<TraceOp>, TraceError> {
    let line = raw.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        return Ok(None);
    }
    let mut tokens = line.split_whitespace();
    let kind = tokens.next().expect("non-empty line has a first token");
    let op = match kind {
        "procs" => {
            let n: usize = tokens
                .next()
                .ok_or_else(|| syntax(lineno, "procs needs a count"))?
                .parse()
                .map_err(|_| syntax(lineno, "invalid process count"))?;
            if n == 0 || n > crate::process::ProcSet::MAX_PROCESSES {
                return Err(syntax(lineno, "process count out of range"));
            }
            TraceOp::Procs(n)
        }
        "var" => {
            let process: usize = tokens
                .next()
                .ok_or_else(|| syntax(lineno, "var needs a process"))?
                .parse()
                .map_err(|_| syntax(lineno, "invalid process index"))?;
            let name = tokens
                .next()
                .ok_or_else(|| syntax(lineno, "var needs a name"))?;
            if name == "label" {
                return Err(syntax(lineno, "variable name `label` is reserved"));
            }
            let initial = parse_value(
                tokens
                    .next()
                    .ok_or_else(|| syntax(lineno, "var needs an initial value"))?,
                lineno,
            )?;
            TraceOp::Var {
                process,
                name: name.to_string(),
                initial,
            }
        }
        "event" => {
            let process: usize = tokens
                .next()
                .ok_or_else(|| syntax(lineno, "event needs a process"))?
                .parse()
                .map_err(|_| syntax(lineno, "invalid process index"))?;
            let mut label = None;
            let mut writes = Vec::new();
            for kv in tokens {
                let (key, val) = kv
                    .split_once('=')
                    .ok_or_else(|| syntax(lineno, format!("expected key=value, got {kv:?}")))?;
                if key == "label" {
                    label = Some(val.to_string());
                } else {
                    writes.push((key.to_string(), parse_value(val, lineno)?));
                }
            }
            TraceOp::Event {
                process,
                label,
                writes,
            }
        }
        "msg" => {
            let nums: Vec<&str> = tokens.collect();
            if nums.len() != 4 {
                return Err(syntax(lineno, "msg needs 4 fields"));
            }
            let sp: usize = nums[0]
                .parse()
                .map_err(|_| syntax(lineno, "invalid send process"))?;
            let spos: u32 = nums[1]
                .parse()
                .map_err(|_| syntax(lineno, "invalid send position"))?;
            let rp: usize = nums[2]
                .parse()
                .map_err(|_| syntax(lineno, "invalid recv process"))?;
            let rpos: u32 = nums[3]
                .parse()
                .map_err(|_| syntax(lineno, "invalid recv position"))?;
            TraceOp::Msg {
                send: (sp, spos),
                recv: (rp, rpos),
            }
        }
        other => {
            return Err(syntax(lineno, format!("unknown directive {other:?}")));
        }
    };
    Ok(Some(op))
}

fn parse_value(token: &str, line: usize) -> Result<Value, TraceError> {
    match token {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Some(rest) = token.strip_prefix('p') {
        if let Ok(idx) = rest.parse::<usize>() {
            return Ok(Value::Pid(ProcessId::new(idx)));
        }
    }
    token
        .parse::<i64>()
        .map(Value::Int)
        .map_err(|_| syntax(line, format!("invalid value {token:?}")))
}

/// Serializes a computation to the textual trace format.
///
/// The result round-trips through [`from_text`]: variable declarations,
/// event order, assignments, labels and messages are all preserved.
pub fn to_text(comp: &Computation) -> String {
    let mut out = String::new();
    out.push_str("# computation-slicing trace v1\n");
    out.push_str(&format!("procs {}\n", comp.num_processes()));
    for p in comp.processes() {
        for (i, name) in comp.var_names(p).enumerate() {
            let var = comp.var(p, name).expect("listed name resolves");
            let _ = i;
            out.push_str(&format!(
                "var {} {} {}\n",
                p.as_usize(),
                name,
                format_value(comp.value_at(var, 0))
            ));
        }
    }

    // Events in their original interleaved order (event ids are assigned in
    // append order, so iterating ids reproduces it).
    for e in comp.events() {
        if comp.is_initial(e) {
            continue;
        }
        let p = comp.process_of(e);
        let pos = comp.position_of(e);
        let mut line = format!("event {}", p.as_usize());
        if let Some(l) = comp.label(e) {
            line.push_str(&format!(" label={l}"));
        }
        for name in comp.var_names(p) {
            let var = comp.var(p, name).expect("listed name resolves");
            let now = comp.value_at(var, pos);
            let before = comp.value_at(var, pos - 1);
            if now != before {
                line.push_str(&format!(" {name}={}", format_value(now)));
            }
        }
        out.push_str(&line);
        out.push('\n');
    }

    for m in comp.messages() {
        out.push_str(&format!(
            "msg {} {} {} {}\n",
            comp.process_of(m.send).as_usize(),
            comp.position_of(m.send),
            comp.process_of(m.recv).as_usize(),
            comp.position_of(m.recv)
        ));
    }
    out
}

/// Parses a computation from the textual trace format.
///
/// # Errors
///
/// Returns [`TraceError::Syntax`] for malformed lines and
/// [`TraceError::Build`] if the described computation is invalid (cyclic
/// messages, duplicate variables, ...).
pub fn from_text(text: &str) -> Result<Computation, TraceError> {
    let mut builder: Option<ComputationBuilder> = None;
    // Deferred messages: (send proc, send pos, recv proc, recv pos, line).
    let mut messages: Vec<(usize, u32, usize, u32, usize)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let Some(op) = parse_line(raw, lineno)? else {
            continue;
        };
        match op {
            TraceOp::Procs(n) => {
                if builder.is_some() {
                    return Err(syntax(lineno, "duplicate procs line"));
                }
                builder = Some(ComputationBuilder::new(n));
            }
            TraceOp::Var {
                process,
                name,
                initial,
            } => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| syntax(lineno, "var before procs"))?;
                if process >= b.num_processes() {
                    return Err(syntax(lineno, "process index out of range"));
                }
                b.try_declare_var(ProcessId::new(process), &name, initial)?;
            }
            TraceOp::Event {
                process,
                label,
                writes,
            } => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| syntax(lineno, "event before procs"))?;
                if process >= b.num_processes() {
                    return Err(syntax(lineno, "process index out of range"));
                }
                let pid = ProcessId::new(process);
                let e = b.append_event(pid);
                if let Some(l) = &label {
                    b.set_label(e, l);
                }
                for (key, value) in writes {
                    let var = match b.var(pid, &key) {
                        Some(v) => v,
                        None => {
                            return Err(syntax(
                                lineno,
                                format!("unknown variable {key:?} on process {process}"),
                            ))
                        }
                    };
                    b.assign(e, var, value)?;
                }
            }
            TraceOp::Msg { send, recv } => {
                messages.push((send.0, send.1, recv.0, recv.1, lineno));
            }
        }
    }

    let mut b = builder.ok_or_else(|| syntax(0, "trace has no procs line"))?;
    for (sp, spos, rp, rpos, lineno) in messages {
        let send = event_ref(&b, sp, spos).ok_or_else(|| syntax(lineno, "bad send endpoint"))?;
        let recv = event_ref(&b, rp, rpos).ok_or_else(|| syntax(lineno, "bad recv endpoint"))?;
        b.message(send, recv)?;
    }
    Ok(b.build()?)
}

fn event_ref(b: &ComputationBuilder, p: usize, pos: u32) -> Option<EventId> {
    if p >= b.num_processes() {
        return None;
    }
    let pid = ProcessId::new(p);
    if pos >= b.len(pid) {
        return None;
    }
    Some(b.event_at(pid, pos))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::figure1;

    #[test]
    fn figure1_round_trips() {
        let original = figure1();
        let text = to_text(&original);
        let parsed = from_text(&text).expect("emitted trace parses");
        assert_eq!(parsed.num_processes(), original.num_processes());
        assert_eq!(parsed.num_events(), original.num_events());
        assert_eq!(parsed.messages(), original.messages());
        for e in original.events() {
            assert_eq!(parsed.label(e), original.label(e));
            let p = original.process_of(e);
            for name in original.var_names(p) {
                let vo = original.var(p, name).unwrap();
                let vp = parsed.var(p, name).unwrap();
                assert_eq!(
                    parsed.value_at(vp, original.position_of(e)),
                    original.value_at(vo, original.position_of(e))
                );
            }
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let c = from_text("# header\n\nprocs 1\n  # indented comment\nevent 0\n").unwrap();
        assert_eq!(c.num_events(), 2);
    }

    #[test]
    fn value_parsing() {
        assert_eq!(parse_value("true", 1).unwrap(), Value::Bool(true));
        assert_eq!(parse_value("-4", 1).unwrap(), Value::Int(-4));
        assert_eq!(parse_value("p3", 1).unwrap(), Value::Pid(ProcessId::new(3)));
        assert!(parse_value("zzz", 1).is_err());
        // `p` followed by non-digits falls through to the error path.
        assert!(parse_value("px", 1).is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = from_text("procs 1\nbogus 1\n").unwrap_err();
        match err {
            TraceError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn event_before_procs_rejected() {
        assert!(from_text("event 0\n").is_err());
    }

    #[test]
    fn unknown_variable_rejected() {
        let err = from_text("procs 1\nevent 0 y=1\n").unwrap_err();
        assert!(err.to_string().contains("unknown variable"));
    }

    #[test]
    fn reserved_label_name_rejected() {
        assert!(from_text("procs 1\nvar 0 label 0\n").is_err());
    }

    #[test]
    fn bad_message_endpoint_rejected() {
        let err = from_text("procs 2\nevent 0\nmsg 0 1 1 5\n").unwrap_err();
        assert!(err.to_string().contains("recv endpoint"));
    }

    #[test]
    fn parse_line_streams_one_op_at_a_time() {
        assert_eq!(parse_line("# comment", 1).unwrap(), None);
        assert_eq!(parse_line("   ", 2).unwrap(), None);
        assert_eq!(parse_line("procs 3", 3).unwrap(), Some(TraceOp::Procs(3)));
        assert_eq!(
            parse_line("var 1 x 5 # trailing", 4).unwrap(),
            Some(TraceOp::Var {
                process: 1,
                name: "x".to_string(),
                initial: Value::Int(5),
            })
        );
        assert_eq!(
            parse_line("event 0 label=send x=6 ok=true", 5).unwrap(),
            Some(TraceOp::Event {
                process: 0,
                label: Some("send".to_string()),
                writes: vec![
                    ("x".to_string(), Value::Int(6)),
                    ("ok".to_string(), Value::Bool(true)),
                ],
            })
        );
        assert_eq!(
            parse_line("msg 0 1 1 2", 6).unwrap(),
            Some(TraceOp::Msg {
                send: (0, 1),
                recv: (1, 2),
            })
        );
    }

    #[test]
    fn parse_line_rejects_malformed_input_with_line_numbers() {
        for (bad, needle) in [
            ("bogus 1", "unknown directive"),
            ("procs", "procs needs a count"),
            ("procs many", "invalid process count"),
            ("procs 0", "process count out of range"),
            ("var 0 label 1", "reserved"),
            ("var 0 x", "var needs an initial value"),
            ("event x", "invalid process index"),
            ("event 0 naked", "expected key=value"),
            ("event 0 x=?", "invalid value"),
            ("msg 0 1 1", "msg needs 4 fields"),
            ("msg 0 1 1 no", "invalid recv position"),
        ] {
            match parse_line(bad, 7).unwrap_err() {
                TraceError::Syntax { line, message } => {
                    assert_eq!(line, 7, "{bad}");
                    assert!(message.contains(needle), "{bad}: {message}");
                }
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn cyclic_trace_reports_build_error() {
        let text = "procs 2\nevent 0\nevent 0\nevent 1\nevent 1\nmsg 0 2 1 1\nmsg 1 2 0 1\n";
        match from_text(text).unwrap_err() {
            TraceError::Build(BuildError::CyclicOrder) => {}
            other => panic!("unexpected error {other:?}"),
        }
    }
}
