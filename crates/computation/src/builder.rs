//! Incremental construction of [`Computation`]s.

use std::error::Error;
use std::fmt;

use crate::computation::{Computation, ProcessVars, VarRef};
use crate::cut::Cut;
use crate::event::{EventId, Message};
use crate::process::{ProcSet, ProcessId};
use crate::value::Value;

/// Errors reported by [`ComputationBuilder::build`] and the fallible builder
/// methods.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// The happened-before relation contains a cycle (e.g. a message sent
    /// "backwards in time").
    CyclicOrder,
    /// A message was declared between two events of the same process.
    SelfMessage {
        /// The offending process.
        process: ProcessId,
    },
    /// A message endpoint refers to a fictitious initial event, which cannot
    /// send or receive.
    MessageAtInitialEvent {
        /// The offending event.
        event: EventId,
    },
    /// The same (send, recv) pair was declared twice.
    DuplicateMessage {
        /// The duplicated message.
        message: Message,
    },
    /// An assignment targeted an event that is no longer the last event of
    /// its process.
    StaleAssignment {
        /// The event the assignment targeted.
        event: EventId,
    },
    /// A variable name was declared twice on the same process.
    DuplicateVariable {
        /// The process on which the duplicate was declared.
        process: ProcessId,
        /// The duplicated name.
        name: String,
    },
    /// A variable was declared after events were appended to its process.
    LateVariable {
        /// The process on which the late declaration happened.
        process: ProcessId,
        /// The variable name.
        name: String,
    },
    /// An observed value's runtime type differs from the type the variable
    /// was declared with (online observers validate every observation
    /// against the declared initial value before accepting it).
    TypeMismatch {
        /// The process owning the variable.
        process: ProcessId,
        /// The variable name.
        name: String,
        /// Type of the declared initial value.
        expected: &'static str,
        /// Type of the rejected observation.
        got: &'static str,
    },
    /// A watch (predicate conjunct) was registered after its process had
    /// already observed real events, so earlier events could not be
    /// classified under it.
    LateWatch {
        /// The process the watch targeted.
        process: ProcessId,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::CyclicOrder => {
                write!(f, "happened-before relation contains a cycle")
            }
            BuildError::SelfMessage { process } => {
                write!(f, "message between two events of process {process}")
            }
            BuildError::MessageAtInitialEvent { event } => {
                write!(f, "initial event {event} cannot send or receive a message")
            }
            BuildError::DuplicateMessage { message } => {
                write!(
                    f,
                    "duplicate message from {} to {}",
                    message.send, message.recv
                )
            }
            BuildError::StaleAssignment { event } => {
                write!(
                    f,
                    "assignment to {event}, which is not the last event of its process"
                )
            }
            BuildError::DuplicateVariable { process, name } => {
                write!(f, "variable {name} declared twice on {process}")
            }
            BuildError::LateVariable { process, name } => {
                write!(
                    f,
                    "variable {name} declared on {process} after events were appended"
                )
            }
            BuildError::TypeMismatch {
                process,
                name,
                expected,
                got,
            } => {
                write!(
                    f,
                    "variable {name} on {process} was declared {expected} but observed {got}"
                )
            }
            BuildError::LateWatch { process } => {
                write!(
                    f,
                    "watch registered on {process} after its events were observed"
                )
            }
        }
    }
}

impl Error for BuildError {}

/// Builder for [`Computation`]s.
///
/// Creating a builder for `n` processes implicitly creates the fictitious
/// initial event ⊥ᵢ (position 0) on each process; [`declare_var`] sets the
/// value that initial event carries. Real events are appended in process
/// order; messages add cross-process edges.
///
/// [`declare_var`]: ComputationBuilder::declare_var
///
/// # Examples
///
/// ```
/// use slicing_computation::{ComputationBuilder, Value};
///
/// let mut b = ComputationBuilder::new(2);
/// let x = b.declare_var(b.process(0), "x", Value::Int(0));
/// let send = b.step(b.process(0), &[(x, Value::Int(1))]);
/// let recv = b.append_event(b.process(1));
/// b.message(send, recv)?;
/// let comp = b.build()?;
/// assert_eq!(comp.num_events(), 4);
/// # Ok::<(), slicing_computation::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ComputationBuilder {
    num_processes: usize,
    proc_of: Vec<ProcessId>,
    pos_of: Vec<u32>,
    per_process: Vec<Vec<EventId>>,
    messages: Vec<Message>,
    vars: Vec<ProcessVars>,
    labels: Vec<Option<String>>,
}

impl ComputationBuilder {
    /// Creates a builder for `num_processes` processes, each with its
    /// fictitious initial event already appended.
    ///
    /// # Panics
    ///
    /// Panics if `num_processes` is zero or exceeds
    /// [`ProcSet::MAX_PROCESSES`].
    pub fn new(num_processes: usize) -> Self {
        assert!(
            num_processes > 0,
            "a computation needs at least one process"
        );
        assert!(
            num_processes <= ProcSet::MAX_PROCESSES,
            "at most {} processes are supported",
            ProcSet::MAX_PROCESSES
        );
        let mut b = ComputationBuilder {
            num_processes,
            proc_of: Vec::new(),
            pos_of: Vec::new(),
            per_process: vec![Vec::new(); num_processes],
            messages: Vec::new(),
            vars: (0..num_processes).map(|_| ProcessVars::default()).collect(),
            labels: Vec::new(),
        };
        for i in 0..num_processes {
            // snapshots[0] starts empty and grows as variables are declared.
            b.vars[i].snapshots.push(Vec::new());
            b.push_event(ProcessId::new(i));
        }
        b
    }

    fn push_event(&mut self, p: ProcessId) -> EventId {
        let id = EventId::new(self.proc_of.len());
        let pos = self.per_process[p.as_usize()].len() as u32;
        self.proc_of.push(p);
        self.pos_of.push(pos);
        self.per_process[p.as_usize()].push(id);
        self.labels.push(None);
        id
    }

    /// The `i`-th process id.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_processes()`.
    pub fn process(&self, i: usize) -> ProcessId {
        assert!(i < self.num_processes, "process index out of range");
        ProcessId::new(i)
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.num_processes
    }

    /// Number of events appended so far on process `p`, including the
    /// initial event.
    pub fn len(&self, p: ProcessId) -> u32 {
        self.per_process[p.as_usize()].len() as u32
    }

    /// The event of process `p` at position `pos`, if it has been appended.
    pub fn event_at(&self, p: ProcessId, pos: u32) -> EventId {
        self.per_process[p.as_usize()][pos as usize]
    }

    /// The process event `e` belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `e` was not appended by this builder.
    pub fn process_of(&self, e: EventId) -> ProcessId {
        self.proc_of[e.as_usize()]
    }

    /// The position of event `e` on its process (0 = the initial event).
    ///
    /// # Panics
    ///
    /// Panics if `e` was not appended by this builder.
    pub fn position_of(&self, e: EventId) -> u32 {
        self.pos_of[e.as_usize()]
    }

    /// The declared name of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` was not declared on this builder.
    pub fn var_name(&self, var: VarRef) -> &str {
        &self.vars[var.process().as_usize()].names[var.index()]
    }

    /// Value of `var` immediately after the event of its process at `pos`
    /// (0 = the initial value), as recorded so far.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn value_at(&self, var: VarRef, pos: u32) -> Value {
        self.vars[var.process().as_usize()].snapshots[pos as usize][var.index()]
    }

    /// Looks up a previously declared variable of process `p` by name.
    pub fn var(&self, p: ProcessId, name: &str) -> Option<VarRef> {
        self.vars[p.as_usize()]
            .by_name
            .get(name)
            .map(|&index| VarRef { process: p, index })
    }

    /// Declares a variable on process `p` with the given initial value
    /// (carried by the initial event ⊥ₚ).
    ///
    /// # Panics
    ///
    /// Panics if the name is already declared on `p` or if real events have
    /// already been appended to `p` (use [`try_declare_var`] for a fallible
    /// version).
    ///
    /// [`try_declare_var`]: ComputationBuilder::try_declare_var
    pub fn declare_var(&mut self, p: ProcessId, name: &str, initial: Value) -> VarRef {
        self.try_declare_var(p, name, initial)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible version of [`declare_var`](ComputationBuilder::declare_var).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DuplicateVariable`] if the name is taken and
    /// [`BuildError::LateVariable`] if `p` already has real events.
    pub fn try_declare_var(
        &mut self,
        p: ProcessId,
        name: &str,
        initial: Value,
    ) -> Result<VarRef, BuildError> {
        let pv = &mut self.vars[p.as_usize()];
        if pv.by_name.contains_key(name) {
            return Err(BuildError::DuplicateVariable {
                process: p,
                name: name.to_owned(),
            });
        }
        if self.per_process[p.as_usize()].len() > 1 {
            return Err(BuildError::LateVariable {
                process: p,
                name: name.to_owned(),
            });
        }
        let index = pv.names.len() as u16;
        pv.names.push(name.to_owned());
        pv.by_name.insert(name.to_owned(), index);
        pv.snapshots[0].push(initial);
        Ok(VarRef { process: p, index })
    }

    /// Appends a new event to process `p`. The event inherits the variable
    /// values of its predecessor; use [`assign`](ComputationBuilder::assign)
    /// or [`step`](ComputationBuilder::step) to change them.
    pub fn append_event(&mut self, p: ProcessId) -> EventId {
        let prev_snapshot = self.vars[p.as_usize()]
            .snapshots
            .last()
            .expect("initial snapshot always exists")
            .clone();
        self.vars[p.as_usize()].snapshots.push(prev_snapshot);
        self.push_event(p)
    }

    /// Appends a new event to `p` and applies the given assignments.
    pub fn step(&mut self, p: ProcessId, assignments: &[(VarRef, Value)]) -> EventId {
        let e = self.append_event(p);
        for &(var, value) in assignments {
            self.assign(e, var, value)
                .expect("assignment to freshly appended event cannot be stale");
        }
        e
    }

    /// Overwrites the value of `var` at event `e`, which must be the last
    /// event of `var`'s process.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::StaleAssignment`] if `e` is not the most recent
    /// event of the variable's process.
    pub fn assign(&mut self, e: EventId, var: VarRef, value: Value) -> Result<(), BuildError> {
        let p = var.process.as_usize();
        let last = *self.per_process[p]
            .last()
            .expect("every process has an initial event");
        if last != e || self.proc_of[e.as_usize()] != var.process {
            return Err(BuildError::StaleAssignment { event: e });
        }
        let pos = self.pos_of[e.as_usize()] as usize;
        self.vars[p].snapshots[pos][var.index as usize] = value;
        Ok(())
    }

    /// Declares a message from event `send` to event `recv`.
    ///
    /// # Errors
    ///
    /// Returns an error if the endpoints are on the same process, either
    /// endpoint is an initial event, or the pair is a duplicate. Cycles are
    /// detected later, by [`build`](ComputationBuilder::build).
    pub fn message(&mut self, send: EventId, recv: EventId) -> Result<(), BuildError> {
        if self.proc_of[send.as_usize()] == self.proc_of[recv.as_usize()] {
            return Err(BuildError::SelfMessage {
                process: self.proc_of[send.as_usize()],
            });
        }
        for &e in &[send, recv] {
            if self.pos_of[e.as_usize()] == 0 {
                return Err(BuildError::MessageAtInitialEvent { event: e });
            }
        }
        let message = Message { send, recv };
        if self.messages.contains(&message) {
            return Err(BuildError::DuplicateMessage { message });
        }
        self.messages.push(message);
        Ok(())
    }

    /// Attaches a human-readable label to an event (used by examples, tests
    /// and trace dumps).
    pub fn set_label(&mut self, e: EventId, label: &str) {
        self.labels[e.as_usize()] = Some(label.to_owned());
    }

    /// Finalizes the computation: validates acyclicity and computes vector
    /// clocks and channel prefix tables.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::CyclicOrder`] if the message edges create a
    /// cycle in the happened-before relation.
    pub fn build(self) -> Result<Computation, BuildError> {
        let num_events = self.proc_of.len();
        let n = self.num_processes;

        // Adjacency for topological processing: process-order + messages.
        let mut msgs_in: Vec<Vec<u32>> = vec![Vec::new(); num_events];
        let mut msgs_out: Vec<Vec<u32>> = vec![Vec::new(); num_events];
        for (mi, m) in self.messages.iter().enumerate() {
            msgs_out[m.send.as_usize()].push(mi as u32);
            msgs_in[m.recv.as_usize()].push(mi as u32);
        }

        let mut indegree = vec![0u32; num_events];
        for events in &self.per_process {
            for e in events.iter().skip(1) {
                indegree[e.as_usize()] += 1; // process-order predecessor
            }
        }
        for m in &self.messages {
            indegree[m.recv.as_usize()] += 1;
        }

        // Kahn's algorithm, simultaneously computing vector clocks.
        let bottom = Cut::bottom(n);
        let mut min_cut: Vec<Cut> = vec![bottom.clone(); num_events];
        let mut queue: Vec<EventId> = (0..num_events)
            .map(EventId::new)
            .filter(|e| indegree[e.as_usize()] == 0)
            .collect();
        let mut processed = 0usize;
        while let Some(e) = queue.pop() {
            processed += 1;
            let p = self.proc_of[e.as_usize()];
            let pos = self.pos_of[e.as_usize()];
            // Fold in the process-order predecessor's clock.
            if pos > 0 {
                let prev = self.per_process[p.as_usize()][pos as usize - 1];
                let prev_clock = min_cut[prev.as_usize()].clone();
                min_cut[e.as_usize()].join_assign(&prev_clock);
            }
            // Fold in the clocks of all received messages' sends.
            for &mi in &msgs_in[e.as_usize()] {
                let send = self.messages[mi as usize].send;
                let send_clock = min_cut[send.as_usize()].clone();
                min_cut[e.as_usize()].join_assign(&send_clock);
            }
            min_cut[e.as_usize()].set_count(p, pos + 1);

            // Release successors.
            if (pos as usize + 1) < self.per_process[p.as_usize()].len() {
                let next = self.per_process[p.as_usize()][pos as usize + 1];
                indegree[next.as_usize()] -= 1;
                if indegree[next.as_usize()] == 0 {
                    queue.push(next);
                }
            }
            for &mi in &msgs_out[e.as_usize()] {
                let recv = self.messages[mi as usize].recv;
                indegree[recv.as_usize()] -= 1;
                if indegree[recv.as_usize()] == 0 {
                    queue.push(recv);
                }
            }
        }
        if processed != num_events {
            return Err(BuildError::CyclicOrder);
        }

        // Channel prefix tables.
        let mut sends_prefix = vec![Vec::new(); n];
        let mut recvs_prefix = vec![Vec::new(); n];
        for i in 0..n {
            let len = self.per_process[i].len();
            sends_prefix[i] = vec![vec![0u32; len]; n];
            recvs_prefix[i] = vec![vec![0u32; len]; n];
        }
        for m in &self.messages {
            let sp = self.proc_of[m.send.as_usize()].as_usize();
            let rp = self.proc_of[m.recv.as_usize()].as_usize();
            let spos = self.pos_of[m.send.as_usize()] as usize;
            let rpos = self.pos_of[m.recv.as_usize()] as usize;
            sends_prefix[sp][rp][spos] += 1;
            recvs_prefix[rp][sp][rpos] += 1;
        }
        for i in 0..n {
            for j in 0..n {
                for p in 1..self.per_process[i].len() {
                    sends_prefix[i][j][p] += sends_prefix[i][j][p - 1];
                    recvs_prefix[i][j][p] += recvs_prefix[i][j][p - 1];
                }
            }
        }

        Ok(Computation {
            num_processes: n,
            proc_of: self.proc_of,
            pos_of: self.pos_of,
            per_process: self.per_process,
            messages: self.messages,
            msgs_in,
            msgs_out,
            min_cut,
            vars: self.vars,
            sends_prefix,
            recvs_prefix,
            labels: self.labels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_computation_has_only_initial_events() {
        let c = ComputationBuilder::new(3).build().unwrap();
        assert_eq!(c.num_events(), 3);
        assert!(c.is_empty());
        for p in c.processes() {
            assert_eq!(c.len(p), 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_rejected() {
        let _ = ComputationBuilder::new(0);
    }

    #[test]
    fn self_message_rejected() {
        let mut b = ComputationBuilder::new(1);
        let e1 = b.append_event(b.process(0));
        let e2 = b.append_event(b.process(0));
        assert_eq!(
            b.message(e1, e2),
            Err(BuildError::SelfMessage {
                process: b.process(0)
            })
        );
    }

    #[test]
    fn message_at_initial_event_rejected() {
        let mut b = ComputationBuilder::new(2);
        let real = b.append_event(b.process(0));
        let init1 = EventId::new(1); // initial event of p1
        let err = b.message(real, init1).unwrap_err();
        assert_eq!(err, BuildError::MessageAtInitialEvent { event: init1 });
    }

    #[test]
    fn duplicate_message_rejected() {
        let mut b = ComputationBuilder::new(2);
        let s = b.append_event(b.process(0));
        let r = b.append_event(b.process(1));
        b.message(s, r).unwrap();
        assert!(matches!(
            b.message(s, r),
            Err(BuildError::DuplicateMessage { .. })
        ));
    }

    #[test]
    fn cycle_detected() {
        let mut b = ComputationBuilder::new(2);
        let a1 = b.append_event(b.process(0));
        let a2 = b.append_event(b.process(0));
        let b1 = b.append_event(b.process(1));
        let b2 = b.append_event(b.process(1));
        // a2 -> b1 (message forward) and b2 -> a1 (message backward) forms a
        // cycle a1 -> a2 -> b1 -> b2 -> a1.
        b.message(a2, b1).unwrap();
        b.message(b2, a1).unwrap();
        assert_eq!(b.build().unwrap_err(), BuildError::CyclicOrder);
    }

    #[test]
    fn duplicate_variable_rejected() {
        let mut b = ComputationBuilder::new(1);
        let p = b.process(0);
        b.declare_var(p, "x", Value::Int(0));
        assert!(matches!(
            b.try_declare_var(p, "x", Value::Int(1)),
            Err(BuildError::DuplicateVariable { .. })
        ));
    }

    #[test]
    fn late_variable_rejected() {
        let mut b = ComputationBuilder::new(1);
        let p = b.process(0);
        b.append_event(p);
        assert!(matches!(
            b.try_declare_var(p, "x", Value::Int(0)),
            Err(BuildError::LateVariable { .. })
        ));
    }

    #[test]
    fn stale_assignment_rejected() {
        let mut b = ComputationBuilder::new(1);
        let p = b.process(0);
        let x = b.declare_var(p, "x", Value::Int(0));
        let e1 = b.append_event(p);
        let _e2 = b.append_event(p);
        assert_eq!(
            b.assign(e1, x, Value::Int(9)),
            Err(BuildError::StaleAssignment { event: e1 })
        );
    }

    #[test]
    fn assignment_to_wrong_process_rejected() {
        let mut b = ComputationBuilder::new(2);
        let x0 = b.declare_var(b.process(0), "x", Value::Int(0));
        let e1 = b.append_event(b.process(1));
        assert!(matches!(
            b.assign(e1, x0, Value::Int(1)),
            Err(BuildError::StaleAssignment { .. })
        ));
    }

    #[test]
    fn clocks_join_across_chains() {
        // p0: e01 -> e02 ; p1: e11 ; message e02 -> e11.
        let mut b = ComputationBuilder::new(2);
        let _e01 = b.append_event(b.process(0));
        let e02 = b.append_event(b.process(0));
        let e11 = b.append_event(b.process(1));
        b.message(e02, e11).unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.min_cut(e11).counts(), &[3, 2]);
    }

    #[test]
    fn error_display_is_informative() {
        let e = BuildError::CyclicOrder;
        assert!(e.to_string().contains("cycle"));
        let e = BuildError::DuplicateVariable {
            process: ProcessId::new(1),
            name: "x".into(),
        };
        assert!(e.to_string().contains("x"));
    }
}
