//! Incremental construction of [`Computation`]s, with prefix compaction
//! for long-lived observers.
//!
//! Besides the classic append-only API, the builder supports *prefix
//! compaction* ([`compact`](ComputationBuilder::compact)): once the online
//! pipeline has proven a prefix of every process causally stable, the
//! builder drops that prefix's storage (events, variable snapshots,
//! messages) while keeping **absolute** positions and event ids for
//! everything retained. The first retained event of each process acts as a
//! frozen *summary* of the dropped prefix: it still carries its variable
//! snapshot, but it can no longer send or receive messages
//! ([`BuildError::CompactedEvent`]). [`build`](ComputationBuilder::build)
//! transparently re-densifies a compacted builder, producing the retained
//! suffix as a standalone [`Computation`] whose initial events are the
//! summary events.

use std::error::Error;
use std::fmt;

use crate::computation::{Computation, ProcessVars, VarRef};
use crate::cut::Cut;
use crate::event::{EventId, Message};
use crate::process::{ProcSet, ProcessId};
use crate::value::Value;

/// Errors reported by [`ComputationBuilder::build`] and the fallible builder
/// methods.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// The happened-before relation contains a cycle (e.g. a message sent
    /// "backwards in time").
    CyclicOrder,
    /// A message was declared between two events of the same process.
    SelfMessage {
        /// The offending process.
        process: ProcessId,
    },
    /// A message endpoint refers to a fictitious initial event, which cannot
    /// send or receive.
    MessageAtInitialEvent {
        /// The offending event.
        event: EventId,
    },
    /// The same (send, recv) pair was declared twice.
    DuplicateMessage {
        /// The duplicated message.
        message: Message,
    },
    /// An assignment targeted an event that is no longer the last event of
    /// its process.
    StaleAssignment {
        /// The event the assignment targeted.
        event: EventId,
    },
    /// A variable name was declared twice on the same process.
    DuplicateVariable {
        /// The process on which the duplicate was declared.
        process: ProcessId,
        /// The duplicated name.
        name: String,
    },
    /// A variable was declared after events were appended to its process.
    LateVariable {
        /// The process on which the late declaration happened.
        process: ProcessId,
        /// The variable name.
        name: String,
    },
    /// An observed value's runtime type differs from the type the variable
    /// was declared with (online observers validate every observation
    /// against the declared initial value before accepting it).
    TypeMismatch {
        /// The process owning the variable.
        process: ProcessId,
        /// The variable name.
        name: String,
        /// Type of the declared initial value.
        expected: &'static str,
        /// Type of the rejected observation.
        got: &'static str,
    },
    /// A watch (predicate conjunct) was registered after its process had
    /// already observed real events, so earlier events could not be
    /// classified under it.
    LateWatch {
        /// The process the watch targeted.
        process: ProcessId,
    },
    /// A message endpoint refers to an event at or below the compaction
    /// frontier: its storage was reclaimed by garbage collection (or it is
    /// the frozen summary event of a compacted prefix), so no new causal
    /// edges may touch it. A protocol that respects the configured
    /// stability lag never triggers this.
    CompactedEvent {
        /// The offending event position (absolute, on its process).
        position: u32,
        /// The process the event belonged to.
        process: ProcessId,
    },
    /// A checkpointed state failed structural validation on restore.
    InvalidState {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::CyclicOrder => {
                write!(f, "happened-before relation contains a cycle")
            }
            BuildError::SelfMessage { process } => {
                write!(f, "message between two events of process {process}")
            }
            BuildError::MessageAtInitialEvent { event } => {
                write!(f, "initial event {event} cannot send or receive a message")
            }
            BuildError::DuplicateMessage { message } => {
                write!(
                    f,
                    "duplicate message from {} to {}",
                    message.send, message.recv
                )
            }
            BuildError::StaleAssignment { event } => {
                write!(
                    f,
                    "assignment to {event}, which is not the last event of its process"
                )
            }
            BuildError::DuplicateVariable { process, name } => {
                write!(f, "variable {name} declared twice on {process}")
            }
            BuildError::LateVariable { process, name } => {
                write!(
                    f,
                    "variable {name} declared on {process} after events were appended"
                )
            }
            BuildError::TypeMismatch {
                process,
                name,
                expected,
                got,
            } => {
                write!(
                    f,
                    "variable {name} on {process} was declared {expected} but observed {got}"
                )
            }
            BuildError::LateWatch { process } => {
                write!(
                    f,
                    "watch registered on {process} after its events were observed"
                )
            }
            BuildError::CompactedEvent { position, process } => {
                write!(
                    f,
                    "event at position {position} of {process} is at or below the \
                     compaction frontier and can no longer anchor a message"
                )
            }
            BuildError::InvalidState { detail } => {
                write!(f, "invalid checkpointed state: {detail}")
            }
        }
    }
}

impl Error for BuildError {}

/// Builder for [`Computation`]s.
///
/// Creating a builder for `n` processes implicitly creates the fictitious
/// initial event ⊥ᵢ (position 0) on each process; [`declare_var`] sets the
/// value that initial event carries. Real events are appended in process
/// order; messages add cross-process edges.
///
/// [`declare_var`]: ComputationBuilder::declare_var
///
/// # Examples
///
/// ```
/// use slicing_computation::{ComputationBuilder, Value};
///
/// let mut b = ComputationBuilder::new(2);
/// let x = b.declare_var(b.process(0), "x", Value::Int(0));
/// let send = b.step(b.process(0), &[(x, Value::Int(1))]);
/// let recv = b.append_event(b.process(1));
/// b.message(send, recv)?;
/// let comp = b.build()?;
/// assert_eq!(comp.num_events(), 4);
/// # Ok::<(), slicing_computation::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ComputationBuilder {
    num_processes: usize,
    /// Per event id (offset by `id_base`): its process.
    proc_of: Vec<ProcessId>,
    /// Per event id (offset by `id_base`): its absolute process position.
    pos_of: Vec<u32>,
    /// Per process: the retained events, positions `base[p]..len(p)`.
    per_process: Vec<Vec<EventId>>,
    messages: Vec<Message>,
    vars: Vec<ProcessVars>,
    /// Per event id (offset by `id_base`): an optional label.
    labels: Vec<Option<String>>,
    /// Per process: number of compacted (dropped) leading positions. The
    /// event at position `base[p]` is the frozen summary of the prefix.
    base: Vec<u32>,
    /// Smallest event id whose metadata is still stored; ids below were
    /// compacted away. Metadata vectors are indexed by `id - id_base`.
    id_base: u32,
}

impl ComputationBuilder {
    /// Creates a builder for `num_processes` processes, each with its
    /// fictitious initial event already appended.
    ///
    /// # Panics
    ///
    /// Panics if `num_processes` is zero or exceeds
    /// [`ProcSet::MAX_PROCESSES`].
    pub fn new(num_processes: usize) -> Self {
        assert!(
            num_processes > 0,
            "a computation needs at least one process"
        );
        assert!(
            num_processes <= ProcSet::MAX_PROCESSES,
            "at most {} processes are supported",
            ProcSet::MAX_PROCESSES
        );
        let mut b = ComputationBuilder {
            num_processes,
            proc_of: Vec::new(),
            pos_of: Vec::new(),
            per_process: vec![Vec::new(); num_processes],
            messages: Vec::new(),
            vars: (0..num_processes).map(|_| ProcessVars::default()).collect(),
            labels: Vec::new(),
            base: vec![0; num_processes],
            id_base: 0,
        };
        for i in 0..num_processes {
            // snapshots[0] starts empty and grows as variables are declared.
            b.vars[i].snapshots.push(Vec::new());
            b.push_event(ProcessId::new(i));
        }
        b
    }

    fn push_event(&mut self, p: ProcessId) -> EventId {
        let id = EventId::new(self.id_base as usize + self.proc_of.len());
        let pos = self.base[p.as_usize()] + self.per_process[p.as_usize()].len() as u32;
        self.proc_of.push(p);
        self.pos_of.push(pos);
        self.per_process[p.as_usize()].push(id);
        self.labels.push(None);
        id
    }

    /// Metadata index of `e`, panicking with a clear message for events
    /// whose metadata was reclaimed by compaction.
    fn idx(&self, e: EventId) -> usize {
        e.as_usize()
            .checked_sub(self.id_base as usize)
            .unwrap_or_else(|| panic!("{e} was compacted away"))
    }

    /// The `i`-th process id.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_processes()`.
    pub fn process(&self, i: usize) -> ProcessId {
        assert!(i < self.num_processes, "process index out of range");
        ProcessId::new(i)
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.num_processes
    }

    /// Number of events appended so far on process `p`, including the
    /// initial event and any compacted positions.
    pub fn len(&self, p: ProcessId) -> u32 {
        self.base[p.as_usize()] + self.per_process[p.as_usize()].len() as u32
    }

    /// Number of leading positions of `p` dropped by
    /// [`compact`](ComputationBuilder::compact) (0 when never compacted).
    /// The event at exactly this position is the retained summary event.
    pub fn base_of(&self, p: ProcessId) -> u32 {
        self.base[p.as_usize()]
    }

    /// Total retained events across all processes (including the summary
    /// events and, on uncompacted processes, the initial events).
    pub fn retained_events(&self) -> u64 {
        self.per_process.iter().map(|evs| evs.len() as u64).sum()
    }

    /// The event of process `p` at position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` was never appended or was compacted away; use
    /// [`retained_event_at`](ComputationBuilder::retained_event_at) for a
    /// non-panicking lookup.
    pub fn event_at(&self, p: ProcessId, pos: u32) -> EventId {
        self.retained_event_at(p, pos)
            .unwrap_or_else(|| panic!("position {pos} of {p} is not retained"))
    }

    /// The event of process `p` at absolute position `pos`, if that
    /// position has been appended and not compacted away.
    pub fn retained_event_at(&self, p: ProcessId, pos: u32) -> Option<EventId> {
        let rel = pos.checked_sub(self.base[p.as_usize()])? as usize;
        self.per_process[p.as_usize()].get(rel).copied()
    }

    /// Whether `e` is a currently retained event of this builder.
    pub fn is_retained(&self, e: EventId) -> bool {
        let Some(i) = e.as_usize().checked_sub(self.id_base as usize) else {
            return false;
        };
        if i >= self.proc_of.len() {
            return false;
        }
        let p = self.proc_of[i];
        self.retained_event_at(p, self.pos_of[i]) == Some(e)
    }

    /// The process event `e` belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `e` was not appended by this builder or its metadata was
    /// compacted away.
    pub fn process_of(&self, e: EventId) -> ProcessId {
        self.proc_of[self.idx(e)]
    }

    /// The position of event `e` on its process (0 = the initial event).
    ///
    /// # Panics
    ///
    /// Panics if `e` was not appended by this builder or its metadata was
    /// compacted away.
    pub fn position_of(&self, e: EventId) -> u32 {
        self.pos_of[self.idx(e)]
    }

    /// The declared name of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` was not declared on this builder.
    pub fn var_name(&self, var: VarRef) -> &str {
        &self.vars[var.process().as_usize()].names[var.index()]
    }

    /// The declared variable names of process `p`, in declaration order.
    pub fn var_names(&self, p: ProcessId) -> &[String] {
        &self.vars[p.as_usize()].names
    }

    /// Value of `var` immediately after the event of its process at the
    /// absolute position `pos` (0 = the initial value), as recorded so far.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range or compacted away.
    pub fn value_at(&self, var: VarRef, pos: u32) -> Value {
        let p = var.process().as_usize();
        let rel = pos
            .checked_sub(self.base[p])
            .unwrap_or_else(|| panic!("position {pos} of {} was compacted", var.process()));
        self.vars[p].snapshots[rel as usize][var.index()]
    }

    /// The full variable snapshot of process `p` after its event at the
    /// absolute position `pos`, in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range or compacted away.
    pub fn snapshot_at(&self, p: ProcessId, pos: u32) -> &[Value] {
        let rel = pos
            .checked_sub(self.base[p.as_usize()])
            .unwrap_or_else(|| panic!("position {pos} of {p} was compacted"));
        &self.vars[p.as_usize()].snapshots[rel as usize]
    }

    /// The messages recorded so far between retained events.
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// The retained events in event-id (observation) order — the canonical
    /// order checkpoint codecs serialize events in.
    pub fn dense_order(&self) -> Vec<EventId> {
        let mut ids: Vec<EventId> = self.per_process.iter().flatten().copied().collect();
        ids.sort_unstable_by_key(|e| e.as_u32());
        ids
    }

    /// Looks up a previously declared variable of process `p` by name.
    pub fn var(&self, p: ProcessId, name: &str) -> Option<VarRef> {
        self.vars[p.as_usize()]
            .by_name
            .get(name)
            .map(|&index| VarRef { process: p, index })
    }

    /// Declares a variable on process `p` with the given initial value
    /// (carried by the initial event ⊥ₚ).
    ///
    /// # Panics
    ///
    /// Panics if the name is already declared on `p` or if real events have
    /// already been appended to `p` (use [`try_declare_var`] for a fallible
    /// version).
    ///
    /// [`try_declare_var`]: ComputationBuilder::try_declare_var
    pub fn declare_var(&mut self, p: ProcessId, name: &str, initial: Value) -> VarRef {
        self.try_declare_var(p, name, initial)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible version of [`declare_var`](ComputationBuilder::declare_var).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DuplicateVariable`] if the name is taken and
    /// [`BuildError::LateVariable`] if `p` already has real events.
    pub fn try_declare_var(
        &mut self,
        p: ProcessId,
        name: &str,
        initial: Value,
    ) -> Result<VarRef, BuildError> {
        let pv = &mut self.vars[p.as_usize()];
        if pv.by_name.contains_key(name) {
            return Err(BuildError::DuplicateVariable {
                process: p,
                name: name.to_owned(),
            });
        }
        if self.per_process[p.as_usize()].len() > 1 || self.base[p.as_usize()] > 0 {
            return Err(BuildError::LateVariable {
                process: p,
                name: name.to_owned(),
            });
        }
        let index = pv.names.len() as u16;
        pv.names.push(name.to_owned());
        pv.by_name.insert(name.to_owned(), index);
        pv.snapshots[0].push(initial);
        Ok(VarRef { process: p, index })
    }

    /// Appends a new event to process `p`. The event inherits the variable
    /// values of its predecessor; use [`assign`](ComputationBuilder::assign)
    /// or [`step`](ComputationBuilder::step) to change them.
    pub fn append_event(&mut self, p: ProcessId) -> EventId {
        let prev_snapshot = self.vars[p.as_usize()]
            .snapshots
            .last()
            .expect("initial snapshot always exists")
            .clone();
        self.vars[p.as_usize()].snapshots.push(prev_snapshot);
        self.push_event(p)
    }

    /// Appends a new event to `p` and applies the given assignments.
    pub fn step(&mut self, p: ProcessId, assignments: &[(VarRef, Value)]) -> EventId {
        let e = self.append_event(p);
        for &(var, value) in assignments {
            self.assign(e, var, value)
                .expect("assignment to freshly appended event cannot be stale");
        }
        e
    }

    /// Overwrites the value of `var` at event `e`, which must be the last
    /// event of `var`'s process.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::StaleAssignment`] if `e` is not the most recent
    /// event of the variable's process.
    pub fn assign(&mut self, e: EventId, var: VarRef, value: Value) -> Result<(), BuildError> {
        let p = var.process.as_usize();
        let last = *self.per_process[p]
            .last()
            .expect("every process retains at least one event");
        if last != e || self.proc_of[self.idx(e)] != var.process {
            return Err(BuildError::StaleAssignment { event: e });
        }
        let rel = (self.pos_of[self.idx(e)] - self.base[p]) as usize;
        self.vars[p].snapshots[rel][var.index as usize] = value;
        Ok(())
    }

    /// Declares a message from event `send` to event `recv`.
    ///
    /// # Errors
    ///
    /// Returns an error if the endpoints are on the same process, either
    /// endpoint is an initial event, either endpoint is at or below the
    /// compaction frontier ([`BuildError::CompactedEvent`]), or the pair is
    /// a duplicate. Cycles are detected later, by
    /// [`build`](ComputationBuilder::build).
    pub fn message(&mut self, send: EventId, recv: EventId) -> Result<(), BuildError> {
        for &e in &[send, recv] {
            let Some(i) = e.as_usize().checked_sub(self.id_base as usize) else {
                // Metadata below id_base is gone; the position is unknown
                // but certainly below its process's frontier.
                return Err(BuildError::CompactedEvent {
                    position: 0,
                    process: ProcessId::new(0),
                });
            };
            if i >= self.proc_of.len() {
                return Err(BuildError::InvalidState {
                    detail: format!("message endpoint {e} was never observed"),
                });
            }
            let p = self.proc_of[i];
            let pos = self.pos_of[i];
            if pos == 0 {
                return Err(BuildError::MessageAtInitialEvent { event: e });
            }
            if pos <= self.base[p.as_usize()] {
                return Err(BuildError::CompactedEvent {
                    position: pos,
                    process: p,
                });
            }
        }
        if self.proc_of[self.idx(send)] == self.proc_of[self.idx(recv)] {
            return Err(BuildError::SelfMessage {
                process: self.proc_of[self.idx(send)],
            });
        }
        let message = Message { send, recv };
        if self.messages.contains(&message) {
            return Err(BuildError::DuplicateMessage { message });
        }
        self.messages.push(message);
        Ok(())
    }

    /// Attaches a human-readable label to an event (used by examples, tests
    /// and trace dumps).
    ///
    /// # Panics
    ///
    /// Panics if `e`'s metadata was compacted away.
    pub fn set_label(&mut self, e: EventId, label: &str) {
        let i = self.idx(e);
        self.labels[i] = Some(label.to_owned());
    }

    /// Drops the storage of every position strictly below `new_base[p]` on
    /// each process `p`, keeping the event **at** `new_base[p]` as the
    /// frozen summary of the prefix. Positions and event ids of retained
    /// events stay absolute. Messages with an endpoint at or below the new
    /// base are dropped along with the prefix (their causal influence must
    /// already be folded into whatever clocks the caller maintains — the
    /// online slicer guarantees this by only compacting below a *consistent*
    /// stability cut).
    ///
    /// Returns the number of events dropped by this call.
    ///
    /// # Panics
    ///
    /// Panics if `new_base` shrinks an existing base (the frontier is
    /// monotone), reaches past the last event of a process, or has the
    /// wrong length.
    pub fn compact(&mut self, new_base: &[u32]) -> u64 {
        assert_eq!(new_base.len(), self.num_processes, "base has wrong arity");
        let mut dropped = 0u64;
        for (p, &new) in new_base.iter().enumerate() {
            let old = self.base[p];
            assert!(new >= old, "compaction frontier must be monotone");
            assert!(
                new < old + self.per_process[p].len() as u32,
                "compaction must retain the frontier event of process {p}"
            );
            let delta = (new - old) as usize;
            if delta == 0 {
                continue;
            }
            self.per_process[p].drain(..delta);
            self.vars[p].snapshots.drain(..delta);
            maybe_shrink(&mut self.per_process[p]);
            maybe_shrink(&mut self.vars[p].snapshots);
            dropped += delta as u64;
            self.base[p] = new;
        }
        if dropped == 0 {
            return 0;
        }
        {
            let pos_of = &self.pos_of;
            let proc_of = &self.proc_of;
            let base = &self.base;
            let id_base = self.id_base as usize;
            self.messages.retain(|m| {
                let live = |e: EventId| {
                    let i = e.as_usize() - id_base;
                    pos_of[i] > base[proc_of[i].as_usize()]
                };
                live(m.send) && live(m.recv)
            });
        }
        maybe_shrink(&mut self.messages);
        // Advance the id horizon to the smallest retained id: everything
        // below it belongs to some process's dropped prefix. (Dropped ids
        // above the horizon keep their 8-byte metadata entries — bounded by
        // cross-process skew, which the stability cut keeps small.)
        let min_id = self
            .per_process
            .iter()
            .filter_map(|evs| evs.first())
            .map(|e| e.as_u32())
            .min()
            .expect("every process retains an event");
        let delta = (min_id - self.id_base) as usize;
        if delta > 0 {
            self.proc_of.drain(..delta);
            self.pos_of.drain(..delta);
            self.labels.drain(..delta);
            self.id_base = min_id;
            maybe_shrink(&mut self.proc_of);
            maybe_shrink(&mut self.pos_of);
            maybe_shrink(&mut self.labels);
        }
        dropped
    }

    /// Reconstructs a builder from checkpointed parts.
    ///
    /// `event_procs[i]` is the process of the `i`-th retained event in
    /// observation (event-id) order; positions are assigned sequentially
    /// per process starting at `base[p]`, and ids are re-densified from 0.
    /// `snapshots[p][k]` holds the variable values (declaration order)
    /// after the `k`-th retained event of `p`; `messages` are index pairs
    /// into the event order.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidState`] when the parts are structurally
    /// inconsistent (wrong arities, out-of-range indices, empty processes,
    /// message endpoints at or below the base).
    pub fn restore(
        num_processes: usize,
        base: &[u32],
        event_procs: &[u32],
        var_names: Vec<Vec<String>>,
        snapshots: Vec<Vec<Vec<Value>>>,
        messages: &[(u32, u32)],
    ) -> Result<ComputationBuilder, BuildError> {
        let invalid = |detail: String| BuildError::InvalidState { detail };
        if num_processes == 0 || num_processes > ProcSet::MAX_PROCESSES {
            return Err(invalid(format!("{num_processes} processes out of range")));
        }
        if base.len() != num_processes
            || var_names.len() != num_processes
            || snapshots.len() != num_processes
        {
            return Err(invalid("per-process arrays have wrong arity".into()));
        }
        let mut vars = Vec::with_capacity(num_processes);
        for (p, (names, snaps)) in var_names.into_iter().zip(snapshots).enumerate() {
            let mut pv = ProcessVars::default();
            for (i, name) in names.iter().enumerate() {
                if pv.by_name.insert(name.clone(), i as u16).is_some() {
                    return Err(invalid(format!(
                        "duplicate variable {name:?} on process {p}"
                    )));
                }
            }
            for (k, row) in snaps.iter().enumerate() {
                if row.len() != names.len() {
                    return Err(invalid(format!(
                        "snapshot {k} of process {p} has {} values for {} variables",
                        row.len(),
                        names.len()
                    )));
                }
            }
            pv.names = names;
            pv.snapshots = snaps;
            vars.push(pv);
        }
        let mut b = ComputationBuilder {
            num_processes,
            proc_of: Vec::with_capacity(event_procs.len()),
            pos_of: Vec::with_capacity(event_procs.len()),
            per_process: vec![Vec::new(); num_processes],
            messages: Vec::new(),
            vars,
            labels: Vec::with_capacity(event_procs.len()),
            base: base.to_vec(),
            id_base: 0,
        };
        for &p in event_procs {
            if p as usize >= num_processes {
                return Err(invalid(format!("event process {p} out of range")));
            }
            b.push_event(ProcessId::new(p as usize));
        }
        for p in 0..num_processes {
            if b.per_process[p].is_empty() {
                return Err(invalid(format!("process {p} has no retained events")));
            }
            if b.vars[p].snapshots.len() != b.per_process[p].len() {
                return Err(invalid(format!(
                    "process {p} has {} snapshots for {} retained events",
                    b.vars[p].snapshots.len(),
                    b.per_process[p].len()
                )));
            }
        }
        for &(s, r) in messages {
            let count = b.proc_of.len() as u32;
            if s >= count || r >= count {
                return Err(invalid(format!("message ({s}, {r}) out of range")));
            }
            let send = EventId::new(s as usize);
            let recv = EventId::new(r as usize);
            match b.message(send, recv) {
                Ok(()) => {}
                Err(e) => return Err(invalid(format!("message ({s}, {r}): {e}"))),
            }
        }
        Ok(b)
    }

    /// Whether any prefix has been compacted away.
    fn is_compacted(&self) -> bool {
        self.id_base > 0 || self.base.iter().any(|&b| b > 0)
    }

    /// Re-densifies a compacted builder: retained events are renumbered
    /// 0.. in id order and positions are re-based so the summary events
    /// become the initial events of the resulting suffix computation. A
    /// never-compacted builder is returned unchanged.
    fn into_dense(mut self) -> ComputationBuilder {
        if !self.is_compacted() {
            return self;
        }
        let mut ids: Vec<u32> = self
            .per_process
            .iter()
            .flat_map(|evs| evs.iter().map(|e| e.as_u32()))
            .collect();
        ids.sort_unstable();
        let remap = |e: EventId| -> EventId {
            EventId::new(
                ids.binary_search(&e.as_u32())
                    .expect("only retained events are referenced"),
            )
        };
        let mut proc_of = Vec::with_capacity(ids.len());
        let mut pos_of = Vec::with_capacity(ids.len());
        let mut labels = Vec::with_capacity(ids.len());
        for &id in &ids {
            let i = (id - self.id_base) as usize;
            let p = self.proc_of[i];
            proc_of.push(p);
            pos_of.push(self.pos_of[i] - self.base[p.as_usize()]);
            labels.push(self.labels[i].take());
        }
        let per_process = self
            .per_process
            .iter()
            .map(|evs| evs.iter().map(|&e| remap(e)).collect())
            .collect();
        let messages = self
            .messages
            .iter()
            .map(|m| Message {
                send: remap(m.send),
                recv: remap(m.recv),
            })
            .collect();
        ComputationBuilder {
            num_processes: self.num_processes,
            proc_of,
            pos_of,
            per_process,
            messages,
            vars: self.vars,
            labels,
            base: vec![0; self.num_processes],
            id_base: 0,
        }
    }

    /// Finalizes the computation: validates acyclicity and computes vector
    /// clocks and channel prefix tables. On a compacted builder this
    /// produces the retained *suffix* as a standalone computation — the
    /// summary events become the initial events, and causal edges that were
    /// folded into the compacted prefix are not re-materialized.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::CyclicOrder`] if the message edges create a
    /// cycle in the happened-before relation.
    pub fn build(self) -> Result<Computation, BuildError> {
        self.into_dense().build_dense()
    }

    fn build_dense(self) -> Result<Computation, BuildError> {
        let num_events = self.proc_of.len();
        let n = self.num_processes;

        // Adjacency for topological processing: process-order + messages.
        let mut msgs_in: Vec<Vec<u32>> = vec![Vec::new(); num_events];
        let mut msgs_out: Vec<Vec<u32>> = vec![Vec::new(); num_events];
        for (mi, m) in self.messages.iter().enumerate() {
            msgs_out[m.send.as_usize()].push(mi as u32);
            msgs_in[m.recv.as_usize()].push(mi as u32);
        }

        let mut indegree = vec![0u32; num_events];
        for events in &self.per_process {
            for e in events.iter().skip(1) {
                indegree[e.as_usize()] += 1; // process-order predecessor
            }
        }
        for m in &self.messages {
            indegree[m.recv.as_usize()] += 1;
        }

        // Kahn's algorithm, simultaneously computing vector clocks.
        let bottom = Cut::bottom(n);
        let mut min_cut: Vec<Cut> = vec![bottom.clone(); num_events];
        let mut queue: Vec<EventId> = (0..num_events)
            .map(EventId::new)
            .filter(|e| indegree[e.as_usize()] == 0)
            .collect();
        let mut processed = 0usize;
        while let Some(e) = queue.pop() {
            processed += 1;
            let p = self.proc_of[e.as_usize()];
            let pos = self.pos_of[e.as_usize()];
            // Fold in the process-order predecessor's clock.
            if pos > 0 {
                let prev = self.per_process[p.as_usize()][pos as usize - 1];
                let prev_clock = min_cut[prev.as_usize()].clone();
                min_cut[e.as_usize()].join_assign(&prev_clock);
            }
            // Fold in the clocks of all received messages' sends.
            for &mi in &msgs_in[e.as_usize()] {
                let send = self.messages[mi as usize].send;
                let send_clock = min_cut[send.as_usize()].clone();
                min_cut[e.as_usize()].join_assign(&send_clock);
            }
            min_cut[e.as_usize()].set_count(p, pos + 1);

            // Release successors.
            if (pos as usize + 1) < self.per_process[p.as_usize()].len() {
                let next = self.per_process[p.as_usize()][pos as usize + 1];
                indegree[next.as_usize()] -= 1;
                if indegree[next.as_usize()] == 0 {
                    queue.push(next);
                }
            }
            for &mi in &msgs_out[e.as_usize()] {
                let recv = self.messages[mi as usize].recv;
                indegree[recv.as_usize()] -= 1;
                if indegree[recv.as_usize()] == 0 {
                    queue.push(recv);
                }
            }
        }
        if processed != num_events {
            return Err(BuildError::CyclicOrder);
        }

        // Channel prefix tables.
        let mut sends_prefix = vec![Vec::new(); n];
        let mut recvs_prefix = vec![Vec::new(); n];
        for i in 0..n {
            let len = self.per_process[i].len();
            sends_prefix[i] = vec![vec![0u32; len]; n];
            recvs_prefix[i] = vec![vec![0u32; len]; n];
        }
        for m in &self.messages {
            let sp = self.proc_of[m.send.as_usize()].as_usize();
            let rp = self.proc_of[m.recv.as_usize()].as_usize();
            let spos = self.pos_of[m.send.as_usize()] as usize;
            let rpos = self.pos_of[m.recv.as_usize()] as usize;
            sends_prefix[sp][rp][spos] += 1;
            recvs_prefix[rp][sp][rpos] += 1;
        }
        for i in 0..n {
            for j in 0..n {
                for p in 1..self.per_process[i].len() {
                    sends_prefix[i][j][p] += sends_prefix[i][j][p - 1];
                    recvs_prefix[i][j][p] += recvs_prefix[i][j][p - 1];
                }
            }
        }

        Ok(Computation {
            num_processes: n,
            proc_of: self.proc_of,
            pos_of: self.pos_of,
            per_process: self.per_process,
            messages: self.messages,
            msgs_in,
            msgs_out,
            min_cut,
            vars: self.vars,
            sends_prefix,
            recvs_prefix,
            labels: self.labels,
        })
    }
}

/// Returns over-sized spare capacity to the allocator. Compaction calls
/// this after draining so a long-lived builder's footprint tracks the live
/// suffix instead of the high-water mark.
fn maybe_shrink<T>(v: &mut Vec<T>) {
    if v.capacity() > 2 * v.len() + 64 {
        v.shrink_to_fit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_computation_has_only_initial_events() {
        let c = ComputationBuilder::new(3).build().unwrap();
        assert_eq!(c.num_events(), 3);
        assert!(c.is_empty());
        for p in c.processes() {
            assert_eq!(c.len(p), 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_rejected() {
        let _ = ComputationBuilder::new(0);
    }

    #[test]
    fn self_message_rejected() {
        let mut b = ComputationBuilder::new(1);
        let e1 = b.append_event(b.process(0));
        let e2 = b.append_event(b.process(0));
        assert_eq!(
            b.message(e1, e2),
            Err(BuildError::SelfMessage {
                process: b.process(0)
            })
        );
    }

    #[test]
    fn message_at_initial_event_rejected() {
        let mut b = ComputationBuilder::new(2);
        let real = b.append_event(b.process(0));
        let init1 = EventId::new(1); // initial event of p1
        let err = b.message(real, init1).unwrap_err();
        assert_eq!(err, BuildError::MessageAtInitialEvent { event: init1 });
    }

    #[test]
    fn duplicate_message_rejected() {
        let mut b = ComputationBuilder::new(2);
        let s = b.append_event(b.process(0));
        let r = b.append_event(b.process(1));
        b.message(s, r).unwrap();
        assert!(matches!(
            b.message(s, r),
            Err(BuildError::DuplicateMessage { .. })
        ));
    }

    #[test]
    fn cycle_detected() {
        let mut b = ComputationBuilder::new(2);
        let a1 = b.append_event(b.process(0));
        let a2 = b.append_event(b.process(0));
        let b1 = b.append_event(b.process(1));
        let b2 = b.append_event(b.process(1));
        // a2 -> b1 (message forward) and b2 -> a1 (message backward) forms a
        // cycle a1 -> a2 -> b1 -> b2 -> a1.
        b.message(a2, b1).unwrap();
        b.message(b2, a1).unwrap();
        assert_eq!(b.build().unwrap_err(), BuildError::CyclicOrder);
    }

    #[test]
    fn duplicate_variable_rejected() {
        let mut b = ComputationBuilder::new(1);
        let p = b.process(0);
        b.declare_var(p, "x", Value::Int(0));
        assert!(matches!(
            b.try_declare_var(p, "x", Value::Int(1)),
            Err(BuildError::DuplicateVariable { .. })
        ));
    }

    #[test]
    fn late_variable_rejected() {
        let mut b = ComputationBuilder::new(1);
        let p = b.process(0);
        b.append_event(p);
        assert!(matches!(
            b.try_declare_var(p, "x", Value::Int(0)),
            Err(BuildError::LateVariable { .. })
        ));
    }

    #[test]
    fn stale_assignment_rejected() {
        let mut b = ComputationBuilder::new(1);
        let p = b.process(0);
        let x = b.declare_var(p, "x", Value::Int(0));
        let e1 = b.append_event(p);
        let _e2 = b.append_event(p);
        assert_eq!(
            b.assign(e1, x, Value::Int(9)),
            Err(BuildError::StaleAssignment { event: e1 })
        );
    }

    #[test]
    fn assignment_to_wrong_process_rejected() {
        let mut b = ComputationBuilder::new(2);
        let x0 = b.declare_var(b.process(0), "x", Value::Int(0));
        let e1 = b.append_event(b.process(1));
        assert!(matches!(
            b.assign(e1, x0, Value::Int(1)),
            Err(BuildError::StaleAssignment { .. })
        ));
    }

    #[test]
    fn clocks_join_across_chains() {
        // p0: e01 -> e02 ; p1: e11 ; message e02 -> e11.
        let mut b = ComputationBuilder::new(2);
        let _e01 = b.append_event(b.process(0));
        let e02 = b.append_event(b.process(0));
        let e11 = b.append_event(b.process(1));
        b.message(e02, e11).unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.min_cut(e11).counts(), &[3, 2]);
    }

    #[test]
    fn error_display_is_informative() {
        let e = BuildError::CyclicOrder;
        assert!(e.to_string().contains("cycle"));
        let e = BuildError::DuplicateVariable {
            process: ProcessId::new(1),
            name: "x".into(),
        };
        assert!(e.to_string().contains("x"));
        let e = BuildError::CompactedEvent {
            position: 7,
            process: ProcessId::new(2),
        };
        assert!(e.to_string().contains("compaction frontier"), "{e}");
    }

    /// Builds p0: 4 real events, p1: 3 real events, a few messages and a
    /// variable on p0.
    fn sample() -> (ComputationBuilder, VarRef) {
        let mut b = ComputationBuilder::new(2);
        let x = b.declare_var(b.process(0), "x", Value::Int(0));
        let mut p0 = Vec::new();
        let mut p1 = Vec::new();
        for i in 0..4i64 {
            p0.push(b.step(b.process(0), &[(x, Value::Int(i + 1))]));
            if i < 3 {
                p1.push(b.append_event(b.process(1)));
            }
        }
        b.message(p0[0], p1[1]).unwrap();
        b.message(p0[3], p1[2]).unwrap();
        (b, x)
    }

    #[test]
    fn compaction_keeps_absolute_positions_and_values() {
        let (mut b, x) = sample();
        let dropped = b.compact(&[2, 1]);
        assert_eq!(dropped, 3); // positions 0,1 of p0 and 0 of p1
        assert_eq!(b.len(b.process(0)), 5);
        assert_eq!(b.base_of(b.process(0)), 2);
        assert_eq!(b.retained_events(), 6);
        // The summary event keeps its absolute position and snapshot.
        let summary = b.event_at(b.process(0), 2);
        assert_eq!(b.position_of(summary), 2);
        assert_eq!(b.value_at(x, 2), Value::Int(2));
        assert_eq!(b.value_at(x, 4), Value::Int(4));
        assert!(!b.is_retained(EventId::new(0)));
        assert!(b.is_retained(summary));
        assert_eq!(b.retained_event_at(b.process(0), 1), None);
    }

    #[test]
    fn compaction_drops_messages_touching_the_frozen_prefix() {
        let (mut b, _) = sample();
        assert_eq!(b.messages().len(), 2);
        // p0 positions ≤ 1 dropped: the p0[0] → p1[1] message loses its
        // send side (pos 1 == new base) and is dropped.
        b.compact(&[1, 0]);
        assert_eq!(b.messages().len(), 1);
        // New messages touching the frozen summary are rejected.
        let summary = b.event_at(b.process(0), 1);
        let other = b.event_at(b.process(1), 2);
        assert!(matches!(
            b.message(summary, other),
            Err(BuildError::CompactedEvent { position: 1, .. })
        ));
    }

    #[test]
    fn compacted_builder_builds_the_suffix() {
        let (mut b, _) = sample();
        b.compact(&[2, 1]);
        let suffix = b.build().unwrap();
        assert_eq!(suffix.num_events(), 6);
        assert_eq!(suffix.num_processes(), 2);
        // The surviving message p0[3] → p1[2] maps to re-based positions.
        assert_eq!(suffix.messages().len(), 1);
        let m = suffix.messages()[0];
        assert_eq!(suffix.position_of(m.send), 2); // was absolute pos 4
        assert_eq!(suffix.position_of(m.recv), 2); // was absolute pos 3
    }

    #[test]
    fn appending_after_compaction_continues_absolute_positions() {
        let (mut b, x) = sample();
        b.compact(&[3, 2]);
        let e = b.step(b.process(0), &[(x, Value::Int(99))]);
        assert_eq!(b.position_of(e), 5);
        assert_eq!(b.value_at(x, 5), Value::Int(99));
        let r = b.append_event(b.process(1));
        b.message(e, r).unwrap();
        let suffix = b.build().unwrap();
        assert_eq!(suffix.num_events(), 4 + 2);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn compaction_frontier_cannot_move_backwards() {
        let (mut b, _) = sample();
        b.compact(&[2, 1]);
        b.compact(&[1, 1]);
    }

    #[test]
    fn restore_round_trips_a_compacted_builder() {
        let (mut b, x) = sample();
        b.compact(&[2, 1]);
        let order = b.dense_order();
        let rank = |e: EventId| order.iter().position(|&o| o == e).unwrap() as u32;
        let event_procs: Vec<u32> = order
            .iter()
            .map(|&e| b.process_of(e).as_usize() as u32)
            .collect();
        let base: Vec<u32> = (0..2).map(|p| b.base_of(b.process(p))).collect();
        let var_names: Vec<Vec<String>> =
            (0..2).map(|p| b.var_names(b.process(p)).to_vec()).collect();
        let snapshots: Vec<Vec<Vec<Value>>> = (0..2)
            .map(|p| {
                let p = b.process(p);
                (b.base_of(p)..b.len(p))
                    .map(|pos| b.snapshot_at(p, pos).to_vec())
                    .collect()
            })
            .collect();
        let messages: Vec<(u32, u32)> = b
            .messages()
            .iter()
            .map(|m| (rank(m.send), rank(m.recv)))
            .collect();
        let r =
            ComputationBuilder::restore(2, &base, &event_procs, var_names, snapshots, &messages)
                .unwrap();
        assert_eq!(r.len(r.process(0)), b.len(b.process(0)));
        assert_eq!(r.base_of(r.process(0)), 2);
        assert_eq!(r.value_at(x, 4), b.value_at(x, 4));
        assert_eq!(r.messages().len(), b.messages().len());
        // Both build the same suffix shape.
        let cb = b.build().unwrap();
        let cr = r.build().unwrap();
        assert_eq!(cb.num_events(), cr.num_events());
    }

    #[test]
    fn restore_rejects_corrupt_parts() {
        // Message endpoint out of range.
        let err =
            ComputationBuilder::restore(1, &[0], &[0], vec![vec![]], vec![vec![vec![]]], &[(0, 9)])
                .unwrap_err();
        assert!(matches!(err, BuildError::InvalidState { .. }), "{err}");
        // A process with no retained events.
        let err = ComputationBuilder::restore(
            2,
            &[0, 0],
            &[0],
            vec![vec![], vec![]],
            vec![vec![vec![]], vec![]],
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, BuildError::InvalidState { .. }), "{err}");
        // Snapshot row arity mismatch.
        let err = ComputationBuilder::restore(
            1,
            &[0],
            &[0],
            vec![vec!["x".into()]],
            vec![vec![vec![]]],
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, BuildError::InvalidState { .. }), "{err}");
    }
}
