//! Shared fixture computations for tests, examples, and benchmarks across
//! the workspace.
//!
//! The generators here use a tiny self-contained xorshift RNG rather than an
//! external crate so that fixtures are available to every dependent crate
//! without extra dependencies, and so that a given seed produces the same
//! computation forever.

use crate::builder::ComputationBuilder;
use crate::computation::Computation;
use crate::process::ProcessId;
use crate::value::Value;

/// A minimal deterministic xorshift64* generator for fixtures.
///
/// Not cryptographic, not `rand`-compatible — just stable and dependency
/// free.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator; a zero seed is remapped to a fixed constant.
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `usize` in `0..bound`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Bernoulli trial with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// Reconstruction of the paper's Figure 1: a three-process computation with
/// **28 consistent cuts** whose slice with respect to
/// `(x1 > 1) ∧ (x3 ≤ 3)` has exactly **6 consistent cuts** with the shape
/// shown in Figure 1(b) (a forced bottom meta-event, then independent
/// optional events on p1 and p3, and an event on p2 that requires the p3
/// event).
///
/// The published figure is not fully legible in the archived text, so the
/// exact variable values differ; the lattice sizes (28 and 6) and the slice
/// structure match the paper's description.
///
/// Layout (position 0 of each process is its initial event):
///
/// ```text
/// p1 (x1):  ⊥=2   b=3   c=-1  d=0
/// p2 (x2):  ⊥=2   f=1   g=4   h=0
/// p3 (x3):  ⊥=4   v=1   w=2   z=6
/// messages: f→v, w→g, c→h, g→z
/// ```
pub fn figure1() -> Computation {
    let mut bld = ComputationBuilder::new(3);
    let p1 = bld.process(0);
    let p2 = bld.process(1);
    let p3 = bld.process(2);
    let x1 = bld.declare_var(p1, "x1", Value::Int(2));
    let x2 = bld.declare_var(p2, "x2", Value::Int(2));
    let x3 = bld.declare_var(p3, "x3", Value::Int(4));

    let b = bld.step(p1, &[(x1, Value::Int(3))]);
    let c = bld.step(p1, &[(x1, Value::Int(-1))]);
    let d = bld.step(p1, &[(x1, Value::Int(0))]);
    let f = bld.step(p2, &[(x2, Value::Int(1))]);
    let g = bld.step(p2, &[(x2, Value::Int(4))]);
    let h = bld.step(p2, &[(x2, Value::Int(0))]);
    let v = bld.step(p3, &[(x3, Value::Int(1))]);
    let w = bld.step(p3, &[(x3, Value::Int(2))]);
    let z = bld.step(p3, &[(x3, Value::Int(6))]);

    for (e, l) in [
        (b, "b"),
        (c, "c"),
        (d, "d"),
        (f, "f"),
        (g, "g"),
        (h, "h"),
        (v, "v"),
        (w, "w"),
        (z, "z"),
    ] {
        bld.set_label(e, l);
    }

    bld.message(f, v).expect("f→v is a valid message");
    bld.message(w, g).expect("w→g is a valid message");
    bld.message(c, h).expect("c→h is a valid message");
    bld.message(g, z).expect("g→z is a valid message");

    bld.build().expect("figure 1 computation is acyclic")
}

/// Two independent processes with `a` and `b` real events and no messages:
/// the cut lattice is the full `(a+1) × (b+1)` grid.
pub fn grid(a: u32, b: u32) -> Computation {
    let mut bld = ComputationBuilder::new(2);
    for _ in 0..a {
        bld.append_event(bld.process(0));
    }
    for _ in 0..b {
        bld.append_event(bld.process(1));
    }
    bld.build().expect("grid computation is acyclic")
}

/// `processes` independent processes with `events` real events each and no
/// messages: the cut lattice is a `(events+1)^processes` hypercube. Its
/// middle layers are wide (multinomial in `processes`), which makes it the
/// workload of choice for exercising parallel layer expansion.
pub fn hypercube(processes: usize, events: u32) -> Computation {
    let mut bld = ComputationBuilder::new(processes);
    for p in 0..processes {
        for _ in 0..events {
            bld.append_event(bld.process(p));
        }
    }
    bld.build().expect("hypercube computation is acyclic")
}

/// Configuration for [`random_computation`].
#[derive(Debug, Clone)]
pub struct RandomConfig {
    /// Number of processes.
    pub processes: usize,
    /// Number of real events per process.
    pub events_per_process: u32,
    /// Probability (numerator over 100) that a new event receives a message
    /// from a previously unmatched send.
    pub recv_percent: u64,
    /// Probability (numerator over 100) that a new event sends a message.
    pub send_percent: u64,
    /// Range of integer values assigned to each process's `x` variable
    /// (values drawn uniformly from `0..value_range`).
    pub value_range: i64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            processes: 3,
            events_per_process: 4,
            recv_percent: 40,
            send_percent: 40,
            value_range: 3,
        }
    }
}

/// Generates a random (but deterministic for a given seed) computation.
///
/// Every process hosts one integer variable `x` taking values in
/// `0..value_range`; messages are generated forward in construction order so
/// the result is always acyclic. Intended for property tests that compare
/// slicing algorithms against the brute-force oracles.
pub fn random_computation(seed: u64, cfg: &RandomConfig) -> Computation {
    let mut rng = XorShift64::new(seed);
    let mut bld = ComputationBuilder::new(cfg.processes);
    let vars: Vec<_> = (0..cfg.processes)
        .map(|i| {
            let p = bld.process(i);
            bld.declare_var(p, "x", Value::Int(rng.below(cfg.value_range as u64) as i64))
        })
        .collect();

    // Unmatched sends: (event, sender process index).
    let mut pending_sends: Vec<(crate::event::EventId, usize)> = Vec::new();
    let mut remaining: Vec<u32> = vec![cfg.events_per_process; cfg.processes];
    let mut total: u64 = u64::from(cfg.events_per_process) * cfg.processes as u64;

    while total > 0 {
        // Pick a process that still has events to append.
        let mut i = rng.index(cfg.processes);
        while remaining[i] == 0 {
            i = (i + 1) % cfg.processes;
        }
        let p = ProcessId::new(i);
        let value = Value::Int(rng.below(cfg.value_range as u64) as i64);
        let e = bld.step(p, &[(vars[i], value)]);
        remaining[i] -= 1;
        total -= 1;

        // Maybe receive one pending message from another process.
        if rng.chance(cfg.recv_percent, 100) {
            if let Some(k) = (0..pending_sends.len()).find(|&k| pending_sends[k].1 != i) {
                let (send, _) = pending_sends.swap_remove(k);
                bld.message(send, e)
                    .expect("forward message in construction order is acyclic");
            }
        }
        // Maybe make this event a send.
        if rng.chance(cfg.send_percent, 100) {
            pending_sends.push((e, i));
        }
    }

    bld.build()
        .expect("construction order guarantees acyclicity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{count_cuts, CutCount};

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Zero seed is remapped, not degenerate.
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn xorshift_below_is_in_range() {
        let mut r = XorShift64::new(3);
        for _ in 0..100 {
            assert!(r.below(7) < 7);
            assert!(r.index(5) < 5);
        }
    }

    #[test]
    fn figure1_shape() {
        let c = figure1();
        assert_eq!(c.num_processes(), 3);
        assert_eq!(c.num_events(), 12);
        assert_eq!(c.messages().len(), 4);
        assert_eq!(count_cuts(&c, None), CutCount::Exact(28));
    }

    #[test]
    fn figure1_labels_resolve() {
        let c = figure1();
        for l in ["b", "c", "d", "f", "g", "h", "v", "w", "z"] {
            assert!(c.event_by_label(l).is_some(), "label {l} missing");
        }
    }

    #[test]
    fn grid_lattice_size() {
        let c = grid(3, 4);
        assert_eq!(count_cuts(&c, None), CutCount::Exact(20));
    }

    #[test]
    fn random_computation_is_deterministic_and_valid() {
        let cfg = RandomConfig::default();
        let a = random_computation(11, &cfg);
        let b = random_computation(11, &cfg);
        assert_eq!(a.num_events(), b.num_events());
        assert_eq!(a.messages(), b.messages());
        // Different seed usually differs in messages.
        let c = random_computation(12, &cfg);
        assert_eq!(c.num_events(), a.num_events());
    }

    #[test]
    fn random_computation_respects_config() {
        let cfg = RandomConfig {
            processes: 4,
            events_per_process: 3,
            ..RandomConfig::default()
        };
        let c = random_computation(5, &cfg);
        assert_eq!(c.num_processes(), 4);
        assert_eq!(c.num_events(), 4 * (3 + 1));
        for p in c.processes() {
            assert!(c.var(p, "x").is_some());
        }
    }
}
