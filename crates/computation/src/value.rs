//! Runtime values of process variables.

use std::fmt;

use crate::process::ProcessId;

/// The value of a process variable at some point in a computation.
///
/// The paper's example predicates range over integers (`x1 * x2 + x3 < 5`),
/// booleans (`isPrimary_i`), and process identifiers (`secondary_i != p_j`),
/// so those are the three variants supported here.
///
/// # Examples
///
/// ```
/// use slicing_computation::Value;
///
/// let v = Value::Int(4);
/// assert_eq!(v.as_int(), Some(4));
/// assert_eq!(v.as_bool(), None);
/// assert_eq!(v.to_string(), "4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A signed integer.
    Int(i64),
    /// A boolean flag.
    Bool(bool),
    /// A process identifier (e.g. the `secondary_i` pointer in the
    /// primary–secondary protocol).
    Pid(ProcessId),
}

impl Value {
    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the process-id payload, if this is a [`Value::Pid`].
    pub fn as_pid(self) -> Option<ProcessId> {
        match self {
            Value::Pid(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the integer payload or panics with a descriptive message.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an [`Value::Int`].
    pub fn expect_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            other => panic!("expected an integer value, found {other:?}"),
        }
    }

    /// Returns the boolean payload or panics with a descriptive message.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a [`Value::Bool`].
    pub fn expect_bool(self) -> bool {
        match self {
            Value::Bool(v) => v,
            other => panic!("expected a boolean value, found {other:?}"),
        }
    }

    /// Returns the process-id payload or panics with a descriptive message.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a [`Value::Pid`].
    pub fn expect_pid(self) -> ProcessId {
        match self {
            Value::Pid(v) => v,
            other => panic!("expected a process-id value, found {other:?}"),
        }
    }

    /// The value's type as a short lowercase noun (`"int"`, `"bool"`,
    /// `"pid"`), for error messages about runtime type mismatches.
    pub fn type_name(self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Pid(_) => "pid",
        }
    }

    /// `true` if `self` and `other` carry the same [`Value`] variant — the
    /// type-compatibility check online observers run before accepting a
    /// new observation for a declared variable.
    pub fn same_type(self, other: Value) -> bool {
        std::mem::discriminant(&self) == std::mem::discriminant(&other)
    }

    /// Returns `true` if the value is "truthy": a true boolean or a non-zero
    /// integer. Process ids are never truthy.
    pub fn is_truthy(self) -> bool {
        match self {
            Value::Bool(b) => b,
            Value::Int(v) => v != 0,
            Value::Pid(_) => false,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<ProcessId> for Value {
    fn from(v: ProcessId) -> Self {
        Value::Pid(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Pid(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variant() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(
            Value::Pid(ProcessId::new(1)).as_pid(),
            Some(ProcessId::new(1))
        );
        assert_eq!(Value::Int(3).as_bool(), None);
        assert_eq!(Value::Bool(true).as_pid(), None);
        assert_eq!(Value::Pid(ProcessId::new(0)).as_int(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(false), Value::Bool(false));
        assert_eq!(
            Value::from(ProcessId::new(2)),
            Value::Pid(ProcessId::new(2))
        );
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(Value::Int(-1).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(!Value::Pid(ProcessId::new(0)).is_truthy());
    }

    #[test]
    #[should_panic(expected = "expected an integer")]
    fn expect_int_panics_on_bool() {
        Value::Bool(true).expect_int();
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Pid(ProcessId::new(4)).to_string(), "p4");
    }
}
