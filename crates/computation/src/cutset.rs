//! The cut kernel's visited-set machinery: a fast FxHash-style hasher for
//! cuts and pooled hash containers that store cut payloads in one bump
//! arena.
//!
//! `std::collections::HashSet<Cut>` pays three costs per probe that none of
//! the search loops need: SipHash (DoS resistance is irrelevant for
//! in-process search state), a heap-allocated `Cut` per entry, and pointer
//! chasing across scattered allocations. [`CutSet`] and [`CutMap64`]
//! replace it with open addressing over a contiguous `Vec<u32>` arena —
//! one multiply-xor hash over the count words, no per-entry allocation,
//! and cache-friendly linear probing. Both containers keep deterministic
//! [probe/hit statistics](CutSetStats) so benchmarks can gate on search
//! effort instead of wall-clock noise.

use std::hash::{BuildHasher, Hasher};

use crate::cut::Cut;

/// Multiplier from the Firefox/rustc `FxHash` function: a single odd
/// constant with good avalanche behaviour under `(rotl ^ word) * K`.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn fx_mix(state: u64, word: u64) -> u64 {
    (state.rotate_left(5) ^ word).wrapping_mul(FX_SEED)
}

/// Folds the high bits into the low bits after the last multiply.
///
/// `fx_mix` ends on a multiplication, which only carries entropy *upward*:
/// the low bits of the state depend on nothing above them in the last
/// word mixed. Open addressing and sharding both index with `hash & mask`,
/// so without this finalizer all cuts agreeing on their first count land
/// in one probe cluster (and one shard).
#[inline]
fn fx_fold(state: u64) -> u64 {
    let mut h = state ^ (state >> 32);
    h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
    h ^ (h >> 32)
}

/// Hashes a cut's count slice with the FxHash word mix.
///
/// This is the hash every pooled container and the sharded parallel BFS
/// use, exposed so callers shard consistently with the containers.
#[inline]
pub fn hash_counts(counts: &[u32]) -> u64 {
    let mut state = fx_mix(0, counts.len() as u64);
    // Two counts per 64-bit mix: cuts are word pairs most of the time.
    let mut chunks = counts.chunks_exact(2);
    for pair in &mut chunks {
        state = fx_mix(state, u64::from(pair[0]) | (u64::from(pair[1]) << 32));
    }
    if let [last] = chunks.remainder() {
        state = fx_mix(state, u64::from(*last));
    }
    fx_fold(state)
}

/// Hashes a packed cut key ([`CutPacking`](crate::CutPacking)) with the
/// same FxHash mix family (and carry-down finalizer) as [`hash_counts`].
///
/// Exposed so engines that shard packed keys pick shards from the *high*
/// hash bits while the packed tables index slots with the low bits —
/// consistently with how [`PackedBandedSet`] and [`PackedCutSet`] probe.
#[inline]
pub fn hash_packed(key: u64) -> u64 {
    fx_fold(fx_mix(0, key))
}

/// An [`FxHash`-style](https://github.com/rust-lang/rustc-hash) streaming
/// hasher: one rotate-xor-multiply per written word, no finalization.
///
/// Std-only stand-in for the `fxhash`/`rustc-hash` crates (the workspace
/// vendors no external dependencies). Use through [`CutBuildHasher`] with
/// `HashMap`/`HashSet` when a map keyed by cuts needs values the pooled
/// containers do not support.
#[derive(Debug, Default, Clone)]
pub struct CutHasher {
    state: u64,
}

impl Hasher for CutHasher {
    #[inline]
    fn finish(&self) -> u64 {
        fx_fold(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.state = fx_mix(self.state, u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.state = fx_mix(self.state, u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.state = fx_mix(self.state, u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.state = fx_mix(self.state, u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = fx_mix(self.state, v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.state = fx_mix(self.state, v as u64);
    }
}

/// [`BuildHasher`] producing [`CutHasher`]s, for `HashMap`/`HashSet` keyed
/// by cuts (or other small integer keys).
#[derive(Debug, Default, Clone)]
pub struct CutBuildHasher;

impl BuildHasher for CutBuildHasher {
    type Hasher = CutHasher;

    #[inline]
    fn build_hasher(&self) -> CutHasher {
        CutHasher::default()
    }
}

/// Deterministic effort counters of a pooled container.
///
/// All three counters are exact functions of the insertion sequence (no
/// timing or addresses involved), so they are stable across runs and
/// machines — the regression gate in `table_speedup` compares them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CutSetStats {
    /// Table slots inspected across all operations (≥ one per lookup).
    pub probes: u64,
    /// Lookups that found the cut already present.
    pub hits: u64,
    /// Cuts stored (distinct keys).
    pub inserts: u64,
}

/// Empty-slot marker in the open-addressing table.
const EMPTY: u32 = u32::MAX;

/// Hard entry ceiling: arena indices are `u32` and [`EMPTY`] is reserved,
/// so a pool may never hand out index `u32::MAX - 1 + 1`. Inserting past
/// this used to wrap the index space and silently collide with the
/// sentinel; pools now refuse the insert and latch
/// [`saturated`](CutSet::saturated) instead.
const MAX_ENTRIES: u32 = EMPTY - 1;

/// Open-addressing core shared by [`CutSet`] and [`CutMap64`]: a power-of-
/// two slot table indexing into a bump arena of fixed-width cut payloads.
#[derive(Debug, Clone)]
struct Pool {
    /// Counts per cut; every arena entry has exactly this many words.
    width: usize,
    /// Concatenated payloads: entry `i` is `arena[i*width .. (i+1)*width]`.
    arena: Vec<u32>,
    /// Slot → entry index, or [`EMPTY`].
    table: Vec<u32>,
    mask: usize,
    stats: CutSetStats,
    /// `stats.inserts` at the last [`reset`](Pool::reset); width-0 pools
    /// (whose arena cannot measure occupancy) compare against this.
    inserts_at_reset: u64,
    /// Entry ceiling (≤ [`MAX_ENTRIES`]); inserts at the ceiling are
    /// refused and latch `saturated`.
    max_entries: u32,
    /// `true` once an insert was refused because the pool was full.
    saturated: bool,
}

impl Pool {
    fn new(width: usize) -> Self {
        Pool::with_max_entries(width, MAX_ENTRIES)
    }

    fn with_max_entries(width: usize, max_entries: u32) -> Self {
        const INITIAL_SLOTS: usize = 64;
        Pool {
            width,
            arena: Vec::new(),
            table: vec![EMPTY; INITIAL_SLOTS],
            mask: INITIAL_SLOTS - 1,
            stats: CutSetStats::default(),
            inserts_at_reset: 0,
            max_entries: max_entries.min(MAX_ENTRIES),
            saturated: false,
        }
    }

    fn len(&self) -> usize {
        match self.arena.len().checked_div(self.width) {
            Some(n) => n,
            // Width-0 cuts are all equal; the arena cannot measure them.
            None => usize::from(self.stats.inserts > self.inserts_at_reset),
        }
    }

    /// Empties the pool while keeping every allocation: the arena's and
    /// slot table's capacities survive, so refilling to the previous
    /// occupancy touches the allocator zero times. Cumulative stats are
    /// preserved (they count effort since construction).
    fn reset(&mut self) {
        self.arena.clear();
        self.table.fill(EMPTY);
        self.inserts_at_reset = self.stats.inserts;
        self.saturated = false;
    }

    #[inline]
    fn entry(&self, idx: u32) -> &[u32] {
        let base = idx as usize * self.width;
        &self.arena[base..base + self.width]
    }

    /// Finds `counts`: `Ok(entry index)` if present, `Err(slot)` at the
    /// first empty slot otherwise. Counts probes.
    #[inline]
    fn find(&mut self, counts: &[u32]) -> Result<u32, usize> {
        self.find_hashed(counts, hash_counts(counts))
    }

    /// [`find`](Pool::find) with the key's hash already computed.
    #[inline]
    fn find_hashed(&mut self, counts: &[u32], hash: u64) -> Result<u32, usize> {
        debug_assert_eq!(counts.len(), self.width);
        debug_assert_eq!(hash, hash_counts(counts));
        let mut slot = hash as usize & self.mask;
        loop {
            self.stats.probes += 1;
            let idx = self.table[slot];
            if idx == EMPTY {
                return Err(slot);
            }
            if self.entry(idx) == counts {
                return Ok(idx);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Appends a payload (the caller has already verified absence at
    /// `slot`) and grows the table past 1/2 load. Returns [`EMPTY`] —
    /// storing nothing and latching `saturated` — once the pool holds
    /// `max_entries` cuts, so index arithmetic can never wrap into the
    /// sentinel.
    fn push(&mut self, counts: &[u32], slot: usize) -> u32 {
        if self.len() as u64 >= u64::from(self.max_entries) {
            self.saturated = true;
            return EMPTY;
        }
        let idx = self.len() as u32;
        self.arena.extend_from_slice(counts);
        self.table[slot] = idx;
        self.stats.inserts += 1;
        // Cap load at 1/2: without SIMD group probing, linear probing
        // degrades sharply past that, and slots cost only 4 bytes each.
        if (self.len() + 1) * 2 > self.table.len() {
            self.grow();
        }
        idx
    }

    /// Doubles the slot table, rehashing from the (untouched) arena.
    fn grow(&mut self) {
        let new_slots = self.table.len() * 2;
        self.mask = new_slots - 1;
        self.table.clear();
        self.table.resize(new_slots, EMPTY);
        for idx in 0..self.len() as u32 {
            let mut slot = hash_counts(self.entry(idx)) as usize & self.mask;
            while self.table[slot] != EMPTY {
                slot = (slot + 1) & self.mask;
            }
            self.table[slot] = idx;
        }
    }

    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + 4 * (self.arena.capacity() + self.table.capacity())
    }
}

/// A pooled visited set of cuts: the drop-in replacement for
/// `HashSet<Cut>` in the search engines.
///
/// All cuts must span the same number of processes (fixed at
/// construction). Payloads live in one contiguous arena, so inserting a
/// cut copies its counts and allocates only when the arena doubles —
/// never per entry.
///
/// # Examples
///
/// ```
/// use slicing_computation::{Cut, CutSet};
///
/// let mut seen = CutSet::new(3);
/// assert!(seen.insert(&Cut::bottom(3)));
/// assert!(!seen.insert(&Cut::bottom(3))); // already present
/// assert!(seen.contains(&Cut::bottom(3)));
/// assert_eq!(seen.len(), 1);
/// assert_eq!(seen.stats().hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct CutSet {
    pool: Pool,
}

impl CutSet {
    /// An empty set for cuts spanning `num_processes` processes.
    pub fn new(num_processes: usize) -> Self {
        CutSet {
            pool: Pool::new(num_processes),
        }
    }

    /// An empty set that refuses inserts past `max_entries` cuts.
    ///
    /// Inserts at the ceiling are dropped (they return `false`/`None` as
    /// if nothing happened) and latch [`saturated`](CutSet::saturated);
    /// the search engines translate that flag into a budget-exhausted
    /// abort rather than ever producing a wrong answer. The default
    /// ceiling is `u32::MAX - 1`, the last arena index distinguishable
    /// from the empty-slot sentinel; tests mock a tiny ceiling to
    /// exercise the guard.
    pub fn with_max_entries(num_processes: usize, max_entries: u32) -> Self {
        CutSet {
            pool: Pool::with_max_entries(num_processes, max_entries),
        }
    }

    /// `true` once an insert was refused because the set reached its
    /// entry ceiling. Latched until [`reset`](CutSet::reset).
    pub fn saturated(&self) -> bool {
        self.pool.saturated
    }

    /// Inserts the cut; `true` if it was not yet present.
    #[inline]
    pub fn insert(&mut self, cut: &Cut) -> bool {
        self.insert_counts(cut.counts())
    }

    /// Inserts a cut given as its raw count slice.
    #[inline]
    pub fn insert_counts(&mut self, counts: &[u32]) -> bool {
        self.insert_hashed(counts, hash_counts(counts))
    }

    /// Inserts a cut whose [`hash_counts`] value the caller already knows
    /// (the parallel engine hashes successors once on the worker threads
    /// and reuses the hash for sharding and insertion).
    #[inline]
    pub fn insert_hashed(&mut self, counts: &[u32], hash: u64) -> bool {
        match self.pool.find_hashed(counts, hash) {
            Ok(_) => {
                self.pool.stats.hits += 1;
                false
            }
            Err(slot) => self.pool.push(counts, slot) != EMPTY,
        }
    }

    /// Inserts a pre-hashed cut, returning its arena index if it was newly
    /// added — the fusion of [`insert_hashed`](CutSet::insert_hashed) and
    /// [`insert_indexed`](CutSet::insert_indexed) the sharded parallel
    /// engine uses: workers hash successors once, the merge reuses the hash
    /// for both sharding and insertion, and the frontier queues the dense
    /// index instead of a cut clone.
    #[inline]
    pub fn insert_hashed_indexed(&mut self, counts: &[u32], hash: u64) -> Option<u32> {
        match self.pool.find_hashed(counts, hash) {
            Ok(_) => {
                self.pool.stats.hits += 1;
                None
            }
            Err(slot) => match self.pool.push(counts, slot) {
                EMPTY => None,
                idx => Some(idx),
            },
        }
    }

    /// Inserts the cut, returning its arena index if it was newly added.
    ///
    /// Arena indices are dense (0, 1, 2, … in insertion order) and stable:
    /// growth rebuilds only the slot table, never moves payloads. Search
    /// frontiers queue these 4-byte indices instead of whole cuts and
    /// reread the counts through [`counts_at`](CutSet::counts_at).
    #[inline]
    pub fn insert_indexed(&mut self, cut: &Cut) -> Option<u32> {
        let counts = cut.counts();
        match self.pool.find(counts) {
            Ok(_) => {
                self.pool.stats.hits += 1;
                None
            }
            Err(slot) => match self.pool.push(counts, slot) {
                EMPTY => None,
                idx => Some(idx),
            },
        }
    }

    /// The count slice of the entry at `idx` (an index returned by
    /// [`insert_indexed`](CutSet::insert_indexed)).
    #[inline]
    pub fn counts_at(&self, idx: u32) -> &[u32] {
        self.pool.entry(idx)
    }

    /// `true` if the cut is present.
    pub fn contains(&self, cut: &Cut) -> bool {
        self.get_index(cut.counts()).is_some()
    }

    /// Looks up a cut by its raw count slice, returning its arena index if
    /// present — the index [`insert_indexed`](CutSet::insert_indexed)
    /// returned when the cut was stored, i.e. its insertion rank.
    ///
    /// Read-only (no `&mut`, no stats): the lean traversal engine probes a
    /// layer's set once per candidate predecessor and counts that
    /// regeneration work itself, so the container's own probe counters keep
    /// meaning "insertion effort".
    #[inline]
    pub fn get_index(&self, counts: &[u32]) -> Option<u32> {
        debug_assert_eq!(counts.len(), self.pool.width);
        let mut slot = hash_counts(counts) as usize & self.pool.mask;
        loop {
            let idx = self.pool.table[slot];
            if idx == EMPTY {
                return None;
            }
            if self.pool.entry(idx) == counts {
                return Some(idx);
            }
            slot = (slot + 1) & self.pool.mask;
        }
    }

    /// Empties the set while keeping its allocations, so the next fill of
    /// similar size performs no heap traffic. Stats stay cumulative.
    ///
    /// The search engines historically built a fresh `CutSet` per
    /// detection call, reallocating the arena and slot table every run;
    /// engines that hold a reusable scratch (see `LeanArena` in
    /// `slicing-detect`) call this between runs instead.
    pub fn reset(&mut self) {
        self.pool.reset();
    }

    /// Number of distinct cuts stored.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// `true` if no cut was inserted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deterministic probe/hit/insert counters since construction.
    pub fn stats(&self) -> CutSetStats {
        self.pool.stats
    }

    /// Actual heap footprint (arena + slot table), for memory accounting.
    pub fn approx_bytes(&self) -> usize {
        self.pool.approx_bytes()
    }
}

/// A pooled map from cuts to one `u64` of per-state search metadata (the
/// partial-order engine's sleep masks): the drop-in replacement for
/// `HashMap<Cut, u64>`.
#[derive(Debug, Clone)]
pub struct CutMap64 {
    pool: Pool,
    values: Vec<u64>,
    /// Scratch value handed out when an insert is refused at the entry
    /// ceiling, so `insert_or_get` keeps its signature on the guard path.
    overflow: u64,
}

impl CutMap64 {
    /// An empty map for cuts spanning `num_processes` processes.
    pub fn new(num_processes: usize) -> Self {
        CutMap64::with_max_entries(num_processes, MAX_ENTRIES)
    }

    /// An empty map that refuses inserts past `max_entries` cuts; see
    /// [`CutSet::with_max_entries`].
    pub fn with_max_entries(num_processes: usize, max_entries: u32) -> Self {
        CutMap64 {
            pool: Pool::with_max_entries(num_processes, max_entries),
            values: Vec::new(),
            overflow: 0,
        }
    }

    /// `true` once an insert was refused because the map reached its
    /// entry ceiling.
    pub fn saturated(&self) -> bool {
        self.pool.saturated
    }

    /// Looks up the cut, inserting `default` if absent. Returns whether
    /// the cut was newly inserted, and the (mutable) stored value.
    ///
    /// At the entry ceiling the cut is *not* stored: the call returns
    /// `(false, scratch)` where the scratch value reads as `default`, and
    /// [`saturated`](CutMap64::saturated) latches so the caller can abort
    /// with a budget verdict instead of computing on a lie.
    #[inline]
    pub fn insert_or_get(&mut self, cut: &Cut, default: u64) -> (bool, &mut u64) {
        match self.pool.find(cut.counts()) {
            Ok(idx) => {
                self.pool.stats.hits += 1;
                (false, &mut self.values[idx as usize])
            }
            Err(slot) => match self.pool.push(cut.counts(), slot) {
                EMPTY => {
                    self.overflow = default;
                    (false, &mut self.overflow)
                }
                idx => {
                    debug_assert_eq!(idx as usize, self.values.len());
                    self.values.push(default);
                    (true, &mut self.values[idx as usize])
                }
            },
        }
    }

    /// Number of distinct cuts stored.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// `true` if no cut was inserted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deterministic probe/hit/insert counters since construction.
    pub fn stats(&self) -> CutSetStats {
        self.pool.stats
    }

    /// Actual heap footprint (arena + slot table + values).
    pub fn approx_bytes(&self) -> usize {
        self.pool.approx_bytes() + 8 * self.values.capacity()
    }
}

/// A visited set partitioned by cut size: one small [`CutSet`] band per
/// event count.
///
/// Lattice successors strictly grow, so a traversal's duplicate checks for
/// a cut of size `s` only ever race against other cuts of size `s` — a
/// single flat table makes every probe a random access into the entire
/// visited history, while banding confines each probe to the (usually
/// cache-resident) band of the successor's size. The slice search uses
/// this: slice lattices pack hundreds of thousands of cuts whose band
/// populations stay thousands of times smaller than the whole set.
///
/// Membership semantics are identical to one big [`CutSet`] (the bands
/// partition the key space), so a traversal's verdict, witness, explored
/// count, and hit/insert counters are unchanged; only the `probes` counter
/// shifts with the per-band table geometry.
///
/// Entry keys pack `(band, index)` into a `u64` so frontiers can queue
/// them like arena indices.
///
/// # Examples
///
/// ```
/// use slicing_computation::{BandedCutSet, Cut};
///
/// let mut seen = BandedCutSet::new(2);
/// let key = seen.insert_indexed(&Cut::from_counts(&[1, 2])).unwrap();
/// assert_eq!(seen.counts_at(key), &[1, 2]);
/// assert_eq!(seen.insert_indexed(&Cut::from_counts(&[1, 2])), None);
/// assert_eq!(seen.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BandedCutSet {
    width: usize,
    bands: Vec<CutSet>,
    len: u64,
    max_entries: u32,
    saturated: bool,
}

impl BandedCutSet {
    /// An empty banded set for cuts spanning `num_processes` processes.
    pub fn new(num_processes: usize) -> Self {
        Self::with_max_entries(num_processes, MAX_ENTRIES)
    }

    /// An empty banded set that refuses inserts past `max_entries` cuts in
    /// total (across all bands), latching [`saturated`](Self::saturated)
    /// like [`CutSet::with_max_entries`].
    pub fn with_max_entries(num_processes: usize, max_entries: u32) -> Self {
        BandedCutSet {
            width: num_processes,
            bands: Vec::new(),
            len: 0,
            max_entries,
            saturated: false,
        }
    }

    /// Inserts the cut into the band of its size, returning a packed
    /// `(band << 32) | index` key if it was newly added.
    pub fn insert_indexed(&mut self, cut: &Cut) -> Option<u64> {
        let band = cut.size() as usize;
        if band >= self.bands.len() {
            self.bands.resize_with(band + 1, || CutSet::new(self.width));
        }
        if self.len >= u64::from(self.max_entries) {
            self.saturated = true;
            // Count the refused attempt's lookup effort like CutSet does
            // (probe into the band without storing).
            let _ = self.bands[band].get_index(cut.counts());
            return None;
        }
        let idx = self.bands[band].insert_indexed(cut)?;
        self.len += 1;
        Some(((band as u64) << 32) | u64::from(idx))
    }

    /// The count slice behind a key returned by
    /// [`insert_indexed`](Self::insert_indexed).
    pub fn counts_at(&self, key: u64) -> &[u32] {
        self.bands[(key >> 32) as usize].counts_at(key as u32)
    }

    /// Number of distinct cuts stored across all bands.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` if no cut is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` once an insert was refused at the entry ceiling.
    pub fn saturated(&self) -> bool {
        self.saturated
    }

    /// Deterministic probe/hit/insert counters, summed over the bands.
    pub fn stats(&self) -> CutSetStats {
        let mut total = CutSetStats::default();
        for b in &self.bands {
            let s = b.stats();
            total.probes += s.probes;
            total.hits += s.hits;
            total.inserts += s.inserts;
        }
        total
    }

    /// Actual heap footprint across all bands.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.bands.iter().map(CutSet::approx_bytes).sum::<usize>()
    }
}

/// Empty-slot marker in a [`PackedBandedSet`] band: unreachable as a key
/// because [`CutPacking`](crate::CutPacking) leaves the top bit clear.
const EMPTY_PACKED: u64 = u64::MAX;

/// A size-banded visited set over *packed* cut keys
/// ([`CutPacking`](crate::CutPacking)): each band is an open-addressed
/// table whose slots store the packed cuts inline.
///
/// This is the probe-cheapest visited set the engines have. With the cut
/// packed into the slot itself, a membership check touches exactly one
/// table — no arena indirection to confirm equality — so the
/// duplicate-heavy probe traffic of a lattice sweep stays inside the
/// cache-resident band of the successor's size. Packing is a bijection,
/// so membership semantics are exact, and like [`BandedCutSet`] the
/// traversal-visible counters (`hits`, `inserts`) match a flat [`CutSet`]
/// while `probes` depends on the per-band table geometry.
///
/// # Examples
///
/// ```
/// use slicing_computation::PackedBandedSet;
///
/// let mut seen = PackedBandedSet::new();
/// assert!(seen.insert(0b10_01, 3)); // packed cut ⟨1, 2⟩, size 3
/// assert!(!seen.insert(0b10_01, 3));
/// assert_eq!(seen.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PackedBandedSet {
    bands: Vec<PackedBand>,
    len: u64,
    max_entries: u32,
    saturated: bool,
}

#[derive(Debug, Clone)]
struct PackedBand {
    slots: Vec<u64>,
    mask: usize,
    len: u32,
    stats: CutSetStats,
}

impl PackedBand {
    fn new() -> Self {
        const INITIAL_SLOTS: usize = 64;
        PackedBand {
            slots: vec![EMPTY_PACKED; INITIAL_SLOTS],
            mask: INITIAL_SLOTS - 1,
            len: 0,
            stats: CutSetStats::default(),
        }
    }

    /// One-word Fx hash of a packed key: [`hash_packed`].
    #[inline]
    fn hash(key: u64) -> u64 {
        hash_packed(key)
    }

    /// Inserts the key, or reports it present. Counts probes like
    /// [`CutSet`]: one per slot inspected.
    #[inline]
    fn insert(&mut self, key: u64) -> bool {
        debug_assert_ne!(key, EMPTY_PACKED);
        let mut slot = Self::hash(key) as usize & self.mask;
        loop {
            self.stats.probes += 1;
            let v = self.slots[slot];
            if v == EMPTY_PACKED {
                break;
            }
            if v == key {
                self.stats.hits += 1;
                return false;
            }
            slot = (slot + 1) & self.mask;
        }
        self.slots[slot] = key;
        self.len += 1;
        self.stats.inserts += 1;
        // Same 1/2 load cap as `Pool`: linear probing degrades past it.
        if (self.len as usize + 1) * 2 > self.slots.len() {
            self.grow();
        }
        true
    }

    /// Probe-only lookup for the saturated path (counts probes, like
    /// [`BandedCutSet`]'s refused-insert accounting).
    #[inline]
    fn probe_only(&mut self, key: u64) {
        let mut slot = Self::hash(key) as usize & self.mask;
        loop {
            self.stats.probes += 1;
            let v = self.slots[slot];
            if v == EMPTY_PACKED || v == key {
                return;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let old = std::mem::take(&mut self.slots);
        let new_slots = old.len() * 2;
        self.slots.resize(new_slots, EMPTY_PACKED);
        self.mask = new_slots - 1;
        for key in old {
            if key == EMPTY_PACKED {
                continue;
            }
            let mut slot = Self::hash(key) as usize & self.mask;
            while self.slots[slot] != EMPTY_PACKED {
                slot = (slot + 1) & self.mask;
            }
            self.slots[slot] = key;
        }
    }
}

impl PackedBandedSet {
    /// An empty packed banded set.
    pub fn new() -> Self {
        Self::with_max_entries(MAX_ENTRIES)
    }

    /// An empty set refusing inserts past `max_entries` keys in total,
    /// latching [`saturated`](Self::saturated) like the other pools.
    pub fn with_max_entries(max_entries: u32) -> Self {
        PackedBandedSet {
            bands: Vec::new(),
            len: 0,
            max_entries: max_entries.min(MAX_ENTRIES),
            saturated: false,
        }
    }

    /// Inserts a packed key into the band of its cut size; `true` if it
    /// was newly added.
    #[inline]
    pub fn insert(&mut self, key: u64, band: usize) -> bool {
        if band >= self.bands.len() {
            self.bands.resize_with(band + 1, PackedBand::new);
        }
        if self.len >= u64::from(self.max_entries) {
            self.saturated = true;
            self.bands[band].probe_only(key);
            return false;
        }
        let new = self.bands[band].insert(key);
        self.len += u64::from(new);
        new
    }

    /// Number of distinct keys stored across all bands.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` if no key is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` once an insert was refused at the entry ceiling.
    pub fn saturated(&self) -> bool {
        self.saturated
    }

    /// Deterministic probe/hit/insert counters, summed over the bands.
    pub fn stats(&self) -> CutSetStats {
        let mut total = CutSetStats::default();
        for b in &self.bands {
            total.probes += b.stats.probes;
            total.hits += b.stats.hits;
            total.inserts += b.stats.inserts;
        }
        total
    }

    /// Actual heap footprint across all bands.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .bands
                .iter()
                .map(|b| std::mem::size_of::<PackedBand>() + 8 * b.slots.capacity())
                .sum::<usize>()
    }
}

impl Default for PackedBandedSet {
    fn default() -> Self {
        Self::new()
    }
}

/// A single flat open-addressed set of packed cut keys
/// ([`CutPacking`](crate::CutPacking)) — the building block the layered
/// parallel engine shards and resets.
///
/// Unlike [`PackedBandedSet`] there is no banding and no entry budget:
/// the caller owns the lifecycle. [`clear`](PackedCutSet::clear) empties
/// the table while keeping its capacity, so a layer-synchronous search
/// reuses one warm allocation per shard across every layer. The
/// probe/hit/insert counters accumulate across clears — they describe
/// the whole run, not one layer — and are exact functions of the insert
/// sequence, like every pooled container here.
///
/// # Examples
///
/// ```
/// use slicing_computation::PackedCutSet;
///
/// let mut layer = PackedCutSet::new();
/// assert!(layer.insert(0b10_01)); // packed cut ⟨1, 2⟩
/// assert!(!layer.insert(0b10_01));
/// layer.clear(); // next layer: capacity kept, keys gone
/// assert!(layer.insert(0b10_01));
/// assert_eq!(layer.stats().inserts, 2);
/// ```
#[derive(Debug, Clone)]
pub struct PackedCutSet {
    slots: Vec<u64>,
    mask: usize,
    len: u32,
    stats: CutSetStats,
}

impl PackedCutSet {
    /// An empty set.
    pub fn new() -> Self {
        const INITIAL_SLOTS: usize = 64;
        PackedCutSet {
            slots: vec![EMPTY_PACKED; INITIAL_SLOTS],
            mask: INITIAL_SLOTS - 1,
            len: 0,
            stats: CutSetStats::default(),
        }
    }

    /// Inserts the key; `true` if it was newly added. Counts one probe
    /// per slot inspected, like [`CutSet`].
    #[inline]
    pub fn insert(&mut self, key: u64) -> bool {
        debug_assert_ne!(key, EMPTY_PACKED);
        let mut slot = hash_packed(key) as usize & self.mask;
        loop {
            self.stats.probes += 1;
            let v = self.slots[slot];
            if v == EMPTY_PACKED {
                break;
            }
            if v == key {
                self.stats.hits += 1;
                return false;
            }
            slot = (slot + 1) & self.mask;
        }
        self.slots[slot] = key;
        self.len += 1;
        self.stats.inserts += 1;
        // Same 1/2 load cap as `Pool`: linear probing degrades past it.
        if (self.len as usize + 1) * 2 > self.slots.len() {
            self.grow();
        }
        true
    }

    /// Empties the set, keeping the table allocation (and the cumulative
    /// counters).
    pub fn clear(&mut self) {
        self.slots.fill(EMPTY_PACKED);
        self.len = 0;
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// `true` if no key is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Deterministic probe/hit/insert counters, cumulative across
    /// [`clear`](PackedCutSet::clear)s.
    pub fn stats(&self) -> CutSetStats {
        self.stats
    }

    /// Actual heap footprint of the table.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + 8 * self.slots.capacity()
    }

    fn grow(&mut self) {
        let old = std::mem::take(&mut self.slots);
        let new_slots = old.len() * 2;
        self.slots.resize(new_slots, EMPTY_PACKED);
        self.mask = new_slots - 1;
        for key in old {
            if key == EMPTY_PACKED {
                continue;
            }
            let mut slot = hash_packed(key) as usize & self.mask;
            while self.slots[slot] != EMPTY_PACKED {
                slot = (slot + 1) & self.mask;
            }
            self.slots[slot] = key;
        }
    }
}

impl Default for PackedCutSet {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn key(seed: u64, width: usize, i: u64) -> Cut {
        // Deterministic pseudo-random count vectors with many collisions.
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i;
        let counts: Vec<u32> = (0..width)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                1 + (x % 4) as u32
            })
            .collect();
        Cut::from(counts)
    }

    #[test]
    fn matches_std_hashset_across_widths() {
        for width in [1usize, 2, 5, 15, 16, 17, 24] {
            let mut pooled = CutSet::new(width);
            let mut std_set: HashSet<Cut> = HashSet::new();
            for i in 0..500 {
                let c = key(width as u64, width, i % 170);
                assert_eq!(
                    pooled.insert(&c),
                    std_set.insert(c.clone()),
                    "width {width} i {i}"
                );
                assert!(pooled.contains(&c));
            }
            assert_eq!(pooled.len(), std_set.len(), "width {width}");
            assert!(!pooled.contains(&Cut::from(vec![99; width])));
        }
    }

    #[test]
    fn growth_preserves_membership() {
        let mut set = CutSet::new(2);
        let mut inserted = Vec::new();
        for a in 1..60u32 {
            for b in 1..60u32 {
                let c = Cut::from(vec![a, b]);
                assert!(set.insert(&c));
                inserted.push(c);
            }
        }
        assert_eq!(set.len(), 59 * 59);
        for c in &inserted {
            assert!(set.contains(c));
            assert!(!set.insert(c));
        }
    }

    #[test]
    fn stats_are_deterministic_and_meaningful() {
        let run = || {
            let mut set = CutSet::new(3);
            for i in 0..100 {
                set.insert(&key(7, 3, i % 40));
            }
            set.stats()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.inserts, a.inserts.min(40));
        assert_eq!(a.hits, 100 - a.inserts);
        assert!(a.probes >= 100);
    }

    #[test]
    fn map_stores_and_updates_values() {
        let mut map = CutMap64::new(2);
        let c = Cut::from(vec![1, 2]);
        let (new, v) = map.insert_or_get(&c, 0b1010);
        assert!(new);
        assert_eq!(*v, 0b1010);
        *v = 0b0010;
        let (new, v) = map.insert_or_get(&c, 0b1111);
        assert!(!new);
        assert_eq!(*v, 0b0010);
        assert_eq!(map.len(), 1);
        assert!(!map.is_empty());
        assert_eq!(map.stats().hits, 1);
        // Survives growth.
        for i in 0..500u32 {
            map.insert_or_get(&Cut::from(vec![10 + i, 1]), u64::from(i));
        }
        for i in 0..500u32 {
            let (new, v) = map.insert_or_get(&Cut::from(vec![10 + i, 1]), 0);
            assert!(!new);
            assert_eq!(*v, u64::from(i), "value survived growth");
        }
        assert_eq!(*map.insert_or_get(&c, 9).1, 0b0010);
    }

    #[test]
    fn hasher_streams_like_slice_hash() {
        use std::hash::{BuildHasher, Hasher};
        // CutBuildHasher is usable as a HashMap hasher and discriminates.
        let h = |counts: &[u32]| CutBuildHasher.hash_one(counts);
        assert_ne!(h(&[1, 2, 3]), h(&[1, 2, 4]));
        assert_ne!(h(&[1, 2]), h(&[1, 2, 0]));
        assert_eq!(h(&[5, 6, 7]), h(&[5, 6, 7]));
        // Byte-stream writes cover the generic write() path.
        let mut a = CutHasher::default();
        a.write(b"0123456789abcdef");
        let mut b = CutHasher::default();
        b.write(b"0123456789abcdeX");
        assert_ne!(a.finish(), b.finish());
        let mut c = CutHasher::default();
        c.write_u8(1);
        c.write_u64(2);
        assert_ne!(c.finish(), 0);
    }

    #[test]
    fn hash_counts_covers_odd_and_even_widths() {
        assert_ne!(hash_counts(&[1, 2, 3]), hash_counts(&[1, 2]));
        assert_ne!(hash_counts(&[1, 2, 3]), hash_counts(&[3, 2, 1]));
        assert_eq!(hash_counts(&[4, 4, 4, 4]), hash_counts(&[4, 4, 4, 4]));
        // Length is mixed in: a zero tail is not the same key.
        assert_ne!(hash_counts(&[]), hash_counts(&[0]));
    }

    #[test]
    fn get_index_reports_insertion_rank() {
        let mut set = CutSet::new(3);
        let cuts: Vec<Cut> = (0..40).map(|i| key(11, 3, i)).collect();
        let mut expect = Vec::new();
        for c in &cuts {
            if let Some(idx) = set.insert_indexed(c) {
                expect.push((c.clone(), idx));
            }
        }
        let probes_before = set.stats().probes;
        for (c, idx) in &expect {
            assert_eq!(set.get_index(c.counts()), Some(*idx));
            assert_eq!(set.counts_at(*idx), c.counts());
        }
        assert_eq!(set.get_index(Cut::from(vec![77, 77, 77]).counts()), None);
        // Read-only probes leave the effort counters untouched.
        assert_eq!(set.stats().probes, probes_before);
    }

    #[test]
    fn reset_keeps_capacity_and_clears_membership() {
        let mut set = CutSet::new(2);
        for a in 1..40u32 {
            for b in 1..40u32 {
                set.insert(&Cut::from(vec![a, b]));
            }
        }
        let filled_bytes = set.approx_bytes();
        let inserts_before = set.stats().inserts;
        set.reset();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert!(!set.contains(&Cut::from(vec![1, 1])));
        // Capacity survives: the emptied set still owns its buffers, and
        // refilling to the same occupancy neither grows nor shrinks them.
        assert_eq!(set.approx_bytes(), filled_bytes);
        for a in 1..40u32 {
            for b in 1..40u32 {
                assert!(set.insert(&Cut::from(vec![a, b])), "fresh after reset");
            }
        }
        assert_eq!(set.approx_bytes(), filled_bytes);
        assert_eq!(set.len(), 39 * 39);
        // Stats are cumulative across resets.
        assert!(set.stats().inserts >= inserts_before * 2);
        // Indices restart from zero after a reset.
        set.reset();
        assert_eq!(set.insert_indexed(&Cut::from(vec![9, 9])), Some(0));
    }

    #[test]
    fn reset_handles_width_zero() {
        let mut set = CutSet::new(0);
        assert!(set.insert(&Cut::from(Vec::new())));
        assert_eq!(set.len(), 1);
        set.reset();
        assert_eq!(set.len(), 0);
        assert!(set.insert(&Cut::from(Vec::new())));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn saturation_refuses_inserts_instead_of_wrapping() {
        // A mocked 3-entry ceiling stands in for the real u32::MAX - 1
        // one: the 4th distinct cut must be refused, never aliased onto
        // the EMPTY sentinel.
        let mut set = CutSet::with_max_entries(2, 3);
        for a in 1..=3u32 {
            assert!(set.insert(&Cut::from(vec![a, 1])));
            assert!(!set.saturated());
        }
        assert!(!set.insert(&Cut::from(vec![4, 1])), "insert at cap");
        assert!(set.saturated());
        assert_eq!(set.insert_indexed(&Cut::from(vec![5, 1])), None);
        assert_eq!(set.len(), 3);
        // The refused cuts were dropped, not stored under a bogus index.
        assert!(!set.contains(&Cut::from(vec![4, 1])));
        assert!(!set.contains(&Cut::from(vec![5, 1])));
        // Existing entries stay intact and re-findable.
        for a in 1..=3u32 {
            assert!(set.contains(&Cut::from(vec![a, 1])));
            assert!(!set.insert(&Cut::from(vec![a, 1])));
        }
        // Reset clears the latch along with membership.
        set.reset();
        assert!(!set.saturated());
        assert!(set.insert(&Cut::from(vec![4, 1])));
    }

    #[test]
    fn saturated_map_hands_out_scratch_values() {
        let mut map = CutMap64::with_max_entries(2, 2);
        *map.insert_or_get(&Cut::from(vec![1, 1]), 10).1 = 11;
        *map.insert_or_get(&Cut::from(vec![2, 1]), 20).1 = 21;
        assert!(!map.saturated());
        // Third distinct cut: refused, scratch reads as the default.
        let (new, v) = map.insert_or_get(&Cut::from(vec![3, 1]), 30);
        assert!(!new);
        assert_eq!(*v, 30);
        assert!(map.saturated());
        assert_eq!(map.len(), 2);
        // Stored values are untouched by the overflow traffic.
        assert_eq!(*map.insert_or_get(&Cut::from(vec![1, 1]), 0).1, 11);
        assert_eq!(*map.insert_or_get(&Cut::from(vec![2, 1]), 0).1, 21);
    }

    #[test]
    fn empty_set_and_bytes() {
        let set = CutSet::new(4);
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert!(!set.contains(&Cut::bottom(4)));
        assert!(set.approx_bytes() > 0);
        let map = CutMap64::new(4);
        assert!(map.is_empty());
        assert!(map.approx_bytes() > 0);
    }

    /// A deterministic pseudo-random key stream with duplicates.
    fn key_stream(len: u64) -> impl Iterator<Item = u64> {
        (0..len).map(|i| {
            let x = i
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 24) % 500 // collide often enough to exercise hits
        })
    }

    #[test]
    fn packed_set_matches_std_hashset_through_growth() {
        let mut packed = PackedCutSet::new();
        let mut reference = std::collections::HashSet::new();
        for key in key_stream(2000) {
            assert_eq!(packed.insert(key), reference.insert(key), "key {key}");
        }
        assert_eq!(u64::from(packed.len()), reference.len() as u64);
        let stats = packed.stats();
        assert_eq!(stats.inserts, reference.len() as u64);
        assert_eq!(stats.hits, 2000 - reference.len() as u64);
        assert!(stats.probes >= 2000, "every insert probes at least once");
        assert!(packed.approx_bytes() >= reference.len() * 8);
    }

    #[test]
    fn packed_set_clear_keeps_capacity_and_accumulates_stats() {
        let mut packed = PackedCutSet::new();
        for key in 0..300u64 {
            assert!(packed.insert(key * 3));
        }
        let bytes_before = packed.approx_bytes();
        let inserts_before = packed.stats().inserts;
        packed.clear();
        assert!(packed.is_empty());
        assert_eq!(packed.approx_bytes(), bytes_before, "clear must keep slots");
        // Re-inserting the same keys counts as fresh inserts: membership
        // is per-generation, statistics are per-lifetime.
        for key in 0..300u64 {
            assert!(packed.insert(key * 3), "cleared key readmitted");
        }
        assert_eq!(packed.stats().inserts, inserts_before * 2);
        assert_eq!(PackedCutSet::default().len(), 0);
    }

    #[test]
    fn packed_banded_set_tracks_membership_per_band() {
        let mut set = PackedBandedSet::new();
        assert!(set.is_empty());
        // The same key is distinct per band (bands are BFS layers).
        assert!(set.insert(42, 0));
        assert!(set.insert(42, 3));
        assert!(!set.insert(42, 0));
        assert_eq!(set.len(), 2);
        let mut reference = std::collections::HashSet::from([(42u64, 0usize), (42, 3)]);
        for key in key_stream(1500) {
            let band = (key % 7) as usize;
            assert_eq!(set.insert(key, band), reference.insert((key, band)));
        }
        assert!(!set.saturated());
        assert_eq!(set.len(), reference.len() as u64);
        assert!(set.approx_bytes() > 0);
        assert!(set.stats().probes >= set.stats().inserts);
    }

    #[test]
    fn packed_banded_set_saturates_instead_of_wrapping() {
        let mut set = PackedBandedSet::with_max_entries(4);
        for key in 0..4u64 {
            assert!(set.insert(key, 0));
        }
        assert!(!set.saturated());
        assert!(!set.insert(99, 0), "insert past the ceiling must refuse");
        assert!(set.saturated());
        assert_eq!(set.len(), 4);
        // Duplicates of stored keys still report as hits, not inserts.
        assert!(!set.insert(2, 0));
    }

    #[test]
    fn hash_packed_spreads_high_bits_for_sharding() {
        // The parallel engine shards packed keys by `hash >> 60` while the
        // packed tables index slots with the low bits, so the finalizer
        // must carry lane entropy into the *top* nibble: a run of adjacent
        // keys (cuts differing only in their first lane) has to cover all
        // 16 shard values rather than cluster.
        let shards: std::collections::HashSet<u64> =
            (0..256u64).map(|key| hash_packed(key) >> 60).collect();
        assert_eq!(shards.len(), 16, "adjacent keys collapsed into {shards:?}");
        // And the hash is a pure function of the key.
        assert_eq!(hash_packed(77), hash_packed(77));
        assert_ne!(hash_packed(77), hash_packed(78));
    }
}
