//! Property tests for the trace format: serialization round-trips on
//! arbitrary random computations.

use proptest::prelude::*;

use slicing_computation::test_fixtures::{random_computation, RandomConfig};
use slicing_computation::trace::{from_text, to_text};
use slicing_computation::Computation;

fn computations() -> impl Strategy<Value = Computation> {
    (any::<u64>(), 1usize..=5, 0u32..=6, 0u64..=80).prop_map(|(seed, n, m, msg)| {
        let cfg = RandomConfig {
            processes: n,
            events_per_process: m,
            send_percent: msg,
            recv_percent: msg,
            value_range: 5,
        };
        random_computation(seed, &cfg)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn round_trip_preserves_everything(comp in computations()) {
        let text = to_text(&comp);
        let parsed = from_text(&text).expect("emitted traces parse");
        prop_assert_eq!(parsed.num_processes(), comp.num_processes());
        prop_assert_eq!(parsed.num_events(), comp.num_events());
        prop_assert_eq!(parsed.messages(), comp.messages());
        for e in comp.events() {
            prop_assert_eq!(parsed.process_of(e), comp.process_of(e));
            prop_assert_eq!(parsed.position_of(e), comp.position_of(e));
            prop_assert_eq!(parsed.min_cut(e), comp.min_cut(e));
            let p = comp.process_of(e);
            for name in comp.var_names(p) {
                let a = comp.var(p, name).unwrap();
                let b = parsed.var(p, name).unwrap();
                prop_assert_eq!(
                    parsed.value_at(b, comp.position_of(e)),
                    comp.value_at(a, comp.position_of(e))
                );
            }
        }
        // Emission is a fixpoint.
        prop_assert_eq!(to_text(&parsed), text);
    }

    /// The parser never panics on arbitrary printable text.
    #[test]
    fn parser_is_panic_free(src in "([ -~]{0,30}\n){0,6}") {
        let _ = from_text(&src);
    }
}
