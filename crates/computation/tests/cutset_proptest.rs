//! Property tests for the open-addressed [`CutSet`] kernel: against a
//! `HashSet<Vec<u32>>` oracle it must agree on membership, insertion
//! verdicts, and size for every width — in particular across the
//! inline→spilled representation boundary at [`Cut::INLINE_PROCESSES`].

use std::collections::HashSet;

use proptest::prelude::*;

use slicing_computation::{hash_counts, Cut, CutSet};

/// Count vectors drawn from a deliberately small value range so random
/// sequences contain plenty of duplicates (the hit path) as well as fresh
/// cuts (the probe/insert path).
fn count_sequences() -> impl Strategy<Value = (usize, Vec<Vec<u32>>)> {
    // Widths 1..=24 straddle the 16-process inline buffer: widths 17+
    // exercise the heap-spilled `Cut` representation end to end.
    (1usize..=24).prop_flat_map(|width| {
        let counts = proptest::collection::vec(1u32..=3, width..width + 1);
        let seq = proptest::collection::vec(counts, 1..120);
        (Just(width), seq)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cutset_matches_hashset_oracle((width, seq) in count_sequences()) {
        let mut set = CutSet::new(width);
        let mut oracle: HashSet<Vec<u32>> = HashSet::new();
        for counts in &seq {
            let cut = Cut::from_counts(counts);
            let fresh = oracle.insert(counts.clone());
            prop_assert_eq!(set.insert(&cut), fresh, "width {} counts {:?}", width, counts);
            prop_assert!(set.contains(&cut));
            prop_assert_eq!(set.len(), oracle.len());
        }
        // Membership agrees on absent cuts too: perturb each inserted
        // vector one count past the generator's range.
        for counts in &seq {
            let mut absent = counts.clone();
            absent[0] += 10;
            prop_assert!(!set.contains(&Cut::from_counts(&absent)));
        }
        // The instrumentation invariants CI gates on: every distinct cut
        // is one insert, every duplicate one hit, and a probe sequence
        // precedes each operation.
        let stats = set.stats();
        prop_assert_eq!(stats.inserts as usize, oracle.len());
        prop_assert_eq!(stats.hits as usize, seq.len() - oracle.len());
        prop_assert!(stats.probes >= stats.inserts + stats.hits);
    }

    #[test]
    fn indexed_inserts_round_trip((width, seq) in count_sequences()) {
        let mut set = CutSet::new(width);
        let mut arena: Vec<Vec<u32>> = Vec::new();
        for counts in &seq {
            let cut = Cut::from_counts(counts);
            match set.insert_indexed(&cut) {
                Some(idx) => {
                    // Fresh cuts get dense, stable arena indices…
                    prop_assert_eq!(idx as usize, arena.len());
                    arena.push(counts.clone());
                }
                None => prop_assert!(arena.contains(counts)),
            }
        }
        // …that survive table growth: every index still reads back the
        // exact counts it was assigned for.
        for (idx, counts) in arena.iter().enumerate() {
            prop_assert_eq!(set.counts_at(idx as u32), counts.as_slice());
        }
    }

    #[test]
    fn hash_is_representation_independent(counts in proptest::collection::vec(0u32..=200, 1..24)) {
        // The sharded engines route cuts by `hash_counts` computed from a
        // borrowed slice and by `CutHasher` state built incrementally; the
        // two must agree or shards would disagree about membership.
        let cut = Cut::from_counts(&counts);
        prop_assert_eq!(hash_counts(cut.as_ref()), hash_counts(&counts));
    }
}
