//! Kill-and-resume differential harness: checkpoint a GC'd online monitor
//! at *every* K-th step of a randomized-but-seeded workload (including
//! points where generated messages are still in flight), restore from the
//! file, replay the tail, and require verdicts and stats identical to an
//! unbroken oracle run.
//!
//! Event ids are not stable across a restart (restore renumbers densely),
//! so the script references events by `(process, position)` — the
//! coordinates that *do* survive — and the replay translates them through
//! [`OnlineMonitor::event_at`].

use std::path::PathBuf;

use slicing_computation::Value;
use slicing_detect::{GcConfig, OnlineMonitor};
use slicing_predicates::LocalPredicate;
use slicing_recover::{load_checkpoint, resume_monitor, write_checkpoint};

const N: usize = 3;
/// Generated message endpoints stay within this many global steps of the
/// tip, strictly below the GC lag so replayed deliveries always target
/// retained events.
const MAX_LATENESS: u64 = 4;
const GC: GcConfig = GcConfig { lag: 6, every: 8 };

#[derive(Clone, Copy, Debug)]
enum Op {
    Observe {
        p: usize,
        val: i64,
    },
    /// Deliver a message between two already-observed events, addressed
    /// by per-process position.
    Message {
        sp: usize,
        spos: u32,
        rp: usize,
        rpos: u32,
    },
}

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A seeded workload with candidate and non-candidate values and late
/// cross-process messages. Every message goes from an earlier-observed to
/// a later-observed event, so generation order is a topological order and
/// the script is acyclic by construction.
fn script(seed: u64, steps: usize) -> Vec<Op> {
    let mut rng = XorShift(seed | 1);
    let mut ops = Vec::new();
    let mut sent = std::collections::HashSet::new();
    // (process, position, observation index) of recent non-initial events.
    let mut recent: Vec<(usize, u32, usize)> = Vec::new();
    let mut len = [1u32; N];
    for observed in 0..steps {
        let p = rng.below(N as u64) as usize;
        let val = rng.below(4) as i64 - 2; // -2..=1: mostly non-candidates
        ops.push(Op::Observe { p, val });
        recent.push((p, len[p], observed));
        len[p] += 1;
        recent.retain(|&(_, _, at)| observed + 1 - at <= MAX_LATENESS as usize);
        if rng.below(2) == 0 && recent.len() >= 2 {
            let si = rng.below(recent.len() as u64 - 1) as usize;
            let (sp, spos, sat) = recent[si];
            // Pick a strictly later-observed event on another process.
            if let Some(&(rp, rpos, _)) = recent.iter().find(|&&(rp, _, rat)| rp != sp && rat > sat)
            {
                if sent.insert((sp, spos, rp, rpos)) {
                    ops.push(Op::Message { sp, spos, rp, rpos });
                }
            }
        }
    }
    ops
}

fn fresh_monitor(gc: Option<GcConfig>) -> OnlineMonitor {
    let mut m = OnlineMonitor::new(N);
    if let Some(cfg) = gc {
        m = m.with_gc(cfg);
    }
    for p in 0..N {
        let x = m.declare_var(p, "x", Value::Int(0)).unwrap();
        m.watch_int(x, "x > 0", |v| v > 0).unwrap();
    }
    m
}

fn clauses(m: &OnlineMonitor) -> Vec<LocalPredicate> {
    (0..N)
        .map(|p| LocalPredicate::int(m.var(p, "x").unwrap(), "x > 0", |v| v > 0))
        .collect()
}

/// Applies one op, checks, acknowledges any alarm, and returns the
/// verdict as clock counts (comparable across restarts, unlike EventIds).
fn apply(m: &mut OnlineMonitor, op: Op) -> Option<Vec<u32>> {
    match op {
        Op::Observe { p, val } => {
            let x = m.var(p, "x").unwrap();
            m.observe(p, &[(x, Value::Int(val))]).unwrap();
        }
        Op::Message { sp, spos, rp, rpos } => {
            let send = m.event_at(sp, spos).expect("send within lag window");
            let recv = m.event_at(rp, rpos).expect("recv within lag window");
            m.message(send, recv).unwrap();
        }
    }
    let verdict = m.check().unwrap().map(|cut| cut.counts().to_vec());
    if verdict.is_some() {
        m.acknowledge_alarm();
    }
    verdict
}

fn ckpt_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("slicing-resume-{}-{tag}.ckpt", std::process::id()))
}

#[test]
fn every_kill_point_resumes_to_the_oracle_run() {
    for seed in [3, 17, 29] {
        let ops = script(seed, 150);

        // Unbroken oracle.
        let mut oracle = fresh_monitor(Some(GC));
        let verdicts: Vec<Option<Vec<u32>>> =
            ops.iter().map(|&op| apply(&mut oracle, op)).collect();
        assert!(
            verdicts.iter().any(Option::is_some),
            "seed {seed}: workload never alarms — harness too weak"
        );

        for kill_at in (1..ops.len()).step_by(7) {
            // Run to the kill point, checkpoint, and "crash".
            let mut first = fresh_monitor(Some(GC));
            for &op in &ops[..kill_at] {
                apply(&mut first, op);
            }
            let path = ckpt_path(&format!("{seed}-{kill_at}"));
            write_checkpoint(&path, &first, 0).unwrap();
            drop(first);

            // Restore and replay the tail.
            let (state, metrics_seq) = load_checkpoint(&path).unwrap();
            assert_eq!(metrics_seq, 0);
            let mut resumed = resume_monitor(&state, {
                let probe = OnlineMonitor::from_state(&state).unwrap();
                clauses(&probe)
            })
            .unwrap();
            for (i, &op) in ops.iter().enumerate().skip(kill_at) {
                let verdict = apply(&mut resumed, op);
                assert_eq!(
                    verdict, verdicts[i],
                    "seed {seed}, kill at {kill_at}, op {i}: verdict diverged"
                );
            }
            assert_eq!(
                resumed.stats(),
                oracle.stats(),
                "seed {seed}, kill at {kill_at}: stats diverged"
            );
            std::fs::remove_file(&path).unwrap();
        }
    }
}

#[test]
fn gc_and_plain_oracles_agree_end_to_end() {
    for seed in [3, 17, 29] {
        let ops = script(seed, 150);
        let mut plain = fresh_monitor(None);
        let mut gc = fresh_monitor(Some(GC));
        for &op in &ops {
            assert_eq!(apply(&mut plain, op), apply(&mut gc, op), "seed {seed}");
        }
        let (p, g) = (plain.stats(), gc.stats());
        assert_eq!(
            (p.alarms, p.checks, p.events, p.messages),
            (g.alarms, g.checks, g.events, g.messages)
        );
        assert!(gc.retained_events() <= plain.retained_events());
    }
}
