//! End-to-end fault-tolerance demo, per the acceptance criteria: inject
//! each `FaultKind` into both protocols, detect through the resilient
//! engine chain, compute the recovery line, roll back and replay, and
//! verify the invariant on the recovered computation — with at least one
//! observed engine fallback and at least one observed retry across the
//! suite.

use slicing_computation::Computation;
use slicing_core::PredicateSpec;
use slicing_detect::{detect_resilient, Limits, ResilientConfig};
use slicing_recover::{recover, RecoverConfig, RecoveryOutcome, RecoveryVerdict};
use slicing_sim::crdt::{self, CrdtReplication};
use slicing_sim::database::{self, DatabasePartitioning};
use slicing_sim::leader_election::{self, LeaderElection};
use slicing_sim::primary_secondary::{self, PrimarySecondary};
use slicing_sim::work_queue::{self, WorkQueue};
use slicing_sim::{inject_plan, run, sample_fault_plan, FaultPlan, SimConfig};

const FAULT_KINDS: [&str; 5] = [
    "corrupt",
    "drop-message",
    "duplicate-message",
    "delay-delivery",
    "crash-stop",
];

#[derive(Clone, Copy, PartialEq, Debug)]
enum Proto {
    Ps,
    Db,
    Le,
    Crdt,
    Wq,
}

/// Simulates, injects a sampled fault of `kind`, and runs the full loop.
/// `None` when the run offers no injection site of that kind.
fn run_loop(
    proto: Proto,
    kind: &str,
    seed: u64,
    tweak: impl FnOnce(&mut RecoverConfig, &FaultPlan),
) -> Option<RecoveryOutcome> {
    let mut cfg = RecoverConfig {
        sim: SimConfig {
            seed,
            max_events_per_process: 8,
            ..SimConfig::default()
        },
        ..RecoverConfig::default()
    };
    let clean = match proto {
        Proto::Ps => run(&mut PrimarySecondary::new(3), &cfg.sim),
        Proto::Db => run(&mut DatabasePartitioning::new(3), &cfg.sim),
        Proto::Le => run(&mut LeaderElection::new(3), &cfg.sim),
        Proto::Crdt => run(&mut CrdtReplication::new(3), &cfg.sim),
        Proto::Wq => run(&mut WorkQueue::new(3), &cfg.sim),
    }
    .expect("simulation succeeds");
    let plan = sample_fault_plan(&clean, kind, seed)?;
    let faulty = inject_plan(&clean, &plan).ok()?;
    tweak(&mut cfg, &plan);
    Some(match proto {
        Proto::Ps => recover(
            || PrimarySecondary::new(3),
            primary_secondary::violation_spec,
            &faulty,
            &cfg,
        ),
        Proto::Db => recover(
            || DatabasePartitioning::new(3),
            database::violation_spec,
            &faulty,
            &cfg,
        ),
        Proto::Le => recover(
            || LeaderElection::new(3),
            leader_election::violation_spec,
            &faulty,
            &cfg,
        ),
        Proto::Crdt => recover(
            || CrdtReplication::new(3),
            crdt::violation_spec,
            &faulty,
            &cfg,
        ),
        Proto::Wq => recover(
            || WorkQueue::new(3),
            work_queue::violation_spec,
            &faulty,
            &cfg,
        ),
    })
}

/// The recovered computation must itself pass detection clean.
fn assert_recovered_clean(proto: Proto, outcome: &RecoveryOutcome) {
    let recovered = outcome
        .recovered
        .as_ref()
        .expect("recovered verdict carries the replayed computation");
    let spec: PredicateSpec = match proto {
        Proto::Ps => primary_secondary::violation_spec(recovered),
        Proto::Db => database::violation_spec(recovered),
        Proto::Le => leader_election::violation_spec(recovered),
        Proto::Crdt => crdt::violation_spec(recovered),
        Proto::Wq => work_queue::violation_spec(recovered),
    };
    let check = detect_resilient(recovered, &spec, &ResilientConfig::default());
    assert!(
        !check.detected(),
        "recovered computation still violates the invariant"
    );
}

/// Every fault kind goes through the loop on both protocols. Kinds the
/// protocol absorbs without a violating cut legitimately come back
/// `CleanAlready`; each kind must produce an actual detect → rollback →
/// replay → verified recovery on at least one protocol, and nothing may
/// fail outright.
#[test]
fn every_fault_kind_drives_the_loop_on_both_protocols() {
    for kind in FAULT_KINDS {
        let mut kind_recovered = false;
        for proto in [Proto::Ps, Proto::Db] {
            let mut exercised = 0u32;
            for seed in 0..60u64 {
                let Some(outcome) = run_loop(proto, kind, seed, |_, _| {}) else {
                    continue;
                };
                exercised += 1;
                match outcome.verdict {
                    RecoveryVerdict::Recovered => {
                        assert!(outcome.detected);
                        assert!(outcome.line.is_some(), "{proto:?}/{kind}: no line");
                        assert_recovered_clean(proto, &outcome);
                        kind_recovered = true;
                        break;
                    }
                    RecoveryVerdict::CleanAlready => {} // fault absorbed; keep probing
                    other => panic!("{proto:?}/{kind} seed {seed}: verdict {other:?}"),
                }
            }
            assert!(exercised >= 1, "{proto:?}/{kind}: no injectable runs");
        }
        assert!(
            kind_recovered,
            "{kind}: no detectable violation on either protocol"
        );
    }
}

/// Every fault kind goes through the loop on every scenario-zoo protocol,
/// and every (protocol, kind) pair completes at least one full detect →
/// rollback → replay → verified-clean recovery across the seed sweep.
/// Individual seeds whose fault is absorbed without a violating cut (or
/// that a co-regular leaf legitimately cannot see once monotonicity is
/// broken) come back `CleanAlready`; nothing may fail outright.
#[test]
fn every_fault_kind_drives_the_loop_on_the_scenario_zoo() {
    for kind in FAULT_KINDS {
        for proto in [Proto::Le, Proto::Crdt, Proto::Wq] {
            let mut exercised = 0u32;
            let mut recovered = false;
            for seed in 0..60u64 {
                let Some(outcome) = run_loop(proto, kind, seed, |_, _| {}) else {
                    continue;
                };
                exercised += 1;
                match outcome.verdict {
                    RecoveryVerdict::Recovered => {
                        assert!(outcome.detected);
                        assert!(outcome.line.is_some(), "{proto:?}/{kind}: no line");
                        assert_recovered_clean(proto, &outcome);
                        recovered = true;
                        break;
                    }
                    RecoveryVerdict::CleanAlready => {} // fault absorbed; keep probing
                    other => panic!("{proto:?}/{kind} seed {seed}: verdict {other:?}"),
                }
            }
            assert!(exercised >= 1, "{proto:?}/{kind}: no injectable runs");
            assert!(
                recovered,
                "{proto:?}/{kind}: no detect→recover cycle completed"
            );
        }
    }
}

/// Starving the first engine forces at least one observed fallback, and
/// the loop still recovers on the surviving engines.
#[test]
fn starved_first_engine_falls_back_and_still_recovers() {
    let starved = ResilientConfig {
        slicing: Some(Limits::new(None, Some(1))),
        ..ResilientConfig::default()
    };
    for proto in [Proto::Ps, Proto::Db] {
        for kind in FAULT_KINDS {
            for seed in 0..60u64 {
                let Some(outcome) = run_loop(proto, kind, seed, |cfg, _| {
                    cfg.detect = starved.clone();
                }) else {
                    continue;
                };
                if outcome.verdict == RecoveryVerdict::Recovered && outcome.engine_fallbacks >= 1 {
                    assert_recovered_clean(proto, &outcome);
                    return;
                }
            }
        }
    }
    panic!("no scenario starved the slicing engine into a fallback");
}

/// Re-injecting the fault plan into the first replay forces a failed
/// verification and hence an observed retry; a later attempt recovers.
#[test]
fn reinjected_replay_forces_a_retry_before_recovering() {
    for proto in [Proto::Ps, Proto::Db] {
        for seed in 0..60u64 {
            let Some(outcome) = run_loop(proto, "corrupt", seed, |cfg, plan| {
                cfg.retry.max_attempts = 6;
                cfg.retry.reinject_attempts = 1;
                cfg.reinject = Some(plan.clone());
            }) else {
                continue;
            };
            if outcome.verdict == RecoveryVerdict::Recovered
                && outcome.attempts.len() >= 2
                && outcome.attempts[0].reinjected
                && outcome.attempts[0].violation_found
            {
                assert_recovered_clean(proto, &outcome);
                return;
            }
        }
    }
    panic!("no scenario re-derived the violation on a re-injected replay");
}

/// Exercises the bigger end of the loop once: more processes and events,
/// a burst plan, and a deadline-budgeted engine chain.
#[test]
fn burst_fault_on_a_larger_run_recovers_under_a_deadline() {
    for seed in 0..30u64 {
        let mut cfg = RecoverConfig {
            sim: SimConfig {
                seed,
                max_events_per_process: 12,
                ..SimConfig::default()
            },
            ..RecoverConfig::default()
        };
        cfg.detect =
            ResilientConfig::default().with_total_deadline(std::time::Duration::from_secs(20));
        let clean: Computation =
            run(&mut PrimarySecondary::new(5), &cfg.sim).expect("simulation succeeds");
        let Some(plan) = sample_fault_plan(&clean, "burst", seed) else {
            continue;
        };
        let Ok(faulty) = inject_plan(&clean, &plan) else {
            continue;
        };
        let outcome = recover(
            || PrimarySecondary::new(5),
            primary_secondary::violation_spec,
            &faulty,
            &cfg,
        );
        if outcome.verdict == RecoveryVerdict::Recovered {
            assert_recovered_clean(Proto::Ps, &outcome);
            return;
        }
    }
    panic!("no burst scenario recovered at n = 5");
}
