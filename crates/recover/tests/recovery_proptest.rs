//! Property tests for the fault-tolerance loop, against brute-force
//! lattice oracles on small simulated runs:
//!
//! - every injected fault that produces a fault-satisfying consistent cut
//!   is detected (and no fault is hallucinated);
//! - the computed recovery line is consistent, fault-free in its causal
//!   history, and never larger than the oracle's maximum safe cut — with
//!   the exhaustive method exactly matching the oracle.

use proptest::prelude::*;

use slicing_computation::lattice::for_each_cut;
use slicing_computation::{Computation, Cut, GlobalState};
use slicing_core::PredicateSpec;
use slicing_detect::{detect_resilient, ResilientConfig};
use slicing_recover::{recovery_line, recovery_line_exhaustive, LineMethod, RecoveryLine};
use slicing_sim::database::{self, DatabasePartitioning};
use slicing_sim::primary_secondary::{self, PrimarySecondary};
use slicing_sim::{inject_plan, run, sample_fault_plan, SimConfig};

const FAULT_KINDS: [&str; 6] = [
    "corrupt",
    "drop-message",
    "duplicate-message",
    "delay-delivery",
    "crash-stop",
    "burst",
];

/// Simulates the chosen protocol, injects a sampled fault of the chosen
/// kind, and returns the faulty run with its violation spec. `None` when
/// the run offers no injection site of that kind.
fn faulty_instance(
    seed: u64,
    protocol: usize,
    kind: usize,
) -> Option<(Computation, PredicateSpec)> {
    let cfg = SimConfig {
        seed,
        max_events_per_process: 6,
        ..SimConfig::default()
    };
    let (clean, spec_of): (Computation, fn(&Computation) -> PredicateSpec) = if protocol == 0 {
        (
            run(&mut PrimarySecondary::new(3), &cfg).expect("simulation succeeds"),
            primary_secondary::violation_spec,
        )
    } else {
        (
            run(&mut DatabasePartitioning::new(3), &cfg).expect("simulation succeeds"),
            database::violation_spec,
        )
    };
    let plan = sample_fault_plan(&clean, FAULT_KINDS[kind], seed)?;
    let faulty = inject_plan(&clean, &plan).ok()?;
    let spec = spec_of(&faulty);
    Some((faulty, spec))
}

/// Brute force: does any consistent cut satisfy `spec`?
fn oracle_detects(comp: &Computation, spec: &PredicateSpec) -> bool {
    let mut hit = false;
    for_each_cut(comp, |cut| {
        if spec.eval(&GlobalState::new(comp, cut)) {
            hit = true;
            return false;
        }
        true
    });
    hit
}

/// Brute-force safety: no cut at or below `c` satisfies `spec`.
fn is_safe(comp: &Computation, spec: &PredicateSpec, c: &Cut) -> bool {
    let mut safe = true;
    for_each_cut(comp, |cut| {
        if cut.leq(c) && spec.eval(&GlobalState::new(comp, cut)) {
            safe = false;
            return false;
        }
        true
    });
    safe
}

/// Brute-force maximum safe cut size, or `None` when even the bottom cut
/// is unsafe.
fn oracle_max_safe_size(comp: &Computation, spec: &PredicateSpec) -> Option<u64> {
    let mut faults: Vec<Cut> = Vec::new();
    for_each_cut(comp, |cut| {
        if spec.eval(&GlobalState::new(comp, cut)) {
            faults.push(cut.clone());
        }
        true
    });
    let mut best: Option<u64> = None;
    for_each_cut(comp, |cut| {
        if !faults.iter().any(|f| f.leq(cut)) {
            best = Some(best.unwrap_or(0).max(cut.size()));
        }
        true
    });
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Resilient detection agrees with the exhaustive lattice oracle on
    /// every injected fault: a fault-satisfying cut exists iff the
    /// detector reports one.
    #[test]
    fn injected_faults_are_detected_iff_a_fault_cut_exists(
        (seed, protocol, kind) in (0u64..250, 0usize..2, 0usize..6)
    ) {
        let Some((faulty, spec)) = faulty_instance(seed, protocol, kind) else {
            continue; // no injection site of this kind in this run
        };
        let oracle = oracle_detects(&faulty, &spec);
        let detection = detect_resilient(&faulty, &spec, &ResilientConfig::default());
        prop_assert!(!detection.exhausted, "unlimited engines never exhaust");
        prop_assert_eq!(
            detection.detected(),
            oracle,
            "seed {} protocol {} kind {}",
            seed, protocol, FAULT_KINDS[kind]
        );
    }

    /// The recovery line is consistent, its causal history is fault-free,
    /// and it never exceeds the oracle's maximum safe size; the
    /// exhaustive method matches the oracle exactly, and the degenerate
    /// verdicts (clean / unrecoverable) agree with the oracle too.
    #[test]
    fn recovery_lines_are_safe_and_oracle_bounded(
        (seed, protocol, kind) in (0u64..250, 0usize..2, 0usize..6)
    ) {
        let Some((faulty, spec)) = faulty_instance(seed, protocol, kind) else {
            continue;
        };
        let oracle_max = oracle_max_safe_size(&faulty, &spec);
        match recovery_line(&faulty, &spec, 10_000_000) {
            RecoveryLine::Clean { top } => {
                prop_assert!(!oracle_detects(&faulty, &spec));
                prop_assert_eq!(oracle_max, Some(top.size()));
            }
            RecoveryLine::Line { cut, method } => {
                prop_assert!(faulty.is_consistent(&cut));
                prop_assert!(is_safe(&faulty, &spec, &cut), "unsafe line {}", cut);
                let max = oracle_max.expect("a safe cut exists when a line is returned");
                prop_assert!(cut.size() <= max);
                if method == LineMethod::Exhaustive {
                    prop_assert_eq!(cut.size(), max, "exhaustive line is exact");
                }
            }
            RecoveryLine::Unrecoverable => {
                prop_assert_eq!(oracle_max, None, "unrecoverable iff bottom is unsafe");
            }
            RecoveryLine::Undetermined => {
                prop_assert!(false, "budget is far above these lattices");
            }
        }
        // The exhaustive method is always exactly the oracle.
        match recovery_line_exhaustive(&faulty, &spec, 10_000_000) {
            RecoveryLine::Line { cut, .. } => {
                prop_assert!(is_safe(&faulty, &spec, &cut));
                prop_assert_eq!(Some(cut.size()), oracle_max);
            }
            RecoveryLine::Clean { top } => prop_assert_eq!(Some(top.size()), oracle_max),
            RecoveryLine::Unrecoverable => prop_assert_eq!(oracle_max, None),
            RecoveryLine::Undetermined => prop_assert!(false, "budget not exceeded"),
        }
    }
}
