//! Determinism regression: the same seed and the same `FaultPlan` must
//! reproduce byte-identical computations and identical recovery outcomes,
//! guarding the re-seeded replay path against hidden nondeterminism
//! (iteration order, uncontrolled RNG, wall-clock leakage).

use slicing_computation::trace::to_text;
use slicing_recover::{recover, RecoverConfig, RecoveryOutcome};
use slicing_sim::primary_secondary::{self, PrimarySecondary};
use slicing_sim::{inject_plan, run, sample_fault_plan, FaultPlan, SimConfig};

/// One full inject → detect → rollback → replay pass; returns the faulty
/// trace text and the outcome.
fn full_pass(seed: u64) -> (String, RecoveryOutcome) {
    let mut cfg = RecoverConfig {
        sim: SimConfig {
            seed,
            max_events_per_process: 8,
            ..SimConfig::default()
        },
        ..RecoverConfig::default()
    };
    let clean = run(&mut PrimarySecondary::new(3), &cfg.sim).expect("simulation succeeds");
    let plan: FaultPlan = (0..16)
        .find_map(|o| sample_fault_plan(&clean, "corrupt", seed + o))
        .expect("a corrupt fault is injectable");
    let faulty = inject_plan(&clean, &plan).expect("injection succeeds");
    cfg.retry.reinject_attempts = 1;
    cfg.reinject = Some(plan);
    let outcome = recover(
        || PrimarySecondary::new(3),
        primary_secondary::violation_spec,
        &faulty,
        &cfg,
    );
    (to_text(&faulty), outcome)
}

#[test]
fn same_seed_and_plan_reproduce_the_entire_loop_bit_for_bit() {
    for seed in [0u64, 3, 7, 11] {
        let (trace_a, out_a) = full_pass(seed);
        let (trace_b, out_b) = full_pass(seed);
        assert_eq!(trace_a, trace_b, "seed {seed}: faulty traces diverge");
        assert_eq!(out_a.verdict, out_b.verdict, "seed {seed}");
        assert_eq!(out_a.detected, out_b.detected, "seed {seed}");
        assert_eq!(out_a.engine, out_b.engine, "seed {seed}");
        assert_eq!(out_a.witness, out_b.witness, "seed {seed}");
        assert_eq!(out_a.line, out_b.line, "seed {seed}");
        assert_eq!(out_a.attempts, out_b.attempts, "seed {seed}");
        assert_eq!(
            out_a.to_json(),
            out_b.to_json(),
            "seed {seed}: reports diverge"
        );
        match (&out_a.recovered, &out_b.recovered) {
            (Some(a), Some(b)) => assert_eq!(
                to_text(a),
                to_text(b),
                "seed {seed}: recovered traces diverge"
            ),
            (None, None) => {}
            other => panic!("seed {seed}: recovered presence diverges: {other:?}"),
        }
    }
}
