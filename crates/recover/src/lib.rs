//! Software fault tolerance on top of computation slicing: the paper's
//! motivating application, closed into a full loop.
//!
//! The paper (Section 1) frames slicing as the engine of a
//! detect-and-recover scheme for distributed programs: monitor a run for a
//! global fault (a consistent cut violating the invariant), and when one
//! appears, restore the system to a consistent global state whose causal
//! past is fault-free, then resume. This crate implements that loop over
//! the repository's simulator and detection engines:
//!
//! - [`recovery_line`]: the maximal consistent cut with no fault at or
//!   below it, computed from the fault specification's slice (with an
//!   exhaustive fallback and an explicit [`RecoveryLine::Unrecoverable`]
//!   degenerate case);
//! - [`recover`]: the driver — resilient detection, line computation,
//!   rollback via [`slicing_sim::resume`], controlled replay under a
//!   [`RetryPolicy`] with exponential scheduler backoff, and re-verification;
//! - [`RecoveryOutcome`]: a structured, JSON-serializable
//!   (`slicing.recovery-report/v1`) record of what happened.
//!
//! # Example
//!
//! ```
//! use slicing_recover::{recover, RecoverConfig};
//! use slicing_sim::primary_secondary::{self, PrimarySecondary};
//! use slicing_sim::{run, SimConfig};
//!
//! let sim = SimConfig { seed: 3, max_events_per_process: 8, ..SimConfig::default() };
//! let comp = run(&mut PrimarySecondary::new(3), &sim)?;
//! let cfg = RecoverConfig { sim, ..RecoverConfig::default() };
//! let outcome = recover(
//!     || PrimarySecondary::new(3),
//!     primary_secondary::violation_spec,
//!     &comp,
//!     &cfg,
//! );
//! // A fault-free run needs no recovery.
//! assert_eq!(outcome.verdict, slicing_recover::RecoveryVerdict::CleanAlready);
//! # Ok::<(), slicing_computation::BuildError>(())
//! ```

#![warn(missing_docs)]

mod checkpoint;
mod line;
mod replay;

pub use checkpoint::{
    load_checkpoint, load_hub_checkpoint, resume_monitor, rotate_and_write, write_checkpoint,
    write_checkpoint_rotating, write_hub_checkpoint,
};
pub use line::{
    max_consistent_cut_below, recovery_line, recovery_line_exhaustive, LineMethod, RecoveryLine,
};
pub use replay::{
    recover, AttemptReport, RecoverConfig, RecoveryOutcome, RecoveryVerdict, RetryPolicy,
};
