//! Checkpoint files: durable `slicing.checkpoint/v1` snapshots of a
//! running [`OnlineMonitor`], written so a killed monitor can restart
//! mid-stream and converge to the same verdicts as an uninterrupted run.
//!
//! This is the file layer over [`slicing_detect::checkpoint`]'s codec:
//!
//! - [`write_checkpoint`] serializes the monitor's exported state (plus
//!   the metrics-stream cursor) and writes it *atomically* — to a
//!   `.tmp` sibling first, then renamed over the target — so a crash
//!   mid-write leaves the previous checkpoint intact rather than a
//!   truncated JSON document;
//! - [`load_checkpoint`] reads a file back, revalidates it against the
//!   observe schema registry, and decodes it;
//! - [`resume_monitor`] rebuilds a live monitor from the loaded state
//!   and re-registers the caller's watch clauses (closures cannot be
//!   serialized; each is cross-validated against the checkpointed truth
//!   assignments).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use slicing_computation::BuildError;
use slicing_detect::checkpoint::{decode_str, encode};
use slicing_detect::{HubState, MonitorHub, MonitorState, OnlineMonitor};
use slicing_predicates::LocalPredicate;

/// Atomically writes `monitor`'s current state (and the metrics-stream
/// sequence cursor) to `path` as one `slicing.checkpoint/v1` line.
///
/// # Errors
///
/// Propagates filesystem errors from writing the temporary sibling or
/// renaming it into place.
pub fn write_checkpoint(path: &Path, monitor: &OnlineMonitor, metrics_seq: u64) -> io::Result<()> {
    write_checkpoint_rotating(path, monitor, metrics_seq, 1)
}

/// [`write_checkpoint`] with retention: the newest checkpoint lands at
/// `path`, prior generations shift to `path.1`, `path.2`, …, and only the
/// last `keep` files survive. See [`rotate_and_write`].
///
/// # Errors
///
/// Propagates filesystem errors; `keep == 0` is rejected as
/// [`io::ErrorKind::InvalidInput`].
pub fn write_checkpoint_rotating(
    path: &Path,
    monitor: &OnlineMonitor,
    metrics_seq: u64,
    keep: usize,
) -> io::Result<()> {
    let text = encode(&monitor.export_state(), metrics_seq);
    rotate_and_write(path, &text, keep)?;
    slicing_observe::counter("recover.checkpoints_written", 1);
    Ok(())
}

/// Writes a [`MonitorHub`]'s state as one `slicing.serve-checkpoint/v1`
/// line with the same atomicity and `keep`-generation retention as
/// [`write_checkpoint_rotating`].
///
/// # Errors
///
/// Propagates filesystem errors; `keep == 0` is rejected as
/// [`io::ErrorKind::InvalidInput`].
pub fn write_hub_checkpoint(
    path: &Path,
    hub: &MonitorHub,
    metrics_seq: u64,
    keep: usize,
) -> io::Result<()> {
    let text = slicing_detect::serve_checkpoint::encode(&hub.export_state(), metrics_seq);
    rotate_and_write(path, &text, keep)?;
    slicing_observe::counter("recover.checkpoints_written", 1);
    Ok(())
}

/// The rotation sibling holding the `gen`-th previous checkpoint
/// (`gen >= 1`): `checkpoint.json` → `checkpoint.json.1`, and so on.
fn generation_path(path: &Path, generation: usize) -> PathBuf {
    let mut name = path.as_os_str().to_owned();
    name.push(format!(".{generation}"));
    PathBuf::from(name)
}

/// Atomically installs `text` as the newest generation of `path`, keeping
/// the last `keep` generations and deleting everything older.
///
/// The newest checkpoint is always at `path` itself; the previous one at
/// `path.1`, then `path.2`, and so on up to `path.(keep-1)`. Every
/// install is a rename (the text lands in a `.tmp` sibling first), so a
/// crash at any point leaves each surviving generation either complete or
/// absent — never truncated. A long-running monitor with
/// `--checkpoint-every` therefore uses bounded disk instead of growing
/// without limit.
///
/// # Errors
///
/// `keep == 0` is [`io::ErrorKind::InvalidInput`]; other errors are
/// filesystem failures from the shift, write, or rename.
pub fn rotate_and_write(path: &Path, text: &str, keep: usize) -> io::Result<()> {
    if keep == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "checkpoint retention must keep at least one file",
        ));
    }
    // Shift surviving generations up, oldest first, so each rename's
    // target slot is already vacant or about to be overwritten.
    for generation in (1..keep).rev() {
        let from = if generation == 1 {
            path.to_path_buf()
        } else {
            generation_path(path, generation - 1)
        };
        if from.exists() {
            fs::rename(&from, generation_path(path, generation))?;
        }
    }
    // Drop generations beyond the retention window. Scanning just past
    // the window (rather than globbing) is enough: retention shrinking by
    // more than one step at a time still converges, one tail file per
    // write.
    let mut generation = keep;
    loop {
        let stale = generation_path(path, generation);
        if !stale.exists() {
            break;
        }
        fs::remove_file(&stale)?;
        generation += 1;
    }
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, format!("{text}\n"))?;
    fs::rename(&tmp, path)
}

/// Loads and decodes a checkpoint file written by [`write_checkpoint`].
///
/// The document is first checked against the observe schema registry
/// (the same validation `slicing validate` applies), then decoded with
/// the full semantic checks of the codec. Returns the monitor state and
/// the metrics sequence number the stream should resume from.
///
/// # Errors
///
/// Filesystem errors are returned as-is; malformed or invalid documents
/// surface as [`io::ErrorKind::InvalidData`] carrying the codec's
/// [`BuildError::InvalidState`] detail.
pub fn load_checkpoint(path: &Path) -> io::Result<(MonitorState, u64)> {
    let text = fs::read_to_string(path)?;
    let doc = slicing_observe::json::parse(text.trim()).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })?;
    slicing_observe::schema::validate(&doc).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })?;
    decode_str(text.trim()).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

/// Loads and decodes a `slicing.serve-checkpoint/v1` file written by
/// [`write_hub_checkpoint`], with the same schema-registry revalidation
/// as [`load_checkpoint`]. The caller rebuilds the hub with
/// [`MonitorHub::from_state`] and re-registers every tenant predicate via
/// [`MonitorHub::restore_tenant`] using the sources in the state.
///
/// # Errors
///
/// Filesystem errors are returned as-is; malformed or invalid documents
/// surface as [`io::ErrorKind::InvalidData`].
pub fn load_hub_checkpoint(path: &Path) -> io::Result<(HubState, u64)> {
    let text = fs::read_to_string(path)?;
    let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let doc = slicing_observe::json::parse(text.trim())
        .map_err(|e| invalid(format!("{}: {e}", path.display())))?;
    slicing_observe::schema::validate(&doc)
        .map_err(|e| invalid(format!("{}: {e}", path.display())))?;
    slicing_detect::serve_checkpoint::decode(&doc)
        .map_err(|e| invalid(format!("{}: {e}", path.display())))
}

/// Rebuilds a live monitor from a loaded checkpoint state and re-registers
/// the fault predicate's clauses.
///
/// Clauses are matched to the checkpoint by variable (process + name):
/// [`OnlineMonitor::restore_watch_clause`] revalidates each against the
/// checkpointed per-event truth assignments, so a clause that disagrees
/// with the history it claims to have produced is rejected instead of
/// silently corrupting future verdicts.
///
/// # Errors
///
/// Returns [`BuildError::InvalidState`] if the state is internally
/// inconsistent or a clause contradicts the checkpointed assignments.
pub fn resume_monitor(
    state: &MonitorState,
    clauses: Vec<LocalPredicate>,
) -> Result<OnlineMonitor, BuildError> {
    let mut monitor = OnlineMonitor::from_state(state)?;
    for clause in clauses {
        monitor.restore_watch_clause(clause)?;
    }
    slicing_observe::counter("recover.monitors_resumed", 1);
    Ok(monitor)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("slicing-rotate-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn read(path: &Path) -> String {
        fs::read_to_string(path).unwrap()
    }

    #[test]
    fn rotation_keeps_the_last_k_generations() {
        let dir = tmp_dir("keep");
        let path = dir.join("checkpoint.json");
        for i in 0..6 {
            rotate_and_write(&path, &format!("gen{i}"), 3).unwrap();
        }
        assert_eq!(read(&path), "gen5\n");
        assert_eq!(read(&generation_path(&path, 1)), "gen4\n");
        assert_eq!(read(&generation_path(&path, 2)), "gen3\n");
        assert!(
            !generation_path(&path, 3).exists(),
            "older generations deleted"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn keep_one_matches_the_unrotated_behavior() {
        let dir = tmp_dir("one");
        let path = dir.join("checkpoint.json");
        rotate_and_write(&path, "a", 1).unwrap();
        rotate_and_write(&path, "b", 1).unwrap();
        assert_eq!(read(&path), "b\n");
        assert!(!generation_path(&path, 1).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shrinking_retention_cleans_up_stale_generations() {
        let dir = tmp_dir("shrink");
        let path = dir.join("checkpoint.json");
        for i in 0..5 {
            rotate_and_write(&path, &format!("gen{i}"), 5).unwrap();
        }
        rotate_and_write(&path, "gen5", 2).unwrap();
        assert_eq!(read(&path), "gen5\n");
        assert_eq!(read(&generation_path(&path, 1)), "gen4\n");
        for generation in 2..6 {
            assert!(
                !generation_path(&path, generation).exists(),
                "generation {generation}"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_retention_is_rejected() {
        let dir = tmp_dir("zero");
        let path = dir.join("checkpoint.json");
        let err = rotate_and_write(&path, "x", 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(!path.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hub_checkpoints_rotate_and_reload() {
        use slicing_computation::Value;
        use slicing_predicates::{Conjunctive, LocalPredicate};

        let dir = tmp_dir("hub");
        let path = dir.join("serve.json");
        let mut hub = MonitorHub::new(2);
        let a = hub.declare_var(0, "x", Value::Int(0)).unwrap();
        let b = hub.declare_var(1, "x", Value::Int(0)).unwrap();
        let pred = || {
            Conjunctive::new(vec![
                LocalPredicate::int(a, "x@0 > 0", |v| v > 0),
                LocalPredicate::int(b, "x@1 > 0", |v| v > 0),
            ])
        };
        hub.add_tenant("t", &pred(), "x@0 > 0 && x@1 > 0").unwrap();
        for i in 0..3 {
            hub.observe(i % 2, &[(if i % 2 == 0 { a } else { b }, Value::Int(1))])
                .unwrap();
            write_hub_checkpoint(&path, &hub, i as u64, 2).unwrap();
        }
        assert!(generation_path(&path, 1).exists());
        assert!(!generation_path(&path, 2).exists());
        let (state, seq) = load_hub_checkpoint(&path).unwrap();
        assert_eq!(seq, 2);
        let mut resumed = MonitorHub::from_state(&state).unwrap();
        resumed.restore_tenant("t", &pred()).unwrap();
        assert!(resumed.unrestored_clauses().is_empty());
        assert_eq!(resumed.export_state(), hub.export_state());
        fs::remove_dir_all(&dir).unwrap();
    }
}
