//! Checkpoint files: durable `slicing.checkpoint/v1` snapshots of a
//! running [`OnlineMonitor`], written so a killed monitor can restart
//! mid-stream and converge to the same verdicts as an uninterrupted run.
//!
//! This is the file layer over [`slicing_detect::checkpoint`]'s codec:
//!
//! - [`write_checkpoint`] serializes the monitor's exported state (plus
//!   the metrics-stream cursor) and writes it *atomically* — to a
//!   `.tmp` sibling first, then renamed over the target — so a crash
//!   mid-write leaves the previous checkpoint intact rather than a
//!   truncated JSON document;
//! - [`load_checkpoint`] reads a file back, revalidates it against the
//!   observe schema registry, and decodes it;
//! - [`resume_monitor`] rebuilds a live monitor from the loaded state
//!   and re-registers the caller's watch clauses (closures cannot be
//!   serialized; each is cross-validated against the checkpointed truth
//!   assignments).

use std::fs;
use std::io;
use std::path::Path;

use slicing_computation::BuildError;
use slicing_detect::checkpoint::{decode_str, encode};
use slicing_detect::{MonitorState, OnlineMonitor};
use slicing_predicates::LocalPredicate;

/// Atomically writes `monitor`'s current state (and the metrics-stream
/// sequence cursor) to `path` as one `slicing.checkpoint/v1` line.
///
/// # Errors
///
/// Propagates filesystem errors from writing the temporary sibling or
/// renaming it into place.
pub fn write_checkpoint(path: &Path, monitor: &OnlineMonitor, metrics_seq: u64) -> io::Result<()> {
    let text = encode(&monitor.export_state(), metrics_seq);
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, text + "\n")?;
    fs::rename(&tmp, path)?;
    slicing_observe::counter("recover.checkpoints_written", 1);
    Ok(())
}

/// Loads and decodes a checkpoint file written by [`write_checkpoint`].
///
/// The document is first checked against the observe schema registry
/// (the same validation `slicing validate` applies), then decoded with
/// the full semantic checks of the codec. Returns the monitor state and
/// the metrics sequence number the stream should resume from.
///
/// # Errors
///
/// Filesystem errors are returned as-is; malformed or invalid documents
/// surface as [`io::ErrorKind::InvalidData`] carrying the codec's
/// [`BuildError::InvalidState`] detail.
pub fn load_checkpoint(path: &Path) -> io::Result<(MonitorState, u64)> {
    let text = fs::read_to_string(path)?;
    let doc = slicing_observe::json::parse(text.trim()).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })?;
    slicing_observe::schema::validate(&doc).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })?;
    decode_str(text.trim()).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

/// Rebuilds a live monitor from a loaded checkpoint state and re-registers
/// the fault predicate's clauses.
///
/// Clauses are matched to the checkpoint by variable (process + name):
/// [`OnlineMonitor::restore_watch_clause`] revalidates each against the
/// checkpointed per-event truth assignments, so a clause that disagrees
/// with the history it claims to have produced is rejected instead of
/// silently corrupting future verdicts.
///
/// # Errors
///
/// Returns [`BuildError::InvalidState`] if the state is internally
/// inconsistent or a clause contradicts the checkpointed assignments.
pub fn resume_monitor(
    state: &MonitorState,
    clauses: Vec<LocalPredicate>,
) -> Result<OnlineMonitor, BuildError> {
    let mut monitor = OnlineMonitor::from_state(state)?;
    for clause in clauses {
        monitor.restore_watch_clause(clause)?;
    }
    slicing_observe::counter("recover.monitors_resumed", 1);
    Ok(monitor)
}
