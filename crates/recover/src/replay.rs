//! Rollback and controlled replay: truncate the faulty run at its
//! recovery line, re-seed the runtime, re-execute, and verify — with a
//! bounded retry loop whose scheduler gets progressively more conservative
//! (exponential backoff on the delivery weight).

use slicing_computation::{Computation, Cut};
use slicing_core::PredicateSpec;
use slicing_detect::{detect_resilient, Engine, ResilientConfig};
use slicing_observe::Level;
use slicing_sim::fault::inject_plan;
use slicing_sim::{resume, FaultPlan, Protocol, SimConfig};

use crate::line::{recovery_line, LineMethod, RecoveryLine};

/// Bounded-retry policy for the replay loop.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum number of rollback-and-replay attempts (≥ 1).
    pub max_attempts: u32,
    /// Exponential backoff: halve the scheduler's `deliver_weight` on each
    /// successive attempt (clamped to 1), making later replays favour
    /// spontaneous steps over racy deliveries.
    pub backoff: bool,
    /// Re-inject the original fault plan into the first this-many
    /// attempts. Models a deterministically recurring environment fault —
    /// and makes retries observable in tests.
    pub reinject_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: true,
            reinject_attempts: 0,
        }
    }
}

/// Everything [`recover`] needs besides the protocol and the computation.
#[derive(Debug, Clone)]
pub struct RecoverConfig {
    /// Base simulator configuration; each attempt derives its seed and
    /// delivery weight from it.
    pub sim: SimConfig,
    /// The retry loop's policy.
    pub retry: RetryPolicy,
    /// Budgets for the resilient detection chain (initial detection and
    /// per-attempt verification).
    pub detect: ResilientConfig,
    /// Cut budget of the exhaustive recovery-line fallback.
    pub fallback_max_cuts: u64,
    /// The fault plan to re-inject during `retry.reinject_attempts`.
    pub reinject: Option<FaultPlan>,
}

impl Default for RecoverConfig {
    fn default() -> Self {
        RecoverConfig {
            sim: SimConfig::default(),
            retry: RetryPolicy::default(),
            detect: ResilientConfig::default(),
            fallback_max_cuts: 200_000,
            reinject: None,
        }
    }
}

/// Final verdict of a [`recover`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryVerdict {
    /// No global fault was detected; nothing to recover.
    CleanAlready,
    /// Rollback and replay produced a violation-free run.
    Recovered,
    /// No safe cut exists except the empty cut: restart from scratch.
    Unrecoverable,
    /// Every replay attempt re-derived a violation.
    RetriesExhausted,
    /// A budget (detection chain or line fallback) exhausted before an
    /// answer; the verdict is inconclusive, not a clean bill.
    Undetermined,
}

impl RecoveryVerdict {
    /// Stable lowercase name, used in reports.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryVerdict::CleanAlready => "clean-already",
            RecoveryVerdict::Recovered => "recovered",
            RecoveryVerdict::Unrecoverable => "unrecoverable",
            RecoveryVerdict::RetriesExhausted => "retries-exhausted",
            RecoveryVerdict::Undetermined => "undetermined",
        }
    }
}

impl std::fmt::Display for RecoveryVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One replay attempt, as recorded in the outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptReport {
    /// Seed the attempt's scheduler ran under.
    pub seed: u64,
    /// Delivery weight after backoff.
    pub deliver_weight: u32,
    /// Whether the fault plan was re-injected into this attempt.
    pub reinjected: bool,
    /// Whether verification found a violation again.
    pub violation_found: bool,
}

/// The structured result of a [`recover`] run.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// Final verdict.
    pub verdict: RecoveryVerdict,
    /// Whether the initial detection found a violation.
    pub detected: bool,
    /// Engine that produced the initial detection verdict.
    pub engine: Option<Engine>,
    /// Number of engine fallbacks during initial detection.
    pub engine_fallbacks: usize,
    /// The violating cut the initial detection found.
    pub witness: Option<Cut>,
    /// The recovery line rolled back to.
    pub line: Option<Cut>,
    /// How the line was computed.
    pub line_method: Option<LineMethod>,
    /// Every replay attempt, in order.
    pub attempts: Vec<AttemptReport>,
    /// The verified violation-free computation, when recovered.
    pub recovered: Option<Computation>,
}

impl RecoveryOutcome {
    fn new(verdict: RecoveryVerdict) -> Self {
        RecoveryOutcome {
            verdict,
            detected: false,
            engine: None,
            engine_fallbacks: 0,
            witness: None,
            line: None,
            line_method: None,
            attempts: Vec::new(),
            recovered: None,
        }
    }

    /// Renders the outcome as one `slicing.recovery-report/v1` JSON
    /// document (machine-readable; the CI soak step validates it).
    pub fn to_json(&self) -> String {
        use slicing_observe::json::{JsonArray, JsonObject};
        let cut_json = |cut: &Cut| {
            cut.counts()
                .iter()
                .fold(JsonArray::new(), |arr, c| arr.push_raw(&c.to_string()))
                .finish()
        };
        let mut obj = JsonObject::new()
            .str("schema", slicing_observe::schema::RECOVERY_REPORT)
            .str("verdict", self.verdict.name())
            .bool("detected", self.detected)
            .opt_str("engine", self.engine.map(Engine::name))
            .u64("engine_fallbacks", self.engine_fallbacks as u64);
        obj = match &self.witness {
            Some(cut) => obj.raw("witness", &cut_json(cut)),
            None => obj.raw("witness", "null"),
        };
        obj = match &self.line {
            Some(cut) => obj.raw("line", &cut_json(cut)),
            None => obj.raw("line", "null"),
        };
        obj = obj.opt_str("line_method", self.line_method.map(LineMethod::name));
        let attempts = self
            .attempts
            .iter()
            .fold(JsonArray::new(), |arr, a| {
                arr.push_raw(
                    &JsonObject::new()
                        .u64("seed", a.seed)
                        .u64("deliver_weight", u64::from(a.deliver_weight))
                        .bool("reinjected", a.reinjected)
                        .bool("violation_found", a.violation_found)
                        .finish(),
                )
            })
            .finish();
        obj.raw("attempts", &attempts)
            .u64("replays", self.attempts.len() as u64)
            .finish()
    }
}

/// Runs the whole fault-tolerance loop on `faulty`:
///
/// 1. **Detect** a global fault with the resilient engine chain.
/// 2. **Locate** the recovery line (slice-based, exhaustive fallback).
/// 3. **Roll back** to the line and **replay** with a fresh protocol
///    instance from `make_protocol`, a fresh seed, and (on later
///    attempts) a more conservative scheduler.
/// 4. **Verify** the replayed run; retry up to the policy's bound.
///
/// `spec_of` must build the fault specification *against the computation
/// it is given* — replayed runs can hold variable values the original
/// never had (e.g. fresh partition numbers), so the specification is
/// re-derived per attempt.
pub fn recover<P, F, S>(
    mut make_protocol: F,
    spec_of: S,
    faulty: &Computation,
    cfg: &RecoverConfig,
) -> RecoveryOutcome
where
    P: Protocol,
    F: FnMut() -> P,
    S: Fn(&Computation) -> PredicateSpec,
{
    let _span = slicing_observe::span("recover.run");
    let spec = spec_of(faulty);
    let detection = detect_resilient(faulty, &spec, &cfg.detect);
    let mut outcome = RecoveryOutcome::new(RecoveryVerdict::Undetermined);
    outcome.engine = Some(detection.engine);
    outcome.engine_fallbacks = detection.fallbacks();
    if detection.exhausted {
        slicing_observe::counter("recover.fallback_exhausted", 1);
        return outcome;
    }
    outcome.detected = detection.detected();
    if !outcome.detected {
        outcome.verdict = RecoveryVerdict::CleanAlready;
        return outcome;
    }
    outcome.witness = detection.detection.found.clone();

    let line = match recovery_line(faulty, &spec, cfg.fallback_max_cuts) {
        RecoveryLine::Clean { top } => {
            // Detection found a witness, so a clean line can only mean the
            // two disagree — treat the stronger evidence (the witness) as
            // authoritative and roll back conservatively to the bottom.
            slicing_observe::message(Level::Warn, || {
                "recovery line reported clean despite a detected witness; \
                 rolling back to bottom"
                    .to_owned()
            });
            drop(top);
            Cut::bottom(faulty.num_processes())
        }
        RecoveryLine::Line { cut, method } => {
            outcome.line_method = Some(method);
            cut
        }
        RecoveryLine::Unrecoverable => {
            outcome.verdict = RecoveryVerdict::Unrecoverable;
            slicing_observe::counter("recover.unrecoverable", 1);
            return outcome;
        }
        RecoveryLine::Undetermined => {
            // `recover.fallback_exhausted` was already counted inside.
            return outcome;
        }
    };
    outcome.line = Some(line.clone());

    for attempt in 0..cfg.retry.max_attempts.max(1) {
        let deliver_weight = if cfg.retry.backoff {
            (cfg.sim.deliver_weight >> attempt).max(1)
        } else {
            cfg.sim.deliver_weight
        };
        let attempt_cfg = SimConfig {
            seed: cfg.sim.seed.wrapping_add(u64::from(attempt) + 1),
            deliver_weight,
            ..cfg.sim.clone()
        };
        let mut protocol = make_protocol();
        let mut replayed = match resume(&mut protocol, faulty, &line, &attempt_cfg) {
            Ok(c) => c,
            Err(e) => {
                slicing_observe::message(Level::Error, || format!("replay failed to build: {e}"));
                return outcome;
            }
        };
        let mut reinjected = false;
        if attempt < cfg.retry.reinject_attempts {
            if let Some(plan) = &cfg.reinject {
                match inject_plan(&replayed, plan) {
                    Ok(c) => {
                        replayed = c;
                        reinjected = true;
                    }
                    Err(e) => {
                        // The replayed run may be too short for the plan's
                        // coordinates; the environment fault simply misses.
                        slicing_observe::message(Level::Debug, || {
                            format!("re-injection skipped: {e}")
                        });
                    }
                }
            }
        }
        let verify = detect_resilient(&replayed, &spec_of(&replayed), &cfg.detect);
        if verify.exhausted {
            slicing_observe::counter("recover.fallback_exhausted", 1);
            outcome.attempts.push(AttemptReport {
                seed: attempt_cfg.seed,
                deliver_weight,
                reinjected,
                violation_found: verify.detected(),
            });
            return outcome;
        }
        let violation_found = verify.detected();
        outcome.attempts.push(AttemptReport {
            seed: attempt_cfg.seed,
            deliver_weight,
            reinjected,
            violation_found,
        });
        if !violation_found {
            slicing_observe::counter("recover.recovered", 1);
            outcome.verdict = RecoveryVerdict::Recovered;
            outcome.recovered = Some(replayed);
            return outcome;
        }
        slicing_observe::counter("recover.retries", 1);
        slicing_observe::message(Level::Info, || {
            format!(
                "replay attempt {} (seed {}, deliver_weight {}) re-derived a violation; retrying",
                attempt + 1,
                attempt_cfg.seed,
                deliver_weight,
            )
        });
    }
    slicing_observe::counter("recover.retries_exhausted", 1);
    outcome.verdict = RecoveryVerdict::RetriesExhausted;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_sim::fault::{inject_kind, FaultKind, FaultSpec};
    use slicing_sim::primary_secondary::{self, PrimarySecondary};
    use slicing_sim::run;

    fn ps_config(seed: u64) -> RecoverConfig {
        RecoverConfig {
            sim: SimConfig {
                seed,
                max_events_per_process: 8,
                ..SimConfig::default()
            },
            ..RecoverConfig::default()
        }
    }

    /// Faulty PS runs whose violation is actually detectable, each with
    /// the plan that corrupted it and the originating seed.
    fn detectable_faulty_runs(n: usize, want: usize) -> Vec<(Computation, FaultPlan, u64)> {
        let mut found = Vec::new();
        for seed in 0..40u64 {
            let cfg = ps_config(seed);
            let clean = run(&mut PrimarySecondary::new(n), &cfg.sim).unwrap();
            for victim in 0..n {
                let p = clean.process(victim);
                if clean.len(p) < 3 {
                    continue;
                }
                let kind = FaultKind::Corrupt(FaultSpec {
                    process: p,
                    position: clean.len(p) / 2,
                    var_name: "isSecondary".to_owned(),
                    value: slicing_computation::Value::Bool(false),
                    transient: false,
                });
                let Ok(faulty) = inject_kind(&clean, &kind) else {
                    continue;
                };
                let spec = primary_secondary::violation_spec(&faulty);
                let d = detect_resilient(&faulty, &spec, &ResilientConfig::default());
                if d.detected() {
                    found.push((faulty, FaultPlan::single(kind), seed));
                    if found.len() >= want {
                        return found;
                    }
                }
            }
        }
        assert!(
            !found.is_empty(),
            "no seed produced a detectable primary-secondary fault"
        );
        found
    }

    fn detectable_faulty_run(n: usize) -> (Computation, FaultPlan, u64) {
        detectable_faulty_runs(n, 1).pop().unwrap()
    }

    #[test]
    fn clean_run_is_clean_already() {
        let cfg = ps_config(3);
        let clean = run(&mut PrimarySecondary::new(3), &cfg.sim).unwrap();
        let outcome = recover(
            || PrimarySecondary::new(3),
            primary_secondary::violation_spec,
            &clean,
            &cfg,
        );
        assert_eq!(outcome.verdict, RecoveryVerdict::CleanAlready);
        assert!(!outcome.detected && outcome.attempts.is_empty());
    }

    #[test]
    fn detected_fault_recovers_via_rollback_and_replay() {
        let (faulty, _, seed) = detectable_faulty_run(3);
        let cfg = ps_config(seed);
        let outcome = recover(
            || PrimarySecondary::new(3),
            primary_secondary::violation_spec,
            &faulty,
            &cfg,
        );
        assert_eq!(outcome.verdict, RecoveryVerdict::Recovered, "{outcome:?}");
        assert!(outcome.detected);
        assert!(outcome.witness.is_some() && outcome.line.is_some());
        let recovered = outcome.recovered.as_ref().unwrap();
        // The verified run really is violation-free.
        let spec = primary_secondary::violation_spec(recovered);
        let d = detect_resilient(recovered, &spec, &ResilientConfig::default());
        assert!(!d.detected());
        // And the line is below the witness-bearing history's top.
        assert!(outcome.line.as_ref().unwrap().leq(&faulty.top_cut()));
    }

    #[test]
    fn reinjection_makes_the_first_attempt_fail_then_recovers() {
        // The plan's coordinates do not always exist in the replayed run
        // (it can be shorter on the victim process); probe scenarios until
        // one actually re-injects.
        let mut reinjection_seen = false;
        for (faulty, plan, seed) in detectable_faulty_runs(3, 8) {
            let mut cfg = ps_config(seed);
            cfg.retry.max_attempts = 5;
            cfg.retry.reinject_attempts = 1;
            cfg.reinject = Some(plan);
            let outcome = recover(
                || PrimarySecondary::new(3),
                primary_secondary::violation_spec,
                &faulty,
                &cfg,
            );
            // The re-injected attempt may or may not re-derive the
            // violation (the replayed schedule differs), but the loop must
            // end in recovery either way, and any failed attempt must be
            // recorded.
            assert_eq!(outcome.verdict, RecoveryVerdict::Recovered, "{outcome:?}");
            if outcome.attempts[0].reinjected {
                reinjection_seen = true;
                if outcome.attempts.len() > 1 {
                    assert!(outcome.attempts[0].violation_found);
                }
                break;
            }
        }
        assert!(reinjection_seen, "no scenario ever re-injected its plan");
    }

    #[test]
    fn backoff_halves_the_delivery_weight() {
        let (faulty, plan, seed) = detectable_faulty_run(3);
        let mut cfg = ps_config(seed);
        cfg.retry.max_attempts = 4;
        cfg.retry.reinject_attempts = 4;
        cfg.reinject = Some(plan);
        let outcome = recover(
            || PrimarySecondary::new(3),
            primary_secondary::violation_spec,
            &faulty,
            &cfg,
        );
        for (i, a) in outcome.attempts.iter().enumerate() {
            assert_eq!(
                a.deliver_weight,
                (cfg.sim.deliver_weight >> i).max(1),
                "attempt {i}"
            );
            assert_eq!(a.seed, cfg.sim.seed + i as u64 + 1);
        }
    }

    #[test]
    fn outcome_serializes_to_the_report_schema() {
        let (faulty, _, seed) = detectable_faulty_run(3);
        let cfg = ps_config(seed);
        let outcome = recover(
            || PrimarySecondary::new(3),
            primary_secondary::violation_spec,
            &faulty,
            &cfg,
        );
        let json = outcome.to_json();
        assert!(json.starts_with("{\"schema\":\"slicing.recovery-report/v1\""));
        assert!(json.contains("\"verdict\":\"recovered\""));
        assert!(json.contains("\"attempts\":["));
        assert!(json.contains("\"line\":["));
    }
}
