//! Recovery-line computation: the maximal consistent cut with no global
//! fault in its causal past.
//!
//! A cut `C` is *safe* when no fault-satisfying cut `D` lies below it
//! (`D ≤ C`): rolling the system back to a safe cut erases every state
//! that could have causally produced the fault. The *recovery line* is a
//! safe cut of maximum size — it discards as little computation as
//! possible, the software analogue of the checkpointing literature's
//! recovery line.
//!
//! The slice gives it almost for free. Every fault cut belongs to the
//! slice of the fault specification, and every slice cut contains the
//! slice's bottom `W`. Hence any cut `C` with `¬(W ≤ C)` is safe: a fault
//! cut below `C` would force `W ≤ C`. This criterion is *sound* for the
//! approximate slices of `And`/`Or` specifications and *exact* for lean
//! slices (conjunctive/regular predicates, where `W` itself is a fault
//! cut). Maximising over the criterion needs only one candidate per
//! process: the largest consistent cut that stays below `W` on that
//! process.

use slicing_computation::lattice::for_each_cut;
use slicing_computation::{Computation, Cut, GlobalState};
use slicing_core::PredicateSpec;

/// How a [`RecoveryLine`] was established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineMethod {
    /// The fault slice is empty — no fault cut exists; trivially exact.
    EmptySlice,
    /// Slice-based: maximal cut not above the fault slice's bottom. Exact
    /// for lean slices, conservative (possibly smaller than the true
    /// maximum) for approximate ones.
    SliceBottom,
    /// Exhaustive lattice search against the exact predicate; always
    /// exact, exponential in the worst case.
    Exhaustive,
}

impl LineMethod {
    /// Stable lowercase name, used in reports.
    pub fn name(self) -> &'static str {
        match self {
            LineMethod::EmptySlice => "empty-slice",
            LineMethod::SliceBottom => "slice-bottom",
            LineMethod::Exhaustive => "exhaustive",
        }
    }
}

/// The outcome of [`recovery_line`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryLine {
    /// No cut satisfies the fault specification: the entire history is
    /// safe and nothing needs to be rolled back.
    Clean {
        /// The computation's top cut (the full history).
        top: Cut,
    },
    /// The maximal provably-safe consistent cut.
    Line {
        /// The recovery line itself.
        cut: Cut,
        /// How it was computed.
        method: LineMethod,
    },
    /// Even the bottom cut (initial states only) has a fault at or below
    /// it: there is no safe cut except the trivial empty cut, i.e. the
    /// system must restart from scratch.
    Unrecoverable,
    /// The slice criterion was inconclusive (approximate slice with a
    /// bottom at the lattice bottom) and the exhaustive fallback exceeded
    /// its cut budget.
    Undetermined,
}

impl RecoveryLine {
    /// The cut to roll back to, when one exists.
    pub fn cut(&self) -> Option<&Cut> {
        match self {
            RecoveryLine::Clean { top } => Some(top),
            RecoveryLine::Line { cut, .. } => Some(cut),
            RecoveryLine::Unrecoverable | RecoveryLine::Undetermined => None,
        }
    }
}

/// The maximum consistent cut of `comp` that is componentwise `≤ bound`
/// (after clamping `bound` into range). Computed by the standard retreat
/// fixpoint: repeatedly drop a frontier event whose causal past is not
/// inside the cut. The set of consistent cuts below a bound is closed
/// under join, so the maximum exists and the fixpoint finds it.
pub fn max_consistent_cut_below(comp: &Computation, bound: &Cut) -> Cut {
    let mut c = bound.clone();
    for p in comp.processes() {
        c.set_count(p, c.count(p).clamp(1, comp.len(p)));
    }
    loop {
        let mut changed = false;
        for p in comp.processes() {
            while c.count(p) > 1 {
                let frontier = comp.event_at(p, c.count(p) - 1);
                if comp.min_cut(frontier).leq(&c) {
                    break;
                }
                c.set_count(p, c.count(p) - 1);
                changed = true;
            }
        }
        if !changed {
            debug_assert!(comp.is_consistent(&c));
            return c;
        }
    }
}

/// Computes the recovery line of `comp` for the fault specification
/// `spec` (see the module docs for the criterion).
///
/// When the slice criterion cannot decide — the slice is approximate and
/// its bottom is the lattice bottom — the exhaustive fallback
/// [`recovery_line_exhaustive`] runs under `fallback_max_cuts`.
pub fn recovery_line(
    comp: &Computation,
    spec: &PredicateSpec,
    fallback_max_cuts: u64,
) -> RecoveryLine {
    let _span = slicing_observe::span("recover.line");
    let top = comp.top_cut();
    let slice = spec.slice(comp);
    let Some(w) = slice.bottom_cut() else {
        // Sound even for approximate slices: empty over-approximation
        // means no satisfying cut at all.
        return RecoveryLine::Clean { top };
    };
    let bottom = Cut::bottom(comp.num_processes());
    if *w == bottom {
        // ¬(W ≤ C) rejects every cut. For a lean slice W itself is a
        // fault cut, so nothing is safe; otherwise the slice is
        // approximate and only the exact lattice search can answer.
        if spec.eval(&GlobalState::new(comp, &bottom)) {
            return RecoveryLine::Unrecoverable;
        }
        return recovery_line_exhaustive(comp, spec, fallback_max_cuts);
    }
    // One candidate per process p with W_p ≥ 2: the largest consistent cut
    // with C_p < W_p. Any criterion-safe cut C has some such p and is
    // dominated by that candidate, so the best candidate is the maximum.
    let mut best: Option<Cut> = None;
    for p in comp.processes() {
        if w.count(p) < 2 {
            continue;
        }
        let mut bound = top.clone();
        bound.set_count(p, w.count(p) - 1);
        let candidate = max_consistent_cut_below(comp, &bound);
        if best.as_ref().is_none_or(|b| candidate.size() > b.size()) {
            best = Some(candidate);
        }
    }
    let cut = best.expect("a slice bottom above the lattice bottom has some count >= 2");
    slicing_observe::message(slicing_observe::Level::Debug, || {
        format!("recovery line {cut} via slice bottom {w}")
    });
    RecoveryLine::Line {
        cut,
        method: LineMethod::SliceBottom,
    }
}

/// Exact recovery line by explicit lattice enumeration: collects the
/// minimal fault cuts, then takes the largest cut dominating none of
/// them. Exponential in the worst case; `max_cuts` bounds the enumeration
/// and exceeding it yields [`RecoveryLine::Undetermined`] (and bumps the
/// `recover.fallback_exhausted` counter).
pub fn recovery_line_exhaustive(
    comp: &Computation,
    spec: &PredicateSpec,
    max_cuts: u64,
) -> RecoveryLine {
    let _span = slicing_observe::span("recover.line_exhaustive");
    let mut fault_min: Vec<Cut> = Vec::new();
    let mut seen = 0u64;
    let mut over_budget = false;
    for_each_cut(comp, |cut| {
        seen += 1;
        if seen > max_cuts {
            over_budget = true;
            return false;
        }
        if spec.eval(&GlobalState::new(comp, cut)) && !fault_min.iter().any(|f| f.leq(cut)) {
            fault_min.retain(|f| !cut.leq(f));
            fault_min.push(cut.clone());
        }
        true
    });
    if over_budget {
        slicing_observe::counter("recover.fallback_exhausted", 1);
        return RecoveryLine::Undetermined;
    }
    if fault_min.is_empty() {
        return RecoveryLine::Clean {
            top: comp.top_cut(),
        };
    }
    let bottom = Cut::bottom(comp.num_processes());
    if fault_min.iter().any(|f| f.leq(&bottom)) {
        return RecoveryLine::Unrecoverable;
    }
    let mut best: Option<Cut> = None;
    for_each_cut(comp, |cut| {
        if !fault_min.iter().any(|f| f.leq(cut))
            && best.as_ref().is_none_or(|b| cut.size() > b.size())
        {
            best = Some(cut.clone());
        }
        true
    });
    match best {
        Some(cut) => RecoveryLine::Line {
            cut,
            method: LineMethod::Exhaustive,
        },
        None => RecoveryLine::Unrecoverable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::test_fixtures::figure1;
    use slicing_predicates::{Conjunctive, LocalPredicate};
    use slicing_sim::fault::inject_primary_secondary_fault;
    use slicing_sim::primary_secondary::{self, PrimarySecondary};
    use slicing_sim::{run, SimConfig};

    /// Brute-force safety: no cut below `c` (inclusive) satisfies `spec`.
    fn is_safe(comp: &Computation, spec: &PredicateSpec, c: &Cut) -> bool {
        let mut safe = true;
        for_each_cut(comp, |cut| {
            if cut.leq(c) && spec.eval(&GlobalState::new(comp, cut)) {
                safe = false;
                return false;
            }
            true
        });
        safe
    }

    /// Brute-force maximum safe cut size, or `None` when even bottom is
    /// unsafe.
    fn oracle_max_safe_size(comp: &Computation, spec: &PredicateSpec) -> Option<u64> {
        let mut faults: Vec<Cut> = Vec::new();
        for_each_cut(comp, |cut| {
            if spec.eval(&GlobalState::new(comp, cut)) {
                faults.push(cut.clone());
            }
            true
        });
        let mut best: Option<u64> = None;
        for_each_cut(comp, |cut| {
            if !faults.iter().any(|f| f.leq(cut)) {
                best = Some(best.unwrap_or(0).max(cut.size()));
            }
            true
        });
        best
    }

    #[test]
    fn clean_history_needs_no_rollback() {
        let comp = figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let spec = PredicateSpec::conjunctive(Conjunctive::new(vec![LocalPredicate::int(
            x1,
            "x1 > 99",
            |x| x > 99,
        )]));
        assert_eq!(
            recovery_line(&comp, &spec, 10_000),
            RecoveryLine::Clean {
                top: comp.top_cut()
            }
        );
    }

    #[test]
    fn lean_slice_line_matches_the_exhaustive_oracle() {
        let comp = figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let x3 = comp.var(comp.process(2), "x3").unwrap();
        let spec = PredicateSpec::conjunctive(Conjunctive::new(vec![
            LocalPredicate::int(x1, "x1 > 1", |x| x > 1),
            LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3),
        ]));
        let line = recovery_line(&comp, &spec, 10_000);
        let RecoveryLine::Line { cut, method } = &line else {
            panic!("expected a line, got {line:?}");
        };
        assert_eq!(*method, LineMethod::SliceBottom);
        assert!(is_safe(&comp, &spec, cut));
        assert_eq!(Some(cut.size()), oracle_max_safe_size(&comp, &spec));
    }

    #[test]
    fn fault_at_the_bottom_is_unrecoverable() {
        let comp = figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        // Satisfied by the initial state of p0 (x1 starts at 1 in the
        // fixture), so the bottom cut is already faulty.
        let spec = PredicateSpec::conjunctive(Conjunctive::new(vec![LocalPredicate::int(
            x1,
            "x1 >= 1",
            |x| x >= 1,
        )]));
        assert!(spec.eval(&GlobalState::new(&comp, &Cut::bottom(comp.num_processes()))));
        assert_eq!(
            recovery_line(&comp, &spec, 10_000),
            RecoveryLine::Unrecoverable
        );
    }

    #[test]
    fn injected_ps_faults_get_safe_maximal_lines() {
        let mut checked = 0;
        for seed in 0..12u64 {
            let cfg = SimConfig {
                seed,
                max_events_per_process: 7,
                ..SimConfig::default()
            };
            let comp = run(&mut PrimarySecondary::new(3), &cfg).unwrap();
            let Some((faulty, _)) = inject_primary_secondary_fault(&comp, seed) else {
                continue;
            };
            let spec = primary_secondary::violation_spec(&faulty);
            match recovery_line(&faulty, &spec, 1_000_000) {
                RecoveryLine::Line { cut, .. } => {
                    assert!(is_safe(&faulty, &spec, &cut), "seed {seed}: unsafe line");
                    checked += 1;
                }
                RecoveryLine::Clean { .. } => {
                    // The injection produced no consistent violating cut.
                    assert_eq!(
                        oracle_max_safe_size(&faulty, &spec),
                        Some(faulty.top_cut().size()),
                        "seed {seed}"
                    );
                }
                other => panic!("seed {seed}: unexpected {other:?}"),
            }
        }
        assert!(checked >= 2, "too few faulty scenarios exercised a line");
    }

    #[test]
    fn exhaustive_fallback_matches_oracle_and_respects_budget() {
        let comp = figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let x3 = comp.var(comp.process(2), "x3").unwrap();
        let spec = PredicateSpec::and(vec![
            PredicateSpec::conjunctive(Conjunctive::new(vec![LocalPredicate::int(
                x1,
                "x1 > 1",
                |x| x > 1,
            )])),
            PredicateSpec::conjunctive(Conjunctive::new(vec![LocalPredicate::int(
                x3,
                "x3 <= 3",
                |x| x <= 3,
            )])),
        ]);
        let exhaustive = recovery_line_exhaustive(&comp, &spec, 1_000_000);
        match &exhaustive {
            RecoveryLine::Line { cut, method } => {
                assert_eq!(*method, LineMethod::Exhaustive);
                assert!(is_safe(&comp, &spec, cut));
                assert_eq!(Some(cut.size()), oracle_max_safe_size(&comp, &spec));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            recovery_line_exhaustive(&comp, &spec, 2),
            RecoveryLine::Undetermined
        );
    }

    #[test]
    fn max_consistent_cut_below_is_maximal() {
        let comp = figure1();
        let top = comp.top_cut();
        let below_top = max_consistent_cut_below(&comp, &top);
        assert_eq!(below_top, top, "the top cut is consistent");
        // For every bound, the result is consistent, below the bound, and
        // no other consistent cut below the bound exceeds it.
        for counts in [[1u32, 2, 2], [2, 1, 3], [3, 3, 1]] {
            let bound = Cut::from(counts.to_vec());
            let m = max_consistent_cut_below(&comp, &bound);
            assert!(comp.is_consistent(&m));
            assert!(m.leq(&bound));
            for_each_cut(&comp, |cut| {
                if cut.leq(&bound) {
                    assert!(cut.leq(&m), "{cut} below {bound} but not below {m}");
                }
                true
            });
        }
    }
}
