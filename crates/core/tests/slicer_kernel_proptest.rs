//! Property tests pinning the kernelized slicer stack — flat J-tables,
//! packed J-row streaming, warm-arena `Slice::new` — to the brute-force
//! reference semantics the pre-kernel (HashMap + per-edge clone)
//! implementation computed, specifically across the 16-process
//! inline→spill boundary where `Cut` storage, hashing, and the J-table
//! all take the heap path. The kernel is an optimization: identical
//! slice cuts, identical least-cut (J) tables, identical graft algebra.

use proptest::prelude::*;

use slicing_computation::lattice::all_cuts;
use slicing_computation::oracle::{expected_slice_cuts, sublattice_closure};
use slicing_computation::test_fixtures::{random_computation, RandomConfig};
use slicing_computation::{Computation, Cut, EventId};
use slicing_core::{graft_and, graft_or, slice_conjunctive, slice_linear, Node, Slice};
use slicing_predicates::{Conjunctive, LocalPredicate, Predicate};

/// Computations spanning the spill boundary: one event per process and a
/// high message rate keep the lattice small enough for the exhaustive
/// reference while the width forces spilled cuts.
fn wide() -> impl Strategy<Value = Computation> {
    (any::<u64>(), 15usize..=17).prop_map(|(seed, n)| {
        let cfg = RandomConfig {
            processes: n,
            events_per_process: 1,
            send_percent: 70,
            recv_percent: 70,
            value_range: 2,
        };
        random_computation(seed, &cfg)
    })
}

/// A wide computation plus random constraint edges, as the slicers emit
/// them (event→event advancing constraints, ⊤→event exclusions).
fn wide_with_edges() -> impl Strategy<Value = (Computation, Vec<(Node, Node)>)> {
    wide()
        .prop_flat_map(|comp| {
            let num_events = comp.num_events();
            let edges = prop::collection::vec((0..num_events, 0..num_events, 0u8..10), 0..8);
            (Just(comp), edges)
        })
        .prop_map(|(comp, raw)| {
            let edges = raw
                .into_iter()
                .map(|(u, v, kind)| {
                    let target = Node::Event(EventId::new(v));
                    if kind == 0 {
                        (Node::Top, target)
                    } else {
                        (Node::Event(EventId::new(u)), target)
                    }
                })
                .collect();
            (comp, edges)
        })
}

/// The reference definition the pre-kernel slicer implemented: a cut is
/// in the slice iff it is consistent and respects every edge.
fn respects(comp: &Computation, edges: &[(Node, Node)], cut: &Cut) -> bool {
    let contains = |e: EventId| cut.count(comp.process_of(e)) > comp.position_of(e);
    edges.iter().all(|&(u, v)| {
        let Node::Event(v) = v else { return true };
        if !contains(v) {
            return true;
        }
        match u {
            Node::Top => false,
            Node::Event(u) => contains(u),
        }
    })
}

/// A per-process conjunctive predicate `x@p != t` over every process.
fn conjunctive_pred(comp: &Computation, t: i64) -> Conjunctive {
    let clauses: Vec<LocalPredicate> = comp
        .processes()
        .map(|p| {
            let x = comp.var(p, "x").unwrap();
            LocalPredicate::int(x, format!("x != {t}"), move |v| v != t)
        })
        .collect();
    Conjunctive::new(clauses)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Spilled-width `Slice::new`: the enumerated cuts and the flat
    /// J-table both match the set-theoretic reference.
    #[test]
    fn wide_j_tables_match_the_set_theoretic_minimum(
        (comp, edges) in wide_with_edges(),
    ) {
        let slice = Slice::new(&comp, edges.clone());
        let got = all_cuts(&slice);
        let want: Vec<Cut> = all_cuts(&comp)
            .into_iter()
            .filter(|c| respects(&comp, &edges, c))
            .collect();
        prop_assert_eq!(&got, &want, "slice cuts at spill width");
        // J(e) is the least slice cut containing e — the table the kernel
        // now stores as flat arena rows instead of HashMap entries.
        for e in comp.events() {
            let containing: Vec<&Cut> = got
                .iter()
                .filter(|c| c.count(comp.process_of(e)) > comp.position_of(e))
                .collect();
            match slice.least_cut(e) {
                None => prop_assert!(containing.is_empty(), "{} claimed impossible", e),
                Some(j) => {
                    prop_assert!(containing.contains(&j), "J({}) not in slice", e);
                    prop_assert!(containing.iter().all(|c| j.leq(c)), "J({}) not least", e);
                }
            }
        }
    }

    /// The `O(|E|)` conjunctive slicer, the `O(n²|E|)` linear slicer, and
    /// the lattice oracle agree past the spill boundary, and every slice
    /// cut genuinely satisfies the (regular) predicate.
    #[test]
    fn wide_conjunctive_slicer_matches_linear_and_oracle(
        comp in wide(),
        t in 0i64..2,
    ) {
        let pred = conjunctive_pred(&comp, t);
        let fast: Vec<Cut> = all_cuts(&slice_conjunctive(&comp, &pred));
        let general: Vec<Cut> = all_cuts(&slice_linear(&comp, &pred));
        prop_assert_eq!(&fast, &general, "fast vs general slicer");
        let (closure, sat) = expected_slice_cuts(&comp, |st| pred.eval(st));
        let got: std::collections::BTreeSet<Cut> = fast.into_iter().collect();
        prop_assert_eq!(&got, &closure, "slice vs oracle closure");
        // Conjunctions of locals are regular: the closure adds nothing.
        prop_assert_eq!(got.len(), sat.len(), "regular predicate must be exact");
    }

    /// Grafting at spill width is the slice-set algebra: `graft_and` is
    /// intersection, `graft_or` is the sublattice closure of the union.
    #[test]
    fn wide_grafting_matches_set_algebra(
        comp in wide(),
    ) {
        let a = slice_conjunctive(&comp, &conjunctive_pred(&comp, 0));
        let b = slice_conjunctive(&comp, &conjunctive_pred(&comp, 1));
        let (cuts_a, cuts_b) = (all_cuts(&a), all_cuts(&b));

        let and_cuts: Vec<Cut> = all_cuts(&graft_and(&a, &b));
        let want_and: Vec<Cut> = cuts_a
            .iter()
            .filter(|c| cuts_b.contains(c))
            .cloned()
            .collect();
        prop_assert_eq!(and_cuts, want_and, "graft_and vs intersection");

        let or_cuts: std::collections::BTreeSet<Cut> =
            all_cuts(&graft_or(&a, &b)).into_iter().collect();
        let union: Vec<Cut> = cuts_a.iter().chain(&cuts_b).cloned().collect();
        prop_assert_eq!(or_cuts, sublattice_closure(&union), "graft_or vs closure");
    }
}
