//! Property test: the online (incremental) slicer matches the offline
//! conjunctive slicer at every prefix of random observation scripts.

use proptest::prelude::*;

use slicing_computation::lattice::all_cuts;
use slicing_computation::{EventId, Value};
use slicing_core::{slice_conjunctive, OnlineSlicer};
use slicing_predicates::{Conjunctive, LocalPredicate};

/// One scripted action: which process steps, the value it writes, and
/// whether it tries to receive a pending message.
#[derive(Debug, Clone)]
struct Step {
    process: usize,
    value: i64,
    send: bool,
    recv: bool,
}

fn scripts() -> impl Strategy<Value = (usize, Vec<Step>, i64)> {
    (2usize..=3).prop_flat_map(|n| {
        let steps = prop::collection::vec(
            (0..n, -1i64..=2, any::<bool>(), any::<bool>()).prop_map(
                |(process, value, send, recv)| Step {
                    process,
                    value,
                    send,
                    recv,
                },
            ),
            0..10,
        );
        (Just(n), steps, 0i64..=2)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn online_matches_offline_at_every_prefix((n, script, threshold) in scripts()) {
        let mut online = OnlineSlicer::new(n);
        let vars: Vec<_> = (0..n)
            .map(|i| online.declare_var(i, "x", Value::Int(0)).expect("fresh var"))
            .collect();
        for &v in &vars {
            let t = threshold;
            online
                .watch_int(v, format!("x >= {t}"), move |x| x >= t)
                .expect("watch before events");
        }

        let mut pending_send: Option<(EventId, usize)> = None;
        for step in &script {
            let e = online
                .observe(step.process, &[(vars[step.process], Value::Int(step.value))])
                .expect("observe succeeds");
            match pending_send {
                Some((send, from)) if step.recv && from != step.process => {
                    online.message(send, e).expect("forward message");
                    pending_send = None;
                }
                None if step.send => pending_send = Some((e, step.process)),
                _ => {}
            }

            // Compare against the offline slicer on the same prefix.
            let comp = online.snapshot_computation().expect("acyclic prefix");
            let online_slice = online.slice_of(&comp);
            let clauses: Vec<LocalPredicate> = comp
                .processes()
                .map(|p| {
                    let x = comp.var(p, "x").unwrap();
                    let t = threshold;
                    LocalPredicate::int(x, format!("x >= {t}"), move |v| v >= t)
                })
                .collect();
            let offline = slice_conjunctive(&comp, &Conjunctive::new(clauses));
            prop_assert_eq!(
                all_cuts(&online_slice),
                all_cuts(&offline),
                "prefix with {} events diverged",
                comp.num_events()
            );
        }
    }
}

/// Wide scripts straddle the 16-process inline→spilled cut boundary, so the
/// incremental clock table runs on heap-backed cuts too. Exhaustive cut
/// enumeration is hopeless at this width; instead we compare the least-cut
/// table (per-event clocks vs the offline `min_cut`) and the slice's
/// structure (meta-events, least cut, emptiness) at every prefix.
fn wide_scripts() -> impl Strategy<Value = (usize, Vec<Step>, i64, Vec<(usize, usize)>)> {
    (15usize..=17).prop_flat_map(|n| {
        let steps = prop::collection::vec(
            (0..n, -1i64..=2, any::<bool>(), any::<bool>()).prop_map(
                |(process, value, send, recv)| Step {
                    process,
                    value,
                    send,
                    recv,
                },
            ),
            0..32,
        );
        // Late-message attempts between arbitrary earlier events, declared
        // only after the whole script ran: out-of-order delivery.
        let late = prop::collection::vec((0usize..32, 0usize..32), 0..6);
        (Just(n), steps, 0i64..=2, late)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn wide_online_matches_offline_structure((n, script, threshold, late) in wide_scripts()) {
        let mut online = OnlineSlicer::new(n);
        let vars: Vec<_> = (0..n)
            .map(|i| online.declare_var(i, "x", Value::Int(0)).expect("fresh var"))
            .collect();
        for &v in &vars {
            let t = threshold;
            online
                .watch_int(v, format!("x >= {t}"), move |x| x >= t)
                .expect("watch before events");
        }

        let mut events: Vec<EventId> = Vec::new();
        let mut pending_send: Option<(EventId, usize)> = None;
        for step in &script {
            let e = online
                .observe(step.process, &[(vars[step.process], Value::Int(step.value))])
                .expect("observe succeeds");
            events.push(e);
            match pending_send {
                Some((send, from)) if step.recv && from != step.process => {
                    online.message(send, e).expect("forward message");
                    pending_send = None;
                }
                None if step.send => pending_send = Some((e, step.process)),
                _ => {}
            }
        }
        // Out-of-order deliveries between events observed long ago. The
        // slicer must either reject them (cycles, duplicates, self
        // messages) or fold them into the clock table; both paths leave
        // the history consistent.
        for &(i, j) in &late {
            if i < events.len() && j < events.len() && i != j {
                let _ = online.message(events[i], events[j]);
            }
        }

        let comp = online.snapshot_computation().expect("acyclic history");
        for e in comp.events() {
            prop_assert_eq!(
                online.clock(e).counts(),
                comp.min_cut(e).counts(),
                "clock of {} diverged from the offline least-cut table",
                e
            );
        }

        let online_slice = online.slice_of(&comp);
        let clauses: Vec<LocalPredicate> = comp
            .processes()
            .map(|p| {
                let x = comp.var(p, "x").unwrap();
                let t = threshold;
                LocalPredicate::int(x, format!("x >= {t}"), move |v| v >= t)
            })
            .collect();
        let offline = slice_conjunctive(&comp, &Conjunctive::new(clauses));
        prop_assert_eq!(online_slice.is_empty_slice(), offline.is_empty_slice());
        prop_assert_eq!(online_slice.bottom_cut(), offline.bottom_cut());
        for e in comp.events() {
            prop_assert_eq!(online_slice.least_cut(e), offline.least_cut(e));
        }
        prop_assert_eq!(online_slice.meta_events(), offline.meta_events());
    }
}
