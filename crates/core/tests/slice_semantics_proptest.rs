//! Property tests pinning the `Slice` data structure's semantics against
//! an independent brute-force definition: the cuts of a slice built from
//! arbitrary constraint edges are exactly the consistent cuts that respect
//! every edge, and the least-cut table matches the set-theoretic minimum.

use proptest::prelude::*;

use slicing_computation::lattice::all_cuts;
use slicing_computation::oracle::is_sublattice;
use slicing_computation::test_fixtures::{random_computation, RandomConfig};
use slicing_computation::{Computation, Cut, EventId};
use slicing_core::{Node, Slice};

/// A computation plus random constraint edges (event→event, plus the
/// occasional ⊤→event exclusion).
fn instances() -> impl Strategy<Value = (Computation, Vec<(Node, Node)>)> {
    (any::<u64>(), 2usize..=4, 2u32..=4, 0u64..=60)
        .prop_flat_map(|(seed, n, m, msg)| {
            let cfg = RandomConfig {
                processes: n,
                events_per_process: m,
                send_percent: msg,
                recv_percent: msg,
                value_range: 3,
            };
            let comp = random_computation(seed, &cfg);
            let num_events = comp.num_events();
            let edges = prop::collection::vec((0..num_events, 0..num_events, 0u8..10), 0..6);
            (Just(comp), edges)
        })
        .prop_map(|(comp, raw)| {
            let edges = raw
                .into_iter()
                .map(|(u, v, kind)| {
                    let target = Node::Event(EventId::new(v));
                    if kind == 0 {
                        (Node::Top, target)
                    } else {
                        (Node::Event(EventId::new(u)), target)
                    }
                })
                .collect();
            (comp, edges)
        })
}

/// Brute-force definition: does `cut` respect every constraint edge?
fn respects(comp: &Computation, edges: &[(Node, Node)], cut: &Cut) -> bool {
    let contains = |e: EventId| cut.count(comp.process_of(e)) > comp.position_of(e);
    edges.iter().all(|&(u, v)| {
        let Node::Event(v) = v else { return true };
        if !contains(v) {
            return true;
        }
        match u {
            Node::Top => false,
            Node::Event(u) => contains(u),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// cuts(Slice::new(comp, edges)) == { consistent cuts respecting edges }.
    #[test]
    fn slice_cuts_match_the_brute_force_definition((comp, edges) in instances()) {
        let slice = Slice::new(&comp, edges.clone());
        let got = all_cuts(&slice);
        let want: Vec<Cut> = all_cuts(&comp)
            .into_iter()
            .filter(|c| respects(&comp, &edges, c))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Any constraint-edge cut set is a sublattice (closure holds for
    /// arbitrary edges, not just slicer-produced ones).
    #[test]
    fn constraint_cut_sets_are_sublattices((comp, edges) in instances()) {
        let slice = Slice::new(&comp, edges);
        let cuts: std::collections::BTreeSet<Cut> = all_cuts(&slice).into_iter().collect();
        prop_assert!(is_sublattice(&cuts));
    }

    /// The least-cut table is the set-theoretic minimum, and the bottom
    /// cut is the global minimum.
    #[test]
    fn least_cut_table_matches_minimum((comp, edges) in instances()) {
        let slice = Slice::new(&comp, edges);
        let cuts = all_cuts(&slice);
        prop_assert_eq!(slice.bottom_cut(), cuts.first());
        for e in comp.events() {
            let containing: Vec<&Cut> = cuts
                .iter()
                .filter(|c| c.count(comp.process_of(e)) > comp.position_of(e))
                .collect();
            match slice.least_cut(e) {
                None => prop_assert!(containing.is_empty(), "{e} claimed impossible"),
                Some(j) => {
                    prop_assert!(!containing.is_empty(), "{e} claimed possible");
                    // j is itself a containing cut and below all others.
                    prop_assert!(containing.contains(&j));
                    prop_assert!(containing.iter().all(|c| j.leq(c)));
                }
            }
        }
    }

    /// `contains_cut` agrees with membership in the enumerated cut set.
    #[test]
    fn contains_cut_is_consistent_with_enumeration((comp, edges) in instances()) {
        let slice = Slice::new(&comp, edges);
        let members: std::collections::BTreeSet<Cut> =
            all_cuts(&slice).into_iter().collect();
        for cut in all_cuts(&comp) {
            prop_assert_eq!(slice.contains_cut(&cut), members.contains(&cut), "{}", cut);
        }
    }
}
