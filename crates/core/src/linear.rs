//! Slicing linear (and regular) predicates via least-satisfying-cut
//! computation — the paper's Section 4.3.

use slicing_computation::{Computation, Cut, GlobalState, ProcSet, ProcessId};
use slicing_predicates::{LinearPredicate, RegularPredicate};

use crate::slice::{Edge, Node, Slice};

/// Computes the slice of `comp` with respect to a linear predicate in
/// `O(n²|E|)` time (Section 4.3).
///
/// For each event `e` the algorithm computes `J_b(e)`, the least consistent
/// cut that contains `e` and satisfies `b`, by starting from the least
/// consistent cut containing `e` and repeatedly advancing the *forbidden
/// process* reported by the predicate until it holds (or a process is
/// exhausted, in which case `J_b(e) = E` and `e` is excluded from the slice
/// via a ⊤ → e edge). Events are processed in process order so each
/// computation resumes from its predecessor's result — `J_b` is monotone
/// along process order, which caps the total advancing work.
///
/// The slice graph then encodes `e ∈ C ⇒ J_b(e) ⊆ C` with one edge per
/// (event, process) pair: `O(n|E|)` edges.
///
/// The resulting cut set is the smallest sublattice containing every
/// satisfying cut. For predicates that are in fact *regular* the slice is
/// lean (exactly the satisfying cuts) — see [`slice_regular`].
pub fn slice_linear<'a, P: LinearPredicate + ?Sized>(comp: &'a Computation, pred: &P) -> Slice<'a> {
    slice_linear_restricted(comp, pred, ProcSet::all(comp.num_processes()))
}

/// Computes the slice of a regular predicate — same algorithm as
/// [`slice_linear`], with the additional guarantee (from regularity) that
/// the result is **lean**: its non-trivial cuts are exactly the satisfying
/// cuts. This is the `O(n²|E|)` algorithm of the earlier ICDCS'01 paper
/// that Section 4.3 generalizes.
pub fn slice_regular<'a, P: RegularPredicate + ?Sized>(
    comp: &'a Computation,
    pred: &P,
) -> Slice<'a> {
    slice_linear(comp, pred)
}

/// Restricted variant of [`slice_linear`] used by the decomposable-regular
/// slicer (Section 4.1): behaves as if the computation were *projected*
/// onto `procs`, without materializing the projection.
///
/// Cuts are kept full-width, but only the coordinates in `procs` are
/// advanced or constrained; the other coordinates stay at the bottom. The
/// predicate must read only processes in `procs`. Work is proportional to
/// the projected size: `O(k · (|E_P| + advances))` for `k = |procs|`.
pub fn slice_linear_restricted<'a, P: LinearPredicate + ?Sized>(
    comp: &'a Computation,
    pred: &P,
    procs: ProcSet,
) -> Slice<'a> {
    let _span = slicing_observe::span("slice.linear");
    Slice::new(comp, linear_constraint_edges(comp, pred, procs))
}

/// The constraint edges [`slice_linear_restricted`] would install, without
/// building the slice. The decomposable slicer concatenates these across
/// clauses and builds a single slice, so the per-clause cost stays
/// proportional to the *projected* size (the whole point of §4.1).
pub(crate) fn linear_constraint_edges<P: LinearPredicate + ?Sized>(
    comp: &Computation,
    pred: &P,
    procs: ProcSet,
) -> Vec<Edge> {
    debug_assert!(
        pred.support().iter().all(|p| procs.contains(p)),
        "predicate reads processes outside the restriction"
    );
    let n = comp.num_processes();
    let proc_list: Vec<ProcessId> = procs.iter().collect();
    let mut edges: Vec<Edge> = Vec::new();
    // Work accounting, emitted once at the end so the hot loop stays
    // allocation- and dispatch-free.
    let evals = std::cell::Cell::new(0u64);
    let advances = std::cell::Cell::new(0u64);

    // Joins a cut with the restriction of `other` to `procs`.
    let join_masked = |cut: &mut Cut, other: &Cut| {
        for &q in &proc_list {
            if cut.count(q) < other.count(q) {
                cut.set_count(q, other.count(q));
            }
        }
    };

    // Advances `cut` until the predicate holds; returns false if some
    // process ran out of events (no satisfying cut exists above `cut`).
    let advance = |cut: &mut Cut| -> bool {
        loop {
            let st = GlobalState::new(comp, cut);
            evals.set(evals.get() + 1);
            if pred.eval(&st) {
                return true;
            }
            let p = pred.forbidden_process(&st);
            debug_assert!(procs.contains(p), "forbidden process outside restriction");
            if cut.count(p) >= comp.len(p) {
                return false;
            }
            let next = comp.event_at(p, cut.count(p));
            join_masked(cut, comp.min_cut(next));
            advances.set(advances.get() + 1);
            // `min_cut(next)` includes `next` itself.
            debug_assert!(cut.count(p) > 0);
        }
    };

    for &p in &proc_list {
        // Resume point: J_b of the previous event on this process.
        let mut current = Cut::bottom(n);
        let mut dead = false;
        for pos in 0..comp.len(p) {
            let e = comp.event_at(p, pos);
            if dead {
                edges.push((Node::Top, Node::Event(e)));
                continue;
            }
            join_masked(&mut current, comp.min_cut(e));
            if advance(&mut current) {
                // Encode J_b(e) ⊆ C for any C containing e.
                for &q in &proc_list {
                    let c = current.count(q);
                    if c <= 1 {
                        continue; // initial events are in every cut
                    }
                    let f = comp.event_at(q, c - 1);
                    if f != e {
                        edges.push((Node::Event(f), Node::Event(e)));
                    }
                }
            } else {
                dead = true;
                edges.push((Node::Top, Node::Event(e)));
            }
        }
    }

    slicing_observe::counter("slice.linear.evals", evals.get());
    slicing_observe::counter("slice.linear.advances", advances.get());
    slicing_observe::counter("slice.linear.edges", edges.len() as u64);
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::lattice::all_cuts;
    use slicing_computation::oracle::expected_slice_cuts;
    use slicing_computation::test_fixtures::{figure1, random_computation, RandomConfig};
    use slicing_predicates::{
        AtLeastInTransit, AtMostInTransit, Conjunctive, LocalPredicate, PendingAtMost, Predicate,
    };
    use std::collections::BTreeSet;

    fn assert_slice_is_smallest_sublattice<P: LinearPredicate + ?Sized>(
        comp: &Computation,
        pred: &P,
        ctx: &str,
    ) {
        let slice = slice_linear(comp, pred);
        let got: BTreeSet<Cut> = all_cuts(&slice).into_iter().collect();
        let (want, _sat) = expected_slice_cuts(comp, |st| pred.eval(st));
        assert_eq!(got, want, "{ctx}");
    }

    #[test]
    fn figure1_regular_slice_is_lean() {
        let comp = figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let x3 = comp.var(comp.process(2), "x3").unwrap();
        let pred = Conjunctive::new(vec![
            LocalPredicate::int(x1, "x1 > 1", |x| x > 1),
            LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3),
        ]);
        let slice = slice_regular(&comp, &pred);
        let cuts = all_cuts(&slice);
        assert_eq!(cuts.len(), 6);
        // Lean: every slice cut satisfies the predicate.
        for c in &cuts {
            assert!(pred.eval(&GlobalState::new(&comp, c)));
        }
        assert_slice_is_smallest_sublattice(&comp, &pred, "figure1");
    }

    #[test]
    fn figure1_meta_events_match_paper_shape() {
        // Figure 1(b): four meta-events — the bottom block, {b}, {w}, {g}.
        let comp = figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let x3 = comp.var(comp.process(2), "x3").unwrap();
        let pred = Conjunctive::new(vec![
            LocalPredicate::int(x1, "x1 > 1", |x| x > 1),
            LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3),
        ]);
        let slice = slice_regular(&comp, &pred);
        let metas = slice.meta_events();
        assert_eq!(metas.len(), 4, "metas: {metas:?}");
        // The bottom meta-event has the three initial events plus f and v.
        assert_eq!(metas[0].len(), 5);
    }

    #[test]
    fn channel_predicates_slice_exactly() {
        let mut b = slicing_computation::ComputationBuilder::new(2);
        let s1 = b.append_event(b.process(0));
        let s2 = b.append_event(b.process(0));
        let r1 = b.append_event(b.process(1));
        let r2 = b.append_event(b.process(1));
        b.message(s1, r1).unwrap();
        b.message(s2, r2).unwrap();
        let comp = b.build().unwrap();
        for k in 0..2 {
            let p = AtMostInTransit::new(comp.process(0), comp.process(1), k);
            assert_slice_is_smallest_sublattice(&comp, &p, "at-most");
            let q = AtLeastInTransit::new(comp.process(0), comp.process(1), k + 1);
            assert_slice_is_smallest_sublattice(&comp, &q, "at-least");
        }
    }

    #[test]
    fn linear_non_regular_predicate_sliced_to_smallest_sublattice() {
        // PendingAtMost is linear but not regular; the slice may contain
        // extra cuts but must be the smallest sublattice.
        let mut b = slicing_computation::ComputationBuilder::new(3);
        let s1 = b.append_event(b.process(0));
        let s2 = b.append_event(b.process(2));
        let r1 = b.append_event(b.process(1));
        let r2 = b.append_event(b.process(1));
        b.message(s1, r1).unwrap();
        b.message(s2, r2).unwrap();
        let comp = b.build().unwrap();
        for k in 0..2 {
            let p = PendingAtMost::new(comp.process(1), k, 3);
            assert_slice_is_smallest_sublattice(&comp, &p, "pending");
        }
    }

    #[test]
    fn unsatisfiable_predicate_gives_empty_slice() {
        let comp = figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let pred = Conjunctive::new(vec![LocalPredicate::int(x1, "x1 > 99", |x| x > 99)]);
        let slice = slice_linear(&comp, &pred);
        assert!(slice.is_empty_slice());
    }

    #[test]
    fn always_true_predicate_gives_full_lattice() {
        let comp = figure1();
        let pred = Conjunctive::new(vec![]);
        let slice = slice_linear(&comp, &pred);
        assert_eq!(all_cuts(&slice).len(), 28);
    }

    #[test]
    fn random_conjunctive_predicates_match_oracle() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 4,
            value_range: 3,
            ..RandomConfig::default()
        };
        for seed in 0..25 {
            let comp = random_computation(seed, &cfg);
            let clauses: Vec<LocalPredicate> = comp
                .processes()
                .map(|p| {
                    let x = comp.var(p, "x").unwrap();
                    // Vary the threshold per seed for diversity.
                    let t = (seed % 3) as i64;
                    LocalPredicate::int(x, format!("x >= {t}"), move |v| v >= t)
                })
                .collect();
            let pred = Conjunctive::new(clauses);
            assert_slice_is_smallest_sublattice(&comp, &pred, &format!("seed {seed}"));
        }
    }

    #[test]
    fn random_channel_predicates_match_oracle() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 4,
            send_percent: 60,
            recv_percent: 60,
            ..RandomConfig::default()
        };
        for seed in 100..120 {
            let comp = random_computation(seed, &cfg);
            let p = AtMostInTransit::new(comp.process(0), comp.process(1), 0);
            assert_slice_is_smallest_sublattice(&comp, &p, &format!("seed {seed}"));
        }
    }

    #[test]
    fn least_cuts_agree_with_brute_force() {
        // J_b(e) from the slice must be the least satisfying-closure cut
        // containing e.
        let comp = figure1();
        let x3 = comp.var(comp.process(2), "x3").unwrap();
        let pred = Conjunctive::new(vec![LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3)]);
        let slice = slice_linear(&comp, &pred);
        let cuts = all_cuts(&slice);
        for e in comp.events() {
            let brute = cuts
                .iter()
                .filter(|c| c.count(comp.process_of(e)) > comp.position_of(e))
                .min_by(|a, b| a.size().cmp(&b.size()).then_with(|| a.cmp(b)));
            match (slice.least_cut(e), brute) {
                (Some(j), Some(min)) => assert_eq!(j, min, "event {}", comp.describe_event(e)),
                (None, None) => {}
                (j, b) => panic!(
                    "mismatch for {}: slice {:?} vs brute {:?}",
                    comp.describe_event(e),
                    j,
                    b
                ),
            }
        }
    }
}
