//! Grafting: composing slices with respect to conjunction and disjunction
//! (Section 3.4).

use slicing_computation::{Computation, Cut};

use crate::slice::{Edge, Node, Slice};

fn assert_same_computation(a: &Slice<'_>, b: &Slice<'_>) {
    assert!(
        std::ptr::eq(a.computation(), b.computation()),
        "grafted slices must derive from the same computation"
    );
}

/// Grafts two slices with respect to **conjunction**: the smallest slice
/// whose cuts are exactly the cuts common to both inputs.
///
/// A cut respects both slices' constraints iff it respects their union, so
/// this is a constraint-edge union — `O(n|E|)` for slices produced by the
/// slicers in this crate.
///
/// # Panics
///
/// Panics if the slices derive from different computations.
pub fn graft_and<'a>(a: &Slice<'a>, b: &Slice<'a>) -> Slice<'a> {
    let _span = slicing_observe::span("slice.graft_and");
    assert_same_computation(a, b);
    let mut edges: Vec<Edge> = Vec::with_capacity(a.edges().len() + b.edges().len());
    edges.extend_from_slice(a.edges());
    edges.extend_from_slice(b.edges());
    slicing_observe::counter("slice.graft.edges_merged", edges.len() as u64);
    Slice::new(a.computation(), edges)
}

/// Grafts any number of slices with respect to conjunction.
///
/// # Panics
///
/// Panics if `slices` is empty or the slices derive from different
/// computations.
pub fn graft_and_all<'a>(slices: &[Slice<'a>]) -> Slice<'a> {
    let _span = slicing_observe::span("slice.graft_and");
    assert!(!slices.is_empty(), "graft_and_all needs at least one slice");
    let comp = slices[0].computation();
    let mut edges = Vec::new();
    for s in slices {
        assert_same_computation(&slices[0], s);
        edges.extend_from_slice(s.edges());
    }
    slicing_observe::counter("slice.graft.edges_merged", edges.len() as u64);
    Slice::new(comp, edges)
}

/// Grafts two slices with respect to **disjunction**: the smallest slice
/// containing every cut that belongs to at least one input.
///
/// For each event `e`, the least cut containing `e` in the generated
/// sublattice is the *meet* of the inputs' least cuts `J₁(e) ∧ J₂(e)`
/// (whichever exist); re-encoding those meets as frontier edges yields the
/// grafted slice in `O(n|E|)`.
///
/// # Panics
///
/// Panics if the slices derive from different computations.
pub fn graft_or<'a>(a: &Slice<'a>, b: &Slice<'a>) -> Slice<'a> {
    assert_same_computation(a, b);
    graft_or_fold(a.computation(), [a, b].into_iter())
}

/// Grafts any number of slices with respect to disjunction, folding their
/// least-cut tables without retaining the inputs (memory `O(n|E|)` however
/// many slices stream through). The disjunction of zero slices is the
/// empty slice.
pub fn graft_or_all<'a>(comp: &'a Computation, slices: &[Slice<'a>]) -> Slice<'a> {
    graft_or_fold(comp, slices.iter())
}

/// Core of disjunction grafting over an iterator of slices.
pub(crate) fn graft_or_fold<'a, 'b>(
    comp: &'a Computation,
    slices: impl Iterator<Item = &'b Slice<'a>>,
) -> Slice<'a>
where
    'a: 'b,
{
    let _span = slicing_observe::span("slice.graft_or");
    let num_events = comp.num_events();
    // Accumulated least cut per event across the disjuncts (None =
    // contained in no disjunct so far).
    let mut jvee: Vec<Option<Cut>> = vec![None; num_events];
    let mut disjuncts = 0u64;
    for s in slices {
        assert!(
            std::ptr::eq(s.computation(), comp),
            "grafted slices must derive from the given computation"
        );
        disjuncts += 1;
        for e in comp.events() {
            if let Some(j) = s.least_cut(e) {
                match &mut jvee[e.as_usize()] {
                    Some(acc) => acc.meet_assign(j),
                    slot @ None => *slot = Some(j.clone()),
                }
            }
        }
    }
    slicing_observe::counter("slice.graft.disjuncts", disjuncts);
    if disjuncts == 0 {
        return Slice::empty(comp);
    }
    slice_from_least_cuts(comp, &jvee)
}

/// Rebuilds a slice from a least-cut table: for every event `e` with
/// `J(e) = Some(c)`, emit frontier edges encoding `e ∈ C ⇒ c ⊆ C`; events
/// with `J(e) = None` are forbidden via ⊤ → e.
pub(crate) fn slice_from_least_cuts<'a>(comp: &'a Computation, j: &[Option<Cut>]) -> Slice<'a> {
    let mut edges: Vec<Edge> = Vec::new();
    for e in comp.events() {
        match &j[e.as_usize()] {
            None => edges.push((Node::Top, Node::Event(e))),
            Some(c) => {
                for q in comp.processes() {
                    let cnt = c.count(q);
                    if cnt <= 1 {
                        continue;
                    }
                    let f = comp.event_at(q, cnt - 1);
                    if f != e {
                        edges.push((Node::Event(f), Node::Event(e)));
                    }
                }
            }
        }
    }
    Slice::new(comp, edges)
}

/// A canonical cache key for grafted sub-slices: the set of (process,
/// clause-label) pairs whose conjunction the slice encodes, sorted and
/// deduplicated so structurally equal predicates key identically however
/// their clauses were listed.
///
/// The grafting algebra makes this a *cache* key and not just an identity:
/// `graft_and(slice(K₁), slice(K₂))` has exactly the cuts of
/// `slice(K₁ ∪ K₂)`, so a store keyed by `GraftKey` can assemble the slice
/// for any conjunction from the slices of its sub-keys without recomputing
/// them — the sharing the multi-tenant monitor exploits when thousands of
/// predicates overlap.
///
/// # Examples
///
/// ```
/// use slicing_core::GraftKey;
///
/// let a = GraftKey::new(0, ["x > 1"]);
/// let b = GraftKey::new(2, ["y <= 3"]);
/// let ab = a.union(&b);
/// assert_eq!(ab, GraftKey::new(2, ["y <= 3"]).union(&a));
/// assert_eq!(ab.parts().len(), 2);
/// // Idempotent: re-adding a clause changes nothing.
/// assert_eq!(ab.union(&a), ab);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraftKey {
    parts: Vec<(u32, String)>,
}

impl GraftKey {
    /// A key for clauses that all live on one process.
    pub fn new<I, S>(process: u32, labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::from_parts(labels.into_iter().map(|l| (process, l.into())))
    }

    /// A key from explicit (process, label) pairs; sorted and deduplicated.
    pub fn from_parts<I>(parts: I) -> Self
    where
        I: IntoIterator<Item = (u32, String)>,
    {
        let mut parts: Vec<(u32, String)> = parts.into_iter().collect();
        parts.sort();
        parts.dedup();
        GraftKey { parts }
    }

    /// The key of the conjunction: set union of the two clause sets.
    pub fn union(&self, other: &GraftKey) -> GraftKey {
        Self::from_parts(self.parts.iter().chain(other.parts.iter()).cloned())
    }

    /// The canonical (process, label) pairs, sorted.
    pub fn parts(&self) -> &[(u32, String)] {
        &self.parts
    }

    /// True when the key names no clauses (the conjunction of nothing).
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::lattice::all_cuts;
    use slicing_computation::oracle::sublattice_closure;
    use slicing_computation::test_fixtures::{figure1, random_computation, RandomConfig};
    use slicing_predicates::{Conjunctive, LocalPredicate};
    use std::collections::BTreeSet;

    use crate::conjunctive::slice_conjunctive;

    fn pred_gt(comp: &Computation, proc_idx: usize, t: i64) -> Conjunctive {
        let p = comp.process(proc_idx);
        let x = comp.var(p, "x").unwrap();
        Conjunctive::new(vec![LocalPredicate::int(x, format!("x > {t}"), move |v| {
            v > t
        })])
    }

    #[test]
    fn and_graft_intersects_cut_sets() {
        let comp = figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let x3 = comp.var(comp.process(2), "x3").unwrap();
        let s1 = slice_conjunctive(
            &comp,
            &Conjunctive::new(vec![LocalPredicate::int(x1, "x1 > 1", |x| x > 1)]),
        );
        let s2 = slice_conjunctive(
            &comp,
            &Conjunctive::new(vec![LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3)]),
        );
        let grafted = graft_and(&s1, &s2);
        let want: BTreeSet<Cut> = {
            let a: BTreeSet<Cut> = all_cuts(&s1).into_iter().collect();
            let b: BTreeSet<Cut> = all_cuts(&s2).into_iter().collect();
            a.intersection(&b).cloned().collect()
        };
        let got: BTreeSet<Cut> = all_cuts(&grafted).into_iter().collect();
        assert_eq!(got, want);
        assert_eq!(got.len(), 6); // Figure 1 again, via grafting
    }

    #[test]
    fn or_graft_is_smallest_sublattice_of_union() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 3,
            value_range: 3,
            ..RandomConfig::default()
        };
        for seed in 0..25 {
            let comp = random_computation(seed, &cfg);
            let s1 = slice_conjunctive(&comp, &pred_gt(&comp, 0, 0));
            let s2 = slice_conjunctive(&comp, &pred_gt(&comp, 1, 1));
            let grafted = graft_or(&s1, &s2);
            let union: Vec<Cut> = {
                let mut v: BTreeSet<Cut> = all_cuts(&s1).into_iter().collect();
                v.extend(all_cuts(&s2));
                v.into_iter().collect()
            };
            let want = sublattice_closure(&union);
            let got: BTreeSet<Cut> = all_cuts(&grafted).into_iter().collect();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn or_graft_with_empty_slice_is_identity() {
        let comp = figure1();
        let s = slice_conjunctive(&comp, &pred_gt_x1(&comp));
        let e = Slice::empty(&comp);
        let got: BTreeSet<Cut> = all_cuts(&graft_or(&s, &e)).into_iter().collect();
        let want: BTreeSet<Cut> = all_cuts(&s).into_iter().collect();
        assert_eq!(got, want);
        // Symmetric.
        let got: BTreeSet<Cut> = all_cuts(&graft_or(&e, &s)).into_iter().collect();
        assert_eq!(got, want);
    }

    fn pred_gt_x1(comp: &Computation) -> Conjunctive {
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        Conjunctive::new(vec![LocalPredicate::int(x1, "x1 > 1", |x| x > 1)])
    }

    #[test]
    fn and_graft_with_empty_slice_is_empty() {
        let comp = figure1();
        let s = slice_conjunctive(&comp, &pred_gt_x1(&comp));
        let e = Slice::empty(&comp);
        assert!(graft_and(&s, &e).is_empty_slice());
    }

    #[test]
    fn nary_grafts_match_folds() {
        let comp = figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let x2 = comp.var(comp.process(1), "x2").unwrap();
        let x3 = comp.var(comp.process(2), "x3").unwrap();
        let slices = vec![
            slice_conjunctive(
                &comp,
                &Conjunctive::new(vec![LocalPredicate::int(x1, "x1 > 1", |x| x > 1)]),
            ),
            slice_conjunctive(
                &comp,
                &Conjunctive::new(vec![LocalPredicate::int(x2, "x2 < 4", |x| x < 4)]),
            ),
            slice_conjunctive(
                &comp,
                &Conjunctive::new(vec![LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3)]),
            ),
        ];
        let all_and: BTreeSet<Cut> = all_cuts(&graft_and_all(&slices)).into_iter().collect();
        let fold_and: BTreeSet<Cut> =
            all_cuts(&graft_and(&graft_and(&slices[0], &slices[1]), &slices[2]))
                .into_iter()
                .collect();
        assert_eq!(all_and, fold_and);

        let all_or: BTreeSet<Cut> = all_cuts(&graft_or_all(&comp, &slices))
            .into_iter()
            .collect();
        let fold_or: BTreeSet<Cut> =
            all_cuts(&graft_or(&graft_or(&slices[0], &slices[1]), &slices[2]))
                .into_iter()
                .collect();
        assert_eq!(all_or, fold_or);
    }

    #[test]
    fn or_graft_of_nothing_is_empty() {
        let comp = figure1();
        assert!(graft_or_all(&comp, &[]).is_empty_slice());
    }

    #[test]
    fn graft_key_canonicalizes() {
        let a = GraftKey::new(1, ["b", "a", "b"]);
        assert_eq!(
            a.parts(),
            &[(1u32, "a".to_string()), (1, "b".to_string())] as &[_]
        );
        let b = GraftKey::from_parts([(0, "c".into()), (1, "a".into())]);
        let u = a.union(&b);
        assert_eq!(u, b.union(&a));
        assert_eq!(u.parts().len(), 3);
        assert_eq!(u.union(&a), u);
        assert!(GraftKey::default().is_empty());
    }

    /// The cache-key contract: the slice for a union key equals the
    /// conjunction graft of the sub-keys' slices, cut for cut.
    #[test]
    fn graft_key_union_matches_and_graft() {
        let comp = figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let x3 = comp.var(comp.process(2), "x3").unwrap();
        let c1 = LocalPredicate::int(x1, "x1 > 1", |x| x > 1);
        let c3 = LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3);
        let k1 = GraftKey::new(0, [c1.label()]);
        let k3 = GraftKey::new(2, [c3.label()]);
        let s1 = slice_conjunctive(&comp, &Conjunctive::new(vec![c1.clone()]));
        let s3 = slice_conjunctive(&comp, &Conjunctive::new(vec![c3.clone()]));
        let union_slice = slice_conjunctive(&comp, &Conjunctive::new(vec![c1, c3]));
        let grafted = graft_and(&s1, &s3);
        let want: BTreeSet<Cut> = all_cuts(&union_slice).into_iter().collect();
        let got: BTreeSet<Cut> = all_cuts(&grafted).into_iter().collect();
        assert_eq!(got, want);
        // And the keys agree on identity: same union whichever way assembled.
        assert_eq!(k1.union(&k3), k3.union(&k1));
    }

    #[test]
    #[should_panic(expected = "same computation")]
    fn cross_computation_graft_rejected() {
        let c1 = figure1();
        let c2 = figure1();
        let s1 = Slice::full(&c1);
        let s2 = Slice::full(&c2);
        let _ = graft_and(&s1, &s2);
    }
}
