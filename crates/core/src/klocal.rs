//! Slicing k-local predicates for constant k (Section 4.2).

use slicing_computation::Computation;
use slicing_predicates::KLocalPredicate;

use crate::conjunctive::slice_conjunctive;
use crate::graft::graft_or_fold;
use crate::slice::Slice;

/// Computes the slice for a k-local predicate (constant `k`), which need
/// not be regular, in `O(n · m^(k-1) · |E|)` time (Section 4.2).
///
/// The predicate is first rewritten — using the Stoller–Schneider
/// technique — into a DNF with at most `m^(k-1)` conjunctive clauses
/// ([`KLocalPredicate::to_dnf`]); each clause is sliced with the optimal
/// `O(|E|)` conjunctive slicer, and the clause slices are grafted together
/// with respect to disjunction.
///
/// The result is the exact slice: the smallest sublattice containing every
/// satisfying cut (each clause's slice is lean, and disjunction grafting
/// produces the smallest sublattice containing the union).
pub fn slice_klocal<'a>(comp: &'a Computation, pred: &KLocalPredicate) -> Slice<'a> {
    let _span = slicing_observe::span("slice.klocal");
    let dnf = pred.to_dnf(comp);
    slicing_observe::counter("slice.klocal.clauses", dnf.len() as u64);
    // Slicing clause-by-clause and folding keeps memory at O(n|E|)
    // regardless of the clause count.
    graft_or_fold(
        comp,
        dnf.iter()
            .map(|clause| slice_conjunctive(comp, clause))
            .collect::<Vec<_>>()
            .iter(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::lattice::all_cuts;
    use slicing_computation::oracle::expected_slice_cuts;
    use slicing_computation::test_fixtures::{random_computation, RandomConfig};
    use slicing_computation::{ComputationBuilder, Cut, Value, VarRef};
    use slicing_predicates::Predicate;
    use std::collections::BTreeSet;

    #[test]
    fn neq_slice_matches_oracle() {
        let mut b = ComputationBuilder::new(2);
        let x = b.declare_var(b.process(0), "x", Value::Int(0));
        let y = b.declare_var(b.process(1), "y", Value::Int(0));
        for v in [1, 0, 2] {
            b.step(b.process(0), &[(x, Value::Int(v))]);
        }
        for v in [2, 0] {
            b.step(b.process(1), &[(y, Value::Int(v))]);
        }
        let comp = b.build().unwrap();
        let pred = KLocalPredicate::new(vec![x, y], "x != y", |v| v[0] != v[1]);
        let slice = slice_klocal(&comp, &pred);
        let got: BTreeSet<Cut> = all_cuts(&slice).into_iter().collect();
        let (want, _) = expected_slice_cuts(&comp, |st| pred.eval(st));
        assert_eq!(got, want);
    }

    #[test]
    fn random_2local_and_3local_match_oracle() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 3,
            value_range: 3,
            ..RandomConfig::default()
        };
        for seed in 0..20 {
            let comp = random_computation(seed, &cfg);
            let vars: Vec<VarRef> = comp
                .processes()
                .map(|p| comp.var(p, "x").unwrap())
                .collect();

            // 2-local, non-regular.
            let p2 = KLocalPredicate::new(vec![vars[0], vars[1]], "x0 != x1", |v| v[0] != v[1]);
            let got: BTreeSet<Cut> = all_cuts(&slice_klocal(&comp, &p2)).into_iter().collect();
            let (want, _) = expected_slice_cuts(&comp, |st| p2.eval(st));
            assert_eq!(got, want, "seed {seed} 2-local");

            // 3-local, non-regular.
            let p3 = KLocalPredicate::new(vars.clone(), "x0 + x1 == x2", |v| {
                v[0].expect_int() + v[1].expect_int() == v[2].expect_int()
            });
            let got: BTreeSet<Cut> = all_cuts(&slice_klocal(&comp, &p3)).into_iter().collect();
            let (want, _) = expected_slice_cuts(&comp, |st| p3.eval(st));
            assert_eq!(got, want, "seed {seed} 3-local");
        }
    }

    #[test]
    fn unsatisfiable_klocal_is_empty() {
        let mut b = ComputationBuilder::new(2);
        let x = b.declare_var(b.process(0), "x", Value::Int(0));
        let y = b.declare_var(b.process(1), "y", Value::Int(0));
        b.step(b.process(0), &[(x, Value::Int(1))]);
        let comp = b.build().unwrap();
        let pred = KLocalPredicate::new(vec![x, y], "x + y == 9", |v| {
            v[0].expect_int() + v[1].expect_int() == 9
        });
        assert!(slice_klocal(&comp, &pred).is_empty_slice());
    }

    #[test]
    fn slice_contains_all_satisfying_cuts_even_when_not_lean() {
        // x != y is not regular: the slice may strictly contain the
        // satisfying set, but never miss a satisfying cut.
        let cfg = RandomConfig {
            processes: 2,
            events_per_process: 4,
            value_range: 2,
            ..RandomConfig::default()
        };
        for seed in 50..60 {
            let comp = random_computation(seed, &cfg);
            let x = comp.var(comp.process(0), "x").unwrap();
            let y = comp.var(comp.process(1), "x").unwrap();
            let pred = KLocalPredicate::new(vec![x, y], "x != y", |v| v[0] != v[1]);
            let slice = slice_klocal(&comp, &pred);
            let slice_cuts: BTreeSet<Cut> = all_cuts(&slice).into_iter().collect();
            let (_, sat) = expected_slice_cuts(&comp, |st| pred.eval(st));
            for c in &sat {
                assert!(slice_cuts.contains(c), "seed {seed}: missing {c}");
            }
        }
    }
}
