//! Projection of a computation onto a subset of processes (Section 4.1).

use std::collections::HashSet;

use slicing_computation::{
    BuildError, Computation, ComputationBuilder, Cut, EventId, ProcSet, ProcessId, VarRef,
};

/// The projection of a computation onto a subset of its processes: the
/// events of those processes, ordered by the *induced* happened-before
/// relation (paths through dropped processes become direct edges).
///
/// The projected vector clocks are exactly the restrictions of the original
/// ones, so consistent cuts of the projection are exactly the restrictions
/// of the original consistent cuts.
///
/// # Examples
///
/// ```
/// use slicing_computation::test_fixtures::figure1;
/// use slicing_computation::ProcSet;
/// use slicing_core::Projection;
///
/// let comp = figure1();
/// let procs: ProcSet = [comp.process(0), comp.process(2)].into_iter().collect();
/// let proj = Projection::new(&comp, procs)?;
/// assert_eq!(proj.computation().num_processes(), 2);
/// # Ok::<(), slicing_computation::BuildError>(())
/// ```
#[derive(Debug)]
pub struct Projection {
    comp: Computation,
    /// Original process of each projected process index.
    orig_procs: Vec<ProcessId>,
}

impl Projection {
    /// Projects `comp` onto `procs`.
    ///
    /// Variables keep their names and declaration order, so
    /// [`map_var`](Projection::map_var) is a pure index remap.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`]s from reconstruction (cannot occur for
    /// valid inputs, but the builder API is fallible).
    ///
    /// # Panics
    ///
    /// Panics if `procs` is empty or references processes outside `comp`.
    pub fn new(comp: &Computation, procs: ProcSet) -> Result<Projection, BuildError> {
        assert!(!procs.is_empty(), "projection needs at least one process");
        let orig_procs: Vec<ProcessId> = procs.iter().collect();
        assert!(
            orig_procs
                .iter()
                .all(|p| p.as_usize() < comp.num_processes()),
            "projection references an unknown process"
        );
        let mut b = ComputationBuilder::new(orig_procs.len());

        // Declare variables in original order so indices line up.
        for (new_idx, &p) in orig_procs.iter().enumerate() {
            let names: Vec<String> = comp.var_names(p).map(str::to_owned).collect();
            for name in names {
                let var = comp.var(p, &name).expect("listed name resolves");
                b.try_declare_var(b.process(new_idx), &name, comp.value_at(var, 0))?;
            }
        }

        // Replicate events with their variable snapshots.
        for (new_idx, &p) in orig_procs.iter().enumerate() {
            let np = b.process(new_idx);
            for pos in 1..comp.len(p) {
                let e = b.append_event(np);
                let names: Vec<String> = comp.var_names(p).map(str::to_owned).collect();
                for name in names {
                    let orig_var = comp.var(p, &name).expect("listed name resolves");
                    let new_var = b.var(np, &name).expect("declared above");
                    b.assign(e, new_var, comp.value_at(orig_var, pos))?;
                }
                if let Some(l) = comp.label(comp.event_at(p, pos)) {
                    let l = l.to_owned();
                    b.set_label(e, &l);
                }
            }
        }

        // Induced edges: for each kept event f and each kept process q, an
        // edge from the last event of q that happened before f. This covers
        // direct messages and paths through dropped processes alike.
        let mut seen: HashSet<(usize, u32, usize, u32)> = HashSet::new();
        for (tgt_idx, &pj) in orig_procs.iter().enumerate() {
            for pos in 1..comp.len(pj) {
                let f = comp.event_at(pj, pos);
                let clock = comp.min_cut(f);
                for (src_idx, &pq) in orig_procs.iter().enumerate() {
                    if src_idx == tgt_idx {
                        continue;
                    }
                    let k = clock.count(pq);
                    if k < 2 {
                        continue; // only the initial event precedes f
                    }
                    // Skip edges already implied by the process predecessor.
                    if pos >= 2 {
                        let prev = comp.event_at(pj, pos - 1);
                        if comp.min_cut(prev).count(pq) >= k {
                            continue;
                        }
                    }
                    if seen.insert((src_idx, k - 1, tgt_idx, pos)) {
                        let send = b.event_at(b.process(src_idx), k - 1);
                        let recv = b.event_at(b.process(tgt_idx), pos);
                        b.message(send, recv)?;
                    }
                }
            }
        }

        Ok(Projection {
            comp: b.build()?,
            orig_procs,
        })
    }

    /// The projected computation.
    pub fn computation(&self) -> &Computation {
        &self.comp
    }

    /// The original processes, indexed by projected process index.
    pub fn original_processes(&self) -> &[ProcessId] {
        &self.orig_procs
    }

    /// Maps an original process to its projected index, if kept.
    pub fn map_process(&self, p: ProcessId) -> Option<ProcessId> {
        self.orig_procs
            .iter()
            .position(|&q| q == p)
            .map(ProcessId::new)
    }

    /// Maps an original variable of `comp` to the projected one.
    ///
    /// Returns `None` if the variable's process was dropped.
    pub fn map_var(&self, comp: &Computation, v: VarRef) -> Option<VarRef> {
        let np = self.map_process(v.process())?;
        let name = comp.var_names(v.process()).nth(v.index())?;
        self.comp.var(np, name)
    }

    /// Maps an original event to the projected one (`None` if dropped).
    pub fn map_event(&self, comp: &Computation, e: EventId) -> Option<EventId> {
        let np = self.map_process(comp.process_of(e))?;
        Some(self.comp.event_at(np, comp.position_of(e)))
    }

    /// Restricts an original cut to the projected coordinates.
    pub fn restrict_cut(&self, cut: &Cut) -> Cut {
        Cut::from(
            self.orig_procs
                .iter()
                .map(|&p| cut.count(p))
                .collect::<Vec<_>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::lattice::all_cuts;
    use slicing_computation::test_fixtures::{figure1, random_computation, RandomConfig};
    use std::collections::BTreeSet;

    #[test]
    fn projection_keeps_events_and_vars() {
        let comp = figure1();
        let procs: ProcSet = [comp.process(0), comp.process(2)].into_iter().collect();
        let proj = Projection::new(&comp, procs).unwrap();
        let pc = proj.computation();
        assert_eq!(pc.num_processes(), 2);
        assert_eq!(pc.len(pc.process(0)), 4);
        assert_eq!(pc.len(pc.process(1)), 4);
        assert!(pc.var(pc.process(0), "x1").is_some());
        assert!(pc.var(pc.process(1), "x3").is_some());
        // Labels survive.
        assert!(pc.event_by_label("b").is_some());
        assert!(pc.event_by_label("w").is_some());
        // Dropped process's labels don't.
        assert!(pc.event_by_label("g").is_none());
    }

    #[test]
    fn projected_cuts_are_restrictions_of_original_cuts() {
        let cfg = RandomConfig {
            processes: 4,
            events_per_process: 3,
            send_percent: 50,
            recv_percent: 50,
            ..RandomConfig::default()
        };
        for seed in 0..15 {
            let comp = random_computation(seed, &cfg);
            let procs: ProcSet = [comp.process(1), comp.process(3)].into_iter().collect();
            let proj = Projection::new(&comp, procs).unwrap();
            let want: BTreeSet<Cut> = all_cuts(&comp)
                .iter()
                .map(|c| proj.restrict_cut(c))
                .collect();
            let got: BTreeSet<Cut> = all_cuts(proj.computation()).into_iter().collect();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn paths_through_dropped_processes_are_kept() {
        // p0 → p1 → p2 chain; project out p1: p0's event must still precede
        // p2's.
        let mut b = ComputationBuilder::new(3);
        let a = b.append_event(b.process(0));
        let m = b.append_event(b.process(1));
        let m2 = b.append_event(b.process(1));
        let z = b.append_event(b.process(2));
        b.message(a, m).unwrap();
        b.message(m2, z).unwrap();
        let comp = b.build().unwrap();
        let procs: ProcSet = [comp.process(0), comp.process(2)].into_iter().collect();
        let proj = Projection::new(&comp, procs).unwrap();
        let pc = proj.computation();
        // (1, 2) would contain z without a: must be inconsistent.
        assert!(!pc.is_consistent(&Cut::from(vec![1, 2])));
        assert!(pc.is_consistent(&Cut::from(vec![2, 2])));
    }

    #[test]
    fn mapping_accessors() {
        let comp = figure1();
        let procs: ProcSet = [comp.process(0), comp.process(2)].into_iter().collect();
        let proj = Projection::new(&comp, procs).unwrap();
        assert_eq!(
            proj.original_processes(),
            &[comp.process(0), comp.process(2)]
        );
        assert_eq!(proj.map_process(comp.process(2)), Some(ProcessId::new(1)));
        assert_eq!(proj.map_process(comp.process(1)), None);
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let mapped = proj.map_var(&comp, x1).unwrap();
        assert_eq!(mapped.process(), ProcessId::new(0));
        let x2 = comp.var(comp.process(1), "x2").unwrap();
        assert!(proj.map_var(&comp, x2).is_none());
        let b_evt = comp.event_by_label("b").unwrap();
        let mapped_evt = proj.map_event(&comp, b_evt).unwrap();
        assert_eq!(proj.computation().label(mapped_evt), Some("b"));
        assert_eq!(
            proj.restrict_cut(&Cut::from(vec![2, 3, 1])).counts(),
            &[2, 1]
        );
    }
}
