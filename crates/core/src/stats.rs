//! Slice statistics: how much of the state space slicing prunes.

use std::fmt;

use slicing_computation::lattice::{count_cuts, CutCount};
use slicing_computation::Computation;

use crate::slice::Slice;

/// Size statistics comparing a slice against its computation — the
/// quantities behind the paper's "exponentially smaller in many cases"
/// claim and the `table_slice_stats` reproduction binary.
#[derive(Debug, Clone)]
pub struct SliceStats {
    /// Events in the computation (including initial events).
    pub num_events: usize,
    /// Constraint edges of the slice.
    pub num_constraint_edges: usize,
    /// Meta-events of the slice (strongly connected components that appear
    /// in some cut).
    pub num_meta_events: usize,
    /// Events excluded from every slice cut.
    pub num_forbidden_events: usize,
    /// Consistent cuts of the computation (possibly capped).
    pub computation_cuts: CutCount,
    /// Consistent cuts of the slice (possibly capped).
    pub slice_cuts: CutCount,
}

impl SliceStats {
    /// Gathers statistics, counting cuts up to `cap` on each side (pass
    /// `None` to count exhaustively — exponential on the computation side).
    pub fn gather(comp: &Computation, slice: &Slice<'_>, cap: Option<u64>) -> Self {
        let num_forbidden_events = comp
            .events()
            .filter(|&e| slice.least_cut(e).is_none())
            .count();
        SliceStats {
            num_events: comp.num_events(),
            num_constraint_edges: slice.edges().len(),
            num_meta_events: slice.meta_events().len(),
            num_forbidden_events,
            computation_cuts: count_cuts(comp, cap),
            slice_cuts: slice.count_cuts(cap),
        }
    }

    /// Ratio of computation cuts to slice cuts (∞ for an empty slice),
    /// using the counted values (lower bounds if capped).
    pub fn reduction_factor(&self) -> f64 {
        let s = self.slice_cuts.value();
        if s == 0 {
            f64::INFINITY
        } else {
            self.computation_cuts.value() as f64 / s as f64
        }
    }
}

impl fmt::Display for SliceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "events: {}, constraint edges: {}, meta-events: {}, forbidden: {}, \
             cuts: {}{} → {}{} ({}x reduction)",
            self.num_events,
            self.num_constraint_edges,
            self.num_meta_events,
            self.num_forbidden_events,
            if self.computation_cuts.is_exact() {
                ""
            } else {
                "≥"
            },
            self.computation_cuts.value(),
            if self.slice_cuts.is_exact() {
                ""
            } else {
                "≥"
            },
            self.slice_cuts.value(),
            self.reduction_factor().round(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::test_fixtures::figure1;
    use slicing_predicates::{Conjunctive, LocalPredicate};

    use crate::conjunctive::slice_conjunctive;

    #[test]
    fn figure1_stats() {
        let comp = figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let x3 = comp.var(comp.process(2), "x3").unwrap();
        let pred = Conjunctive::new(vec![
            LocalPredicate::int(x1, "x1 > 1", |x| x > 1),
            LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3),
        ]);
        let slice = slice_conjunctive(&comp, &pred);
        let stats = SliceStats::gather(&comp, &slice, None);
        assert_eq!(stats.num_events, 12);
        assert_eq!(stats.computation_cuts.value(), 28);
        assert_eq!(stats.slice_cuts.value(), 6);
        assert_eq!(stats.num_meta_events, 4);
        // c, d, h, z and the always-false p3 tail are excluded; exact set:
        // events whose least_cut is None.
        assert!(stats.num_forbidden_events >= 4);
        assert!((stats.reduction_factor() - 28.0 / 6.0).abs() < 1e-9);
        let shown = stats.to_string();
        assert!(shown.contains("28"));
        assert!(shown.contains("6"));
    }

    #[test]
    fn empty_slice_reduction_is_infinite() {
        let comp = figure1();
        let slice = crate::Slice::empty(&comp);
        let stats = SliceStats::gather(&comp, &slice, Some(100));
        assert_eq!(stats.slice_cuts.value(), 0);
        assert!(stats.reduction_factor().is_infinite());
    }

    #[test]
    fn capped_counts_are_lower_bounds() {
        let comp = figure1();
        let slice = crate::Slice::full(&comp);
        let stats = SliceStats::gather(&comp, &slice, Some(5));
        assert!(!stats.computation_cuts.is_exact());
        assert_eq!(stats.computation_cuts.value(), 5);
    }
}
