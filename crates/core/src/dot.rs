//! Graphviz (DOT) export of computations and slices, for documentation
//! and debugging — space-time diagrams like the paper's Figure 1(a) and
//! meta-event graphs like Figure 1(b).

use std::fmt::Write as _;

use slicing_computation::Computation;

use crate::slice::{Node, Slice};

/// Renders the computation as a DOT digraph: one horizontal rank per
/// process, events labelled with their variable values, message edges
/// dashed.
pub fn computation_to_dot(comp: &Computation) -> String {
    let mut out = String::new();
    out.push_str("digraph computation {\n  rankdir=LR;\n  node [shape=circle, fontsize=10];\n");
    for p in comp.processes() {
        let _ = writeln!(out, "  subgraph cluster_{} {{", p.as_usize());
        let _ = writeln!(out, "    label=\"{p}\"; style=dashed;");
        for pos in 0..comp.len(p) {
            let e = comp.event_at(p, pos);
            let mut label = comp
                .label(e)
                .map(str::to_owned)
                .unwrap_or_else(|| format!("{p}:{pos}"));
            let vals: Vec<String> = comp
                .var_names(p)
                .map(|name| {
                    let var = comp.var(p, name).expect("listed name resolves");
                    format!("{name}={}", comp.value_at(var, pos))
                })
                .collect();
            if !vals.is_empty() {
                let _ = write!(label, "\\n{}", vals.join(","));
            }
            let shape = if pos == 0 { ", shape=doublecircle" } else { "" };
            let _ = writeln!(out, "    e{} [label=\"{label}\"{shape}];", e.as_usize());
        }
        // Process-order edges.
        for pos in 1..comp.len(p) {
            let _ = writeln!(
                out,
                "    e{} -> e{};",
                comp.event_at(p, pos - 1).as_usize(),
                comp.event_at(p, pos).as_usize()
            );
        }
        out.push_str("  }\n");
    }
    for m in comp.messages() {
        let _ = writeln!(
            out,
            "  e{} -> e{} [style=dashed, constraint=false];",
            m.send.as_usize(),
            m.recv.as_usize()
        );
    }
    out.push_str("}\n");
    out
}

/// Renders the slice as a DOT digraph of meta-events (the poset
/// representation the paper uses for presentation): each box lists the
/// events executed atomically, edges are the constraint order between
/// meta-events (transitively reduced within the emitted edge set only by
/// deduplication). Forbidden events (in no slice cut) are shown in a grey
/// box.
pub fn slice_to_dot(slice: &Slice<'_>) -> String {
    let comp = slice.computation();
    let metas = slice.meta_events();
    let mut meta_of = vec![usize::MAX; comp.num_events()];
    for (i, members) in metas.iter().enumerate() {
        for &e in members {
            meta_of[e.as_usize()] = i;
        }
    }

    let mut out = String::new();
    out.push_str("digraph slice {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
    for (i, members) in metas.iter().enumerate() {
        let names: Vec<String> = members.iter().map(|&e| comp.describe_event(e)).collect();
        let _ = writeln!(out, "  m{i} [label=\"{{{}}}\"];", names.join(", "));
    }

    // Edges: base order + constraint edges, lifted to meta-events.
    let mut seen = std::collections::HashSet::new();
    let mut edge = |from: usize, to: usize, out: &mut String| {
        if from != to && from != usize::MAX && to != usize::MAX && seen.insert((from, to)) {
            let _ = writeln!(out, "  m{from} -> m{to};");
        }
    };
    for p in comp.processes() {
        for pos in 1..comp.len(p) {
            let a = comp.event_at(p, pos - 1).as_usize();
            let b = comp.event_at(p, pos).as_usize();
            edge(meta_of[a], meta_of[b], &mut out);
        }
    }
    for m in comp.messages() {
        edge(
            meta_of[m.send.as_usize()],
            meta_of[m.recv.as_usize()],
            &mut out,
        );
    }
    for &(u, v) in slice.edges() {
        if let (Node::Event(u), Node::Event(v)) = (u, v) {
            edge(meta_of[u.as_usize()], meta_of[v.as_usize()], &mut out);
        }
    }

    // Forbidden events.
    let forbidden: Vec<String> = comp
        .events()
        .filter(|&e| slice.least_cut(e).is_none())
        .map(|e| comp.describe_event(e))
        .collect();
    if !forbidden.is_empty() {
        let _ = writeln!(
            out,
            "  forbidden [label=\"excluded: {}\", style=filled, fillcolor=lightgrey];",
            forbidden.join(", ")
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::test_fixtures::figure1;
    use slicing_predicates::{Conjunctive, LocalPredicate};

    #[test]
    fn computation_dot_mentions_every_event_and_message() {
        let comp = figure1();
        let dot = computation_to_dot(&comp);
        assert!(dot.starts_with("digraph computation"));
        for e in comp.events() {
            assert!(dot.contains(&format!("e{} ", e.as_usize())), "missing {e}");
        }
        // 4 dashed message edges.
        assert_eq!(dot.matches("style=dashed, constraint=false").count(), 4);
        // Values appear.
        assert!(dot.contains("x1=3"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn slice_dot_shows_meta_events_and_exclusions() {
        let comp = figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let x3 = comp.var(comp.process(2), "x3").unwrap();
        let pred = Conjunctive::new(vec![
            LocalPredicate::int(x1, "x1 > 1", |x| x > 1),
            LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3),
        ]);
        let slice = crate::slice_conjunctive(&comp, &pred);
        let dot = slice_to_dot(&slice);
        assert!(dot.starts_with("digraph slice"));
        // Four meta-events.
        for i in 0..4 {
            assert!(dot.contains(&format!("m{i} [label=")));
        }
        assert!(dot.contains("excluded:"));
        // No self-loops.
        for i in 0..4 {
            assert!(!dot.contains(&format!("m{i} -> m{i};")));
        }
    }

    #[test]
    fn full_slice_dot_has_no_forbidden_box() {
        let comp = figure1();
        let slice = crate::Slice::full(&comp);
        let dot = slice_to_dot(&slice);
        assert!(!dot.contains("excluded:"));
    }
}
