//! Computation slicing: concise representations of the consistent cuts
//! satisfying a predicate (Mittal & Garg, ICDCS 2003).
//!
//! The *slice* of a computation with respect to a predicate `b` is the
//! directed graph with the fewest consistent cuts that still contains every
//! consistent cut satisfying `b` — equivalently, by Birkhoff's theorem, the
//! smallest sublattice of the cut lattice containing the satisfying cuts.
//! Detecting a fault then means searching the slice's few cuts instead of
//! the computation's exponentially many.
//!
//! # Slicing algorithms
//!
//! | Predicate class | Function | Cost | Result |
//! |---|---|---|---|
//! | conjunctive | [`slice_conjunctive`] | `O(|E|)` | exact (lean) |
//! | regular | [`slice_regular`] | `O(n²|E|)` | exact (lean) |
//! | linear | [`slice_linear`] | `O(n²|E|)` | smallest sublattice |
//! | post-linear | [`slice_postlinear`] | `O(n²|E|)` | smallest sublattice |
//! | decomposable regular | [`slice_decomposable`] | `O((n + k²s)|E|)` | exact (lean) |
//! | k-local, constant k | [`slice_klocal`] | `O(n·m^(k-1)·|E|)` | smallest sublattice |
//! | co-regular (`¬b`, `b` regular) | [`slice_co_regular`] | `O(n²|E|²)` | exact |
//! | `∧`/`∨` combinations | [`PredicateSpec::slice`] | polynomial | approximate (sound) |
//!
//! Slices compose with *grafting*: [`graft_and`] intersects two slices'
//! cut sets, [`graft_or`] produces the smallest slice containing their
//! union (Section 3.4).
//!
//! [`OnlineSlicer`] maintains a conjunctive slice incrementally as events
//! arrive — the paper's future-work direction. Each observation updates a
//! least-cut clock in O(n); messages (including late, out-of-order ones)
//! re-time only the affected part of history, and cyclic ones are
//! rejected in O(1) with a typed error.
//!
//! # Example: Figure 1
//!
//! ```
//! use slicing_computation::test_fixtures::figure1;
//! use slicing_computation::lattice::count_cuts;
//! use slicing_predicates::{Conjunctive, LocalPredicate};
//! use slicing_core::slice_conjunctive;
//!
//! let comp = figure1();
//! let x1 = comp.var(comp.process(0), "x1").unwrap();
//! let x3 = comp.var(comp.process(2), "x3").unwrap();
//! let pred = Conjunctive::new(vec![
//!     LocalPredicate::int(x1, "x1 > 1", |x| x > 1),
//!     LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3),
//! ]);
//! let slice = slice_conjunctive(&comp, &pred);
//! assert_eq!(count_cuts(&comp, None).value(), 28);
//! assert_eq!(slice.count_cuts(None).value(), 6);
//! ```

#![warn(missing_docs)]

mod approx;
mod compile;
mod conjunctive;
mod coregular;
mod decomposable;
pub mod dot;
mod graft;
mod incremental;
mod klocal;
mod linear;
mod postlinear;
mod projection;
mod slice;
mod stats;

pub use approx::PredicateSpec;
pub use compile::{compile_expr, compile_predicate};
pub use conjunctive::slice_conjunctive;
pub use coregular::{slice_co_regular, slice_complement_of};
pub use decomposable::slice_decomposable;
pub use graft::{graft_and, graft_and_all, graft_or, graft_or_all, GraftKey};
pub use incremental::{CompactionStats, OnlineSlicer, SlicerState};
pub use klocal::slice_klocal;
pub use linear::{slice_linear, slice_linear_restricted, slice_regular};
pub use postlinear::slice_postlinear;
pub use projection::Projection;
pub use slice::{Edge, Node, Slice};
pub use stats::SliceStats;
