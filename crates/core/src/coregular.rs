//! Slicing co-regular predicates: complements of regular predicates.

use slicing_computation::{Computation, EventId};
use slicing_predicates::RegularPredicate;

use crate::graft::graft_or_fold;
use crate::linear::slice_linear;
use crate::slice::{Node, Slice};

/// Computes the slice of `comp` with respect to `¬b` for a regular
/// predicate `b`, in `O(n²|E|²)` time (the co-regular algorithm the paper
/// inherits from DISC'01).
///
/// Since `b` is regular, its slice `S_b` is lean: a consistent cut violates
/// `b` exactly when it violates at least one constraint of `S_b`. Each
/// constraint is one of:
///
/// - an edge `u → v` — violated by cuts with `v ∈ C ∧ u ∉ C`, a set that
///   is closed under union and intersection and is therefore itself a
///   slice (require `v`, forbid `u`);
/// - a forbidden event `f` (`⊤ → f`) — violated by cuts containing `f`
///   (require `f`).
///
/// The slice of `¬b` is the disjunction graft of these `O(n|E|)` violation
/// slices. Edges `u → v` with `u` happened-before `v` can never be
/// violated by a consistent cut and are skipped.
pub fn slice_co_regular<'a, P: RegularPredicate + ?Sized>(
    comp: &'a Computation,
    pred: &P,
) -> Slice<'a> {
    let base = slice_linear(comp, pred);
    slice_complement_of(comp, &base)
}

/// Computes the slice whose cuts form the smallest sublattice containing
/// every consistent cut of `comp` that is **not** a cut of `slice`.
///
/// Exact (lean) when `slice` is the lean slice of a regular predicate;
/// see [`slice_co_regular`]. Useful directly for `definitely`-modality
/// detection, which searches the complement of a slice.
pub fn slice_complement_of<'a>(comp: &'a Computation, slice: &Slice<'a>) -> Slice<'a> {
    let _span = slicing_observe::span("slice.co_regular");
    let anchor = Node::Event(comp.event_at(comp.process(0), 0));
    let mut violations: Vec<Slice<'a>> = Vec::new();

    for &(u, v) in slice.edges() {
        match (u, v) {
            (Node::Top, Node::Event(f)) => {
                // Cuts containing the forbidden event f.
                violations.push(Slice::new(comp, vec![(Node::Event(f), anchor)]));
            }
            (Node::Event(u), Node::Event(v)) => {
                if implied_by_base(comp, u, v) {
                    continue;
                }
                // Cuts with v ∈ C and u ∉ C: require v, forbid u.
                violations.push(Slice::new(
                    comp,
                    vec![(Node::Event(v), anchor), (Node::Top, Node::Event(u))],
                ));
            }
            // Edges into ⊤ are vacuous; ⊤ → ⊤ cannot occur.
            _ => {}
        }
    }

    slicing_observe::counter("slice.co_regular.violations", violations.len() as u64);
    graft_or_fold(comp, violations.iter())
}

/// `true` if `u → v` already follows from the happened-before relation, so
/// no consistent cut can violate the edge.
fn implied_by_base(comp: &Computation, u: EventId, v: EventId) -> bool {
    comp.causally_within(u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::lattice::all_cuts;
    use slicing_computation::oracle::expected_slice_cuts;
    use slicing_computation::test_fixtures::{figure1, random_computation, RandomConfig};
    use slicing_computation::Cut;
    use slicing_predicates::{AtMostInTransit, Conjunctive, LocalPredicate, Predicate};
    use std::collections::BTreeSet;

    fn assert_complement_matches_oracle<P: RegularPredicate + ?Sized>(
        comp: &Computation,
        pred: &P,
        ctx: &str,
    ) {
        let slice = slice_co_regular(comp, pred);
        let got: BTreeSet<Cut> = all_cuts(&slice).into_iter().collect();
        let (want, _) = expected_slice_cuts(comp, |st| !pred.eval(st));
        assert_eq!(got, want, "{ctx}");
    }

    #[test]
    fn figure1_complement() {
        let comp = figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let x3 = comp.var(comp.process(2), "x3").unwrap();
        let pred = Conjunctive::new(vec![
            LocalPredicate::int(x1, "x1 > 1", |x| x > 1),
            LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3),
        ]);
        assert_complement_matches_oracle(&comp, &pred, "figure1");
    }

    #[test]
    fn complement_of_true_is_empty() {
        let comp = figure1();
        let pred = Conjunctive::new(vec![]);
        assert!(slice_co_regular(&comp, &pred).is_empty_slice());
    }

    #[test]
    fn complement_of_false_is_full() {
        let comp = figure1();
        let x1 = comp.var(comp.process(0), "x1").unwrap();
        let pred = Conjunctive::new(vec![LocalPredicate::int(x1, "x1 > 99", |x| x > 99)]);
        let slice = slice_co_regular(&comp, &pred);
        assert_eq!(all_cuts(&slice).len(), 28);
    }

    #[test]
    fn random_conjunctive_complements_match_oracle() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 3,
            value_range: 3,
            ..RandomConfig::default()
        };
        for seed in 0..15 {
            let comp = random_computation(seed, &cfg);
            let clauses: Vec<LocalPredicate> = comp
                .processes()
                .map(|p| {
                    let x = comp.var(p, "x").unwrap();
                    let t = (seed % 3) as i64;
                    LocalPredicate::int(x, format!("x >= {t}"), move |v| v >= t)
                })
                .collect();
            let pred = Conjunctive::new(clauses);
            assert_complement_matches_oracle(&comp, &pred, &format!("seed {seed}"));
        }
    }

    #[test]
    fn random_channel_complements_match_oracle() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 3,
            send_percent: 60,
            recv_percent: 60,
            ..RandomConfig::default()
        };
        for seed in 30..45 {
            let comp = random_computation(seed, &cfg);
            let pred = AtMostInTransit::new(comp.process(0), comp.process(1), 0);
            assert_complement_matches_oracle(&comp, &pred, &format!("seed {seed}"));
        }
    }

    #[test]
    fn complement_misses_no_violating_cut() {
        // Soundness: every ¬b cut must be in the complement slice.
        let comp = figure1();
        let x3 = comp.var(comp.process(2), "x3").unwrap();
        let pred = Conjunctive::new(vec![LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3)]);
        let slice = slice_co_regular(&comp, &pred);
        for cut in all_cuts(&comp) {
            let st = slicing_computation::GlobalState::new(&comp, &cut);
            if !pred.eval(&st) {
                assert!(slice.contains_cut(&cut), "missing violating cut {cut}");
            }
        }
    }
}
