//! Incremental (online) conjunctive slicing — the paper's future-work
//! direction: update the slice as new events arrive instead of recomputing
//! it from scratch.

use slicing_computation::{
    BuildError, Computation, ComputationBuilder, EventId, ProcessId, Value, VarRef,
};

use crate::slice::{Edge, Node, Slice};

/// An online slicer for conjunctive predicates.
///
/// Events are observed one at a time (with their variable assignments and
/// message edges); the slicer maintains the conjunctive constraint edges
/// *incrementally* — `O(1)` extra work per event, since the conjunctive
/// slicer's edges are purely local (a false event points at its process
/// successor). [`snapshot_computation`](OnlineSlicer::snapshot_computation) materializes the
/// computation-so-far and its slice; treating the not-yet-followed last
/// event of each process exactly like the offline slicer treats it keeps
/// every snapshot equal to the offline result.
///
/// # Examples
///
/// ```
/// use slicing_computation::Value;
/// use slicing_core::OnlineSlicer;
///
/// let mut s = OnlineSlicer::new(2);
/// let x = s.declare_var(0, "x", Value::Int(0))?;
/// let y = s.declare_var(1, "y", Value::Int(0))?;
/// s.watch_int(x, "x > 0", |v| v > 0);
/// s.watch_int(y, "y > 0", |v| v > 0);
/// s.observe(0, &[(x, Value::Int(1))])?;
/// s.observe(1, &[(y, Value::Int(2))])?;
/// let comp = s.snapshot_computation()?;
/// let slice = s.slice_of(&comp);
/// assert_eq!(slice.count_cuts(None).value(), 1);
/// # Ok::<(), slicing_computation::BuildError>(())
/// ```
#[derive(Debug)]
pub struct OnlineSlicer {
    builder: ComputationBuilder,
    watches: Vec<Watch>,
    /// Constraint edges already finalized (their event has a successor, or
    /// the edge is local-false → successor pending).
    settled_edges: Vec<(EventId, EventId)>,
    /// Last event per process together with whether its conjuncts hold.
    frontier: Vec<(EventId, bool)>,
}

struct Watch {
    var: VarRef,
    label: String,
    f: Box<dyn Fn(Value) -> bool + Send + Sync>,
}

impl std::fmt::Debug for Watch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Watch({} on {})", self.label, self.var.process())
    }
}

impl OnlineSlicer {
    /// Creates an online slicer for `num_processes` processes.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`ComputationBuilder::new`].
    pub fn new(num_processes: usize) -> Self {
        let builder = ComputationBuilder::new(num_processes);
        let frontier = (0..num_processes)
            .map(|i| (builder.event_at(ProcessId::new(i), 0), true))
            .collect();
        OnlineSlicer {
            builder,
            watches: Vec::new(),
            settled_edges: Vec::new(),
            frontier,
        }
    }

    /// Declares a variable before any event of its process is observed.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError::DuplicateVariable`] /
    /// [`BuildError::LateVariable`].
    pub fn declare_var(
        &mut self,
        process: usize,
        name: &str,
        initial: Value,
    ) -> Result<VarRef, BuildError> {
        let p = self.builder.process(process);
        let v = self.builder.try_declare_var(p, name, initial)?;
        Ok(v)
    }

    /// Adds a conjunct: the predicate being sliced is the conjunction of
    /// all watches. Watches must be registered before the first `observe`
    /// on the variable's process (so initial-event truth is tracked).
    ///
    /// # Panics
    ///
    /// Panics if the variable's process already observed real events.
    pub fn watch_int(
        &mut self,
        var: VarRef,
        label: impl Into<String>,
        f: impl Fn(i64) -> bool + Send + Sync + 'static,
    ) {
        self.watch(var, label, move |v| f(v.expect_int()));
    }

    /// General form of [`watch_int`](OnlineSlicer::watch_int).
    ///
    /// # Panics
    ///
    /// Panics if the variable's process already observed real events.
    pub fn watch(
        &mut self,
        var: VarRef,
        label: impl Into<String>,
        f: impl Fn(Value) -> bool + Send + Sync + 'static,
    ) {
        assert!(
            self.builder.len(var.process()) == 1,
            "watches must be registered before events of the process"
        );
        self.watches.push(Watch {
            var,
            label: label.into(),
            f: Box::new(f),
        });
        // Re-evaluate the initial event's truth.
        let p = var.process();
        let holds = self.holds_at_frontier(p);
        let idx = p.as_usize();
        self.frontier[idx].1 = holds;
    }

    fn holds_at_frontier(&self, p: ProcessId) -> bool {
        let pos = self.builder.len(p) - 1;
        self.watches
            .iter()
            .filter(|w| w.var.process() == p)
            .all(|w| {
                let snapshot_value = self.builder_value(w.var, pos);
                (w.f)(snapshot_value)
            })
    }

    /// Reads the value of `var` at position `pos` from the builder's
    /// snapshots by replaying declarations — the builder tracks snapshots
    /// internally, so this just defers to the eventual computation. For
    /// the frontier (the only position queried) the last assigned value is
    /// what `observe` recorded.
    fn builder_value(&self, var: VarRef, pos: u32) -> Value {
        self.builder.value_at(var, pos)
    }

    /// Observes a new event on `process` with the given assignments.
    /// Returns the event id for later [`message`](OnlineSlicer::message)
    /// calls.
    ///
    /// # Errors
    ///
    /// Propagates builder errors (stale assignments).
    pub fn observe(
        &mut self,
        process: usize,
        assignments: &[(VarRef, Value)],
    ) -> Result<EventId, BuildError> {
        let p = self.builder.process(process);
        let e = self.builder.append_event(p);
        for &(var, value) in assignments {
            self.builder.assign(e, var, value)?;
        }
        // The previous frontier event now has a successor: settle its edge
        // if its conjuncts were false.
        let (prev, prev_holds) = self.frontier[process];
        if !prev_holds {
            self.settled_edges.push((e, prev));
        }
        let holds = self.holds_at_frontier(p);
        self.frontier[process] = (e, holds);
        Ok(e)
    }

    /// Observes a message between two already-observed events.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`]s (self message, duplicates, ...).
    pub fn message(&mut self, send: EventId, recv: EventId) -> Result<(), BuildError> {
        self.builder.message(send, recv)
    }

    /// Materializes the computation observed so far. Pair with
    /// [`slice_of`](OnlineSlicer::slice_of) to obtain the current slice.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::CyclicOrder`] if observed messages formed a
    /// cycle.
    pub fn snapshot_computation(&self) -> Result<Computation, BuildError> {
        self.builder.clone().build()
    }

    /// The slice of the observed prefix, built from the incrementally
    /// maintained edges. `comp` must come from
    /// [`snapshot_computation`](OnlineSlicer::snapshot_computation) at the
    /// current prefix. Equals what
    /// [`slice_conjunctive`](crate::slice_conjunctive) computes offline on
    /// the same prefix.
    ///
    /// # Panics
    ///
    /// Panics if `comp` has a different number of events than observed.
    pub fn slice_of<'a>(&self, comp: &'a Computation) -> Slice<'a> {
        let observed: u32 = (0..self.builder.num_processes())
            .map(|i| self.builder.len(ProcessId::new(i)))
            .sum();
        assert_eq!(
            comp.num_events() as u32,
            observed,
            "computation does not match the observed prefix"
        );
        let mut edges: Vec<Edge> = self
            .settled_edges
            .iter()
            .map(|&(succ, e)| (Node::Event(succ), Node::Event(e)))
            .collect();
        // Unsettled frontiers: a false last event is forbidden, exactly as
        // the offline slicer treats a false final event.
        for &(e, holds) in &self.frontier {
            if !holds {
                edges.push((Node::Top, Node::Event(e)));
            }
        }
        Slice::new(comp, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::lattice::all_cuts;
    use slicing_predicates::{Conjunctive, LocalPredicate};

    use crate::conjunctive::slice_conjunctive;

    /// Replays a prefix offline and compares against the online snapshot.
    #[test]
    fn snapshots_match_offline_slicer_at_every_prefix() {
        let mut s = OnlineSlicer::new(2);
        let x = s.declare_var(0, "x", Value::Int(0)).unwrap();
        let y = s.declare_var(1, "y", Value::Int(1)).unwrap();
        s.watch_int(x, "x > 0", |v| v > 0);
        s.watch_int(y, "y > 0", |v| v > 0);

        let script: Vec<(usize, VarRef, i64)> =
            vec![(0, x, 1), (1, y, 0), (0, x, 0), (1, y, 2), (0, x, 3)];
        for (i, &(p, var, val)) in script.iter().enumerate() {
            s.observe(p, &[(var, Value::Int(val))]).unwrap();

            let comp = s.snapshot_computation().unwrap();
            let online_slice = s.slice_of(&comp);
            let xp = comp.var(comp.process(0), "x").unwrap();
            let yp = comp.var(comp.process(1), "y").unwrap();
            let pred = Conjunctive::new(vec![
                LocalPredicate::int(xp, "x > 0", |v| v > 0),
                LocalPredicate::int(yp, "y > 0", |v| v > 0),
            ]);
            let offline = slice_conjunctive(&comp, &pred);
            assert_eq!(
                all_cuts(&online_slice),
                all_cuts(&offline),
                "prefix {}",
                i + 1
            );
        }
    }

    #[test]
    fn messages_flow_into_snapshots() {
        let mut s = OnlineSlicer::new(2);
        let e0 = s.observe(0, &[]).unwrap();
        let e1 = s.observe(1, &[]).unwrap();
        s.message(e0, e1).unwrap();
        let comp = s.snapshot_computation().unwrap();
        let slice = s.slice_of(&comp);
        assert_eq!(comp.messages().len(), 1);
        assert_eq!(slice.count_cuts(None).value(), 3);
    }

    #[test]
    fn initial_false_watch_constrains_bottom() {
        let mut s = OnlineSlicer::new(1);
        let x = s.declare_var(0, "x", Value::Int(0)).unwrap();
        s.watch_int(x, "x > 0", |v| v > 0);
        // Initially false: with no events yet, the slice is empty.
        let comp = s.snapshot_computation().unwrap();
        assert!(s.slice_of(&comp).is_empty_slice());
        // After a satisfying event the slice reappears.
        s.observe(0, &[(x, Value::Int(5))]).unwrap();
        let comp = s.snapshot_computation().unwrap();
        assert_eq!(s.slice_of(&comp).count_cuts(None).value(), 1);
    }

    #[test]
    #[should_panic(expected = "before events")]
    fn late_watch_rejected() {
        let mut s = OnlineSlicer::new(1);
        let x = s.declare_var(0, "x", Value::Int(0)).unwrap();
        s.observe(0, &[]).unwrap();
        s.watch_int(x, "x > 0", |v| v > 0);
    }
}
