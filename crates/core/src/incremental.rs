//! Incremental (online) conjunctive slicing — the paper's future-work
//! direction: update the slice as new events arrive instead of recomputing
//! it from scratch.
//!
//! Besides the constraint edges (which are purely local for conjunctive
//! predicates), the slicer maintains the *least-cut table* incrementally: a
//! vector clock per event, extended in `O(n)` when the event is observed
//! and repaired by a monotone worklist pass when a late message tightens
//! the causal order. The clocks give an `O(1)` cycle check at
//! [`message`](OnlineSlicer::message) time — a cyclic observation is
//! rejected *before* it corrupts the history — and power the amortized
//! `O(1)` checks of [`OnlineMonitor`](../../slicing_detect/struct.OnlineMonitor.html).

use slicing_computation::{
    BuildError, Computation, ComputationBuilder, Cut, EventId, ProcessId, Value, VarRef,
};
use slicing_predicates::LocalPredicate;

use crate::slice::{Edge, Node, Slice};

/// An online slicer for conjunctive predicates.
///
/// Events are observed one at a time (with their variable assignments and
/// message edges); the slicer maintains the conjunctive constraint edges
/// *incrementally* — `O(1)` extra work per event, since the conjunctive
/// slicer's edges are purely local (a false event points at its process
/// successor) — together with a per-event vector clock (the least-cut
/// table). [`snapshot_computation`](OnlineSlicer::snapshot_computation)
/// materializes the computation-so-far and its slice; treating the
/// not-yet-followed last event of each process exactly like the offline
/// slicer treats it keeps every snapshot equal to the offline result.
///
/// Every observation is validated before it is recorded: assignments are
/// type-checked against the declared initial value
/// ([`BuildError::TypeMismatch`]), messages that would bend time are
/// rejected with [`BuildError::CyclicOrder`] in `O(1)`, and watches
/// registered after their process moved return [`BuildError::LateWatch`].
/// A failed call leaves the observed history exactly as it was.
///
/// # Examples
///
/// ```
/// use slicing_computation::Value;
/// use slicing_core::OnlineSlicer;
///
/// let mut s = OnlineSlicer::new(2);
/// let x = s.declare_var(0, "x", Value::Int(0))?;
/// let y = s.declare_var(1, "y", Value::Int(0))?;
/// s.watch_int(x, "x > 0", |v| v > 0)?;
/// s.watch_int(y, "y > 0", |v| v > 0)?;
/// s.observe(0, &[(x, Value::Int(1))])?;
/// s.observe(1, &[(y, Value::Int(2))])?;
/// let comp = s.snapshot_computation()?;
/// let slice = s.slice_of(&comp);
/// assert_eq!(slice.count_cuts(None).value(), 1);
/// # Ok::<(), slicing_computation::BuildError>(())
/// ```
#[derive(Debug)]
pub struct OnlineSlicer {
    builder: ComputationBuilder,
    watches: Vec<Watch>,
    /// Per process: whether at least one watch targets it.
    watched: Vec<bool>,
    /// Constraint edges already finalized (their event has a successor, or
    /// the edge is local-false → successor pending).
    settled_edges: Vec<(EventId, EventId)>,
    /// Last event per process together with whether its conjuncts hold.
    frontier: Vec<(EventId, bool)>,
    /// Per event: its vector clock — the least consistent cut containing
    /// it. Kept current under late messages by [`propagate`](Self::propagate).
    clocks: Vec<Cut>,
    /// Per event: whether its process's conjuncts hold at it.
    holds: Vec<bool>,
    /// Per event: message edges out of it, for clock propagation.
    msgs_out: Vec<Vec<EventId>>,
    /// Bumped whenever a late message changes an already-assigned clock;
    /// consumers cache it to know when cached consistency facts expire.
    clock_revision: u64,
    /// Scratch for the propagation worklist.
    worklist: Vec<EventId>,
    /// Scratch for an event's successors during propagation.
    succ_scratch: Vec<EventId>,
    /// Scratch for clause evaluation.
    values_scratch: Vec<Value>,
}

enum Watch {
    Var {
        var: VarRef,
        label: String,
        f: Box<dyn Fn(Value) -> bool + Send + Sync>,
    },
    Clause(LocalPredicate),
}

impl std::fmt::Debug for Watch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Watch::Var { var, label, .. } => {
                write!(f, "Watch({} on {})", label, var.process())
            }
            Watch::Clause(clause) => {
                write!(f, "Watch({} on {})", clause.label(), clause.process())
            }
        }
    }
}

impl OnlineSlicer {
    /// Creates an online slicer for `num_processes` processes.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`ComputationBuilder::new`].
    pub fn new(num_processes: usize) -> Self {
        let builder = ComputationBuilder::new(num_processes);
        let frontier: Vec<(EventId, bool)> = (0..num_processes)
            .map(|i| (builder.event_at(ProcessId::new(i), 0), true))
            .collect();
        let mut slicer = OnlineSlicer {
            builder,
            watches: Vec::new(),
            watched: vec![false; num_processes],
            settled_edges: Vec::new(),
            frontier: frontier.clone(),
            clocks: Vec::new(),
            holds: Vec::new(),
            msgs_out: Vec::new(),
            clock_revision: 0,
            worklist: Vec::new(),
            succ_scratch: Vec::new(),
            values_scratch: Vec::new(),
        };
        // Initial events sit in every consistent cut: clock = ⊥ (all ones).
        for &(e, _) in &frontier {
            slicer.ensure_slot(e);
        }
        slicer
    }

    fn ensure_slot(&mut self, e: EventId) {
        let need = e.as_usize() + 1;
        if self.clocks.len() < need {
            let n = self.builder.num_processes();
            self.clocks.resize_with(need, || Cut::bottom(n));
            self.holds.resize(need, true);
            self.msgs_out.resize_with(need, Vec::new);
        }
    }

    /// Declares a variable before any event of its process is observed.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError::DuplicateVariable`] /
    /// [`BuildError::LateVariable`].
    pub fn declare_var(
        &mut self,
        process: usize,
        name: &str,
        initial: Value,
    ) -> Result<VarRef, BuildError> {
        let p = self.builder.process(process);
        let v = self.builder.try_declare_var(p, name, initial)?;
        Ok(v)
    }

    /// Adds an integer conjunct. See [`watch`](OnlineSlicer::watch).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::TypeMismatch`] if `var` was not declared with
    /// an integer initial value (so the closure can never see a non-integer
    /// observation), or [`BuildError::LateWatch`] if the variable's process
    /// already observed real events.
    pub fn watch_int(
        &mut self,
        var: VarRef,
        label: impl Into<String>,
        f: impl Fn(i64) -> bool + Send + Sync + 'static,
    ) -> Result<(), BuildError> {
        self.check_watch_type(var, "int", |v| matches!(v, Value::Int(_)))?;
        self.watch(var, label, move |v| f(v.expect_int()))
    }

    /// Adds a boolean conjunct. See [`watch`](OnlineSlicer::watch).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::TypeMismatch`] if `var` was not declared with
    /// a boolean initial value, or [`BuildError::LateWatch`] if the
    /// variable's process already observed real events.
    pub fn watch_bool(
        &mut self,
        var: VarRef,
        label: impl Into<String>,
        f: impl Fn(bool) -> bool + Send + Sync + 'static,
    ) -> Result<(), BuildError> {
        self.check_watch_type(var, "bool", |v| matches!(v, Value::Bool(_)))?;
        self.watch(var, label, move |v| f(v.expect_bool()))
    }

    fn check_watch_type(
        &self,
        var: VarRef,
        expected: &'static str,
        ok: impl Fn(Value) -> bool,
    ) -> Result<(), BuildError> {
        let declared = self.builder.value_at(var, 0);
        if ok(declared) {
            Ok(())
        } else {
            Err(BuildError::TypeMismatch {
                process: var.process(),
                name: self.builder.var_name(var).to_owned(),
                expected,
                got: declared.type_name(),
            })
        }
    }

    /// Adds a conjunct: the predicate being sliced is the conjunction of
    /// all watches. Watches must be registered before the first `observe`
    /// on the variable's process (so initial-event truth is tracked).
    ///
    /// The closure receives whatever [`Value`] was observed; use
    /// [`watch_int`](OnlineSlicer::watch_int) /
    /// [`watch_bool`](OnlineSlicer::watch_bool) for typed variants that are
    /// validated up front and can never see a wrong-typed value (every
    /// observation is checked against the declared initial value).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::LateWatch`] if the variable's process already
    /// observed real events.
    pub fn watch(
        &mut self,
        var: VarRef,
        label: impl Into<String>,
        f: impl Fn(Value) -> bool + Send + Sync + 'static,
    ) -> Result<(), BuildError> {
        self.register(
            var.process(),
            Watch::Var {
                var,
                label: label.into(),
                f: Box::new(f),
            },
        )
    }

    /// Adds a whole local clause (possibly over several variables of one
    /// process) as a conjunct — the bridge from
    /// [`Conjunctive`](slicing_predicates::Conjunctive) specifications to
    /// the online slicer.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::LateWatch`] if the clause's process already
    /// observed real events.
    pub fn watch_clause(&mut self, clause: LocalPredicate) -> Result<(), BuildError> {
        self.register(clause.process(), Watch::Clause(clause))
    }

    fn register(&mut self, p: ProcessId, w: Watch) -> Result<(), BuildError> {
        if self.builder.len(p) != 1 {
            return Err(BuildError::LateWatch { process: p });
        }
        self.watches.push(w);
        self.watched[p.as_usize()] = true;
        // Re-evaluate the initial event's truth.
        let holds = self.holds_at_frontier(p);
        self.frontier[p.as_usize()].1 = holds;
        let init = self.builder.event_at(p, 0);
        self.holds[init.as_usize()] = holds;
        Ok(())
    }

    fn holds_at_frontier(&mut self, p: ProcessId) -> bool {
        let pos = self.builder.len(p) - 1;
        for i in 0..self.watches.len() {
            let ok = match &self.watches[i] {
                Watch::Var { var, f, .. } if var.process() == p => {
                    f(self.builder.value_at(*var, pos))
                }
                Watch::Clause(clause) if clause.process() == p => {
                    self.values_scratch.clear();
                    for &v in clause.vars() {
                        self.values_scratch.push(self.builder.value_at(v, pos));
                    }
                    clause.eval_values(&self.values_scratch)
                }
                _ => true,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Observes a new event on `process` with the given assignments.
    /// Returns the event id for later [`message`](OnlineSlicer::message)
    /// calls.
    ///
    /// Assignments are validated *before* the event is recorded: a value
    /// whose runtime type differs from the variable's declared initial
    /// value is rejected with [`BuildError::TypeMismatch`], and an
    /// assignment to another process's variable with
    /// [`BuildError::StaleAssignment`]. On error no event is appended.
    ///
    /// # Errors
    ///
    /// [`BuildError::TypeMismatch`] / [`BuildError::StaleAssignment`], as
    /// above.
    pub fn observe(
        &mut self,
        process: usize,
        assignments: &[(VarRef, Value)],
    ) -> Result<EventId, BuildError> {
        let p = self.builder.process(process);
        for &(var, value) in assignments {
            if var.process() != p {
                return Err(BuildError::StaleAssignment {
                    event: self.frontier[var.process().as_usize()].0,
                });
            }
            let declared = self.builder.value_at(var, 0);
            if !declared.same_type(value) {
                return Err(BuildError::TypeMismatch {
                    process: p,
                    name: self.builder.var_name(var).to_owned(),
                    expected: declared.type_name(),
                    got: value.type_name(),
                });
            }
        }
        let e = self.builder.append_event(p);
        for &(var, value) in assignments {
            self.builder.assign(e, var, value)?;
        }
        // Clock: the previous frontier event's clock advanced by one step
        // of `p` — message joins were already folded into the predecessor.
        let pos = self.builder.position_of(e);
        let (prev, prev_holds) = self.frontier[process];
        self.ensure_slot(e);
        let mut clock = self.clocks[prev.as_usize()].clone();
        clock.set_count(p, pos + 1);
        self.clocks[e.as_usize()] = clock;
        // The previous frontier event now has a successor: settle its edge
        // if its conjuncts were false.
        if !prev_holds {
            self.settled_edges.push((e, prev));
        }
        let holds = self.holds_at_frontier(p);
        self.holds[e.as_usize()] = holds;
        self.frontier[process] = (e, holds);
        slicing_observe::counter("online.events_observed", 1);
        Ok(e)
    }

    /// Observes a batch of events, in order: each element is a process and
    /// its assignments. Returns the new event ids.
    ///
    /// # Errors
    ///
    /// Stops at the first failing observation (events observed before the
    /// error remain part of the history, exactly as if
    /// [`observe`](OnlineSlicer::observe) had been called in a loop).
    pub fn observe_batch(
        &mut self,
        batch: &[(usize, Vec<(VarRef, Value)>)],
    ) -> Result<Vec<EventId>, BuildError> {
        let mut ids = Vec::with_capacity(batch.len());
        for (process, assignments) in batch {
            ids.push(self.observe(*process, assignments)?);
        }
        Ok(ids)
    }

    /// Observes a message between two already-observed events.
    ///
    /// A message that would create a causal cycle is rejected — in `O(1)`,
    /// by a clock comparison — *before* anything is recorded, so
    /// [`snapshot_computation`](OnlineSlicer::snapshot_computation) never
    /// fails on a history this method accepted. Messages that arrive late
    /// (after their endpoints gained successors) trigger a monotone
    /// worklist repair of downstream clocks;
    /// [`clock_revision`](OnlineSlicer::clock_revision) is bumped when any
    /// clock actually changed.
    ///
    /// # Errors
    ///
    /// [`BuildError::CyclicOrder`] for time-bending messages, plus the
    /// builder's own validations (self messages, duplicates, initial
    /// events).
    pub fn message(&mut self, send: EventId, recv: EventId) -> Result<(), BuildError> {
        if send.as_usize() < self.clocks.len() && recv.as_usize() < self.clocks.len() {
            let sp = self.builder.process_of(send);
            let rp = self.builder.process_of(recv);
            // recv →* send iff send's clock already covers recv; initial
            // events are left to the builder's own validation.
            if sp != rp
                && self.builder.position_of(send) >= 1
                && self.builder.position_of(recv) >= 1
                && self.clocks[send.as_usize()].count(rp) > self.builder.position_of(recv)
            {
                return Err(BuildError::CyclicOrder);
            }
        }
        self.builder.message(send, recv)?;
        self.msgs_out[send.as_usize()].push(recv);
        self.propagate(send, recv);
        Ok(())
    }

    /// Folds the new `send → recv` edge into downstream clocks: a monotone
    /// worklist pass that touches only events whose clock actually grows.
    fn propagate(&mut self, send: EventId, recv: EventId) {
        if self.clocks[send.as_usize()].leq(&self.clocks[recv.as_usize()]) {
            return; // the edge was already implied by the order so far
        }
        self.clock_revision += 1;
        let src = self.clocks[send.as_usize()].clone();
        self.clocks[recv.as_usize()].join_assign(&src);
        self.worklist.clear();
        self.worklist.push(recv);
        while let Some(e) = self.worklist.pop() {
            let p = self.builder.process_of(e);
            let pos = self.builder.position_of(e);
            self.succ_scratch.clear();
            if pos + 1 < self.builder.len(p) {
                self.succ_scratch.push(self.builder.event_at(p, pos + 1));
            }
            self.succ_scratch
                .extend_from_slice(&self.msgs_out[e.as_usize()]);
            for i in 0..self.succ_scratch.len() {
                let s = self.succ_scratch[i];
                if !self.clocks[e.as_usize()].leq(&self.clocks[s.as_usize()]) {
                    let src = self.clocks[e.as_usize()].clone();
                    self.clocks[s.as_usize()].join_assign(&src);
                    self.worklist.push(s);
                }
            }
        }
    }

    /// The number of processes.
    pub fn num_processes(&self) -> usize {
        self.builder.num_processes()
    }

    /// Events observed on `process` so far, *including* the fictitious
    /// initial event (so a fresh slicer reports 1 per process).
    pub fn events_on(&self, process: usize) -> u32 {
        self.builder.len(self.builder.process(process))
    }

    /// Total events observed, including the initial events.
    pub fn num_events(&self) -> u32 {
        (0..self.num_processes()).map(|i| self.events_on(i)).sum()
    }

    /// The event at `pos` on `process` (position 0 is the initial event).
    pub fn event_at(&self, process: usize, pos: u32) -> EventId {
        self.builder.event_at(self.builder.process(process), pos)
    }

    /// The vector clock of `e`: the least consistent cut containing it,
    /// kept current as messages arrive. Equals
    /// [`Computation::min_cut`](slicing_computation::Computation::min_cut)
    /// of any snapshot.
    pub fn clock(&self, e: EventId) -> &Cut {
        &self.clocks[e.as_usize()]
    }

    /// Bumped whenever a late message changed an already-assigned clock.
    /// Consumers caching consistency facts derived from clocks must
    /// invalidate them when this moves.
    pub fn clock_revision(&self) -> u64 {
        self.clock_revision
    }

    /// Whether the conjuncts of `e`'s process hold at `e`.
    pub fn event_holds(&self, e: EventId) -> bool {
        self.holds[e.as_usize()]
    }

    /// Whether at least one watch targets `process`. Unwatched processes
    /// hold vacuously-true conjuncts at every event.
    pub fn is_watched(&self, process: usize) -> bool {
        self.watched[process]
    }

    /// Materializes the computation observed so far. Pair with
    /// [`slice_of`](OnlineSlicer::slice_of) to obtain the current slice.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::CyclicOrder`] if observed messages formed a
    /// cycle — unreachable for histories assembled through
    /// [`message`](OnlineSlicer::message), which rejects such messages up
    /// front.
    pub fn snapshot_computation(&self) -> Result<Computation, BuildError> {
        self.builder.clone().build()
    }

    /// The slice of the observed prefix, built from the incrementally
    /// maintained edges. `comp` must come from
    /// [`snapshot_computation`](OnlineSlicer::snapshot_computation) at the
    /// current prefix. Equals what
    /// [`slice_conjunctive`](crate::slice_conjunctive) computes offline on
    /// the same prefix.
    ///
    /// # Panics
    ///
    /// Panics if `comp` has a different number of events than observed.
    pub fn slice_of<'a>(&self, comp: &'a Computation) -> Slice<'a> {
        let _span = slicing_observe::span("slice.online_snapshot");
        assert_eq!(
            comp.num_events() as u32,
            self.num_events(),
            "computation does not match the observed prefix"
        );
        slicing_observe::counter("online.settled_edges", self.settled_edges.len() as u64);
        let mut edges: Vec<Edge> = self
            .settled_edges
            .iter()
            .map(|&(succ, e)| (Node::Event(succ), Node::Event(e)))
            .collect();
        // Unsettled frontiers: a false last event is forbidden, exactly as
        // the offline slicer treats a false final event.
        for &(e, holds) in &self.frontier {
            if !holds {
                edges.push((Node::Top, Node::Event(e)));
            }
        }
        Slice::new(comp, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::lattice::all_cuts;
    use slicing_predicates::{Conjunctive, LocalPredicate};

    use crate::conjunctive::slice_conjunctive;

    /// Replays a prefix offline and compares against the online snapshot.
    #[test]
    fn snapshots_match_offline_slicer_at_every_prefix() {
        let mut s = OnlineSlicer::new(2);
        let x = s.declare_var(0, "x", Value::Int(0)).unwrap();
        let y = s.declare_var(1, "y", Value::Int(1)).unwrap();
        s.watch_int(x, "x > 0", |v| v > 0).unwrap();
        s.watch_int(y, "y > 0", |v| v > 0).unwrap();

        let script: Vec<(usize, VarRef, i64)> =
            vec![(0, x, 1), (1, y, 0), (0, x, 0), (1, y, 2), (0, x, 3)];
        for (i, &(p, var, val)) in script.iter().enumerate() {
            s.observe(p, &[(var, Value::Int(val))]).unwrap();

            let comp = s.snapshot_computation().unwrap();
            let online_slice = s.slice_of(&comp);
            let xp = comp.var(comp.process(0), "x").unwrap();
            let yp = comp.var(comp.process(1), "y").unwrap();
            let pred = Conjunctive::new(vec![
                LocalPredicate::int(xp, "x > 0", |v| v > 0),
                LocalPredicate::int(yp, "y > 0", |v| v > 0),
            ]);
            let offline = slice_conjunctive(&comp, &pred);
            assert_eq!(
                all_cuts(&online_slice),
                all_cuts(&offline),
                "prefix {}",
                i + 1
            );
        }
    }

    #[test]
    fn messages_flow_into_snapshots() {
        let mut s = OnlineSlicer::new(2);
        let e0 = s.observe(0, &[]).unwrap();
        let e1 = s.observe(1, &[]).unwrap();
        s.message(e0, e1).unwrap();
        let comp = s.snapshot_computation().unwrap();
        let slice = s.slice_of(&comp);
        assert_eq!(comp.messages().len(), 1);
        assert_eq!(slice.count_cuts(None).value(), 3);
    }

    #[test]
    fn initial_false_watch_constrains_bottom() {
        let mut s = OnlineSlicer::new(1);
        let x = s.declare_var(0, "x", Value::Int(0)).unwrap();
        s.watch_int(x, "x > 0", |v| v > 0).unwrap();
        // Initially false: with no events yet, the slice is empty.
        let comp = s.snapshot_computation().unwrap();
        assert!(s.slice_of(&comp).is_empty_slice());
        // After a satisfying event the slice reappears.
        s.observe(0, &[(x, Value::Int(5))]).unwrap();
        let comp = s.snapshot_computation().unwrap();
        assert_eq!(s.slice_of(&comp).count_cuts(None).value(), 1);
    }

    #[test]
    fn late_watch_is_an_error_not_a_panic() {
        let mut s = OnlineSlicer::new(1);
        let x = s.declare_var(0, "x", Value::Int(0)).unwrap();
        s.observe(0, &[]).unwrap();
        let err = s.watch_int(x, "x > 0", |v| v > 0).unwrap_err();
        assert!(matches!(err, BuildError::LateWatch { .. }));
        // The slicer stays usable.
        s.observe(0, &[(x, Value::Int(1))]).unwrap();
        assert_eq!(s.events_on(0), 3);
    }

    #[test]
    fn mistyped_observation_is_rejected_without_corrupting_history() {
        let mut s = OnlineSlicer::new(1);
        let x = s.declare_var(0, "x", Value::Int(0)).unwrap();
        s.watch_int(x, "x > 0", |v| v > 0).unwrap();
        let err = s.observe(0, &[(x, Value::Bool(true))]).unwrap_err();
        assert!(matches!(
            err,
            BuildError::TypeMismatch {
                expected: "int",
                got: "bool",
                ..
            }
        ));
        // No half-observed event: the rejected observation left nothing.
        assert_eq!(s.events_on(0), 1);
        s.observe(0, &[(x, Value::Int(2))]).unwrap();
        let comp = s.snapshot_computation().unwrap();
        assert_eq!(comp.num_events(), 2);
    }

    #[test]
    fn mistyped_watch_is_rejected_up_front() {
        let mut s = OnlineSlicer::new(1);
        let b = s.declare_var(0, "flag", Value::Bool(false)).unwrap();
        let err = s.watch_int(b, "flag > 0", |v| v > 0).unwrap_err();
        assert!(matches!(
            err,
            BuildError::TypeMismatch {
                expected: "int",
                got: "bool",
                ..
            }
        ));
        let err = s.watch_bool(b, "flag", |v| v).err();
        assert!(err.is_none());
    }

    #[test]
    fn cyclic_message_is_rejected_in_constant_time() {
        let mut s = OnlineSlicer::new(2);
        let a1 = s.observe(0, &[]).unwrap();
        let b1 = s.observe(1, &[]).unwrap();
        let b2 = s.observe(1, &[]).unwrap();
        s.message(a1, b1).unwrap();
        // b2 follows b1 which follows a1: a message b2 → a1 bends time.
        let err = s.message(b2, a1).unwrap_err();
        assert_eq!(err, BuildError::CyclicOrder);
        // Nothing was recorded: the snapshot still builds and has one message.
        let comp = s.snapshot_computation().unwrap();
        assert_eq!(comp.messages().len(), 1);
    }

    #[test]
    fn clocks_equal_offline_min_cuts_even_with_late_messages() {
        let mut s = OnlineSlicer::new(3);
        let mut events = Vec::new();
        for round in 0..4 {
            for p in 0..3 {
                events.push(s.observe(p, &[]).unwrap());
            }
            if round == 2 {
                // Late cross-process messages between events observed long
                // before: clocks must be repaired downstream.
                s.message(events[0], events[4]).unwrap();
                s.message(events[4], events[8]).unwrap();
            }
        }
        s.message(events[1], events[9]).unwrap();
        let comp = s.snapshot_computation().unwrap();
        for e in comp.events() {
            assert_eq!(
                s.clock(e).counts(),
                comp.min_cut(e).counts(),
                "clock of {e} diverged from the offline least-cut table"
            );
        }
        assert!(
            s.clock_revision() > 0,
            "late messages must bump the revision"
        );
    }

    #[test]
    fn observe_batch_matches_single_observes() {
        let mut a = OnlineSlicer::new(2);
        let xa = a.declare_var(0, "x", Value::Int(0)).unwrap();
        let ya = a.declare_var(1, "y", Value::Int(0)).unwrap();
        let ids = a
            .observe_batch(&[
                (0, vec![(xa, Value::Int(1))]),
                (1, vec![(ya, Value::Int(2))]),
                (0, vec![(xa, Value::Int(3))]),
            ])
            .unwrap();
        assert_eq!(ids.len(), 3);
        let mut b = OnlineSlicer::new(2);
        let xb = b.declare_var(0, "x", Value::Int(0)).unwrap();
        let yb = b.declare_var(1, "y", Value::Int(0)).unwrap();
        b.observe(0, &[(xb, Value::Int(1))]).unwrap();
        b.observe(1, &[(yb, Value::Int(2))]).unwrap();
        b.observe(0, &[(xb, Value::Int(3))]).unwrap();
        let ca = a.snapshot_computation().unwrap();
        let cb = b.snapshot_computation().unwrap();
        assert_eq!(ca.num_events(), cb.num_events());
        let va = ca.var(ca.process(0), "x").unwrap();
        let vb = cb.var(cb.process(0), "x").unwrap();
        assert_eq!(ca.value_at(va, 2), cb.value_at(vb, 2));
    }

    #[test]
    fn clause_watches_match_var_watches() {
        let mut with_clause = OnlineSlicer::new(2);
        let x = with_clause.declare_var(0, "x", Value::Int(0)).unwrap();
        let y = with_clause.declare_var(1, "y", Value::Int(0)).unwrap();
        with_clause
            .watch_clause(LocalPredicate::int(x, "x > 0", |v| v > 0))
            .unwrap();
        with_clause
            .watch_clause(LocalPredicate::int(y, "y > 0", |v| v > 0))
            .unwrap();
        let mut with_vars = OnlineSlicer::new(2);
        let x2 = with_vars.declare_var(0, "x", Value::Int(0)).unwrap();
        let y2 = with_vars.declare_var(1, "y", Value::Int(0)).unwrap();
        with_vars.watch_int(x2, "x > 0", |v| v > 0).unwrap();
        with_vars.watch_int(y2, "y > 0", |v| v > 0).unwrap();

        for (p, var1, var2, val) in [(0, x, x2, 1), (1, y, y2, 0), (1, y, y2, 3)] {
            with_clause.observe(p, &[(var1, Value::Int(val))]).unwrap();
            with_vars.observe(p, &[(var2, Value::Int(val))]).unwrap();
            let c1 = with_clause.snapshot_computation().unwrap();
            let c2 = with_vars.snapshot_computation().unwrap();
            assert_eq!(
                all_cuts(&with_clause.slice_of(&c1)),
                all_cuts(&with_vars.slice_of(&c2))
            );
        }
    }
}
