//! Incremental (online) conjunctive slicing — the paper's future-work
//! direction: update the slice as new events arrive instead of recomputing
//! it from scratch.
//!
//! Besides the constraint edges (which are purely local for conjunctive
//! predicates), the slicer maintains the *least-cut table* incrementally: a
//! vector clock per event, extended in `O(n)` when the event is observed
//! and repaired by a monotone worklist pass when a late message tightens
//! the causal order. The clocks give an `O(1)` cycle check at
//! [`message`](OnlineSlicer::message) time — a cyclic observation is
//! rejected *before* it corrupts the history — and power the amortized
//! `O(1)` checks of [`OnlineMonitor`](../../slicing_detect/struct.OnlineMonitor.html).

use slicing_computation::{
    BuildError, Computation, ComputationBuilder, Cut, EventId, ProcessId, Value, VarRef,
};
use slicing_predicates::LocalPredicate;

use crate::slice::{Edge, Node, Slice};

/// Statistics returned by [`OnlineSlicer::compact`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionStats {
    /// Events whose storage was reclaimed by this call.
    pub dropped_events: u64,
    /// Events still retained after the call (summary events included).
    pub retained_events: u64,
    /// The causal-stability frontier at the time of the call: per process
    /// `q`, how many of `q`'s events are dominated by *every* process's
    /// latest clock (the meet of the frontier clocks — itself a consistent
    /// cut, so compacting below it can never affect a future verdict).
    pub stable_frontier: Vec<u32>,
}

/// A serializable snapshot of an [`OnlineSlicer`]'s retained state —
/// everything except the watch closures, which a checkpoint cannot carry
/// and which the restoring side re-registers via
/// [`OnlineSlicer::restore_watch_clause`].
///
/// Events are listed in observation (event-id) order; all event-valued
/// fields are indices into that order. Positions and clock counts are
/// *absolute* (they include the compacted prefix), so a restored slicer
/// continues the stream with byte-identical clocks, alarms, and stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlicerState {
    /// Number of processes.
    pub num_processes: usize,
    /// Per process: number of compacted leading positions (the retained
    /// summary event sits at exactly this absolute position).
    pub base: Vec<u32>,
    /// Per retained event, in observation order: its process.
    pub event_procs: Vec<u32>,
    /// Per retained event: whether its process's conjuncts hold at it.
    pub holds: Vec<bool>,
    /// Per retained event: its vector clock (absolute counts).
    pub clocks: Vec<Vec<u32>>,
    /// Per process: declared variable names, in declaration order.
    pub var_names: Vec<Vec<String>>,
    /// Per process: variable snapshots of the retained positions
    /// (`snapshots[p][k]` is the state after the `k`-th retained event).
    pub snapshots: Vec<Vec<Vec<Value>>>,
    /// Messages between retained events, as (send, recv) index pairs.
    pub messages: Vec<(u32, u32)>,
    /// Settled constraint edges, as (successor, false-event) index pairs.
    pub settled_edges: Vec<(u32, u32)>,
    /// The late-message re-timing revision counter.
    pub clock_revision: u64,
}

/// An online slicer for conjunctive predicates.
///
/// Events are observed one at a time (with their variable assignments and
/// message edges); the slicer maintains the conjunctive constraint edges
/// *incrementally* — `O(1)` extra work per event, since the conjunctive
/// slicer's edges are purely local (a false event points at its process
/// successor) — together with a per-event vector clock (the least-cut
/// table). [`snapshot_computation`](OnlineSlicer::snapshot_computation)
/// materializes the computation-so-far and its slice; treating the
/// not-yet-followed last event of each process exactly like the offline
/// slicer treats it keeps every snapshot equal to the offline result.
///
/// Every observation is validated before it is recorded: assignments are
/// type-checked against the declared initial value
/// ([`BuildError::TypeMismatch`]), messages that would bend time are
/// rejected with [`BuildError::CyclicOrder`] in `O(1)`, and watches
/// registered after their process moved return [`BuildError::LateWatch`].
/// A failed call leaves the observed history exactly as it was.
///
/// # Examples
///
/// ```
/// use slicing_computation::Value;
/// use slicing_core::OnlineSlicer;
///
/// let mut s = OnlineSlicer::new(2);
/// let x = s.declare_var(0, "x", Value::Int(0))?;
/// let y = s.declare_var(1, "y", Value::Int(0))?;
/// s.watch_int(x, "x > 0", |v| v > 0)?;
/// s.watch_int(y, "y > 0", |v| v > 0)?;
/// s.observe(0, &[(x, Value::Int(1))])?;
/// s.observe(1, &[(y, Value::Int(2))])?;
/// let comp = s.snapshot_computation()?;
/// let slice = s.slice_of(&comp);
/// assert_eq!(slice.count_cuts(None).value(), 1);
/// # Ok::<(), slicing_computation::BuildError>(())
/// ```
#[derive(Debug)]
pub struct OnlineSlicer {
    builder: ComputationBuilder,
    watches: Vec<Watch>,
    /// Per process: whether at least one watch targets it.
    watched: Vec<bool>,
    /// Constraint edges already finalized (their event has a successor, or
    /// the edge is local-false → successor pending).
    settled_edges: Vec<(EventId, EventId)>,
    /// Last event per process together with whether its conjuncts hold.
    frontier: Vec<(EventId, bool)>,
    /// Per event: its vector clock — the least consistent cut containing
    /// it. Kept current under late messages by [`propagate`](Self::propagate).
    clocks: Vec<Cut>,
    /// Per event: whether its process's conjuncts hold at it.
    holds: Vec<bool>,
    /// Per event: message edges out of it, for clock propagation.
    msgs_out: Vec<Vec<EventId>>,
    /// Bumped whenever a late message changes an already-assigned clock;
    /// consumers cache it to know when cached consistency facts expire.
    clock_revision: u64,
    /// Mirrors the builder's id horizon: `clocks`/`holds`/`msgs_out` are
    /// indexed by `id - id_base`; slots below were reclaimed by
    /// [`compact`](Self::compact).
    id_base: u32,
    /// Scratch for the propagation worklist.
    worklist: Vec<EventId>,
    /// Scratch for an event's successors during propagation.
    succ_scratch: Vec<EventId>,
    /// Scratch for clause evaluation.
    values_scratch: Vec<Value>,
}

enum Watch {
    Var {
        var: VarRef,
        label: String,
        f: Box<dyn Fn(Value) -> bool + Send + Sync>,
    },
    Clause(LocalPredicate),
}

impl std::fmt::Debug for Watch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Watch::Var { var, label, .. } => {
                write!(f, "Watch({} on {})", label, var.process())
            }
            Watch::Clause(clause) => {
                write!(f, "Watch({} on {})", clause.label(), clause.process())
            }
        }
    }
}

impl OnlineSlicer {
    /// Creates an online slicer for `num_processes` processes.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`ComputationBuilder::new`].
    pub fn new(num_processes: usize) -> Self {
        let builder = ComputationBuilder::new(num_processes);
        let frontier: Vec<(EventId, bool)> = (0..num_processes)
            .map(|i| (builder.event_at(ProcessId::new(i), 0), true))
            .collect();
        let mut slicer = OnlineSlicer {
            builder,
            watches: Vec::new(),
            watched: vec![false; num_processes],
            settled_edges: Vec::new(),
            frontier: frontier.clone(),
            clocks: Vec::new(),
            holds: Vec::new(),
            msgs_out: Vec::new(),
            clock_revision: 0,
            id_base: 0,
            worklist: Vec::new(),
            succ_scratch: Vec::new(),
            values_scratch: Vec::new(),
        };
        // Initial events sit in every consistent cut: clock = ⊥ (all ones).
        for &(e, _) in &frontier {
            slicer.ensure_slot(e);
        }
        slicer
    }

    /// Storage slot of event `e`, panicking with a clear message for
    /// events whose storage was reclaimed by compaction.
    fn slot(&self, e: EventId) -> usize {
        e.as_usize()
            .checked_sub(self.id_base as usize)
            .unwrap_or_else(|| panic!("{e} was compacted away"))
    }

    fn ensure_slot(&mut self, e: EventId) {
        let need = self.slot(e) + 1;
        if self.clocks.len() < need {
            let n = self.builder.num_processes();
            self.clocks.resize_with(need, || Cut::bottom(n));
            self.holds.resize(need, true);
            self.msgs_out.resize_with(need, Vec::new);
        }
    }

    /// Declares a variable before any event of its process is observed.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError::DuplicateVariable`] /
    /// [`BuildError::LateVariable`].
    pub fn declare_var(
        &mut self,
        process: usize,
        name: &str,
        initial: Value,
    ) -> Result<VarRef, BuildError> {
        let p = self.builder.process(process);
        let v = self.builder.try_declare_var(p, name, initial)?;
        Ok(v)
    }

    /// Adds an integer conjunct. See [`watch`](OnlineSlicer::watch).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::TypeMismatch`] if `var` was not declared with
    /// an integer initial value (so the closure can never see a non-integer
    /// observation), or [`BuildError::LateWatch`] if the variable's process
    /// already observed real events.
    pub fn watch_int(
        &mut self,
        var: VarRef,
        label: impl Into<String>,
        f: impl Fn(i64) -> bool + Send + Sync + 'static,
    ) -> Result<(), BuildError> {
        self.check_watch_type(var, "int", |v| matches!(v, Value::Int(_)))?;
        self.watch(var, label, move |v| f(v.expect_int()))
    }

    /// Adds a boolean conjunct. See [`watch`](OnlineSlicer::watch).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::TypeMismatch`] if `var` was not declared with
    /// a boolean initial value, or [`BuildError::LateWatch`] if the
    /// variable's process already observed real events.
    pub fn watch_bool(
        &mut self,
        var: VarRef,
        label: impl Into<String>,
        f: impl Fn(bool) -> bool + Send + Sync + 'static,
    ) -> Result<(), BuildError> {
        self.check_watch_type(var, "bool", |v| matches!(v, Value::Bool(_)))?;
        self.watch(var, label, move |v| f(v.expect_bool()))
    }

    fn check_watch_type(
        &self,
        var: VarRef,
        expected: &'static str,
        ok: impl Fn(Value) -> bool,
    ) -> Result<(), BuildError> {
        // The oldest retained snapshot carries the declared type (values
        // never change type once declared).
        let declared = self
            .builder
            .value_at(var, self.builder.base_of(var.process()));
        if ok(declared) {
            Ok(())
        } else {
            Err(BuildError::TypeMismatch {
                process: var.process(),
                name: self.builder.var_name(var).to_owned(),
                expected,
                got: declared.type_name(),
            })
        }
    }

    /// Adds a conjunct: the predicate being sliced is the conjunction of
    /// all watches. Watches must be registered before the first `observe`
    /// on the variable's process (so initial-event truth is tracked).
    ///
    /// The closure receives whatever [`Value`] was observed; use
    /// [`watch_int`](OnlineSlicer::watch_int) /
    /// [`watch_bool`](OnlineSlicer::watch_bool) for typed variants that are
    /// validated up front and can never see a wrong-typed value (every
    /// observation is checked against the declared initial value).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::LateWatch`] if the variable's process already
    /// observed real events.
    pub fn watch(
        &mut self,
        var: VarRef,
        label: impl Into<String>,
        f: impl Fn(Value) -> bool + Send + Sync + 'static,
    ) -> Result<(), BuildError> {
        self.register(
            var.process(),
            Watch::Var {
                var,
                label: label.into(),
                f: Box::new(f),
            },
        )
    }

    /// Adds a whole local clause (possibly over several variables of one
    /// process) as a conjunct — the bridge from
    /// [`Conjunctive`](slicing_predicates::Conjunctive) specifications to
    /// the online slicer.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::LateWatch`] if the clause's process already
    /// observed real events.
    pub fn watch_clause(&mut self, clause: LocalPredicate) -> Result<(), BuildError> {
        self.register(clause.process(), Watch::Clause(clause))
    }

    fn register(&mut self, p: ProcessId, w: Watch) -> Result<(), BuildError> {
        if self.builder.len(p) != 1 {
            return Err(BuildError::LateWatch { process: p });
        }
        self.watches.push(w);
        self.watched[p.as_usize()] = true;
        // Re-evaluate the initial event's truth.
        let holds = self.holds_at_frontier(p);
        self.frontier[p.as_usize()].1 = holds;
        let init = self.builder.event_at(p, 0);
        let slot = self.slot(init);
        self.holds[slot] = holds;
        Ok(())
    }

    fn holds_at_frontier(&mut self, p: ProcessId) -> bool {
        let pos = self.builder.len(p) - 1;
        for i in 0..self.watches.len() {
            let ok = match &self.watches[i] {
                Watch::Var { var, f, .. } if var.process() == p => {
                    f(self.builder.value_at(*var, pos))
                }
                Watch::Clause(clause) if clause.process() == p => {
                    self.values_scratch.clear();
                    for &v in clause.vars() {
                        self.values_scratch.push(self.builder.value_at(v, pos));
                    }
                    clause.eval_values(&self.values_scratch)
                }
                _ => true,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Observes a new event on `process` with the given assignments.
    /// Returns the event id for later [`message`](OnlineSlicer::message)
    /// calls.
    ///
    /// Assignments are validated *before* the event is recorded: a value
    /// whose runtime type differs from the variable's declared initial
    /// value is rejected with [`BuildError::TypeMismatch`], and an
    /// assignment to another process's variable with
    /// [`BuildError::StaleAssignment`]. On error no event is appended.
    ///
    /// # Errors
    ///
    /// [`BuildError::TypeMismatch`] / [`BuildError::StaleAssignment`], as
    /// above.
    pub fn observe(
        &mut self,
        process: usize,
        assignments: &[(VarRef, Value)],
    ) -> Result<EventId, BuildError> {
        let p = self.builder.process(process);
        for &(var, value) in assignments {
            if var.process() != p {
                return Err(BuildError::StaleAssignment {
                    event: self.frontier[var.process().as_usize()].0,
                });
            }
            let declared = self.builder.value_at(var, self.builder.base_of(p));
            if !declared.same_type(value) {
                return Err(BuildError::TypeMismatch {
                    process: p,
                    name: self.builder.var_name(var).to_owned(),
                    expected: declared.type_name(),
                    got: value.type_name(),
                });
            }
        }
        let e = self.builder.append_event(p);
        for &(var, value) in assignments {
            self.builder.assign(e, var, value)?;
        }
        // Clock: the previous frontier event's clock advanced by one step
        // of `p` — message joins were already folded into the predecessor.
        let pos = self.builder.position_of(e);
        let (prev, prev_holds) = self.frontier[process];
        self.ensure_slot(e);
        let mut clock = self.clocks[self.slot(prev)].clone();
        clock.set_count(p, pos + 1);
        let slot = self.slot(e);
        self.clocks[slot] = clock;
        // The previous frontier event now has a successor: settle its edge
        // if its conjuncts were false.
        if !prev_holds {
            self.settled_edges.push((e, prev));
        }
        let holds = self.holds_at_frontier(p);
        let slot = self.slot(e);
        self.holds[slot] = holds;
        self.frontier[process] = (e, holds);
        slicing_observe::counter("online.events_observed", 1);
        Ok(e)
    }

    /// Observes a batch of events, in order: each element is a process and
    /// its assignments. Returns the new event ids.
    ///
    /// # Errors
    ///
    /// Stops at the first failing observation (events observed before the
    /// error remain part of the history, exactly as if
    /// [`observe`](OnlineSlicer::observe) had been called in a loop).
    pub fn observe_batch(
        &mut self,
        batch: &[(usize, Vec<(VarRef, Value)>)],
    ) -> Result<Vec<EventId>, BuildError> {
        let mut ids = Vec::with_capacity(batch.len());
        for (process, assignments) in batch {
            ids.push(self.observe(*process, assignments)?);
        }
        Ok(ids)
    }

    /// Observes a message between two already-observed events.
    ///
    /// A message that would create a causal cycle is rejected — in `O(1)`,
    /// by a clock comparison — *before* anything is recorded, so
    /// [`snapshot_computation`](OnlineSlicer::snapshot_computation) never
    /// fails on a history this method accepted. Messages that arrive late
    /// (after their endpoints gained successors) trigger a monotone
    /// worklist repair of downstream clocks;
    /// [`clock_revision`](OnlineSlicer::clock_revision) is bumped when any
    /// clock actually changed.
    ///
    /// # Errors
    ///
    /// [`BuildError::CyclicOrder`] for time-bending messages, plus the
    /// builder's own validations (self messages, duplicates, initial
    /// events).
    pub fn message(&mut self, send: EventId, recv: EventId) -> Result<(), BuildError> {
        // Endpoints below the id horizon have no slot: let the builder
        // report the typed compaction error before any clock is touched.
        let (ss, rs) = (
            send.as_usize().checked_sub(self.id_base as usize),
            recv.as_usize().checked_sub(self.id_base as usize),
        );
        let (Some(ss), Some(rs)) = (ss, rs) else {
            self.builder.message(send, recv)?;
            unreachable!("builder accepts an endpoint below the id horizon");
        };
        if ss < self.clocks.len() && rs < self.clocks.len() {
            let sp = self.builder.process_of(send);
            let rp = self.builder.process_of(recv);
            // recv →* send iff send's clock already covers recv; initial
            // events are left to the builder's own validation.
            if sp != rp
                && self.builder.position_of(send) >= 1
                && self.builder.position_of(recv) >= 1
                && self.clocks[ss].count(rp) > self.builder.position_of(recv)
            {
                return Err(BuildError::CyclicOrder);
            }
        }
        self.builder.message(send, recv)?;
        self.msgs_out[ss].push(recv);
        self.propagate(send, recv);
        Ok(())
    }

    /// Folds the new `send → recv` edge into downstream clocks: a monotone
    /// worklist pass that touches only events whose clock actually grows.
    fn propagate(&mut self, send: EventId, recv: EventId) {
        let (ss, rs) = (self.slot(send), self.slot(recv));
        if self.clocks[ss].leq(&self.clocks[rs]) {
            return; // the edge was already implied by the order so far
        }
        self.clock_revision += 1;
        let src = self.clocks[ss].clone();
        self.clocks[rs].join_assign(&src);
        self.worklist.clear();
        self.worklist.push(recv);
        // Every event this walk can reach lies strictly above the
        // compaction base: messages into summary events are rejected, and a
        // retained event's successors (process order or message) are
        // themselves retained, so the slots below stay untouched.
        while let Some(e) = self.worklist.pop() {
            let p = self.builder.process_of(e);
            let pos = self.builder.position_of(e);
            let es = self.slot(e);
            self.succ_scratch.clear();
            if pos + 1 < self.builder.len(p) {
                self.succ_scratch.push(self.builder.event_at(p, pos + 1));
            }
            self.succ_scratch.extend_from_slice(&self.msgs_out[es]);
            for i in 0..self.succ_scratch.len() {
                let s = self.succ_scratch[i];
                let sl = self.slot(s);
                if !self.clocks[es].leq(&self.clocks[sl]) {
                    let src = self.clocks[es].clone();
                    self.clocks[sl].join_assign(&src);
                    self.worklist.push(s);
                }
            }
        }
    }

    /// The number of processes.
    pub fn num_processes(&self) -> usize {
        self.builder.num_processes()
    }

    /// Events observed on `process` so far, *including* the fictitious
    /// initial event (so a fresh slicer reports 1 per process).
    pub fn events_on(&self, process: usize) -> u32 {
        self.builder.len(self.builder.process(process))
    }

    /// Total events observed, including the initial events.
    pub fn num_events(&self) -> u32 {
        (0..self.num_processes()).map(|i| self.events_on(i)).sum()
    }

    /// The event at `pos` on `process` (position 0 is the initial event).
    pub fn event_at(&self, process: usize, pos: u32) -> EventId {
        self.builder.event_at(self.builder.process(process), pos)
    }

    /// The event at `pos` on `process`, or `None` if the position is out
    /// of range or its storage was compacted away — the non-panicking
    /// lookup for callers resolving positions from external input (e.g. a
    /// resumed trace referring to pre-checkpoint events).
    pub fn retained_event_at(&self, process: usize, pos: u32) -> Option<EventId> {
        let p = self.builder.process(process);
        if pos >= self.builder.len(p) {
            return None;
        }
        self.builder.retained_event_at(p, pos)
    }

    /// The vector clock of `e`: the least consistent cut containing it,
    /// kept current as messages arrive. Equals
    /// [`Computation::min_cut`](slicing_computation::Computation::min_cut)
    /// of any snapshot.
    pub fn clock(&self, e: EventId) -> &Cut {
        &self.clocks[self.slot(e)]
    }

    /// Bumped whenever a late message changed an already-assigned clock.
    /// Consumers caching consistency facts derived from clocks must
    /// invalidate them when this moves.
    pub fn clock_revision(&self) -> u64 {
        self.clock_revision
    }

    /// Whether the conjuncts of `e`'s process hold at `e`.
    pub fn event_holds(&self, e: EventId) -> bool {
        self.holds[self.slot(e)]
    }

    /// Looks up a declared variable of `process` by name — the handle
    /// restored monitors need to rebuild their watch clauses against a
    /// slicer created by [`from_state`](OnlineSlicer::from_state).
    pub fn var(&self, process: usize, name: &str) -> Option<VarRef> {
        self.builder.var(self.builder.process(process), name)
    }

    /// Number of leading positions of `process` compacted away (0 until
    /// [`compact`](OnlineSlicer::compact) first drops something).
    pub fn base_of(&self, process: usize) -> u32 {
        self.builder.base_of(self.builder.process(process))
    }

    /// Events whose storage is currently retained (summary and initial
    /// events included). Under periodic compaction this tracks the
    /// unstable suffix instead of the full history.
    pub fn retained_events(&self) -> u64 {
        self.builder.retained_events()
    }

    /// The causal-stability frontier: per process `q`, the number of `q`'s
    /// events dominated by **every** process's latest clock. An event below
    /// the frontier is in every process's causal past, so no late message
    /// (which must be sent from some process's frontier-past) can ever
    /// re-time it — it is safe to fold into a summary. The frontier is the
    /// meet of the frontier clocks, hence itself a consistent cut; it only
    /// moves forward as observations arrive, and late messages merely slow
    /// its advance (they can never invalidate already-stable events).
    pub fn stable_frontier(&self) -> Vec<u32> {
        let n = self.num_processes();
        let mut g = vec![u32::MAX; n];
        for &(e, _) in &self.frontier {
            let clk = &self.clocks[self.slot(e)];
            for (q, slot) in g.iter_mut().enumerate() {
                *slot = (*slot).min(clk.count(ProcessId::new(q)));
            }
        }
        g
    }

    /// Reclaims the storage of stable history. The compaction cut starts
    /// from the stability frontier, is capped by `lag` (always keep the
    /// last `lag` positions of each process — headroom for protocols whose
    /// lateness bound is known) and by `keep_floor` (never drop position
    /// `keep_floor[q]` or anything after it — monitors pin their oldest
    /// live candidates here), and is then rounded **down** to a consistent
    /// cut so that no retained event can causally depend on a dropped one.
    /// Everything strictly below the final cut is dropped; the cut's
    /// frontier events remain as read-only summaries.
    ///
    /// Compaction never changes any retained clock, the verdicts of future
    /// checks, or the acceptance of messages between retained non-summary
    /// events; messages into dropped or summary events are rejected with
    /// [`BuildError::CompactedEvent`].
    pub fn compact(&mut self, keep_floor: &[u32], lag: u32) -> CompactionStats {
        let n = self.num_processes();
        assert_eq!(keep_floor.len(), n, "keep_floor has wrong arity");
        let g = self.stable_frontier();
        let mut cut: Vec<u32> = (0..n)
            .map(|q| {
                let p = self.builder.process(q);
                let cap = g[q]
                    .min(self.builder.len(p).saturating_sub(lag))
                    .min(keep_floor[q].saturating_add(1));
                cap.max(self.builder.base_of(p) + 1)
            })
            .collect();
        // Round down to a consistent cut: if the frontier event of q's
        // column causally depends on something outside the cut, retreat.
        // Terminates because the current base cut is consistent (its
        // events' clocks are frozen — summary events accept no messages).
        loop {
            let mut changed = false;
            for q in 0..n {
                let p = self.builder.process(q);
                while cut[q] > self.builder.base_of(p) + 1 {
                    let e = self.builder.event_at(p, cut[q] - 1);
                    let clk = &self.clocks[self.slot(e)];
                    let consistent = (0..n).all(|r| clk.count(ProcessId::new(r)) <= cut[r]);
                    if consistent {
                        break;
                    }
                    cut[q] -= 1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let new_base: Vec<u32> = cut.iter().map(|&c| c - 1).collect();
        // Constraint edges anchored at dropped events go with the prefix
        // (their forbidden cuts are all below the summary now).
        {
            let builder = &self.builder;
            self.settled_edges.retain(|&(_, e)| {
                builder.position_of(e) >= new_base[builder.process_of(e).as_usize()]
            });
        }
        let dropped = self.builder.compact(&new_base);
        if dropped > 0 {
            let new_id_base = (0..n)
                .map(|q| {
                    let p = self.builder.process(q);
                    self.builder.event_at(p, new_base[q]).as_u32()
                })
                .min()
                .expect("at least one process");
            let delta = (new_id_base - self.id_base) as usize;
            if delta > 0 {
                self.clocks.drain(..delta);
                self.holds.drain(..delta);
                self.msgs_out.drain(..delta);
                self.id_base = new_id_base;
                maybe_shrink(&mut self.clocks);
                maybe_shrink(&mut self.holds);
                maybe_shrink(&mut self.msgs_out);
                maybe_shrink(&mut self.settled_edges);
            }
            slicing_observe::counter("online.compacted_events", dropped);
        }
        CompactionStats {
            dropped_events: dropped,
            retained_events: self.builder.retained_events(),
            stable_frontier: g,
        }
    }

    /// Serializes the retained state (everything but the watch closures);
    /// see [`SlicerState`]. Pair with
    /// [`from_state`](OnlineSlicer::from_state) and
    /// [`restore_watch_clause`](OnlineSlicer::restore_watch_clause).
    pub fn export_state(&self) -> SlicerState {
        let n = self.num_processes();
        let order = self.builder.dense_order();
        let rank = |e: EventId| -> u32 {
            order
                .binary_search_by_key(&e.as_u32(), |o| o.as_u32())
                .expect("only retained events are referenced") as u32
        };
        SlicerState {
            num_processes: n,
            base: (0..n).map(|q| self.base_of(q)).collect(),
            event_procs: order
                .iter()
                .map(|&e| self.builder.process_of(e).as_usize() as u32)
                .collect(),
            holds: order.iter().map(|&e| self.holds[self.slot(e)]).collect(),
            clocks: order
                .iter()
                .map(|&e| self.clocks[self.slot(e)].counts().to_vec())
                .collect(),
            var_names: (0..n)
                .map(|q| self.builder.var_names(self.builder.process(q)).to_vec())
                .collect(),
            snapshots: (0..n)
                .map(|q| {
                    let p = self.builder.process(q);
                    (self.builder.base_of(p)..self.builder.len(p))
                        .map(|pos| self.builder.snapshot_at(p, pos).to_vec())
                        .collect()
                })
                .collect(),
            messages: self
                .builder
                .messages()
                .iter()
                .map(|m| (rank(m.send), rank(m.recv)))
                .collect(),
            settled_edges: self
                .settled_edges
                .iter()
                .map(|&(s, e)| (rank(s), rank(e)))
                .collect(),
            clock_revision: self.clock_revision,
        }
    }

    /// Reconstructs a slicer from a checkpointed [`SlicerState`], with
    /// fresh dense event ids (positions and clocks stay absolute). The
    /// restored slicer has **no watches** — re-register each original
    /// clause with [`restore_watch_clause`](OnlineSlicer::restore_watch_clause)
    /// before observing further events.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidState`] when the state is structurally
    /// inconsistent (arity mismatches, out-of-range indices, clocks that
    /// contradict their event's position).
    pub fn from_state(state: &SlicerState) -> Result<OnlineSlicer, BuildError> {
        let invalid = |detail: String| BuildError::InvalidState { detail };
        let builder = ComputationBuilder::restore(
            state.num_processes,
            &state.base,
            &state.event_procs,
            state.var_names.clone(),
            state.snapshots.clone(),
            &state.messages,
        )?;
        let n = state.num_processes;
        let count = state.event_procs.len();
        if state.holds.len() != count || state.clocks.len() != count {
            return Err(invalid(format!(
                "{count} events but {} holds flags and {} clocks",
                state.holds.len(),
                state.clocks.len()
            )));
        }
        let mut clocks = Vec::with_capacity(count);
        for (i, counts) in state.clocks.iter().enumerate() {
            if counts.len() != n {
                return Err(invalid(format!("clock {i} has arity {}", counts.len())));
            }
            let e = EventId::new(i);
            let own = counts[builder.process_of(e).as_usize()];
            if own != builder.position_of(e) + 1 {
                return Err(invalid(format!(
                    "clock of event {i} counts {own} own events at position {}",
                    builder.position_of(e)
                )));
            }
            clocks.push(Cut::from_counts(counts));
        }
        let mut settled_edges = Vec::with_capacity(state.settled_edges.len());
        for &(s, e) in &state.settled_edges {
            if s as usize >= count || e as usize >= count {
                return Err(invalid(format!("settled edge ({s}, {e}) out of range")));
            }
            settled_edges.push((EventId::new(s as usize), EventId::new(e as usize)));
        }
        let mut msgs_out: Vec<Vec<EventId>> = vec![Vec::new(); count];
        for &(s, r) in &state.messages {
            msgs_out[s as usize].push(EventId::new(r as usize));
        }
        let frontier = (0..n)
            .map(|q| {
                let p = builder.process(q);
                let e = builder.event_at(p, builder.len(p) - 1);
                (e, state.holds[e.as_usize()])
            })
            .collect();
        Ok(OnlineSlicer {
            builder,
            watches: Vec::new(),
            watched: vec![false; n],
            settled_edges,
            frontier,
            clocks,
            holds: state.holds.clone(),
            msgs_out,
            clock_revision: state.clock_revision,
            id_base: 0,
            worklist: Vec::new(),
            succ_scratch: Vec::new(),
            values_scratch: Vec::new(),
        })
    }

    /// Re-registers a watch clause on a slicer restored with
    /// [`from_state`](OnlineSlicer::from_state). Unlike
    /// [`watch_clause`](OnlineSlicer::watch_clause) this accepts processes
    /// with existing history: the checkpointed truth flags are kept, and
    /// the clause is cross-checked against the retained snapshots (a
    /// retained event recorded as satisfying the conjunction cannot fail a
    /// re-registered conjunct — catching restores against the wrong
    /// predicate).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidState`] if the clause contradicts the
    /// checkpointed truth of a retained event.
    pub fn restore_watch_clause(&mut self, clause: LocalPredicate) -> Result<(), BuildError> {
        let p = clause.process();
        for pos in self.builder.base_of(p)..self.builder.len(p) {
            let e = self.builder.event_at(p, pos);
            self.values_scratch.clear();
            for &v in clause.vars() {
                self.values_scratch.push(self.builder.value_at(v, pos));
            }
            if !clause.eval_values(&self.values_scratch) && self.holds[self.slot(e)] {
                return Err(BuildError::InvalidState {
                    detail: format!(
                        "checkpointed truth at position {pos} of {p} contradicts \
                         re-registered clause {:?}",
                        clause.label()
                    ),
                });
            }
        }
        self.watches.push(Watch::Clause(clause));
        self.watched[p.as_usize()] = true;
        Ok(())
    }

    /// Whether at least one watch targets `process`. Unwatched processes
    /// hold vacuously-true conjuncts at every event.
    pub fn is_watched(&self, process: usize) -> bool {
        self.watched[process]
    }

    /// Materializes the computation observed so far. Pair with
    /// [`slice_of`](OnlineSlicer::slice_of) to obtain the current slice.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::CyclicOrder`] if observed messages formed a
    /// cycle — unreachable for histories assembled through
    /// [`message`](OnlineSlicer::message), which rejects such messages up
    /// front.
    pub fn snapshot_computation(&self) -> Result<Computation, BuildError> {
        self.builder.clone().build()
    }

    /// The slice of the observed prefix, built from the incrementally
    /// maintained edges. `comp` must come from
    /// [`snapshot_computation`](OnlineSlicer::snapshot_computation) at the
    /// current prefix. Equals what
    /// [`slice_conjunctive`](crate::slice_conjunctive) computes offline on
    /// the same prefix.
    ///
    /// # Panics
    ///
    /// Panics if `comp` has a different number of events than observed.
    pub fn slice_of<'a>(&self, comp: &'a Computation) -> Slice<'a> {
        let _span = slicing_observe::span("slice.online_snapshot");
        slicing_observe::counter("online.settled_edges", self.settled_edges.len() as u64);
        // Under compaction the snapshot is the dense retained suffix, so
        // edge endpoints must be translated from live ids to dense ranks.
        let order: Option<Vec<EventId>> =
            if self.id_base > 0 || (0..self.num_processes()).any(|q| self.base_of(q) > 0) {
                Some(self.builder.dense_order())
            } else {
                None
            };
        match &order {
            Some(order) => assert_eq!(
                comp.num_events(),
                order.len(),
                "computation does not match the retained suffix"
            ),
            None => assert_eq!(
                comp.num_events() as u32,
                self.num_events(),
                "computation does not match the observed prefix"
            ),
        }
        let remap = |e: EventId| -> EventId {
            match &order {
                None => e,
                Some(order) => EventId::new(
                    order
                        .binary_search_by_key(&e.as_u32(), |o| o.as_u32())
                        .expect("only retained events appear in edges"),
                ),
            }
        };
        let mut edges: Vec<Edge> = self
            .settled_edges
            .iter()
            .map(|&(succ, e)| (Node::Event(remap(succ)), Node::Event(remap(e))))
            .collect();
        // Unsettled frontiers: a false last event is forbidden, exactly as
        // the offline slicer treats a false final event.
        for &(e, holds) in &self.frontier {
            if !holds {
                edges.push((Node::Top, Node::Event(remap(e))));
            }
        }
        Slice::new(comp, edges)
    }
}

/// Returns over-sized spare capacity to the allocator once the live suffix
/// is a small fraction of the high-water mark.
fn maybe_shrink<T>(v: &mut Vec<T>) {
    if v.capacity() > 2 * v.len() + 64 {
        v.shrink_to_fit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::lattice::all_cuts;
    use slicing_predicates::{Conjunctive, LocalPredicate};

    use crate::conjunctive::slice_conjunctive;

    /// Replays a prefix offline and compares against the online snapshot.
    #[test]
    fn snapshots_match_offline_slicer_at_every_prefix() {
        let mut s = OnlineSlicer::new(2);
        let x = s.declare_var(0, "x", Value::Int(0)).unwrap();
        let y = s.declare_var(1, "y", Value::Int(1)).unwrap();
        s.watch_int(x, "x > 0", |v| v > 0).unwrap();
        s.watch_int(y, "y > 0", |v| v > 0).unwrap();

        let script: Vec<(usize, VarRef, i64)> =
            vec![(0, x, 1), (1, y, 0), (0, x, 0), (1, y, 2), (0, x, 3)];
        for (i, &(p, var, val)) in script.iter().enumerate() {
            s.observe(p, &[(var, Value::Int(val))]).unwrap();

            let comp = s.snapshot_computation().unwrap();
            let online_slice = s.slice_of(&comp);
            let xp = comp.var(comp.process(0), "x").unwrap();
            let yp = comp.var(comp.process(1), "y").unwrap();
            let pred = Conjunctive::new(vec![
                LocalPredicate::int(xp, "x > 0", |v| v > 0),
                LocalPredicate::int(yp, "y > 0", |v| v > 0),
            ]);
            let offline = slice_conjunctive(&comp, &pred);
            assert_eq!(
                all_cuts(&online_slice),
                all_cuts(&offline),
                "prefix {}",
                i + 1
            );
        }
    }

    #[test]
    fn messages_flow_into_snapshots() {
        let mut s = OnlineSlicer::new(2);
        let e0 = s.observe(0, &[]).unwrap();
        let e1 = s.observe(1, &[]).unwrap();
        s.message(e0, e1).unwrap();
        let comp = s.snapshot_computation().unwrap();
        let slice = s.slice_of(&comp);
        assert_eq!(comp.messages().len(), 1);
        assert_eq!(slice.count_cuts(None).value(), 3);
    }

    #[test]
    fn initial_false_watch_constrains_bottom() {
        let mut s = OnlineSlicer::new(1);
        let x = s.declare_var(0, "x", Value::Int(0)).unwrap();
        s.watch_int(x, "x > 0", |v| v > 0).unwrap();
        // Initially false: with no events yet, the slice is empty.
        let comp = s.snapshot_computation().unwrap();
        assert!(s.slice_of(&comp).is_empty_slice());
        // After a satisfying event the slice reappears.
        s.observe(0, &[(x, Value::Int(5))]).unwrap();
        let comp = s.snapshot_computation().unwrap();
        assert_eq!(s.slice_of(&comp).count_cuts(None).value(), 1);
    }

    #[test]
    fn late_watch_is_an_error_not_a_panic() {
        let mut s = OnlineSlicer::new(1);
        let x = s.declare_var(0, "x", Value::Int(0)).unwrap();
        s.observe(0, &[]).unwrap();
        let err = s.watch_int(x, "x > 0", |v| v > 0).unwrap_err();
        assert!(matches!(err, BuildError::LateWatch { .. }));
        // The slicer stays usable.
        s.observe(0, &[(x, Value::Int(1))]).unwrap();
        assert_eq!(s.events_on(0), 3);
    }

    #[test]
    fn mistyped_observation_is_rejected_without_corrupting_history() {
        let mut s = OnlineSlicer::new(1);
        let x = s.declare_var(0, "x", Value::Int(0)).unwrap();
        s.watch_int(x, "x > 0", |v| v > 0).unwrap();
        let err = s.observe(0, &[(x, Value::Bool(true))]).unwrap_err();
        assert!(matches!(
            err,
            BuildError::TypeMismatch {
                expected: "int",
                got: "bool",
                ..
            }
        ));
        // No half-observed event: the rejected observation left nothing.
        assert_eq!(s.events_on(0), 1);
        s.observe(0, &[(x, Value::Int(2))]).unwrap();
        let comp = s.snapshot_computation().unwrap();
        assert_eq!(comp.num_events(), 2);
    }

    #[test]
    fn mistyped_watch_is_rejected_up_front() {
        let mut s = OnlineSlicer::new(1);
        let b = s.declare_var(0, "flag", Value::Bool(false)).unwrap();
        let err = s.watch_int(b, "flag > 0", |v| v > 0).unwrap_err();
        assert!(matches!(
            err,
            BuildError::TypeMismatch {
                expected: "int",
                got: "bool",
                ..
            }
        ));
        let err = s.watch_bool(b, "flag", |v| v).err();
        assert!(err.is_none());
    }

    #[test]
    fn cyclic_message_is_rejected_in_constant_time() {
        let mut s = OnlineSlicer::new(2);
        let a1 = s.observe(0, &[]).unwrap();
        let b1 = s.observe(1, &[]).unwrap();
        let b2 = s.observe(1, &[]).unwrap();
        s.message(a1, b1).unwrap();
        // b2 follows b1 which follows a1: a message b2 → a1 bends time.
        let err = s.message(b2, a1).unwrap_err();
        assert_eq!(err, BuildError::CyclicOrder);
        // Nothing was recorded: the snapshot still builds and has one message.
        let comp = s.snapshot_computation().unwrap();
        assert_eq!(comp.messages().len(), 1);
    }

    #[test]
    fn clocks_equal_offline_min_cuts_even_with_late_messages() {
        let mut s = OnlineSlicer::new(3);
        let mut events = Vec::new();
        for round in 0..4 {
            for p in 0..3 {
                events.push(s.observe(p, &[]).unwrap());
            }
            if round == 2 {
                // Late cross-process messages between events observed long
                // before: clocks must be repaired downstream.
                s.message(events[0], events[4]).unwrap();
                s.message(events[4], events[8]).unwrap();
            }
        }
        s.message(events[1], events[9]).unwrap();
        let comp = s.snapshot_computation().unwrap();
        for e in comp.events() {
            assert_eq!(
                s.clock(e).counts(),
                comp.min_cut(e).counts(),
                "clock of {e} diverged from the offline least-cut table"
            );
        }
        assert!(
            s.clock_revision() > 0,
            "late messages must bump the revision"
        );
    }

    #[test]
    fn observe_batch_matches_single_observes() {
        let mut a = OnlineSlicer::new(2);
        let xa = a.declare_var(0, "x", Value::Int(0)).unwrap();
        let ya = a.declare_var(1, "y", Value::Int(0)).unwrap();
        let ids = a
            .observe_batch(&[
                (0, vec![(xa, Value::Int(1))]),
                (1, vec![(ya, Value::Int(2))]),
                (0, vec![(xa, Value::Int(3))]),
            ])
            .unwrap();
        assert_eq!(ids.len(), 3);
        let mut b = OnlineSlicer::new(2);
        let xb = b.declare_var(0, "x", Value::Int(0)).unwrap();
        let yb = b.declare_var(1, "y", Value::Int(0)).unwrap();
        b.observe(0, &[(xb, Value::Int(1))]).unwrap();
        b.observe(1, &[(yb, Value::Int(2))]).unwrap();
        b.observe(0, &[(xb, Value::Int(3))]).unwrap();
        let ca = a.snapshot_computation().unwrap();
        let cb = b.snapshot_computation().unwrap();
        assert_eq!(ca.num_events(), cb.num_events());
        let va = ca.var(ca.process(0), "x").unwrap();
        let vb = cb.var(cb.process(0), "x").unwrap();
        assert_eq!(ca.value_at(va, 2), cb.value_at(vb, 2));
    }

    #[test]
    fn clause_watches_match_var_watches() {
        let mut with_clause = OnlineSlicer::new(2);
        let x = with_clause.declare_var(0, "x", Value::Int(0)).unwrap();
        let y = with_clause.declare_var(1, "y", Value::Int(0)).unwrap();
        with_clause
            .watch_clause(LocalPredicate::int(x, "x > 0", |v| v > 0))
            .unwrap();
        with_clause
            .watch_clause(LocalPredicate::int(y, "y > 0", |v| v > 0))
            .unwrap();
        let mut with_vars = OnlineSlicer::new(2);
        let x2 = with_vars.declare_var(0, "x", Value::Int(0)).unwrap();
        let y2 = with_vars.declare_var(1, "y", Value::Int(0)).unwrap();
        with_vars.watch_int(x2, "x > 0", |v| v > 0).unwrap();
        with_vars.watch_int(y2, "y > 0", |v| v > 0).unwrap();

        for (p, var1, var2, val) in [(0, x, x2, 1), (1, y, y2, 0), (1, y, y2, 3)] {
            with_clause.observe(p, &[(var1, Value::Int(val))]).unwrap();
            with_vars.observe(p, &[(var2, Value::Int(val))]).unwrap();
            let c1 = with_clause.snapshot_computation().unwrap();
            let c2 = with_vars.snapshot_computation().unwrap();
            assert_eq!(
                all_cuts(&with_clause.slice_of(&c1)),
                all_cuts(&with_vars.slice_of(&c2))
            );
        }
    }

    /// A two-process ping-pong whose messages keep both frontier clocks
    /// tight, so the stability frontier advances with the stream.
    fn ping_pong(rounds: usize) -> (OnlineSlicer, Vec<EventId>, Vec<EventId>) {
        let mut s = OnlineSlicer::new(2);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for i in 0..rounds {
            a.push(s.observe(0, &[]).unwrap());
            b.push(s.observe(1, &[]).unwrap());
            s.message(a[i], b[i]).unwrap();
            if i > 0 {
                s.message(b[i - 1], a[i]).unwrap();
            }
        }
        (s, a, b)
    }

    #[test]
    fn compaction_reclaims_stable_history_without_touching_clocks() {
        let (mut s, a, b) = ping_pong(10);
        let g = s.stable_frontier();
        assert!(g[0] > 2 && g[1] > 2, "ping-pong must stabilize: {g:?}");
        // lag 2 keeps at least the last two positions of each process.
        let before: Vec<Vec<u32>> = a[8..]
            .iter()
            .chain(&b[8..])
            .map(|&e| s.clock(e).counts().to_vec())
            .collect();
        let total = s.retained_events();
        let stats = s.compact(&[u32::MAX, u32::MAX], 2);
        assert!(stats.dropped_events > 0, "{stats:?}");
        assert_eq!(stats.retained_events + stats.dropped_events, total);
        // Absolute bookkeeping is untouched; retained clocks are identical.
        assert_eq!(s.events_on(0), 11);
        let after: Vec<Vec<u32>> = a[8..]
            .iter()
            .chain(&b[8..])
            .map(|&e| s.clock(e).counts().to_vec())
            .collect();
        assert_eq!(before, after);
        // The suffix still snapshots and slices.
        let comp = s.snapshot_computation().unwrap();
        assert_eq!(comp.num_events() as u64, stats.retained_events);
        let slice = s.slice_of(&comp);
        assert!(slice.count_cuts(None).value() >= 1);
        // Compacting again with nothing new to fold is a no-op.
        let again = s.compact(&[u32::MAX, u32::MAX], 2);
        assert_eq!(again.dropped_events, 0);
    }

    #[test]
    fn messages_below_the_compaction_horizon_are_rejected() {
        let (mut s, a, b) = ping_pong(10);
        s.compact(&[u32::MAX, u32::MAX], 2);
        let base = s.base_of(0);
        assert!(base > 0);
        // A very late message into reclaimed history cannot be accepted.
        let err = s.message(b[9], a[0]).unwrap_err();
        assert!(
            matches!(
                err,
                BuildError::CompactedEvent { .. } | BuildError::CyclicOrder
            ),
            "{err:?}"
        );
        // The summary events themselves are frozen too: a message between
        // the two summaries is order-compatible with the clocks but still
        // rejected as compacted.
        let summary0 = s.event_at(0, base);
        let summary1 = s.event_at(1, s.base_of(1));
        let err = s.message(summary0, summary1).unwrap_err();
        assert!(matches!(err, BuildError::CompactedEvent { .. }), "{err:?}");
        // Fresh events above the horizon are unaffected.
        let e = s.observe(0, &[]).unwrap();
        s.message(b[9], e).unwrap();
    }

    #[test]
    fn keep_floor_and_lag_pin_the_compaction_cut() {
        let (mut s, _, _) = ping_pong(10);
        // keep_floor pins position 3 of process 0.
        let stats = s.compact(&[3, u32::MAX], 0);
        assert!(s.base_of(0) <= 3, "floor violated: {stats:?}");
        // A large lag suppresses compaction entirely.
        let (mut s2, _, _) = ping_pong(10);
        let stats = s2.compact(&[u32::MAX, u32::MAX], 100);
        assert_eq!(stats.dropped_events, 0);
    }

    #[test]
    fn exported_state_round_trips_through_restore() {
        let mut s = OnlineSlicer::new(2);
        let x = s.declare_var(0, "x", Value::Int(0)).unwrap();
        let y = s.declare_var(1, "y", Value::Int(1)).unwrap();
        s.watch_clause(LocalPredicate::int(x, "x > 0", |v| v > 0))
            .unwrap();
        s.watch_clause(LocalPredicate::int(y, "y > 0", |v| v > 0))
            .unwrap();
        let mut events = Vec::new();
        for i in 0..6i64 {
            events.push(s.observe(0, &[(x, Value::Int(i % 3))]).unwrap());
            events.push(s.observe(1, &[(y, Value::Int(i))]).unwrap());
        }
        s.message(events[0], events[3]).unwrap();
        s.message(events[5], events[8]).unwrap(); // late re-timing
        s.compact(&[u32::MAX, u32::MAX], 4);

        let state = s.export_state();
        let mut r = OnlineSlicer::from_state(&state).unwrap();
        let rx = r.var(0, "x").unwrap();
        let ry = r.var(1, "y").unwrap();
        r.restore_watch_clause(LocalPredicate::int(rx, "x > 0", |v| v > 0))
            .unwrap();
        r.restore_watch_clause(LocalPredicate::int(ry, "y > 0", |v| v > 0))
            .unwrap();
        assert_eq!(r.clock_revision(), s.clock_revision());
        assert_eq!(r.retained_events(), s.retained_events());
        assert_eq!(r.export_state(), state, "export is a fixpoint");

        // Both continue identically.
        let se = s.observe(0, &[(x, Value::Int(9))]).unwrap();
        let re = r.observe(0, &[(rx, Value::Int(9))]).unwrap();
        assert_eq!(s.clock(se).counts(), r.clock(re).counts());
        assert_eq!(s.event_holds(se), r.event_holds(re));
        let cs = s.snapshot_computation().unwrap();
        let cr = r.snapshot_computation().unwrap();
        assert_eq!(
            all_cuts(&s.slice_of(&cs)),
            all_cuts(&r.slice_of(&cr)),
            "restored slice diverged"
        );
    }

    #[test]
    fn restore_rejects_contradictory_clauses_and_corrupt_clocks() {
        let mut s = OnlineSlicer::new(1);
        let x = s.declare_var(0, "x", Value::Int(5)).unwrap();
        s.watch_clause(LocalPredicate::int(x, "x > 0", |v| v > 0))
            .unwrap();
        s.observe(0, &[(x, Value::Int(7))]).unwrap();
        let mut state = s.export_state();

        let mut r = OnlineSlicer::from_state(&state).unwrap();
        let rx = r.var(0, "x").unwrap();
        // The checkpoint says the conjunction held; a clause the history
        // falsifies cannot be the one that was checkpointed.
        let err = r
            .restore_watch_clause(LocalPredicate::int(rx, "x < 0", |v| v < 0))
            .unwrap_err();
        assert!(matches!(err, BuildError::InvalidState { .. }), "{err:?}");

        state.clocks[1][0] = 99; // own-count must equal position + 1
        let err = OnlineSlicer::from_state(&state).unwrap_err();
        assert!(matches!(err, BuildError::InvalidState { .. }), "{err:?}");
    }
}
