//! Fast slicing for decomposable regular predicates (Section 4.1).

use slicing_computation::Computation;
use slicing_predicates::RegularPredicate;

use crate::linear::linear_constraint_edges;
use crate::slice::Slice;

/// Computes the slice for a *decomposable regular predicate*: a conjunction
/// of clauses, each itself regular but spanning only a few processes
/// (Section 4.1).
///
/// Instead of running the generic `O(n²|E|)` regular slicer on the whole
/// predicate, each clause is sliced on the computation *projected* onto the
/// clause's processes (without materializing the projection — see
/// [`slice_linear_restricted`](crate::slice_linear_restricted)), and the
/// per-clause constraint edges are combined
/// with conjunction grafting. For clause span `k` and at most `s` clauses
/// per process the total cost is `O((n + k²s)|E|)` — a factor of `n`
/// faster on the paper's "counters approximately synchronized" example
/// (`k = 2`, `s = n`).
///
/// The result is exact (the conjunction of regular predicates is regular,
/// and the grafted slice is its lean slice).
///
/// # Panics
///
/// Panics if `clauses` is empty (the slice of `true` is the full
/// computation; use [`Slice::full`]).
pub fn slice_decomposable<'a, P: RegularPredicate>(
    comp: &'a Computation,
    clauses: &[P],
) -> Slice<'a> {
    assert!(
        !clauses.is_empty(),
        "slice_decomposable needs at least one clause; use Slice::full for `true`"
    );
    let _span = slicing_observe::span("slice.decomposable");
    slicing_observe::counter("slice.decomposable.clauses", clauses.len() as u64);
    // Conjunction grafting is edge union, so collect every clause's edges
    // (each computed on its clause's processes only) and build one slice.
    let mut edges = Vec::new();
    for c in clauses {
        edges.extend(linear_constraint_edges(comp, c, c.support()));
    }
    Slice::new(comp, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::lattice::all_cuts;
    use slicing_computation::oracle::expected_slice_cuts;
    use slicing_computation::test_fixtures::XorShift64;
    use slicing_computation::{ComputationBuilder, Cut, GlobalState, Value, VarRef};
    use slicing_predicates::{approximately_synchronized, BoundedDifference, Predicate};
    use std::collections::BTreeSet;

    use crate::linear::slice_linear;

    /// n processes with monotone counters; occasional messages keep them
    /// loosely synchronized.
    fn counter_computation(
        seed: u64,
        n: usize,
        steps: u32,
    ) -> (slicing_computation::Computation, Vec<VarRef>) {
        let mut rng = XorShift64::new(seed);
        let mut b = ComputationBuilder::new(n);
        let counters: Vec<VarRef> = (0..n)
            .map(|i| b.declare_var(b.process(i), "c", Value::Int(0)))
            .collect();
        let mut values = vec![0i64; n];
        let mut pending_send: Option<(slicing_computation::EventId, usize)> = None;
        for _ in 0..steps {
            let i = rng.index(n);
            values[i] += 1;
            let e = b.step(b.process(i), &[(counters[i], Value::Int(values[i]))]);
            // Occasional messages keep the lattice non-trivial.
            match pending_send {
                Some((send, from)) if from != i && rng.chance(50, 100) => {
                    b.message(send, e).expect("forward message is acyclic");
                    pending_send = None;
                }
                None if rng.chance(30, 100) => pending_send = Some((e, i)),
                _ => {}
            }
        }
        (b.build().unwrap(), counters)
    }

    /// The conjunction of all clauses, evaluated directly.
    fn conj_eval(clauses: &[BoundedDifference], st: &GlobalState<'_>) -> bool {
        clauses.iter().all(|c| c.eval(st))
    }

    #[test]
    fn matches_oracle_on_counter_workload() {
        for seed in 0..10 {
            let (comp, counters) = counter_computation(seed, 3, 6);
            let clauses = approximately_synchronized(&counters, 1);
            let slice = slice_decomposable(&comp, &clauses);
            let got: BTreeSet<Cut> = all_cuts(&slice).into_iter().collect();
            let (want, sat) = expected_slice_cuts(&comp, |st| conj_eval(&clauses, st));
            assert_eq!(got, want, "seed {seed}");
            // Regular conjunction ⇒ lean.
            assert_eq!(want.len(), sat.len(), "seed {seed} leanness");
        }
    }

    #[test]
    fn agrees_with_generic_regular_slicer() {
        // The decomposable fast path must produce the same cut set as
        // slicing the conjunction as one monolithic regular predicate.
        let (comp, counters) = counter_computation(42, 4, 8);
        let clauses = approximately_synchronized(&counters, 2);
        let fast: BTreeSet<Cut> = all_cuts(&slice_decomposable(&comp, &clauses))
            .into_iter()
            .collect();
        // Monolithic: conjunction of regular clauses as a single linear
        // predicate via Conjunction-of-regulars wrapper.
        let mono = MonolithicConj(clauses.clone());
        let slow: BTreeSet<Cut> = all_cuts(&slice_linear(&comp, &mono)).into_iter().collect();
        assert_eq!(fast, slow);
    }

    /// Conjunction of regular clauses as one linear predicate (for the
    /// equivalence test).
    #[derive(Debug)]
    struct MonolithicConj(Vec<BoundedDifference>);

    impl Predicate for MonolithicConj {
        fn support(&self) -> slicing_computation::ProcSet {
            self.0
                .iter()
                .map(|c| c.support())
                .fold(slicing_computation::ProcSet::empty(), |a, b| a.union(b))
        }

        fn eval(&self, st: &GlobalState<'_>) -> bool {
            self.0.iter().all(|c| c.eval(st))
        }
    }

    impl slicing_predicates::LinearPredicate for MonolithicConj {
        fn forbidden_process(&self, st: &GlobalState<'_>) -> slicing_computation::ProcessId {
            self.0
                .iter()
                .find(|c| !c.eval(st))
                .expect("called on falsifying state")
                .forbidden_process(st)
        }
    }

    #[test]
    fn single_clause_decomposition_equals_direct_slice() {
        let (comp, counters) = counter_computation(7, 2, 5);
        let clause = BoundedDifference::new(counters[0], counters[1], 1);
        let a: BTreeSet<Cut> = all_cuts(&slice_decomposable(&comp, &[clause]))
            .into_iter()
            .collect();
        let b: BTreeSet<Cut> = all_cuts(&slice_linear(&comp, &clause))
            .into_iter()
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one clause")]
    fn empty_clause_list_rejected() {
        let (comp, _) = counter_computation(1, 2, 2);
        let _ = slice_decomposable::<BoundedDifference>(&comp, &[]);
    }
}
