//! Compiling parsed predicate expressions into slicing strategies.
//!
//! Section 5 computes approximate slices for predicates "composed from
//! co-regular, linear, post-linear and k-local predicates using ∧ and ∨":
//! build the parse tree, slice the leaves with the matching algorithm,
//! graft upward. This module automates the leaf classification for the
//! expression language of `slicing-predicates`:
//!
//! 1. negations are pushed down to literals ([`Expr::negated`]), so `¬` of
//!    a comparison becomes a flipped comparison rather than an opaque
//!    negation;
//! 2. the tree is split along `&&` / `||`;
//! 3. constant subtrees are folded;
//! 4. single-process leaves become conjunctive predicates (`O(|E|)`
//!    slices);
//! 5. anything else becomes a k-local leaf over its variables.

use slicing_computation::{Computation, Value};
use slicing_predicates::expr::{local_from_expr, Expr, ExprPredicate};
use slicing_predicates::Conjunctive;

use crate::approx::PredicateSpec;

/// Compiles a boolean expression into a [`PredicateSpec`] whose
/// [`slice`](PredicateSpec::slice) is a sound (and usually tight)
/// approximation for the expression, and whose
/// [`eval`](PredicateSpec::eval) is exactly the expression.
///
/// # Examples
///
/// ```
/// use slicing_computation::test_fixtures::figure1;
/// use slicing_predicates::expr::parse_predicate;
/// use slicing_core::compile_predicate;
///
/// let comp = figure1();
/// let pred = parse_predicate(&comp, "!(x1@0 <= 1) && (x3@2 <= 3 || x2@1 == 4)")?;
/// let spec = compile_predicate(&comp, &pred);
/// let slice = spec.slice(&comp);
/// assert!(!slice.is_empty_slice());
/// # Ok::<(), slicing_predicates::expr::ParseError>(())
/// ```
pub fn compile_predicate(comp: &Computation, pred: &ExprPredicate) -> PredicateSpec {
    compile_expr(comp, pred.expr())
}

/// Expression-level entry point of [`compile_predicate`].
pub fn compile_expr(comp: &Computation, expr: &Expr) -> PredicateSpec {
    let _ = comp; // reserved for future computation-aware leaf choices
                  // Normalize: no `Not` above anything but boolean variables.
    let normalized = normalize(expr);
    compile_normalized(&normalized)
}

fn normalize(expr: &Expr) -> Expr {
    match expr {
        Expr::Not(inner) => inner.negated(),
        Expr::Bin(op, l, r) => Expr::Bin(*op, Box::new(normalize(l)), Box::new(normalize(r))),
        other => other.clone(),
    }
}

fn compile_normalized(expr: &Expr) -> PredicateSpec {
    // Constant fold: no variables means the truth value is fixed.
    let support = expr.support();
    if support.is_empty() {
        let value = expr
            .eval_with(&|_| unreachable!("constant expression reads no variables"))
            .expect("parser type-checked the expression");
        return match value {
            Value::Bool(true) => PredicateSpec::conjunctive(Conjunctive::new(vec![])),
            Value::Bool(false) => PredicateSpec::or(vec![]),
            other => panic!("predicate expression evaluated to non-boolean {other}"),
        };
    }

    // Single-process subtree: one local conjunct, lean O(|E|) slice.
    if support.len() == 1 {
        return PredicateSpec::conjunctive(Conjunctive::new(vec![local_from_expr(expr)]));
    }

    // Multi-process: split on the boolean structure.
    let conjuncts = expr.conjuncts();
    if conjuncts.len() > 1 {
        return PredicateSpec::and(conjuncts.into_iter().map(compile_normalized).collect());
    }
    let disjuncts = expr.disjuncts();
    if disjuncts.len() > 1 {
        return PredicateSpec::or(disjuncts.into_iter().map(compile_normalized).collect());
    }

    // A genuinely multi-process literal: k-local over its variables.
    let pred = ExprPredicate::new(expr.clone());
    let klocal = pred
        .to_klocal()
        .expect("non-constant expression reads variables");
    PredicateSpec::klocal(klocal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::lattice::all_cuts;
    use slicing_computation::oracle::satisfying_cuts;
    use slicing_computation::test_fixtures::{figure1, random_computation, RandomConfig};
    use slicing_computation::{Cut, GlobalState};
    use slicing_predicates::expr::parse_predicate;
    use slicing_predicates::Predicate;
    use std::collections::BTreeSet;

    /// Compiled specs evaluate exactly like the source expression and
    /// slice soundly, across a family of expression shapes.
    #[test]
    fn compiled_specs_are_sound_and_semantically_exact() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 3,
            value_range: 3,
            ..RandomConfig::default()
        };
        let sources = [
            "x@0 >= 1 && x@1 >= 1 && x@2 >= 1",
            "!(x@0 >= 1) || x@1 == 2",
            "x@0 != x@1 && x@2 <= 1",
            "x@0 + x@1 == x@2 || x@2 == 0",
            "!(x@0 == 1 && x@1 == 1)",
            "(x@0 < 1 || x@1 < 1) && (x@1 < 2 || x@2 < 2)",
        ];
        for seed in 0..12 {
            let comp = random_computation(seed, &cfg);
            for src in sources {
                let pred = parse_predicate(&comp, src).unwrap();
                let spec = compile_predicate(&comp, &pred);
                // Semantic equality everywhere.
                for cut in all_cuts(&comp) {
                    let st = GlobalState::new(&comp, &cut);
                    assert_eq!(
                        spec.eval(&st),
                        pred.eval(&st),
                        "seed {seed} src {src:?} cut {cut}"
                    );
                }
                // Slice soundness.
                let slice = spec.slice(&comp);
                let slice_cuts: BTreeSet<Cut> = all_cuts(&slice).into_iter().collect();
                for cut in satisfying_cuts(&comp, |st| pred.eval(st)) {
                    assert!(
                        slice_cuts.contains(&cut),
                        "seed {seed} src {src:?} missing {cut}"
                    );
                }
            }
        }
    }

    #[test]
    fn figure1_compiles_to_a_lean_slice() {
        let comp = figure1();
        let pred = parse_predicate(&comp, "x1@0 > 1 && x3@2 <= 3").unwrap();
        let spec = compile_predicate(&comp, &pred);
        let slice = spec.slice(&comp);
        assert_eq!(slice.count_cuts(None).value(), 6);
    }

    #[test]
    fn negated_conjunction_compiles_via_de_morgan() {
        let comp = figure1();
        // ¬((x1>1) ∧ (x3≤3)) = (x1≤1) ∨ (x3>3): two conjunctive leaves
        // under an Or — sliced exactly (each disjunct is regular).
        let pred = parse_predicate(&comp, "!(x1@0 > 1 && x3@2 <= 3)").unwrap();
        let spec = compile_predicate(&comp, &pred);
        let got: BTreeSet<Cut> = all_cuts(&spec.slice(&comp)).into_iter().collect();
        let (want, _) = slicing_computation::oracle::expected_slice_cuts(&comp, |st| pred.eval(st));
        assert_eq!(got, want);
    }

    #[test]
    fn constants_fold() {
        let comp = figure1();
        let t = parse_predicate(&comp, "1 < 2").unwrap();
        let spec = compile_predicate(&comp, &t);
        assert_eq!(spec.slice(&comp).count_cuts(None).value(), 28);
        let f = parse_predicate(&comp, "2 < 1").unwrap();
        let spec = compile_predicate(&comp, &f);
        assert!(spec.slice(&comp).is_empty_slice());
    }

    #[test]
    fn mixed_constant_branches_fold_inside_trees() {
        let comp = figure1();
        let pred = parse_predicate(&comp, "x1@0 > 1 && true").unwrap();
        let spec = compile_predicate(&comp, &pred);
        let slice = spec.slice(&comp);
        // Same result as the bare conjunct.
        let bare = compile_predicate(&comp, &parse_predicate(&comp, "x1@0 > 1").unwrap());
        assert_eq!(all_cuts(&slice), all_cuts(&bare.slice(&comp)));
    }
}
