//! Approximate slicing for boolean combinations of sliceable predicates
//! (Section 5).

use std::fmt;
use std::sync::Arc;

use slicing_computation::{Computation, GlobalState, ProcSet};
use slicing_predicates::{
    Conjunctive, KLocalPredicate, LinearPredicate, PostLinearPredicate, Predicate, RegularPredicate,
};

use crate::conjunctive::slice_conjunctive;
use crate::coregular::slice_co_regular;
use crate::graft::{graft_and_all, graft_or_all};
use crate::klocal::slice_klocal;
use crate::linear::{slice_linear, slice_regular};
use crate::postlinear::slice_postlinear;
use crate::slice::Slice;

/// A predicate built from sliceable leaves with `∧` and `∨` — the class
/// for which Section 5 computes an approximate slice in polynomial time:
/// conjunctive, regular, co-regular, linear, post-linear, and k-local
/// predicates, composed with conjunction and disjunction.
///
/// [`PredicateSpec::slice`] walks the parse tree bottom-up: each leaf is
/// sliced with the algorithm matching its class, and every interior node
/// grafts its children's slices. The result always **contains** every
/// satisfying cut (soundness); it is exact when the tree is a single
/// regular/conjunctive leaf, and an over-approximation otherwise — still
/// typically far smaller than the computation.
///
/// # Examples
///
/// ```
/// use slicing_computation::test_fixtures::figure1;
/// use slicing_predicates::{Conjunctive, LocalPredicate};
/// use slicing_core::PredicateSpec;
///
/// let comp = figure1();
/// let x1 = comp.var(comp.process(0), "x1").unwrap();
/// let x2 = comp.var(comp.process(1), "x2").unwrap();
/// // (x1 > 1) ∨ (x2 == 4), each disjunct conjunctive.
/// let spec = PredicateSpec::or(vec![
///     PredicateSpec::conjunctive(Conjunctive::new(vec![
///         LocalPredicate::int(x1, "x1 > 1", |x| x > 1),
///     ])),
///     PredicateSpec::conjunctive(Conjunctive::new(vec![
///         LocalPredicate::int(x2, "x2 == 4", |x| x == 4),
///     ])),
/// ]);
/// let slice = spec.slice(&comp);
/// assert!(!slice.is_empty_slice());
/// ```
pub enum PredicateSpec {
    /// A conjunction of local predicates — sliced in `O(|E|)`.
    Conjunctive(Conjunctive),
    /// A regular predicate — lean slice in `O(n²|E|)`.
    Regular(Arc<dyn RegularPredicate>),
    /// The complement of a regular predicate — `O(n²|E|²)`.
    CoRegular(Arc<dyn RegularPredicate>),
    /// A linear predicate — smallest containing sublattice in `O(n²|E|)`.
    Linear(Arc<dyn LinearPredicate>),
    /// A post-linear predicate — dual of linear.
    PostLinear(Arc<dyn PostLinearPredicate>),
    /// A k-local predicate — DNF transform, `O(n·m^(k-1)·|E|)`.
    KLocal(KLocalPredicate),
    /// Conjunction of sub-specifications (conjunction grafting).
    And(Vec<PredicateSpec>),
    /// Disjunction of sub-specifications (disjunction grafting).
    Or(Vec<PredicateSpec>),
}

impl PredicateSpec {
    /// Leaf constructor for a conjunctive predicate.
    pub fn conjunctive(p: Conjunctive) -> Self {
        PredicateSpec::Conjunctive(p)
    }

    /// Leaf constructor for a regular predicate.
    pub fn regular(p: impl RegularPredicate + 'static) -> Self {
        PredicateSpec::Regular(Arc::new(p))
    }

    /// Leaf constructor for the complement of a regular predicate.
    pub fn not_regular(p: impl RegularPredicate + 'static) -> Self {
        PredicateSpec::CoRegular(Arc::new(p))
    }

    /// Leaf constructor for a linear predicate.
    pub fn linear(p: impl LinearPredicate + 'static) -> Self {
        PredicateSpec::Linear(Arc::new(p))
    }

    /// Leaf constructor for a post-linear predicate.
    pub fn post_linear(p: impl PostLinearPredicate + 'static) -> Self {
        PredicateSpec::PostLinear(Arc::new(p))
    }

    /// Leaf constructor for a k-local predicate.
    pub fn klocal(p: KLocalPredicate) -> Self {
        PredicateSpec::KLocal(p)
    }

    /// Interior conjunction.
    pub fn and(children: Vec<PredicateSpec>) -> Self {
        PredicateSpec::And(children)
    }

    /// Interior disjunction.
    pub fn or(children: Vec<PredicateSpec>) -> Self {
        PredicateSpec::Or(children)
    }

    /// Computes the (possibly approximate) slice for the whole tree.
    pub fn slice<'a>(&self, comp: &'a Computation) -> Slice<'a> {
        let _span = slicing_observe::span(match self {
            PredicateSpec::Conjunctive(_) => "slice.spec.conjunctive",
            PredicateSpec::Regular(_) => "slice.spec.regular",
            PredicateSpec::CoRegular(_) => "slice.spec.co_regular",
            PredicateSpec::Linear(_) => "slice.spec.linear",
            PredicateSpec::PostLinear(_) => "slice.spec.post_linear",
            PredicateSpec::KLocal(_) => "slice.spec.klocal",
            PredicateSpec::And(_) => "slice.spec.and",
            PredicateSpec::Or(_) => "slice.spec.or",
        });
        match self {
            PredicateSpec::Conjunctive(p) => slice_conjunctive(comp, p),
            PredicateSpec::Regular(p) => slice_regular(comp, p.as_ref()),
            PredicateSpec::CoRegular(p) => slice_co_regular(comp, p.as_ref()),
            PredicateSpec::Linear(p) => slice_linear(comp, p.as_ref()),
            PredicateSpec::PostLinear(p) => slice_postlinear(comp, p.as_ref()),
            PredicateSpec::KLocal(p) => slice_klocal(comp, p),
            PredicateSpec::And(children) => {
                assert!(!children.is_empty(), "And() of nothing; use Slice::full");
                let parts: Vec<Slice<'a>> = children.iter().map(|c| c.slice(comp)).collect();
                graft_and_all(&parts)
            }
            PredicateSpec::Or(children) => {
                let parts: Vec<Slice<'a>> = children.iter().map(|c| c.slice(comp)).collect();
                graft_or_all(comp, &parts)
            }
        }
    }

    /// Evaluates the *exact* predicate the tree denotes (used after slicing
    /// to check the residual predicate on the slice's cuts).
    pub fn eval(&self, state: &GlobalState<'_>) -> bool {
        match self {
            PredicateSpec::Conjunctive(p) => p.eval(state),
            PredicateSpec::Regular(p) => p.eval(state),
            PredicateSpec::CoRegular(p) => !p.eval(state),
            PredicateSpec::Linear(p) => p.eval(state),
            PredicateSpec::PostLinear(p) => p.eval(state),
            PredicateSpec::KLocal(p) => p.eval(state),
            PredicateSpec::And(children) => children.iter().all(|c| c.eval(state)),
            PredicateSpec::Or(children) => children.iter().any(|c| c.eval(state)),
        }
    }

    /// The logical complement of the tree, when it stays sliceable.
    ///
    /// Regular and conjunctive leaves flip to co-regular and back
    /// (a conjunctive predicate is regular, so its complement slices with
    /// the Section 5 co-regular algorithm), and interior nodes apply
    /// De Morgan. Linear, post-linear, and k-local leaves have no
    /// polynomial-time sliceable complement, so a tree containing one
    /// returns `None` — callers fall back to searching the negation
    /// directly. Recovery-line computation uses this to slice "the fault
    /// never happened" regions without hand-writing negated specs.
    pub fn complement(&self) -> Option<PredicateSpec> {
        match self {
            PredicateSpec::Conjunctive(p) => Some(PredicateSpec::CoRegular(Arc::new(p.clone()))),
            PredicateSpec::Regular(p) => Some(PredicateSpec::CoRegular(p.clone())),
            PredicateSpec::CoRegular(p) => Some(PredicateSpec::Regular(p.clone())),
            PredicateSpec::Linear(_) | PredicateSpec::PostLinear(_) | PredicateSpec::KLocal(_) => {
                None
            }
            PredicateSpec::And(children) => {
                let flipped: Option<Vec<PredicateSpec>> =
                    children.iter().map(PredicateSpec::complement).collect();
                Some(PredicateSpec::Or(flipped?))
            }
            PredicateSpec::Or(children) => {
                // ¬(∅-ary ∨) is the constant true, which has no spec form.
                if children.is_empty() {
                    return None;
                }
                let flipped: Option<Vec<PredicateSpec>> =
                    children.iter().map(PredicateSpec::complement).collect();
                Some(PredicateSpec::And(flipped?))
            }
        }
    }

    /// The processes read anywhere in the tree.
    pub fn support(&self) -> ProcSet {
        match self {
            PredicateSpec::Conjunctive(p) => p.support(),
            PredicateSpec::Regular(p) => p.support(),
            PredicateSpec::CoRegular(p) => p.support(),
            PredicateSpec::Linear(p) => p.support(),
            PredicateSpec::PostLinear(p) => p.support(),
            PredicateSpec::KLocal(p) => p.support(),
            PredicateSpec::And(children) | PredicateSpec::Or(children) => children
                .iter()
                .map(PredicateSpec::support)
                .fold(ProcSet::empty(), ProcSet::union),
        }
    }
}

impl fmt::Debug for PredicateSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredicateSpec::Conjunctive(p) => write!(f, "{p:?}"),
            PredicateSpec::Regular(p) => write!(f, "Regular({p:?})"),
            PredicateSpec::CoRegular(p) => write!(f, "¬Regular({p:?})"),
            PredicateSpec::Linear(p) => write!(f, "Linear({p:?})"),
            PredicateSpec::PostLinear(p) => write!(f, "PostLinear({p:?})"),
            PredicateSpec::KLocal(p) => write!(f, "{p:?}"),
            PredicateSpec::And(children) => f.debug_tuple("And").field(children).finish(),
            PredicateSpec::Or(children) => f.debug_tuple("Or").field(children).finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::lattice::all_cuts;
    use slicing_computation::oracle::satisfying_cuts;
    use slicing_computation::test_fixtures::{random_computation, RandomConfig};
    use slicing_computation::Cut;
    use slicing_predicates::LocalPredicate;
    use std::collections::BTreeSet;

    fn local_spec(comp: &Computation, proc_idx: usize, t: i64) -> PredicateSpec {
        let p = comp.process(proc_idx);
        let x = comp.var(p, "x").unwrap();
        PredicateSpec::conjunctive(Conjunctive::new(vec![LocalPredicate::int(
            x,
            format!("x >= {t}"),
            move |v| v >= t,
        )]))
    }

    /// Soundness on random trees: the approximate slice contains every
    /// satisfying cut.
    #[test]
    fn approximate_slice_is_sound_on_random_trees() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 3,
            value_range: 3,
            ..RandomConfig::default()
        };
        for seed in 0..20 {
            let comp = random_computation(seed, &cfg);
            // ((a ∨ b) ∧ c) with local leaves — the paper's (x1∨x2)∧(x3∨x4)
            // shape, scaled to three processes.
            let spec = PredicateSpec::and(vec![
                PredicateSpec::or(vec![local_spec(&comp, 0, 1), local_spec(&comp, 1, 2)]),
                local_spec(&comp, 2, 1),
            ]);
            let slice = spec.slice(&comp);
            let slice_cuts: BTreeSet<Cut> = all_cuts(&slice).into_iter().collect();
            let sat = satisfying_cuts(&comp, |st| spec.eval(st));
            for c in &sat {
                assert!(slice_cuts.contains(c), "seed {seed}: missing {c}");
            }
            // And the slice is never larger than the computation.
            assert!(slice_cuts.len() as u64 <= all_cuts(&comp).len() as u64);
        }
    }

    /// On a pure conjunction of regular leaves the result is exact.
    #[test]
    fn conjunction_of_regular_leaves_is_exact() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 3,
            value_range: 3,
            ..RandomConfig::default()
        };
        for seed in 0..10 {
            let comp = random_computation(seed, &cfg);
            let spec = PredicateSpec::and(vec![local_spec(&comp, 0, 1), local_spec(&comp, 1, 1)]);
            let slice = spec.slice(&comp);
            let got: BTreeSet<Cut> = all_cuts(&slice).into_iter().collect();
            let sat: BTreeSet<Cut> = satisfying_cuts(&comp, |st| spec.eval(st))
                .into_iter()
                .collect();
            assert_eq!(got, sat, "seed {seed}");
        }
    }

    #[test]
    fn coregular_leaf_and_eval() {
        let cfg = RandomConfig::default();
        let comp = random_computation(5, &cfg);
        let x = comp.var(comp.process(0), "x").unwrap();
        let inner = Conjunctive::new(vec![LocalPredicate::int(x, "x >= 1", |v| v >= 1)]);
        let spec = PredicateSpec::not_regular(inner.clone());
        let slice = spec.slice(&comp);
        let slice_cuts: BTreeSet<Cut> = all_cuts(&slice).into_iter().collect();
        let sat: BTreeSet<Cut> = satisfying_cuts(&comp, |st| !inner.eval(st))
            .into_iter()
            .collect();
        // Co-regular slices are exact.
        assert_eq!(
            slice_cuts,
            slicing_computation::oracle::sublattice_closure(
                &sat.iter().cloned().collect::<Vec<_>>()
            )
        );
    }

    /// `complement()` negates `eval` everywhere and its slice stays sound.
    #[test]
    fn complement_negates_eval_and_slices_soundly() {
        let cfg = RandomConfig {
            processes: 3,
            events_per_process: 3,
            value_range: 3,
            ..RandomConfig::default()
        };
        for seed in 0..10 {
            let comp = random_computation(seed, &cfg);
            let spec = PredicateSpec::and(vec![
                PredicateSpec::or(vec![local_spec(&comp, 0, 1), local_spec(&comp, 1, 2)]),
                local_spec(&comp, 2, 1),
            ]);
            let neg = spec.complement().expect("regular tree complements");
            let slice = neg.slice(&comp);
            let slice_cuts: BTreeSet<Cut> = all_cuts(&slice).into_iter().collect();
            for cut in all_cuts(&comp) {
                let st = GlobalState::new(&comp, &cut);
                assert_eq!(neg.eval(&st), !spec.eval(&st), "seed {seed}: {cut}");
                if neg.eval(&st) {
                    assert!(slice_cuts.contains(&cut), "seed {seed}: missing {cut}");
                }
            }
        }
    }

    /// Unsliceable leaves and the empty disjunction refuse to complement.
    #[test]
    fn complement_refuses_unsliceable_trees() {
        let comp = random_computation(3, &RandomConfig::default());
        let x = comp.var(comp.process(0), "x").unwrap();
        let linear = PredicateSpec::linear(Conjunctive::new(vec![LocalPredicate::int(
            x,
            "x >= 1",
            |v| v >= 1,
        )]));
        assert!(linear.complement().is_none());
        assert!(PredicateSpec::or(vec![]).complement().is_none());
        // And([]) is constant-true; its complement is the empty Or, which
        // both evaluates false and slices empty.
        let falsum = PredicateSpec::and(vec![]).complement().unwrap();
        assert!(falsum.slice(&comp).is_empty_slice());
    }

    #[test]
    fn empty_or_is_empty_slice() {
        let comp = random_computation(1, &RandomConfig::default());
        let spec = PredicateSpec::or(vec![]);
        assert!(spec.slice(&comp).is_empty_slice());
        let cut = Cut::bottom(comp.num_processes());
        let st = GlobalState::new(&comp, &cut);
        assert!(!spec.eval(&st));
    }

    #[test]
    fn support_unions_children() {
        let comp = random_computation(2, &RandomConfig::default());
        let spec = PredicateSpec::or(vec![local_spec(&comp, 0, 1), local_spec(&comp, 2, 1)]);
        assert_eq!(spec.support().len(), 2);
        assert!(format!("{spec:?}").contains("Or"));
    }
}
