//! The slice data structure: a constraint graph over a computation's events
//! whose consistent cuts form a sublattice of the computation's cut lattice.

use std::fmt;
use std::sync::Arc;

use slicing_computation::graph::Digraph;
use slicing_computation::{Computation, Cut, CutSpace, EventId, ProcessId};

/// A node of the slice constraint graph: an event, or the virtual top ⊤.
///
/// The paper's model adds fictitious final events ⊤ᵢ so that "no consistent
/// cut of the slice contains event `e`" is expressible as the edge ⊤ → e.
/// We keep a single virtual ⊤ node instead of materializing per-process
/// final events; the semantics are identical because all final events
/// belong to one strongly connected component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// A real event.
    Event(EventId),
    /// The virtual final meta-event ⊤ (never inside a non-trivial cut).
    Top,
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Event(e) => write!(f, "{e}"),
            Node::Top => f.write_str("⊤"),
        }
    }
}

/// A constraint edge `(u, v)`: any consistent cut containing `v` must also
/// contain `u`.
pub type Edge = (Node, Node);

/// A slice of a computation: the computation's events plus *constraint
/// edges*, whose consistent cuts are exactly the non-trivial consistent
/// cuts of the computation that respect every edge.
///
/// For a predicate `b`, the slicing algorithms construct edges such that
/// the resulting cut set is the **smallest sublattice** of the cut lattice
/// containing every cut satisfying `b` (Definition 1 of the paper). For
/// regular predicates the slice is *lean*: it contains exactly the
/// satisfying cuts.
///
/// Internally a slice precomputes, for every event `e`, the least slice cut
/// `J(e)` containing `e` (or `None` if no slice cut contains `e`), by
/// condensing the constraint graph (base happened-before edges + constraint
/// edges + the initial-event cycle) and propagating join-irreducible
/// contributions in topological order. Searching the slice then advances
/// one process at a time and joins with `J(next event)` — each successor
/// step is `O(n)`.
///
/// # Examples
///
/// ```
/// use slicing_computation::test_fixtures::figure1;
/// use slicing_computation::lattice::count_cuts;
/// use slicing_predicates::{Conjunctive, LocalPredicate};
/// use slicing_core::slice_conjunctive;
///
/// let comp = figure1();
/// let x1 = comp.var(comp.process(0), "x1").unwrap();
/// let x3 = comp.var(comp.process(2), "x3").unwrap();
/// let pred = Conjunctive::new(vec![
///     LocalPredicate::int(x1, "x1 > 1", |x| x > 1),
///     LocalPredicate::int(x3, "x3 <= 3", |x| x <= 3),
/// ]);
/// let slice = slice_conjunctive(&comp, &pred);
/// // 28 cuts in the computation, 6 in the slice (Figure 1).
/// assert_eq!(count_cuts(&comp, None).value(), 28);
/// assert_eq!(count_cuts(&slice, None).value(), 6);
/// ```
#[derive(Clone)]
pub struct Slice<'a> {
    comp: &'a Computation,
    edges: Vec<Edge>,
    /// Least slice cut containing each event; `None` = the event is in no
    /// non-trivial slice cut. Events of one strongly connected component
    /// share the *same* `Arc`'d cut — the table holds one cut payload per
    /// SCC, not per event.
    j_table: Vec<Option<Arc<Cut>>>,
    /// Number of distinct (per-SCC) cut payloads behind the table.
    distinct_j_cuts: usize,
    /// Least non-trivial slice cut (`None` = the slice is empty). Shares
    /// the initial SCC's payload with `j_table`.
    bottom: Option<Arc<Cut>>,
}

impl<'a> Slice<'a> {
    /// Builds a slice from constraint edges.
    ///
    /// The base happened-before edges of the computation are always
    /// implied and need not be listed.
    pub fn new(comp: &'a Computation, edges: Vec<Edge>) -> Self {
        let (j_table, distinct_j_cuts) = compute_j_table(comp, &edges);
        let bottom = {
            // The least slice cut is J(⊥₀) (all initial events share it) —
            // a reference count bump on the shared per-SCC cut, not a
            // recomputation or deep clone.
            let init = comp.event_at(ProcessId::new(0), 0);
            j_table[init.as_usize()].clone()
        };
        Slice {
            comp,
            edges,
            j_table,
            distinct_j_cuts,
            bottom,
        }
    }

    /// The slice with no extra constraints: its cuts are exactly the
    /// computation's non-trivial consistent cuts.
    pub fn full(comp: &'a Computation) -> Self {
        Slice::new(comp, Vec::new())
    }

    /// The empty slice: no non-trivial consistent cuts at all (the slice of
    /// an unsatisfiable predicate).
    pub fn empty(comp: &'a Computation) -> Self {
        let init = comp.event_at(ProcessId::new(0), 0);
        Slice::new(comp, vec![(Node::Top, Node::Event(init))])
    }

    /// The underlying computation.
    pub fn computation(&self) -> &'a Computation {
        self.comp
    }

    /// The constraint edges (excluding the implied base edges).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// `true` if the slice has no non-trivial consistent cuts.
    pub fn is_empty_slice(&self) -> bool {
        self.bottom.is_none()
    }

    /// The least non-trivial consistent cut of the slice, if any.
    pub fn bottom_cut(&self) -> Option<&Cut> {
        self.bottom.as_deref()
    }

    /// The least slice cut containing event `e`, or `None` if no
    /// non-trivial slice cut contains `e` (the paper's `J_b(e) = E` case).
    pub fn least_cut(&self, e: EventId) -> Option<&Cut> {
        self.j_table[e.as_usize()].as_deref()
    }

    /// Checks whether `cut` is a consistent cut of the slice.
    pub fn contains_cut(&self, cut: &Cut) -> bool {
        if !self.comp.is_consistent(cut) {
            return false;
        }
        // Frontier events suffice: J is monotone along process order.
        self.comp.processes().all(|p| {
            let frontier = self.comp.frontier(cut, p);
            match self.least_cut(frontier) {
                Some(j) => j.leq(cut),
                None => false,
            }
        })
    }

    /// The meta-events of the slice: maximal sets of events that appear in
    /// slice cuts only together (strongly connected components of the
    /// constraint graph), restricted to events that appear in some slice
    /// cut. Returned in topological order of the condensation.
    pub fn meta_events(&self) -> Vec<Vec<EventId>> {
        let (graph, num_events) = build_graph(self.comp, &self.edges);
        let scc = graph.tarjan_scc();
        let mut metas = Vec::new();
        for cid in scc.topo_order() {
            let mut members: Vec<EventId> = scc
                .members(cid)
                .iter()
                .filter(|&&v| (v as usize) < num_events)
                .map(|&v| EventId::new(v as usize))
                .filter(|&e| self.j_table[e.as_usize()].is_some())
                .collect();
            if members.is_empty() {
                continue;
            }
            members.sort_unstable();
            metas.push(members);
        }
        metas
    }

    /// Count of non-trivial consistent cuts, stopping at `cap` (see
    /// [`count_cuts`](slicing_computation::lattice::count_cuts)).
    pub fn count_cuts(&self, cap: Option<u64>) -> slicing_computation::lattice::CutCount {
        slicing_computation::lattice::count_cuts(self, cap)
    }

    /// Estimated heap footprint of the slice's tables in bytes, used by the
    /// detection metrics (the paper reports memory for "computing and
    /// storing the slice").
    pub fn approx_bytes(&self) -> usize {
        let n = self.comp.num_processes();
        let cut_bytes = std::mem::size_of::<Cut>() + 4 * n;
        // Cut payloads are shared per SCC, so they are counted once per
        // distinct cut; the per-event table holds only `Arc` pointers.
        self.edges.len() * std::mem::size_of::<Edge>()
            + self.j_table.len() * std::mem::size_of::<Option<Arc<Cut>>>()
            + self.distinct_j_cuts * cut_bytes
    }
}

impl fmt::Debug for Slice<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Slice")
            .field("num_events", &self.comp.num_events())
            .field("num_constraint_edges", &self.edges.len())
            .field("is_empty", &self.is_empty_slice())
            .finish()
    }
}

impl CutSpace for Slice<'_> {
    fn num_processes(&self) -> usize {
        self.comp.num_processes()
    }

    fn bottom(&self) -> Option<Cut> {
        self.bottom.as_deref().cloned()
    }

    fn successors(&self, cut: &Cut, out: &mut Vec<Cut>) {
        self.for_each_successor(cut, &mut |next| out.push(next.clone()));
    }

    fn for_each_successor(&self, cut: &Cut, f: &mut dyn FnMut(&Cut)) {
        let mut succ = cut.clone();
        for p in self.comp.processes() {
            let c = cut.count(p);
            if c >= self.comp.len(p) {
                continue;
            }
            let next = self.comp.event_at(p, c);
            if let Some(j) = self.least_cut(next) {
                // Rebuild the scratch in place (stack copies for
                // inline-width cuts), join in the event's least cut, and
                // lend it out — no allocation, no per-successor clone.
                succ.copy_from_counts(cut.counts());
                succ.join_in_place(j);
                f(&succ);
            }
        }
    }
}

/// Builds the full constraint digraph: nodes are events plus ⊤ (index
/// `num_events`); edges point along the "required-by" direction (`u → v`
/// means `v ∈ C ⇒ u ∈ C`, i.e. happened-before order for base edges).
fn build_graph(comp: &Computation, edges: &[Edge]) -> (Digraph, usize) {
    let num_events = comp.num_events();
    let mut g = Digraph::new(num_events + 1);
    let node_index = |n: Node| -> u32 {
        match n {
            Node::Event(e) => e.as_u32(),
            Node::Top => num_events as u32,
        }
    };

    // Process-order edges.
    for p in comp.processes() {
        for pos in 1..comp.len(p) {
            g.add_edge(
                comp.event_at(p, pos - 1).as_u32(),
                comp.event_at(p, pos).as_u32(),
            );
        }
    }
    // Message edges.
    for m in comp.messages() {
        g.add_edge(m.send.as_u32(), m.recv.as_u32());
    }
    // The initial-event cycle: all ⊥ᵢ form one meta-event.
    let n = comp.num_processes();
    if n > 1 {
        for i in 0..n {
            let a = comp.event_at(ProcessId::new(i), 0).as_u32();
            let b = comp.event_at(ProcessId::new((i + 1) % n), 0).as_u32();
            g.add_edge(a, b);
        }
    }
    // Constraint edges.
    for &(u, v) in edges {
        g.add_edge(node_index(u), node_index(v));
    }
    // Predicate slicers routinely emit constraint edges that duplicate the
    // base happened-before edges (or each other); collapse them so the SCC
    // and condensation passes scale with distinct edges only.
    g.dedup_edges();
    (g, num_events)
}

/// Computes the `J` table: for every event, the least slice cut containing
/// it (`None` if unreachable without ⊤), sharing one `Arc`'d cut among all
/// events of an SCC. Also returns the number of distinct cuts allocated.
/// Runs in `O(n·(|E| + |edges|))`.
fn compute_j_table(comp: &Computation, edges: &[Edge]) -> (Vec<Option<Arc<Cut>>>, usize) {
    let _span = slicing_observe::span("slice.j_table");
    let (graph, num_events) = build_graph(comp, edges);
    let (scc, cond) = {
        let _span = slicing_observe::span("slice.scc");
        let scc = graph.tarjan_scc();
        let cond = scc.condensation(&graph);
        (scc, cond)
    };
    let top_comp = scc.component_of(num_events as u32);
    slicing_observe::gauge("slice.constraint_edges", edges.len() as u64);
    slicing_observe::gauge("slice.scc_components", scc.num_components() as u64);

    let n = comp.num_processes();
    // Per-SCC least cuts, built in topological (sources-first) order.
    let mut j_scc: Vec<Option<Option<Cut>>> = vec![None; scc.num_components()];
    for cid in scc.topo_order() {
        let mut j = if cid == top_comp {
            None
        } else {
            // Own contribution: the positions of the member events.
            let mut cut = Cut::bottom(n);
            for &v in scc.members(cid) {
                if (v as usize) < num_events {
                    let e = EventId::new(v as usize);
                    let p = comp.process_of(e);
                    let pos = comp.position_of(e);
                    if cut.count(p) < pos + 1 {
                        cut.set_count(p, pos + 1);
                    }
                }
            }
            Some(cut)
        };
        // Fold in already-computed predecessors... except that the
        // condensation stores *successor* adjacency; instead, push this
        // component's value forward into its successors after computing it.
        // To do that with a single pass we keep `j_scc[cid]` as the join of
        // pushed-in predecessor values plus the own contribution.
        if let Some(prev) = j_scc[cid as usize].take() {
            j = match (j, prev) {
                (Some(a), Some(b)) => Some(a.join(&b)),
                _ => None,
            };
        }
        // Push into successors.
        for &succ in cond.neighbors(cid) {
            let pushed = match (&j, j_scc[succ as usize].take()) {
                (None, _) => None,
                (Some(_), Some(None)) => None,
                (Some(a), Some(Some(b))) => Some(a.join(&b)),
                (Some(a), None) => Some(a.clone()),
            };
            j_scc[succ as usize] = Some(pushed);
        }
        j_scc[cid as usize] = Some(j);
    }

    // Wrap each component's final cut once; events alias their SCC's Arc.
    let mut distinct = 0usize;
    let per_scc: Vec<Option<Arc<Cut>>> = j_scc
        .into_iter()
        .map(|j| {
            let cut = j.expect("all components computed in topological order")?;
            distinct += 1;
            Some(Arc::new(cut))
        })
        .collect();
    let table = (0..num_events)
        .map(|v| per_scc[scc.component_of(v as u32) as usize].clone())
        .collect();
    (table, distinct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_computation::lattice::all_cuts;
    use slicing_computation::test_fixtures::{figure1, grid};

    #[test]
    fn full_slice_matches_computation_lattice() {
        let comp = figure1();
        let slice = Slice::full(&comp);
        assert!(!slice.is_empty_slice());
        let a = all_cuts(&comp);
        let b = all_cuts(&slice);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_slice_has_no_cuts() {
        let comp = grid(2, 2);
        let slice = Slice::empty(&comp);
        assert!(slice.is_empty_slice());
        assert_eq!(slice.bottom_cut(), None);
        assert_eq!(all_cuts(&slice).len(), 0);
        assert!(!slice.contains_cut(&Cut::bottom(2)));
    }

    #[test]
    fn least_cut_of_unconstrained_event_is_its_min_cut() {
        let comp = figure1();
        let slice = Slice::full(&comp);
        for e in comp.events() {
            let j = slice.least_cut(e).expect("full slice never forbids");
            assert_eq!(j, comp.min_cut(e), "event {}", comp.describe_event(e));
        }
    }

    #[test]
    fn constraint_edge_restricts_cuts() {
        // grid(1,1): cuts are (1,1),(2,1),(1,2),(2,2). Force: p1's event
        // requires p0's event.
        let comp = grid(1, 1);
        let e0 = comp.event_at(comp.process(0), 1);
        let e1 = comp.event_at(comp.process(1), 1);
        let slice = Slice::new(&comp, vec![(Node::Event(e0), Node::Event(e1))]);
        let cuts = all_cuts(&slice);
        assert_eq!(cuts.len(), 3);
        assert!(!cuts.contains(&Cut::from(vec![1, 2])));
        assert!(slice.contains_cut(&Cut::from(vec![2, 2])));
        assert!(!slice.contains_cut(&Cut::from(vec![1, 2])));
    }

    #[test]
    fn top_edge_forbids_event_and_successors() {
        let comp = grid(2, 1);
        let e01 = comp.event_at(comp.process(0), 1);
        let slice = Slice::new(&comp, vec![(Node::Top, Node::Event(e01))]);
        // p0 can never advance: cuts are (1,1) and (1,2).
        let cuts = all_cuts(&slice);
        assert_eq!(cuts.len(), 2);
        assert_eq!(slice.least_cut(e01), None);
        let e02 = comp.event_at(comp.process(0), 2);
        assert_eq!(slice.least_cut(e02), None, "successor of forbidden event");
    }

    #[test]
    fn required_event_via_initial_edge() {
        // Forcing e (p0 pos 1) into every cut: edge (e → ⊥₀).
        let comp = grid(1, 1);
        let e = comp.event_at(comp.process(0), 1);
        let init = comp.event_at(comp.process(0), 0);
        let slice = Slice::new(&comp, vec![(Node::Event(e), Node::Event(init))]);
        let cuts = all_cuts(&slice);
        assert_eq!(cuts.len(), 2); // (2,1) and (2,2)
        assert!(cuts.iter().all(|c| c.count(comp.process(0)) == 2));
        assert_eq!(slice.bottom_cut().unwrap(), &Cut::from(vec![2, 1]));
    }

    #[test]
    fn contradictory_constraints_empty_the_slice() {
        // Require e and forbid e simultaneously.
        let comp = grid(1, 1);
        let e = comp.event_at(comp.process(0), 1);
        let init = comp.event_at(comp.process(0), 0);
        let slice = Slice::new(
            &comp,
            vec![
                (Node::Event(e), Node::Event(init)),
                (Node::Top, Node::Event(e)),
            ],
        );
        assert!(slice.is_empty_slice());
    }

    #[test]
    fn meta_events_group_scc_members() {
        // Cycle e0 ↔ e1 via a constraint back-edge.
        let comp = grid(1, 1);
        let e0 = comp.event_at(comp.process(0), 1);
        let e1 = comp.event_at(comp.process(1), 1);
        let slice = Slice::new(
            &comp,
            vec![
                (Node::Event(e0), Node::Event(e1)),
                (Node::Event(e1), Node::Event(e0)),
            ],
        );
        let metas = slice.meta_events();
        // Initial meta-event {⊥0, ⊥1} first, then {e0, e1}.
        assert_eq!(metas.len(), 2);
        assert_eq!(metas[0].len(), 2);
        assert_eq!(metas[1], vec![e0, e1]);
        // Cuts: bottom and bottom+{e0,e1}.
        assert_eq!(all_cuts(&slice).len(), 2);
    }

    #[test]
    fn slice_cuts_are_a_sublattice() {
        let comp = figure1();
        let e0 = comp.event_by_label("b").unwrap();
        let e1 = comp.event_by_label("g").unwrap();
        let slice = Slice::new(&comp, vec![(Node::Event(e0), Node::Event(e1))]);
        let cuts: std::collections::BTreeSet<Cut> = all_cuts(&slice).into_iter().collect();
        assert!(slicing_computation::oracle::is_sublattice(&cuts));
        for c in &cuts {
            assert!(slice.contains_cut(c));
        }
    }

    #[test]
    fn j_table_shares_cuts_per_scc_without_deep_clones() {
        use slicing_computation::{cut_heap_allocs, ComputationBuilder};

        // 20 processes — past the inline width, so any cut copy would have
        // to touch the heap — with 3 real events each and no messages.
        let mut b = ComputationBuilder::new(20);
        for i in 0..20 {
            for _ in 0..3 {
                b.append_event(b.process(i));
            }
        }
        let comp = b.build().unwrap();
        let slice = Slice::full(&comp);

        // All initial events form one SCC and alias one `Arc`'d cut; the
        // bottom cut is another handle on that same payload, not a copy.
        let init0 = comp.event_at(ProcessId::new(0), 0);
        let init7 = comp.event_at(ProcessId::new(7), 0);
        let j0 = slice.j_table[init0.as_usize()].as_ref().unwrap();
        let j7 = slice.j_table[init7.as_usize()].as_ref().unwrap();
        assert!(Arc::ptr_eq(j0, j7));
        assert!(Arc::ptr_eq(j0, slice.bottom.as_ref().unwrap()));
        // One payload per SCC with slice cuts: the initial meta-event plus
        // 20 × 3 singleton components (⊤'s component stores none).
        assert_eq!(slice.distinct_j_cuts, 61);

        // Queries and whole-slice clones only bump reference counts: zero
        // cut heap allocations even though every payload is spilled.
        let before = cut_heap_allocs();
        let dup = slice.clone();
        assert!(dup.bottom_cut().is_some());
        for e in comp.events() {
            let _ = slice.least_cut(e);
        }
        assert_eq!(cut_heap_allocs() - before, 0);
    }

    #[test]
    fn debug_and_bytes() {
        let comp = grid(1, 1);
        let slice = Slice::full(&comp);
        assert!(format!("{slice:?}").contains("Slice"));
        assert!(slice.approx_bytes() > 0);
        assert_eq!(slice.count_cuts(None).value(), 4);
        assert_eq!(slice.computation().num_events(), comp.num_events());
        assert!(slice.edges().is_empty());
    }
}
